"""The pluggable storage backend: memory/sqlite conformance and spilling.

:mod:`repro.storage.backend` promises that a relation's physical home —
resident Python sets or a temporary on-disk SQLite table of interned ids
— is invisible to evaluation: same answers, same set semantics (insert
newness, dedup, retract, clear), same version monotonicity for the
cross-query result cache.  The conformance suite below runs each backend
through the same paces; the acceptance tests at the bottom pin the
out-of-core contract — a workload whose resident columns would blow a
memory budget completes on the sqlite backend and aborts (with
``MemoryBudgetExceeded``) on the memory backend under the same budget.
"""

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant
from repro.engine.fixpoint import evaluate_program
from repro.engine.governor import ResourceGovernor
from repro.engine.profiler import Profiler
from repro.errors import MemoryBudgetExceeded, SchemaError
from repro.storage import Database
from repro.storage.backend import (
    MemoryBackend,
    SpilledRelation,
    SqliteBackend,
    StorageBackend,
    make_backend,
)
from repro.storage.relation import Relation

TC = "p(X, Y) <- e(X, Y). p(X, Y) <- e(X, Z), p(Z, Y)."


def chain(n):
    return [(f"n{i}", f"n{i + 1}") for i in range(n)]


# -------------------------------------------------------------- make_backend


def test_make_backend_resolves_names_and_instances():
    assert isinstance(make_backend("memory"), MemoryBackend)
    assert isinstance(make_backend("sqlite"), SqliteBackend)
    backend = SqliteBackend()
    assert make_backend(backend) is backend
    with pytest.raises(SchemaError):
        make_backend("zfs")


def test_backends_satisfy_the_protocol():
    assert isinstance(MemoryBackend(), StorageBackend)
    assert isinstance(SqliteBackend(), StorageBackend)


# ---------------------------------------------------------------- conformance
#
# The same behavioural checks against a relation created by each backend,
# spilled or not: set semantics must be indistinguishable.


def _resident(backend):
    relation = backend.create_relation("r", 2, None)
    relation.load(chain(5))
    return backend, relation


def _spilled(backend):
    relation = backend.create_relation("r", 2, None)
    relation.load(chain(5))
    migrated = backend.maybe_spill(relation, 1)
    assert migrated is not relation  # the sqlite backend must migrate
    return backend, migrated


CASES = [
    pytest.param(lambda: _resident(MemoryBackend()), id="memory"),
    pytest.param(lambda: _resident(SqliteBackend()), id="sqlite-resident"),
    pytest.param(lambda: _spilled(SqliteBackend()), id="sqlite-spilled"),
]


@pytest.mark.parametrize("setup", CASES)
def test_insert_newness_and_dedup(setup):
    __, relation = setup()
    row = (Constant("n0"), Constant("n1"))
    assert not relation.insert(row)  # already present from the load
    fresh = (Constant("x"), Constant("y"))
    assert relation.insert(fresh)
    assert not relation.insert(fresh)
    assert len(relation) == 6


@pytest.mark.parametrize("setup", CASES)
def test_retract_and_clear(setup):
    __, relation = setup()
    assert relation.remove_values(("n0", "n1"))
    assert not relation.remove_values(("n0", "n1"))
    assert len(relation) == 4
    relation.clear()
    assert len(relation) == 0
    assert list(relation) == []


@pytest.mark.parametrize("setup", CASES)
def test_iteration_contains_and_lookup(setup):
    __, relation = setup()
    rows = set(relation)
    assert len(rows) == 5
    row = (Constant("n2"), Constant("n3"))
    assert row in rows
    assert relation.__contains__(row)
    hits = list(relation.lookup((0,), (Constant("n2"),)))
    assert hits == [row]
    index = relation.ensure_index((0,))
    assert list(index.get((Constant("n2"),))) == [row]


@pytest.mark.parametrize("setup", CASES)
def test_version_bumps_on_every_mutation(setup):
    __, relation = setup()
    before = relation.version
    relation.insert((Constant("x"), Constant("y")))
    assert relation.version > before
    mid = relation.version
    relation.remove_values(("x", "y"))
    assert relation.version > mid


def test_migration_carries_rows_and_advances_version():
    """Spilling is a mutation of physical layout: the row set survives
    bit-for-bit and the version moves forward so cached query results
    keyed on the version vector are invalidated, never served stale."""
    resident = Relation("r", 2)
    resident.load(chain(8))
    spilled = SpilledRelation.from_relation(resident)
    assert spilled.spilled
    assert set(spilled) == set(resident)
    assert spilled.version > resident.version
    assert len(spilled) == len(resident)


def test_arity_zero_relations_never_spill():
    backend = SqliteBackend()
    relation = backend.create_relation("flag", 0, None)
    relation.insert(())
    assert backend.maybe_spill(relation, 0) is relation


def test_schema_errors_surface_from_the_spilled_tier():
    spilled = SpilledRelation.from_relation(Relation("r", 2))
    with pytest.raises(SchemaError):
        spilled.insert((Constant("only-one"),))


# ------------------------------------------------------------------ database


def test_database_spills_past_the_threshold():
    db = Database(backend="sqlite", spill_threshold=10)
    db.load("e", chain(5))
    assert not getattr(db.relation("e"), "spilled", False)
    db.load("e", [(f"m{i}", f"m{i + 1}") for i in range(10)])
    relation = db.relation("e")
    assert getattr(relation, "spilled", False)
    assert len(relation) == 15
    assert db.resident_tuples() == 0


def test_database_retract_round_trips_through_the_spill():
    db = Database(backend="sqlite", spill_threshold=3)
    db.load("e", chain(6))
    assert getattr(db.relation("e"), "spilled", False)
    assert db.retract("e", [("n0", "n1"), ("nope", "nope")]) == 1
    assert len(db.relation("e")) == 5
    answers = evaluate_program(db, parse_program(TC))
    baseline = Database()
    baseline.load("e", chain(6))
    baseline.retract("e", [("n0", "n1")])
    expected = evaluate_program(baseline, parse_program(TC))
    assert answers["p"] == expected["p"]


def test_memory_backend_with_threshold_stays_resident():
    db = Database(backend="memory", spill_threshold=1)
    db.load("e", chain(5))
    assert not getattr(db.relation("e"), "spilled", False)
    assert db.resident_tuples() == 5


# ------------------------------------------- spilled ≡ resident evaluation


@pytest.mark.parametrize("threshold", [1, 50])
def test_spilled_evaluation_matches_memory(threshold):
    """The whole point: same fixpoint answers whether the base relations
    live in RAM or on disk (threshold=1 forces every relation out)."""
    memory = Database()
    memory.load("e", chain(40))
    expected = evaluate_program(memory, parse_program(TC))

    disk = Database(backend="sqlite", spill_threshold=threshold)
    disk.load("e", chain(40))
    got = evaluate_program(disk, parse_program(TC))
    assert got["p"] == expected["p"]
    assert len(got["p"]) == 40 * 41 // 2


def test_spilled_counters_match_memory():
    memory = Database()
    memory.load("e", chain(30))
    mp = Profiler()
    evaluate_program(memory, parse_program(TC), profiler=mp,
                     batch=True, batch_min_rows=0, parallel=False)

    disk = Database(backend="sqlite", spill_threshold=1)
    disk.load("e", chain(30))
    dp = Profiler()
    evaluate_program(disk, parse_program(TC), profiler=dp,
                     batch=True, batch_min_rows=0, parallel=False)
    assert (dp.examined, dp.produced, dp.probes) == (
        mp.examined, mp.produced, mp.probes,
    )


# --------------------------------------------------------- out-of-core cap


def _budgeted_governor():
    # Evaluation itself ticks ~4_000 tuples (step matches + head emits);
    # the memory run adds 2_000 resident base tuples on top.  At 64
    # B/tuple that is ~384_000 vs ~256_000 bytes, so a 300_000-byte cap
    # prices out the resident backend while the disk backend completes.
    return ResourceGovernor(max_memory_bytes=300_000, bytes_per_tuple=64).arm()


def test_memory_backend_exceeds_the_cap_where_sqlite_completes():
    """The acceptance scenario: identical program, identical budget; the
    resident backend is priced out by its own base columns while the
    disk backend completes (and answers match an unbudgeted run)."""
    source = "q(X, Y) <- e(X, Y)."
    rows = chain(2_000)

    resident = Database(backend="memory", spill_threshold=100)
    resident.load("e", rows)
    with pytest.raises(MemoryBudgetExceeded):
        evaluate_program(resident, parse_program(source),
                         governor=_budgeted_governor())

    disk = Database(backend="sqlite", spill_threshold=100)
    disk.load("e", rows)
    got = evaluate_program(disk, parse_program(source),
                           governor=_budgeted_governor())

    unbudgeted = Database()
    unbudgeted.load("e", rows)
    expected = evaluate_program(unbudgeted, parse_program(source))
    assert got["q"] == expected["q"]


def test_no_threshold_means_no_resident_accounting():
    """spill_threshold=None is the pre-backend world: the same budget
    that kills the resident run above never sees the base columns."""
    db = Database()
    db.load("e", chain(2_000))
    result = evaluate_program(db, parse_program("q(X, Y) <- e(X, Y)."),
                              governor=_budgeted_governor())
    assert len(result["q"]) == 2_000


# ------------------------------------------------------- temp-file lifecycle


def _spill_files():
    import glob
    import os
    import tempfile

    return set(glob.glob(os.path.join(tempfile.gettempdir(), "repro-spill-*.db")))


def test_spill_and_close_cycle_leaves_no_temp_files():
    """Satellite regression: every spilled relation's on-disk SQLite file
    is deleted by ``Database.close()`` — none survive a spill + close
    cycle, no matter how many relations spilled."""
    before = _spill_files()
    db = Database(backend="sqlite", spill_threshold=4)
    for name in ("e", "f", "g"):
        db.load(name, chain(10))
        assert isinstance(db.relation(name), SpilledRelation)
    created = _spill_files() - before
    assert len(created) == 3
    db.close()
    assert _spill_files() - before == set()


def test_database_close_is_idempotent_and_rolls_back_open_txns():
    db = Database(backend="sqlite", spill_threshold=4)
    db.load("e", chain(10))
    db.begin_transaction()
    db.load("e", [("x", "y")])
    db.close()
    assert not db.in_transaction
    db.close()  # second close is a no-op


def test_backend_close_allows_reuse_of_the_database_object():
    """Closing disposes spill files; the memory backend stays usable."""
    db = Database(backend="memory")
    db.load("e", chain(5))
    db.close()
    assert len(db.relation("e")) == 5
