"""Rule rewrites: specialization, relevance restriction, projection pushdown."""

import pytest

from repro.datalog import (
    PredicateRef,
    parse_literal,
    parse_program,
    parse_rule,
    pred_ref,
)
from repro.datalog.rewrite import (
    push_projections,
    relevant_program,
    rename_apart,
    specialize,
)
from repro.datalog.terms import Constant, Variable
from repro.engine import evaluate_program
from repro.storage import Database


def test_rename_apart_only_renames_clashes():
    rule = parse_rule("p(X, Y) <- q(X, Z).")
    renamed = rename_apart(rule, frozenset({Variable("X")}))
    assert Variable("X") not in renamed.variables
    assert Variable("Y") in renamed.variables  # untouched


def test_rename_apart_noop_without_clash():
    rule = parse_rule("p(X) <- q(X).")
    assert rename_apart(rule, frozenset({Variable("Q")})) is rule


def test_specialize_pushes_constants():
    rule = parse_rule("p(X, Y) <- q(X, Z), r(Z, Y).")
    out = specialize(rule, parse_literal("p(a, W)"))
    assert str(out) == "p(a, W) <- q(a, Z), r(Z, W)."


def test_specialize_handles_goal_variable_clash():
    rule = parse_rule("p(X, Y) <- q(X, Y).")
    out = specialize(rule, parse_literal("p(Y, X)"))
    # goal variables pass through; rule variables renamed apart
    assert out.head.args == (Variable("Y"), Variable("X"))


def test_specialize_rejects_mismatches():
    rule = parse_rule("p(a, Y) <- q(Y).")
    assert specialize(rule, parse_literal("p(b, W)")) is None
    assert specialize(rule, parse_literal("other(a, W)")) is None
    assert specialize(rule, parse_literal("p(a)")) is None


def test_relevant_program_prunes_unreachable():
    program = parse_program(
        """
        p(X) <- q(X).
        q(X) <- base(X).
        dead(X) <- other(X).
        """
    )
    pruned = relevant_program(program, PredicateRef("p", 1))
    heads = {str(r.head_ref) for r in pruned}
    assert heads == {"p/1", "q/1"}
    assert len(relevant_program(program, PredicateRef("nope", 1))) == 0


PROJ = """
wide(A, B, C, D) <- s(A, B), t(C, D).
user(A) <- wide(A, B, C, D), B = C.
"""


def test_push_projections_drops_unused_columns():
    program = parse_program(PROJ)
    goal = parse_literal("user(A)")
    rewritten, new_goal = push_projections(program, goal)
    # `wide`'s D column is never consumed: the projected version loses it
    projected = [r for r in rewritten if r.head.predicate == "wide@proj"]
    assert projected
    assert projected[0].head.arity == 3
    assert new_goal.predicate == "user"


def test_push_projections_preserves_semantics():
    program = parse_program(PROJ)
    goal = parse_literal("user(A)")
    rewritten, __ = push_projections(program, goal)
    db = Database()
    db.load("s", [("a", 1), ("b", 2)])
    db.load("t", [(1, "x"), (3, "y")])
    before = evaluate_program(db, program)["user"]
    after = evaluate_program(db, rewritten)["user"]
    assert before == after
    assert before == frozenset({(Constant("a"),)})


def test_push_projections_noop_when_everything_used():
    program = parse_program("p(A, B) <- q(A, B).")
    goal = parse_literal("p(A, B)")
    rewritten, new_goal = push_projections(program, goal)
    assert rewritten == program
    assert new_goal == goal


def test_push_projections_skips_recursive():
    program = parse_program(
        """
        t(X, Y) <- e(X, Y).
        t(X, Y) <- e(X, Z), t(Z, Y).
        first(X) <- t(X, Y).
        """
    )
    rewritten, __ = push_projections(program, parse_literal("first(X)"))
    # the recursive predicate keeps its arity even though Y is unused above
    assert all(r.head.arity == 2 for r in rewritten if r.head.predicate.startswith("t"))
