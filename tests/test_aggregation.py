"""Stratified aggregation (LDL's set-grouping flavour)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import KnowledgeBase, KnowledgeBaseError
from repro.datalog.parser import parse_rule
from repro.datalog.rules import aggregate_spec
from repro.datalog.terms import Constant, Struct, Variable
from repro.errors import ExecutionError

EMPS = [("ann", "eng", 90), ("bob", "eng", 80), ("cal", "ops", 70), ("dee", "eng", 80)]


def kb_with_emps(rules: str) -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.rules(rules)
    kb.facts("emp", EMPS)
    return kb


def test_aggregate_spec_detection():
    rule = parse_rule("t(D, sum(S)) <- emp(E, D, S).")
    assert rule.is_aggregate
    assert rule.aggregate_positions == (1,)
    assert aggregate_spec(rule.head.args[1]) == ("sum", Variable("S"))
    assert aggregate_spec(rule.head.args[0]) is None
    # a non-aggregate struct head is not an aggregate
    assert not parse_rule("t(f(X)) <- q(X).").is_aggregate


def test_sum_and_count():
    kb = kb_with_emps(
        """
        dept_total(D, sum(S)) <- emp(E, D, S).
        dept_size(D, count(E)) <- emp(E, D, S).
        """
    )
    assert kb.ask("dept_total(D, T)?").to_python() == [("eng", 250), ("ops", 70)]
    assert kb.ask("dept_size(D, N)?").to_python() == [("eng", 3), ("ops", 1)]


def test_min_max_avg():
    kb = kb_with_emps("stats(D, min_of(S), max_of(S), avg(S)) <- emp(E, D, S).")
    rows = dict((d, (lo, hi, avg)) for d, lo, hi, avg in kb.ask("stats(D, L, H, A)?").to_python())
    assert rows["eng"] == (80, 90, pytest.approx(250 / 3))
    assert rows["ops"] == (70, 70, 70.0)


def test_count_counts_derivations_not_distinct_values():
    """Two engineers earn 80: count(E) sees both (distinct derivations)."""
    kb = kb_with_emps("same_pay(D, S, count(E)) <- emp(E, D, S).")
    rows = dict(((d, s), n) for d, s, n in kb.ask("same_pay(D, S, N)?").to_python())
    assert rows[("eng", 80)] == 2


def test_global_aggregate_no_group():
    kb = kb_with_emps("payroll(sum(S)) <- emp(E, D, S).")
    assert kb.ask("payroll(T)?").to_python() == [(320,)]


def test_aggregates_compose_with_rules():
    kb = kb_with_emps(
        """
        dept_size(D, count(E)) <- emp(E, D, S).
        big(D) <- dept_size(D, N), N >= 2.
        """
    )
    assert kb.ask("big(D)?").to_python() == [("eng",)]


def test_bound_group_argument():
    kb = kb_with_emps("dept_total(D, sum(S)) <- emp(E, D, S).")
    assert kb.ask("dept_total(eng, T)?").to_python() == [(250,)]
    assert kb.ask("dept_total($D, T)?", D="ops").to_python() == [(70,)]


def test_bound_aggregate_value_filters():
    kb = kb_with_emps("dept_size(D, count(E)) <- emp(E, D, S).")
    assert kb.ask("dept_size(D, 3)?").to_python() == [("eng",)]
    assert kb.ask("dept_size(D, 99)?").to_python() == []


def test_aggregate_over_recursive_view():
    kb = KnowledgeBase()
    kb.rules(
        """
        reach(X, Y) <- e(X, Y).
        reach(X, Y) <- e(X, Z), reach(Z, Y).
        fanout(X, count(Y)) <- reach(X, Y).
        """
    )
    kb.facts("e", [("a", "b"), ("b", "c"), ("b", "d")])
    assert kb.ask("fanout(X, N)?").to_python() == [("a", 3), ("b", 2)]


def test_recursion_through_aggregation_rejected():
    kb = KnowledgeBase()
    kb.rules("t(X, count(Y)) <- t(Y, X).")
    kb.facts("noop", [(0,)])
    with pytest.raises(KnowledgeBaseError):
        kb.ask("t(X, N)?")


def test_sum_non_numeric_raises():
    kb = KnowledgeBase()
    kb.rules("bad(sum(N)) <- word(N).")
    kb.facts("word", [("hello",)])
    with pytest.raises(ExecutionError):
        kb.ask("bad(T)?")


def test_min_max_work_on_strings():
    kb = KnowledgeBase()
    kb.rules("extremes(min_of(W), max_of(W)) <- word(W).")
    kb.facts("word", [("pear",), ("apple",), ("zuc",)])
    assert kb.ask("extremes(Lo, Hi)?").to_python() == [("apple", "zuc")]


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 50)), min_size=1, max_size=20))
def test_sum_count_match_python(rows):
    distinct = sorted({(f"e{i}", dept, salary) for i, (dept, salary) in enumerate(rows)})
    kb = KnowledgeBase()
    kb.rules(
        """
        total(D, sum(S)) <- emp(E, D, S).
        size(D, count(E)) <- emp(E, D, S).
        """
    )
    kb.facts("emp", distinct)
    expected_total: dict[str, int] = {}
    expected_count: dict[str, int] = {}
    for __, dept, salary in distinct:
        expected_total[dept] = expected_total.get(dept, 0) + salary
        expected_count[dept] = expected_count.get(dept, 0) + 1
    assert dict(kb.ask("total(D, T)?").to_python()) == expected_total
    assert dict(kb.ask("size(D, N)?").to_python()) == expected_count
