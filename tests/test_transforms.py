"""Execution-space transformations (Section 5): equivalence preservation.

Each transformation must map a processing tree / program to one computing
the same result — that is the definition of the execution space.  The
tests execute before and after.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import KnowledgeBase
from repro.datalog import PredicateRef, parse_program, parse_query
from repro.engine import Interpreter, evaluate_program
from repro.errors import ExecutionError, PlanError
from repro.plans.transforms import (
    exchange_label,
    flatten_program,
    flatten_rule,
    permute,
    push_select,
    set_mode,
    unflatten_program,
)
from repro.storage import Database


def build_kb():
    kb = KnowledgeBase()
    kb.rules(
        """
        res(X, Z) <- e(X, Y), f(Y, Z), Y != X.
        """
    )
    kb.facts("e", [("a", "b"), ("b", "b"), ("b", "c")])
    kb.facts("f", [("b", 1), ("c", 2)])
    return kb


def run_join(kb, join_node, query):
    from repro.plans.nodes import UnionNode

    compiled = kb.compile(query)
    root = compiled.plan
    new_root = UnionNode(root.ref, root.binding, (join_node,), root.est, root.ndvs)
    return Interpreter(kb.db).run(new_root, compiled.query).to_python()


def wrapper_join(kb, query):
    return kb.compile(query).plan.children[0]


def inner_join(kb, query):
    return wrapper_join(kb, query).steps[0].child.children[0]


def rebuild(kb, query, new_inner):
    """Swap the inner AND node inside the compiled wrapper plan."""
    from repro.plans.nodes import JoinNode, JoinStep, UnionNode

    compiled = kb.compile(query)
    wrapper = compiled.plan.children[0]
    step = wrapper.steps[0]
    child = step.child
    new_child = UnionNode(child.ref, child.binding, (new_inner,), child.est, child.ndvs)
    new_step = JoinStep(step.literal, new_child, step.method, step.pipelined, step.est)
    new_wrapper = JoinNode(wrapper.rule, wrapper.binding, (new_step,), wrapper.est)
    root = compiled.plan
    new_root = UnionNode(root.ref, root.binding, (new_wrapper,), root.est, root.ndvs)
    return Interpreter(kb.db).run(new_root, compiled.query).to_python()


QUERY = "res(X, Z)?"


def test_pr_permutation_preserves_results():
    kb = build_kb()
    baseline = kb.ask(QUERY).to_python()
    inner = inner_join(kb, QUERY)
    n = len(inner.steps)
    import itertools

    safe_orders = 0
    for perm in itertools.permutations(range(n)):
        transformed = permute(inner, perm)
        try:
            result = rebuild(kb, QUERY, transformed)
        except ExecutionError:
            continue  # unsafe permutation: engine refuses, also acceptable
        safe_orders += 1
        assert sorted(result) == sorted(baseline), f"PR broke at {perm}"
    assert safe_orders >= 2


def test_el_method_change_preserves_results():
    kb = build_kb()
    baseline = kb.ask(QUERY).to_python()
    inner = inner_join(kb, QUERY)
    base_positions = [
        i for i, s in enumerate(inner.steps)
        if s.child is None and not s.literal.is_comparison
    ]
    for position in base_positions:
        for method in ("nested_loop", "hash", "index", "merge"):
            transformed = exchange_label(inner, position, method)
            assert sorted(rebuild(kb, QUERY, transformed)) == sorted(baseline)


def test_el_rejects_non_base_steps():
    kb = build_kb()
    inner = inner_join(kb, QUERY)
    cmp_position = next(i for i, s in enumerate(inner.steps) if s.literal.is_comparison)
    with pytest.raises(PlanError):
        exchange_label(inner, cmp_position, "hash")
    with pytest.raises(PlanError):
        exchange_label(inner, 0, "quantum")


def test_mp_flip_preserves_results():
    kb = build_kb()
    baseline = kb.ask(QUERY).to_python()
    inner = inner_join(kb, QUERY)
    for position, step in enumerate(inner.steps):
        if step.literal.is_comparison:
            continue
        for pipelined in (True, False):
            transformed = set_mode(inner, position, pipelined)
            assert sorted(rebuild(kb, QUERY, transformed)) == sorted(baseline)


def test_ps_move_preserves_results_when_safe():
    kb = build_kb()
    baseline = kb.ask(QUERY).to_python()
    inner = inner_join(kb, QUERY)
    source = next(i for i, s in enumerate(inner.steps) if s.literal.is_comparison)
    for target in range(len(inner.steps)):
        transformed = push_select(inner, source, target)
        try:
            result = rebuild(kb, QUERY, transformed)
        except ExecutionError:
            continue
        assert sorted(result) == sorted(baseline)


# -- FU at the program level -----------------------------------------------------


FLATTEN_SOURCE = """
top(X, Z) <- mid(X, Y), g(Y, Z).
mid(X, Y) <- a(X, Y).
mid(X, Y) <- b(X, Y), X != Y.
"""


def flatten_db():
    db = Database()
    db.load("a", [("x", "y"), ("y", "y")])
    db.load("b", [("x", "x"), ("x", "q"), ("q", "y")])
    db.load("g", [("y", 1), ("q", 2), ("x", 3)])
    return db


def test_flatten_program_distributes_join_over_union():
    program = parse_program(FLATTEN_SOURCE)
    flattened = flatten_program(program, PredicateRef("mid", 2))
    assert not flattened.rules_for(PredicateRef("mid", 2))
    assert len(flattened.rules_for(PredicateRef("top", 2))) == 2
    db = flatten_db()
    before = evaluate_program(db, program)["top"]
    after = evaluate_program(db, flattened)["top"]
    assert before == after


def test_flatten_rejects_recursive():
    program = parse_program("t(X, Y) <- e(X, Y). t(X, Y) <- e(X, Z), t(Z, Y).")
    with pytest.raises(PlanError):
        flatten_program(program, PredicateRef("t", 2))


def test_flatten_rule_drops_non_unifiable_definitions():
    program = parse_program("top(Z) <- mid(a, Z).\nmid(b, X) <- c(X).\nmid(a, X) <- d(X).")
    rules = flatten_rule(
        program.rules[0], 0, program.rules_for(PredicateRef("mid", 2))
    )
    assert len(rules) == 1
    assert rules[0].body[0].predicate == "d"


def test_unflatten_roundtrip():
    program = parse_program(FLATTEN_SOURCE)
    folded = unflatten_program(program, 0, [0, 1], "segment")
    db = flatten_db()
    before = evaluate_program(db, program)["top"]
    after = evaluate_program(db, folded)["top"]
    assert before == after
    assert PredicateRef("segment", 2) in folded.derived_predicates


def test_unflatten_then_flatten_is_identity_semantically():
    program = parse_program(FLATTEN_SOURCE)
    folded = unflatten_program(program, 0, [0, 1], "segment")
    unfolded = flatten_program(folded, PredicateRef("segment", 2))
    db = flatten_db()
    assert (
        evaluate_program(db, program)["top"]
        == evaluate_program(db, unfolded)["top"]
    )


def test_unflatten_validates_positions():
    program = parse_program(FLATTEN_SOURCE)
    with pytest.raises(PlanError):
        unflatten_program(program, 99, [0], "x")
    with pytest.raises(PlanError):
        unflatten_program(program, 0, [99], "x")


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1000))
def test_flatten_equivalence_random_data(seed):
    import random

    rng = random.Random(seed)
    db = Database()
    domain = [f"v{i}" for i in range(6)]
    for name in ("a", "b", "g"):
        rows = {(rng.choice(domain), rng.choice(domain)) for __ in range(8)}
        db.load(name, sorted(rows))
    program = parse_program(FLATTEN_SOURCE)
    flattened = flatten_program(program, PredicateRef("mid", 2))
    assert evaluate_program(db, program)["top"] == evaluate_program(db, flattened)["top"]
