"""The columnar batch tier: batch ≡ row equivalence, interning, parity.

The contract of :mod:`repro.engine.batch` is the same strict
observational equivalence the row kernels promise, *plus* profiler
parity: for any batchable program the columnar tier must produce the
same answer sets AND the same per-query ``produced`` counts as the row
kernels, fire the same governor checkpoints (so budget aborts and
injected faults land identically), and honor the same span labels.  The
seeded tests here sweep that property over generated workloads; the
unit tests pin the interner's hash-consing guarantees and the
columnar/row bridge.
"""

import random

import pytest

from repro.datalog.intern import INTERNER, TermInterner, intern_term
from repro.datalog.parser import parse_program
from repro.datalog.rules import Program
from repro.datalog.terms import Constant, Struct, Variable
from repro.engine.batch import compile_batch_plan
from repro.engine.faults import FaultInjector, InjectedFault
from repro.engine.fixpoint import FixpointEngine
from repro.engine.kernels import compile_rule
from repro.engine.governor import ResourceGovernor, make_governor
from repro.engine.operators import BindingsTable, JOIN_METHODS
from repro.engine.profiler import Profiler
from repro.errors import TupleBudgetExceeded
from repro.storage import Database, relation_from_rows
from repro.storage.columnar import store_from_rows

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")

ANC = "anc(X, Y) <- par(X, Y). anc(X, Y) <- par(X, Z), anc(Z, Y)."


# -- randomized batch/row equivalence -----------------------------------------


def random_database(rng: random.Random) -> Database:
    db = Database()
    values = [f"v{i}" for i in range(rng.randint(4, 9))]
    for name in ("e", "f"):
        rows = {
            (rng.choice(values), rng.choice(values))
            for _ in range(rng.randint(3, 18))
        }
        db.add_relation(relation_from_rows(name, sorted(rows), arity=2))
    return db


PROGRAMS = [
    # transitive closure — the semi-naive delta path, fully batchable
    "p(X, Y) <- e(X, Y). p(X, Y) <- e(X, Z), p(Z, Y).",
    # join across two base relations plus a derived one
    "p(X, Y) <- e(X, Y). q(X, Z) <- p(X, Y), f(Y, Z).",
    # same-generation shape: two clique literals per body
    "s(X, Y) <- f(X, Y). s(X, Y) <- e(X, Z), s(Z, W), e(Y, W).",
    # constants in body literals and in the head
    "c(X) <- e(v1, X). k(X, ok) <- c(X), f(X, Y).",
    # mixed: a batchable recursive rule next to a row-only comparison rule
    "p(X, Y) <- e(X, Y). p(X, Y) <- e(X, Z), p(Z, Y). m(X, n) <- p(X, Y), X != Y.",
]


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("source", PROGRAMS)
def test_batch_matches_row_answers_and_produced(seed, source):
    """batch=True with batch_min_rows=0 (columnar forced whenever the plan
    is batchable) derives the same relations as batch=False with the same
    per-query ``produced`` count — the ISSUE's parity property."""
    rng = random.Random(seed)
    db = random_database(rng)
    program = Program(list(parse_program(source)))

    row_profiler = Profiler()
    row = FixpointEngine(
        db, profiler=row_profiler, compile=True, batch=False
    ).evaluate(program)

    batch_profiler = Profiler()
    batch = FixpointEngine(
        db, profiler=batch_profiler, compile=True, batch=True, batch_min_rows=0
    ).evaluate(program)

    assert batch.relations == row.relations, f"answers diverged on seed {seed}"
    assert batch_profiler.produced == row_profiler.produced, (
        f"produced counts diverged on seed {seed}: "
        f"batch={batch_profiler.produced} row={row_profiler.produced}"
    )


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("method", sorted(JOIN_METHODS))
def test_batch_matches_every_row_join_method(seed, method):
    """The columnar tier is method-agnostic: it must agree with the row
    tier under every join-method choice, not just hash."""
    rng = random.Random(50 + seed)
    db = random_database(rng)
    program = Program(list(parse_program(PROGRAMS[0])))

    row = FixpointEngine(
        db, method_chooser=lambda literal: method, compile=True, batch=False
    ).evaluate(program)
    batch = FixpointEngine(
        db, compile=True, batch=True, batch_min_rows=0
    ).evaluate(program)
    assert batch.relations == row.relations


def test_small_input_stays_on_row_tier():
    """Below batch_min_rows the cost model keeps the row kernels (the
    columnar encode is not worth it for tiny deltas) — answers identical."""
    db = Database()
    db.load("par", [("a", "b"), ("b", "c"), ("c", "d")])
    program = Program(list(parse_program(ANC)))
    threshold = FixpointEngine(db, compile=True, batch=True, batch_min_rows=32)
    forced = FixpointEngine(db, compile=True, batch=True, batch_min_rows=0)
    assert threshold.evaluate(program).relations == forced.evaluate(program).relations


# -- batch plan compilation ---------------------------------------------------


def test_non_flat_rules_are_not_batchable():
    rules = parse_program(
        "n(X, Y) <- e(X, Y), ~f(X, Y)."
        "c(X) <- e(X, Y), X != Y."
        "g(X, Y) <- e(X, Y), f(Y, Z), Z = X."
    ).rules
    for rule in rules:
        assert compile_batch_plan(compile_rule(rule)) is None


def test_flat_join_rule_is_batchable():
    rule = parse_program("h(X, Z) <- e(X, Y), f(Y, Z).").rules[0]
    plan = compile_batch_plan(compile_rule(rule))
    assert plan is not None
    assert len(plan.steps) == 2
    assert plan.labels == tuple(compile_rule(rule).labels)


# -- governor / fault parity --------------------------------------------------


def _chain_db(n: int) -> Database:
    db = Database()
    db.load("par", [(f"n{i}", f"n{i + 1}") for i in range(n)])
    return db


@pytest.mark.parametrize("batch", [False, True])
def test_tuple_budget_aborts_both_tiers(batch):
    """A tuple budget that aborts the row tier aborts the batch tier too:
    the columnar join ticks the governor cooperatively mid-batch."""
    program = Program(list(parse_program(ANC)))
    engine = FixpointEngine(
        _chain_db(40),
        compile=True,
        batch=batch,
        batch_min_rows=0,
        governor=make_governor(max_tuples=50),
    )
    with pytest.raises(TupleBudgetExceeded):
        engine.evaluate(program)


@pytest.mark.parametrize("batch", [False, True])
def test_injected_fault_fires_at_same_site_both_tiers(batch):
    """Batch steps run the same checkpoint labels as the row kernels, so a
    fault injected at a named join site fires on either tier."""
    faults = FaultInjector().inject("join:anc:par", error="disk on fire")
    program = Program(list(parse_program(ANC)))
    engine = FixpointEngine(
        _chain_db(10),
        compile=True,
        batch=batch,
        batch_min_rows=0,
        governor=ResourceGovernor(faults=faults),
    )
    with pytest.raises(InjectedFault, match="disk on fire"):
        engine.evaluate(program)
    assert faults.fired_count() == 1


# -- the interner -------------------------------------------------------------


def test_interning_is_idempotent():
    interner = TermInterner()
    a = Constant("a")
    first = interner.id_of(a)
    assert interner.id_of(a) == first
    assert interner.id_of(Constant("a")) == first
    assert interner.canonical(a) is interner.canonical(Constant("a"))
    assert len(interner) == 1


def test_struct_hash_consing_shares_children():
    interner = TermInterner()
    inner = Struct("g", (Constant("a"),))
    outer = Struct("f", (inner, Constant("b")))
    canonical = interner.canonical(outer)
    # children of the canonical struct ARE the canonical instances
    assert canonical.args[0] is interner.canonical(Struct("g", (Constant("a"),)))
    assert canonical.args[1] is interner.canonical(Constant("b"))
    # re-interning an equal struct built from fresh parts hits the same id
    again = Struct("f", (Struct("g", (Constant("a"),)), Constant("b")))
    assert interner.canonical(again) is canonical


def test_interning_rejects_non_ground_terms():
    interner = TermInterner()
    with pytest.raises(ValueError):
        interner.id_of(Variable("X"))
    with pytest.raises(ValueError):
        interner.id_of(Struct("f", (Constant("a"), Variable("X"))))
    # the failed admission must not leak partial state for the struct
    assert Struct("f", (Constant("a"), Variable("X"))) not in interner._ids


def test_encode_decode_roundtrip():
    interner = TermInterner()
    row = (Constant("a"), Constant(3), Struct("f", (Constant("b"),)))
    ids = interner.encode_row(row)
    assert interner.decode_row(ids) == row
    # injectivity: distinct terms never share an id
    assert len(set(ids)) == len(ids)


def test_global_interner_shares_instances_across_terms():
    assert intern_term(Constant("shared-xyz")) is intern_term(Constant("shared-xyz"))


# -- the columnar/row bridge --------------------------------------------------


def test_bindings_table_from_columns_roundtrip():
    interner = TermInterner()
    rows = [(Constant("a"), Constant(1)), (Constant("b"), Constant(2))]
    store = store_from_rows(rows, interner)
    table = BindingsTable.from_columns((X, Y), store.columns, store.length, interner)
    assert table.schema == (X, Y)
    assert table.rows == frozenset(rows)


def test_bindings_table_from_columns_zero_width():
    interner = TermInterner()
    unit = BindingsTable.from_columns((), [], 1, interner)
    assert unit.rows == frozenset({()})
    empty = BindingsTable.from_columns((), [], 0, interner)
    assert empty.rows == frozenset()


def test_batch_store_buckets_and_incremental_append():
    interner = TermInterner()
    rows = [(Constant("a"), Constant("x")), (Constant("a"), Constant("y"))]
    store = store_from_rows(rows, interner)
    buckets = store.buckets_for((0,))
    a_id = interner.id_of(Constant("a"))
    assert sorted(buckets[a_id]) == [0, 1]
    # appends maintain already-built bucket maps incrementally
    store.append((Constant("a"), Constant("z")))
    assert sorted(store.buckets_for((0,))[a_id]) == [0, 1, 2]
    assert store.length == 3
