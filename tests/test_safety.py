"""Safety analysis tests (Section 8): EC, safe orders, well-founded orders."""

import pytest

from repro.datalog import (
    BindingPattern,
    CPermutation,
    DependencyGraph,
    PredicateRef,
    adorn_clique,
    parse_program,
    parse_rule,
    parse_literal,
)
from repro.datalog.safety import (
    ec_check,
    exists_safe_order,
    literal_is_ec,
    well_founded_order,
)
from repro.datalog.terms import Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


# -- EC of single literals ------------------------------------------------------


def test_comparison_needs_all_bound():
    lt = parse_literal("X < Y")
    assert not literal_is_ec(lt, frozenset({X}))[0]
    assert literal_is_ec(lt, frozenset({X, Y}))[0]


def test_equality_expression_rule():
    """Section 8.1: 'x = expression' is EC once the expression's variables
    are instantiated."""
    eq = parse_literal("Z = X + Y + 1")
    assert literal_is_ec(eq, frozenset({X, Y}))[0]
    assert not literal_is_ec(eq, frozenset({X}))[0]
    # Z bound does not help: arithmetic is not invertible
    assert not literal_is_ec(eq, frozenset({Z}))[0]


def test_equality_constructor_is_invertible():
    eq = parse_literal("pair(A, B) = P")
    assert literal_is_ec(eq, frozenset({Variable("P")}))[0]


def test_negation_needs_all_bound():
    neg = parse_literal("~p(X, Y)")
    assert not literal_is_ec(neg, frozenset({X}))[0]
    assert literal_is_ec(neg, frozenset({X, Y}))[0]


def test_base_literal_always_ec():
    assert literal_is_ec(parse_literal("p(X, Y)"), frozenset())[0]


def test_oracle_can_declare_infinite():
    oracle = lambda literal, bound: False
    ok, reason = literal_is_ec(parse_literal("p(X)"), frozenset(), oracle)
    assert not ok and "infinite" in reason


# -- EC of bodies ---------------------------------------------------------------


def test_ec_check_order_dependent():
    rule = parse_rule("p(X, Y) <- Y = X + 1, q(X).")
    assert not ec_check(rule.body, frozenset()).ok
    assert ec_check((rule.body[1], rule.body[0]), frozenset()).ok


def test_exists_safe_order_finds_reordering():
    rule = parse_rule("p(X, Y) <- Y = X + 1, X > 0, q(X).")
    order, reasons = exists_safe_order(rule.body, frozenset())
    assert order is not None and not reasons
    assert [rule.body[i].predicate for i in order] == ["q", "=", ">"] or \
           [rule.body[i].predicate for i in order] == ["q", ">", "="]


def test_exists_safe_order_detects_hopeless():
    """The paper's Section 8.3 example: no permutation is safe."""
    rule = parse_rule("answer(X, Y, Z) <- p(X, Y, Z), Y = 2 ** X.")
    # p is an infinite relation here: model it with an oracle saying so
    oracle = lambda literal, bound: literal.predicate != "p" or bool(bound & literal.variables)
    order, reasons = exists_safe_order(rule.body, frozenset(), oracle)
    assert order is None
    assert reasons


def test_greedy_completeness_matches_enumeration():
    """Greedy EC saturation finds an order iff some permutation is EC."""
    import itertools

    bodies = [
        parse_rule("p(X, Y) <- Y = X + 1, X = Y - 1.").body,   # hopeless
        parse_rule("p(X, Y) <- q(X), Y = X + 1.").body,         # fine
        parse_rule("p(X) <- X > 0, q(X).").body,                # needs reorder
    ]
    for body in bodies:
        greedy, __ = exists_safe_order(body, frozenset())
        brute = any(
            ec_check([body[i] for i in perm], frozenset()).ok
            for perm in itertools.permutations(range(len(body)))
        )
        assert (greedy is not None) == brute


# -- well-founded orders ---------------------------------------------------------


def adorned_of(source, pred, arity, binding, cperm=None):
    program = parse_program(source)
    clique = DependencyGraph(program).recursive_cliques()[0]
    return adorn_clique(
        clique, PredicateRef(pred, arity), BindingPattern(binding), cperm,
        derived_predicates=program.derived_predicates,
    )


def test_datalog_clique_always_well_founded():
    adorned = adorned_of(
        "t(X, Y) <- e(X, Y). t(X, Y) <- e(X, Z), t(Z, Y).", "t", 2, "ff"
    )
    report = well_founded_order(adorned)
    assert report.ok
    assert "finite" in report.argument


def test_list_traversal_structural_descent():
    source = """
    member(X, L) <- L = cons(X, T).
    member(X, L) <- L = cons(H, T), member(X, T).
    """
    adorned = adorned_of(source, "member", 2, "fb")
    assert well_founded_order(adorned).ok


def test_value_inventing_free_clique_rejected():
    source = """
    nat(X) <- zero(X).
    nat(Y) <- nat(X), Y = X + 1.
    """
    adorned = adorned_of(source, "nat", 1, "f")
    report = well_founded_order(adorned)
    assert not report.ok


def test_integer_descent_with_guard():
    source = """
    fact(N, F) <- N = 0, F = 1.
    fact(N, F) <- N > 0, M = N - 1, fact(M, G), F = N * G.
    """
    adorned = adorned_of(source, "fact", 2, "bf")
    assert well_founded_order(adorned).ok


def test_integer_ascent_without_guard_rejected():
    source = """
    count(N, F) <- N = 0, F = 1.
    count(N, F) <- M = N + 1, count(M, G), F = G.
    """
    adorned = adorned_of(source, "count", 2, "bf")
    assert not well_founded_order(adorned).ok
