"""Shared fixtures: canonical programs, databases, and instances."""

from __future__ import annotations

import pytest

from repro import KnowledgeBase
from repro.datalog import parse_program
from repro.storage import Database
from repro.workloads import same_generation_instance

#: The paper's same-generation clique (Section 7.3).
SG_RULES = """
sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
sg(X, Y) <- flat(X, Y).
"""

ANC_RULES = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, Z), anc(Z, Y).
"""


@pytest.fixture
def sg_program():
    return parse_program(SG_RULES)


@pytest.fixture
def anc_program():
    return parse_program(ANC_RULES)


@pytest.fixture
def sg_db():
    """A two-level binary sg tree."""
    db = Database()
    same_generation_instance(db, fanout=2, depth=3)
    return db


@pytest.fixture
def family_kb():
    """A small ancestor knowledge base used across integration tests."""
    kb = KnowledgeBase()
    kb.rules(ANC_RULES)
    kb.facts(
        "par",
        [
            ("abe", "homer"),
            ("abe", "herb"),
            ("homer", "bart"),
            ("homer", "lisa"),
            ("homer", "maggie"),
            ("jackie", "marge"),
            ("marge", "bart"),
            ("marge", "lisa"),
        ],
    )
    return kb
