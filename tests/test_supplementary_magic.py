"""Supplementary magic sets: structure and semantic equivalence to magic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import (
    BindingPattern,
    CPermutation,
    DependencyGraph,
    PredicateRef,
    adorn_clique,
    magic_rewrite,
    parse_program,
)
from repro.datalog.magic import supplementary_magic_rewrite
from repro.datalog.terms import Constant
from repro.engine.fixpoint import evaluate_program
from repro.storage import Database
from repro.workloads import random_dag, same_generation_instance

SG = """
sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
sg(X, Y) <- flat(X, Y).
"""

ANC = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, Z), anc(Z, Y).
"""


def adorned(source, pred, binding="bf"):
    program = parse_program(source)
    clique = DependencyGraph(program).recursive_cliques()[0]
    return adorn_clique(
        clique, PredicateRef(pred, 2), BindingPattern(binding), CPermutation.greedy_sip()
    )


def test_structure_has_supplementary_predicates():
    sup = supplementary_magic_rewrite(adorned(SG, "sg"))
    names = {r.head.predicate for r in sup.program}
    assert any(n.startswith("sup0_") for n in names)
    assert sup.seed_predicate == "m_sg.bf"
    assert sup.answer_predicate == "sg.bf"


def test_prefix_never_repeated():
    """Each non-magic body segment appears in exactly one rule — the whole
    point of the supplementary variant."""
    sup = supplementary_magic_rewrite(adorned(SG, "sg"))
    # the up literal feeding sg.bf appears once (in the sup rule), not in
    # both a magic rule and the modified rule as basic magic has it.
    basic = magic_rewrite(adorned(SG, "sg"))
    count_in = lambda prog, pred: sum(
        1 for rule in prog for l in rule.body if l.predicate == pred
    )
    assert count_in(basic.program, "up") > count_in(sup.program, "up")


def test_exit_rules_unchanged():
    sup = supplementary_magic_rewrite(adorned(SG, "sg"))
    exit_rules = [r for r in sup.program if any(l.predicate == "flat" for l in r.body)]
    for rule in exit_rules:
        assert rule.body[0].predicate.startswith("m_")


def test_equivalent_to_basic_magic_on_sg():
    db = Database()
    same_generation_instance(db, fanout=2, depth=3)
    ad = adorned(SG, "sg")
    basic = magic_rewrite(ad)
    sup = supplementary_magic_rewrite(ad)
    nodes = sorted({row[0] for row in db.relation("up")}, key=str)
    for node in nodes:
        seeds_b = {basic.seed_predicate: {(node,)}}
        seeds_s = {sup.seed_predicate: {(node,)}}
        got_b = evaluate_program(db, basic.program, seeds=seeds_b)[basic.answer_predicate]
        got_s = evaluate_program(db, sup.program, seeds=seeds_s)[sup.answer_predicate]
        assert got_b == got_s


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_equivalent_on_random_dags(seed):
    db = Database()
    names = random_dag(db, "par", nodes=12, edges=20, seed=seed)
    ad = adorned(ANC, "anc")
    basic = magic_rewrite(ad)
    sup = supplementary_magic_rewrite(ad)
    node = Constant(names[0])
    got_b = evaluate_program(db, basic.program, seeds={basic.seed_predicate: {(node,)}})
    got_s = evaluate_program(db, sup.program, seeds={sup.seed_predicate: {(node,)}})
    assert got_b[basic.answer_predicate] == got_s[sup.answer_predicate]


NONLINEAR_STRUCT = """
sg(X, Y) <- up(X, pair(X1, X2)), sg(X1, Z1), sg(X2, Z2), glue(Z1, Z2, Y).
sg(X, Y) <- flat(X, Y).
"""

STRUCT_FACTS = """
up(r0, pair(a, b)).
up(a, pair(b, c)).
flat(b, m).
flat(c, n).
glue(m, n, r1).
glue(r1, m, r2).
"""


def struct_db():
    from repro.storage.loader import load_facts_text

    db = Database()
    load_facts_text(db, STRUCT_FACTS)
    return db


def test_supplementary_struct_sip_prefix_structure():
    """The SIP prefix of the second clique literal binds X1/X2 only by
    decomposing pair(X1, X2) — the pre_vars projection must carry the
    struct-extracted variables through the supplementary predicates."""
    ad = adorned(NONLINEAR_STRUCT, "sg")
    sup = supplementary_magic_rewrite(ad)
    sup_heads = [r.head for r in sup.program if r.head.predicate.startswith("sup1_")]
    assert sup_heads, "second clique literal should produce a sup1_ state"
    carried = {v.name.split("@")[0] for head in sup_heads for v in head.variables}
    assert carried & {"X1", "X2", "Z1", "Z2"}


def test_supplementary_equals_basic_on_nonlinear_struct_sip():
    """Multi-clique-literal rule whose SIP prefix binds structured terms:
    basic and supplementary magic must agree with the filtered bottom-up
    extension for every seed."""
    db = struct_db()
    ad = adorned(NONLINEAR_STRUCT, "sg")
    basic = magic_rewrite(ad)
    sup = supplementary_magic_rewrite(ad)
    reference = evaluate_program(db, parse_program(NONLINEAR_STRUCT))["sg"]
    assert reference  # the instance actually derives through the struct rule
    for node in ("r0", "a", "b", "zzz"):
        seed = Constant(node)
        got_b = evaluate_program(
            db, basic.program, seeds={basic.seed_predicate: {(seed,)}}
        )[basic.answer_predicate]
        got_s = evaluate_program(
            db, sup.program, seeds={sup.seed_predicate: {(seed,)}}
        )[sup.answer_predicate]
        # magic answers cover every *asked* subquery, so filter to the
        # seed binding for the equality and check soundness overall
        expected = {r for r in reference if r[0] == seed}
        assert {r for r in got_b if r[0] == seed} == expected
        assert {r for r in got_s if r[0] == seed} == expected
        assert got_b <= reference and got_s <= reference
        assert got_b == got_s


def test_optimizer_can_choose_supplementary():
    from repro import KnowledgeBase, OptimizerConfig

    db = Database()
    levels = same_generation_instance(db, fanout=2, depth=3)
    kb = KnowledgeBase(OptimizerConfig(recursive_methods=("supplementary",)))
    kb.rules(SG)
    for name in ("up", "dn", "flat"):
        kb.facts(name, [tuple(f.value for f in row) for row in db.relation(name)])
    leaf = levels[-1][0]
    compiled = kb.compile("sg($X, Y)?")
    cc = compiled.plan.children[0].steps[0].child
    assert cc.method == "supplementary"
    answers = kb.ask("sg($X, Y)?", X=leaf)
    assert len(answers) > 0
