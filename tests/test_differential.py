"""The differential-testing harness: oracle, generator, shrinker, corpus.

The harness itself found three engine bugs (unsound tabled negation,
table poisoning on abort, the unsafe-rule substitution cycle); these
tests keep it able to do so — the oracle still agrees on generated
programs, the shrinker still minimizes, and every corpus reproducer
still replays clean.
"""

import json
from pathlib import Path

import pytest

from repro.engine.topdown import TopDownEngine
from repro.testing import (
    Case,
    DifferentialOracle,
    MetamorphicChecker,
    OracleError,
    case_from_dict,
    case_to_dict,
    shrink_case,
    strategy_names,
    to_corpus_dict,
    to_pytest_source,
)
from repro.workloads import DIFFERENTIAL_FEATURES, generate_differential_program

CORPUS = sorted(Path(__file__).parent.glob("repro_corpus/*.json"))


# ------------------------------------------------------------------ oracle


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_oracle_agrees_on_generated_programs(seed):
    oracle = DifferentialOracle()
    sample = generate_differential_program(seed)
    for query in sample.queries:
        case = Case.make(sample.rules, sample.facts, query)
        assert oracle.check(case) == []


def test_oracle_covers_every_strategy():
    names = strategy_names()
    assert "fixpoint-interpreted" in names
    assert "fixpoint-compiled" in names
    assert "sld-tabled" in names
    assert "magic-basic" in names
    assert "magic-supplementary" in names
    # one kb runner per optimizer search strategy
    assert {n for n in names if n.startswith("kb-")} >= {
        "kb-exhaustive", "kb-dp", "kb-kbz", "kb-annealing", "kb-textual",
    }


def test_oracle_outcomes_report_skips():
    # magic rewrites skip non-recursive query predicates rather than fake
    # an answer; the sweep counts those skips instead of hiding them
    case = Case.make("q(X) <- b(X).", {"b": [("d0",)]}, "q(X)?")
    oracle = DifferentialOracle()
    statuses = {o.strategy: o.status for o in oracle.outcomes(case)}
    assert statuses["fixpoint-interpreted"] == "ok"
    assert statuses["magic-basic"] == "skip"
    assert statuses["magic-supplementary"] == "skip"


def test_oracle_raises_when_reference_cannot_run():
    case = Case.make("q(X) <- b(X).", {"b": [("d0",)]}, "missing(X)?")
    with pytest.raises(OracleError):
        DifferentialOracle().outcomes(case)


def test_case_round_trips_through_corpus_dict():
    case = Case.make("q(X) <- b(X).", {"b": [("d0",), ("d1",)]}, "q(X)?")
    assert case_from_dict(case_to_dict(case)) == case


# --------------------------------------------------------------- generator


def test_generator_is_deterministic_per_seed():
    first = generate_differential_program(11)
    second = generate_differential_program(11)
    assert first.rules == second.rules
    assert first.facts == second.facts
    assert first.queries == second.queries


def test_generator_features_cover_the_grammar():
    sample = generate_differential_program(
        3, features=frozenset(DIFFERENTIAL_FEATURES)
    )
    assert "~" in sample.rules, "stratified negation missing"
    assert "pack(" in sample.rules, "functor terms missing"
    assert "z0" in sample.rules, "zero-ary predicate missing"
    assert "!=" in sample.rules or "<" in sample.rules, "comparison missing"
    assert "p1" in sample.rules, "second clique missing"
    assert any(q.endswith("(X, Y)?") for q in sample.queries), "all-free query"
    assert any("(d" in q for q in sample.queries), "bound-argument query"


# ---------------------------------------------------------------- shrinker


def test_shrinker_minimizes_against_plain_predicate():
    # no engines involved: predicate wants one specific fact row and at
    # least one rule mentioning q — everything else must be stripped
    case = Case.make(
        "q(X) <- b(X).\nr(X) <- c(X).\nq(X) <- c(X).",
        {"b": [("d0",), ("d1",), ("d2",)], "c": [("d3",), ("d4",)]},
        "q(X)?",
    )

    def predicate(candidate):
        return "q" in candidate.rules and ("d1",) in candidate.facts.get("b", ())

    shrunk = shrink_case(case, predicate)
    assert shrunk.facts["b"] == (("d1",),)
    assert "c" not in shrunk.facts
    assert len(shrunk.rules.splitlines()) == 1


def test_shrinker_rejects_a_passing_case():
    case = Case.make("q(X) <- b(X).", {"b": [("d0",)]}, "q(X)?")
    with pytest.raises(ValueError):
        shrink_case(case, lambda candidate: False)


def test_shrinker_bounds_hanging_candidates():
    # a predicate that stalls on any candidate smaller than the original
    # must not stall the shrink run: the cap discards the candidate
    case = Case.make(
        "q(X) <- b(X).", {"b": [("d0",), ("d1",)]}, "q(X)?"
    )
    original_size = len(case.facts["b"])

    def predicate(candidate):
        if len(candidate.facts.get("b", ())) < original_size:
            while True:  # simulated engine hang
                pass
        return True

    shrunk = shrink_case(case, predicate, candidate_timeout=0.2)
    assert shrunk.facts["b"] == case.facts["b"]


def test_shrinker_minimizes_a_real_engine_disagreement(monkeypatch):
    """End-to-end teeth: restore the pre-fix unsound negation and check
    the harness still catches it and shrinks to a well-formed case."""

    def unsound_negation_holds(self, goal, depth):
        return next(iter(self._solve_literal(goal, {}, depth)), None) is None

    monkeypatch.setattr(
        TopDownEngine, "_negation_holds", unsound_negation_holds
    )
    sample = generate_differential_program(7)
    case = Case.make(sample.rules, sample.facts, "top(X, Y)?")
    oracle = DifferentialOracle()
    disagreements = oracle.check(case)
    assert any(d.strategy == "sld-tabled" for d in disagreements)

    shrunk = shrink_case(case, oracle.failure_predicate(case))
    assert oracle.still_failing(shrunk)
    assert len(shrunk.rules.splitlines()) <= 5
    assert sum(len(rows) for rows in shrunk.facts.values()) <= 8
    # the reproducer must keep the ingredients of the bug: recursion
    # under a negation in top's derivation
    assert "~" in shrunk.rules
    source = to_pytest_source(shrunk, "negation_teeth", "note")
    assert "DifferentialOracle().check(case) == []" in source


# ------------------------------------------------------------------ corpus


def test_corpus_is_present():
    assert CORPUS, "tests/repro_corpus lost its reproducers"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_reproducer_replays_clean(path):
    payload = json.loads(path.read_text())
    case = case_from_dict(payload)
    assert DifferentialOracle().check(case) == [], payload.get("note", "")


def test_corpus_dict_carries_provenance():
    case = Case.make("q(X) <- b(X).", {"b": [("d0",)]}, "q(X)?")
    payload = to_corpus_dict(case, "why", seed=3, strategies=("sld-tabled",))
    assert payload["note"] == "why"
    assert payload["seed"] == 3
    assert payload["strategies"] == ["sld-tabled"]


# ------------------------------------------------------------- metamorphic


def test_metamorphic_checks_pass_on_generated_program():
    sample = generate_differential_program(0)
    case = Case.make(sample.rules, sample.facts, sample.queries[0])
    assert MetamorphicChecker().check(case) == []
