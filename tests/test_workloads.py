"""Workload generator tests: shapes, determinism, dataset invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.literals import variables_of_literals
from repro.storage import Database, collect_statistics
from repro.workloads import (
    SHAPES,
    balanced_tree,
    bill_of_materials,
    chain,
    generate_batch,
    generate_conjunctive,
    paper_database,
    paper_program,
    random_dag,
    random_graph,
    same_generation_instance,
)


@pytest.mark.parametrize("shape", SHAPES)
def test_generate_shapes(shape):
    w = generate_conjunctive(5, shape, seed=1)
    assert w.size == 5
    for literal in w.body:
        assert w.stats.stats_for(literal.predicate) is not None


def test_generator_deterministic():
    a = generate_conjunctive(6, "random", seed=42)
    b = generate_conjunctive(6, "random", seed=42)
    assert a.body == b.body
    assert a.stats.stats_for("r0").cardinality == b.stats.stats_for("r0").cardinality


def test_chain_shape_is_connected():
    w = generate_conjunctive(4, "chain", seed=0)
    for left, right in zip(w.body, w.body[1:]):
        assert left.variables & right.variables


def test_star_shares_hub():
    w = generate_conjunctive(4, "star", seed=0)
    hub = w.body[0].variables & w.body[1].variables
    assert all(hub <= literal.variables for literal in w.body)


def test_random_shape_connected():
    w = generate_conjunctive(6, "random", seed=3)
    # union-find over shared variables
    groups = []
    for literal in w.body:
        merged = [g for g in groups if g & literal.variables]
        fresh = set(literal.variables)
        for g in merged:
            fresh |= g
            groups.remove(g)
        groups.append(fresh)
    assert len(groups) == 1


def test_generate_batch_cycles_shapes():
    batch = generate_batch(6, 4, shapes=("chain", "star"), seed=0)
    assert [w.shape for w in batch] == ["chain", "star"] * 3


def test_chain_dataset():
    db = Database()
    nodes = chain(db, "e", 10)
    assert len(nodes) == 11
    assert len(db.relation("e")) == 10
    assert collect_statistics(db.relation("e")).acyclic is True


def test_balanced_tree_counts():
    db = Database()
    levels = balanced_tree(db, fanout=3, depth=2)
    assert [len(l) for l in levels] == [1, 3, 9]
    assert len(db.relation("up")) == 12


def test_same_generation_instance_symmetry():
    db = Database()
    levels = same_generation_instance(db, fanout=2, depth=3)
    assert len(db.relation("up")) == len(db.relation("dn"))
    assert len(db.relation("flat")) == 1
    # up and dn are inverses
    up = {(a.value, b.value) for a, b in db.relation("up")}
    dn = {(a.value, b.value) for a, b in db.relation("dn")}
    assert dn == {(b, a) for a, b in up}


def test_random_dag_is_acyclic():
    db = Database()
    random_dag(db, "e", nodes=20, edges=40, seed=5)
    assert collect_statistics(db.relation("e")).acyclic is True


def test_random_graph_allows_cycles():
    db = Database()
    random_graph(db, "e", nodes=6, edges=25, seed=5)
    # with that density a cycle is (essentially) guaranteed
    assert collect_statistics(db.relation("e")).acyclic is False


def test_bill_of_materials_structure():
    db = Database()
    tops = bill_of_materials(db, assemblies=10, depth=3, fanout=2, seed=1)
    assert tops
    assert "component" in db and "basic_part" in db
    component = db.relation("component")
    assert component.arity == 3


def test_paper_rulebase_parses_and_runs():
    program = paper_program()
    assert len(program) == 6
    db = paper_database(seed=1, scale=20)
    from repro.engine import evaluate_program

    result = evaluate_program(db, program)
    assert result.iterations >= 1
    # p2 is the recursive predicate
    assert "p2" in result.relations


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 8), st.integers(0, 500))
def test_generated_bodies_have_consistent_arity(n, seed):
    w = generate_conjunctive(n, "random", seed=seed)
    assert len(w.body) == n
    assert variables_of_literals(w.body)
