"""End-to-end integration: KnowledgeBase -> Optimizer -> Interpreter.

The key invariant throughout: whatever plan the optimizer picks, execution
returns exactly the tuples of the reference fixpoint evaluation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import KnowledgeBase, OptimizerConfig, UnsafeQueryError
from repro.datalog import parse_program
from repro.engine import Profiler, evaluate_program
from repro.errors import ExecutionError, KnowledgeBaseError
from repro.storage import Database
from repro.workloads import random_dag, same_generation_instance

SG = """
sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
sg(X, Y) <- flat(X, Y).
"""


def test_quickstart_roundtrip(family_kb):
    answers = family_kb.ask("anc(abe, Y)?")
    assert answers.to_python() == [("bart",), ("herb",), ("homer",), ("lisa",), ("maggie",)]


def test_query_form_reuse(family_kb):
    form_answers = family_kb.ask("anc($X, Y)?", X="marge")
    assert form_answers.to_python() == [("bart",), ("lisa",)]
    again = family_kb.ask("anc($X, Y)?", X="abe")
    assert ("homer",) in again.to_python()
    # compiled once
    assert len(family_kb._compiled) == 1


def test_reverse_binding(family_kb):
    answers = family_kb.ask("anc(X, bart)?")
    assert answers.to_python() == [("abe",), ("homer",), ("jackie",), ("marge",)]


def test_boolean_query(family_kb):
    assert len(family_kb.ask("anc(abe, bart)?")) == 1
    assert len(family_kb.ask("anc(bart, abe)?")) == 0


def test_missing_binding_value(family_kb):
    with pytest.raises(ExecutionError):
        family_kb.ask("anc($X, Y)?")
    with pytest.raises(ExecutionError):
        family_kb.ask("anc($X, Y)?", X="abe", Z="oops")


def test_fact_vs_rule_name_clash():
    kb = KnowledgeBase()
    kb.facts("p", [("a", "b")])
    with pytest.raises(KnowledgeBaseError):
        kb.rules("p(X, Y) <- q(X, Y).")
    kb2 = KnowledgeBase()
    kb2.rules("p(X, Y) <- q(X, Y).")
    with pytest.raises(KnowledgeBaseError):
        kb2.facts("p", [("a", "b")])


def test_facts_text_complex_terms():
    kb = KnowledgeBase()
    kb.rules("wheel_of(B, W) <- owns(P, bike(W, B)).")
    kb.facts_text("owns(joe, bike(front, red)). owns(amy, bike(rear, blue)).")
    assert kb.ask("wheel_of(red, W)?").to_python() == [("front",)]


def test_explain_smoke(family_kb):
    text = family_kb.explain("anc($X, Y)?")
    assert "CC anc/2" in text
    assert "cost=" in text


def test_comparisons_and_arithmetic_end_to_end():
    kb = KnowledgeBase()
    kb.rules("grown(P, A2) <- person(P, A), A >= 18, A2 = A + 1.")
    kb.facts("person", [("kid", 10), ("adult", 30)])
    assert kb.ask("grown(P, A2)?").to_python() == [("adult", 31)]


def test_negation_end_to_end():
    kb = KnowledgeBase()
    kb.rules(
        """
        reach(X, Y) <- e(X, Y).
        reach(X, Y) <- e(X, Z), reach(Z, Y).
        stuck(X) <- node(X), ~moves(X).
        moves(X) <- e(X, Y).
        """
    )
    kb.facts("e", [("a", "b"), ("b", "c")])
    kb.facts("node", [("a",), ("b",), ("c",)])
    assert kb.ask("stuck(X)?").to_python() == [("c",)]


def test_unsafe_query_raises(capsys):
    kb = KnowledgeBase()
    kb.rules("p(X, Y, Z) <- X = 3, Z = X + Y.")
    kb.rules("answer(X, Y, Z) <- p(X, Y, Z), Y = 2 ** X.")
    with pytest.raises(UnsafeQueryError):
        kb.ask("answer(X, Y, Z)?")


def test_all_recursive_methods_agree_on_sg():
    db_template = Database()
    same_generation_instance(db_template, fanout=2, depth=3)
    reference = None
    for methods in (("seminaive",), ("magic",), ("counting",), ("naive",)):
        kb = KnowledgeBase(OptimizerConfig(recursive_methods=methods))
        kb.rules(SG)
        for name in ("up", "dn", "flat"):
            kb.facts(name, [tuple(f.value for f in row) for row in db_template.relation(name)])
        answers = kb.ask("sg($X, Y)?", X="t3_7")
        if reference is None:
            reference = answers.to_python()
            assert reference  # non-empty: the instance guarantees partners
        else:
            assert answers.to_python() == reference, f"{methods} disagrees"


def test_execution_matches_reference_fixpoint(family_kb):
    """Optimized execution == plain semi-naive reference, per query form."""
    reference = evaluate_program(family_kb.db, family_kb.program)
    expected = {
        tuple(f.value for f in row) for row in reference["anc"]
    }
    got = set(family_kb.ask("anc(X, Y)?").to_python())
    assert got == expected


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_bound_queries_match_reference_on_random_dags(seed):
    kb = KnowledgeBase()
    kb.rules("t(X, Y) <- e(X, Y). t(X, Y) <- e(X, Z), t(Z, Y).")
    db = Database()
    names = random_dag(db, "e", nodes=10, edges=18, seed=seed)
    rows = [tuple(f.value for f in r) for r in db.relation("e")]
    if not rows:
        return
    kb.facts("e", rows)
    reference = evaluate_program(kb.db, kb.program)
    expected = {t for t in {tuple(f.value for f in r) for r in reference["t"]} if t[0] == names[0]}
    got = {(names[0], y) for (y,) in kb.ask("t($X, Y)?", X=names[0]).to_python()}
    assert got == expected


def test_profiler_passed_through(family_kb):
    profiler = Profiler()
    family_kb.ask("anc(abe, Y)?", profiler=profiler)
    assert profiler.total_work > 0


def test_kb_invalidation_on_new_facts(family_kb):
    before = family_kb.ask("anc(abe, Y)?").to_python()
    family_kb.facts("par", [("bart", "babybart")])
    after = family_kb.ask("anc(abe, Y)?").to_python()
    assert ("babybart",) in after and ("babybart",) not in before


def test_repr_smoke(family_kb):
    family_kb.compile("anc(X, Y)?")
    assert "KnowledgeBase" in repr(family_kb)
