"""EXPLAIN ANALYZE and fact retraction."""

import pytest

from repro import KnowledgeBase
from repro.datalog.terms import Constant
from repro.storage import Relation


def family():
    kb = KnowledgeBase()
    kb.rules(
        """
        anc(X, Y) <- par(X, Y).
        anc(X, Y) <- par(X, Z), anc(Z, Y).
        """
    )
    kb.facts("par", [("abe", "homer"), ("homer", "bart"), ("homer", "lisa")])
    return kb


def test_analyze_contains_measured_stats():
    kb = family()
    text = kb.analyze("anc($X, Y)?", X="abe")
    assert "measured: rows=" in text
    assert "answers: 3" in text
    assert "work:" in text


def test_analyze_estimates_and_measured_side_by_side():
    kb = family()
    text = kb.analyze("anc(abe, Y)?")
    # each CC line shows both the estimate and the measurement
    cc_line = next(l for l in text.splitlines() if l.strip().startswith("CC"))
    assert "cost=" in cc_line and "measured" in cc_line


def test_analyze_cache_hits_reported():
    kb = KnowledgeBase()
    kb.rules(
        """
        view(X, Y) <- e(X, Y).
        twice(X, Z) <- view(X, Y), view(Y, Z).
        """
    )
    kb.facts("e", [("a", "b"), ("b", "c")])
    text = kb.analyze("twice(X, Z)?")
    assert "cached" in text or text.count("measured") >= 2


def test_relation_remove_updates_indexes():
    r = Relation("e", 2)
    r.ensure_index([0])
    r.insert_values(("a", "b"))
    r.insert_values(("a", "c"))
    assert r.remove_values(("a", "b"))
    assert not r.remove_values(("a", "b"))  # already gone
    assert set(r.lookup([0], (Constant("a"),))) == {(Constant("a"), Constant("c"))}


def test_retract_changes_answers():
    kb = family()
    assert ("lisa",) in kb.ask("anc(abe, Y)?").to_python()
    assert kb.retract("par", [("homer", "lisa")]) == 1
    assert ("lisa",) not in kb.ask("anc(abe, Y)?").to_python()


def test_retract_missing_tuple_is_zero():
    kb = family()
    assert kb.retract("par", [("nobody", "noone")]) == 0


def test_retract_refreshes_statistics():
    kb = family()
    before = kb.db.stats_for("par").cardinality
    kb.retract("par", [("homer", "lisa")])
    after = kb.db.stats_for("par").cardinality
    assert after == before - 1


def test_retract_unknown_relation_raises():
    from repro.errors import SchemaError

    kb = family()
    with pytest.raises(SchemaError):
        kb.retract("mystery", [("a", "b")])


def test_repl_analyze_command(tmp_path):
    import io

    from repro.cli import main

    path = tmp_path / "f.ldl"
    path.write_text("p(X) <- q(X).\nq(a).\n")
    out = io.StringIO()
    main([str(path), "-i"], stdin=io.StringIO(":analyze p(X)?\n:quit\n"), stdout=out)
    assert "measured" in out.getvalue()
