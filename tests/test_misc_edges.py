"""Edge cases across small modules: errors, printer, profiler, plan helpers,
interpreter guards, optimizer config validation, greedy SIP."""

import math

import pytest

from repro import KnowledgeBase, Optimizer, OptimizerConfig
from repro.cost.model import Estimate
from repro.datalog import (
    BindingPattern,
    CPermutation,
    parse_program,
    parse_query,
    parse_rule,
)
from repro.datalog.adorn import greedy_sip_permutation
from repro.engine import Interpreter, Profiler
from repro.errors import (
    ExecutionError,
    OptimizationError,
    ParseError,
    UnsafeQueryError,
)
from repro.plans import count_nodes, explain, plan_nodes
from repro.storage.statistics import DeclaredStatistics


# -- errors ------------------------------------------------------------------


def test_parse_error_location_formatting():
    err = ParseError("boom", line=3, column=7)
    assert "line 3" in str(err) and "column 7" in str(err)
    assert "line" not in str(ParseError("plain"))


def test_unsafe_query_error_lists_reasons():
    err = UnsafeQueryError("no way", reasons=["goal a stuck", "goal b stuck"])
    text = str(err)
    assert "goal a stuck" in text and "goal b stuck" in text


# -- profiler -----------------------------------------------------------------


def test_profiler_counters_and_labels():
    p = Profiler()
    p.bump_examined(3)
    p.bump_produced(2)
    p.bump_probes()
    p.bump_materialized(4)
    p.bump_iterations(5)
    p.charge("join:up", 7)
    assert p.total_work == 3 + 2 + 4
    snap = p.snapshot()
    assert snap["iterations"] == 5
    assert p.by_label == {"join:up": 7}
    assert "examined=3" in repr(p)


# -- plan helpers -------------------------------------------------------------


def family_plan():
    kb = KnowledgeBase()
    kb.rules("anc(X, Y) <- par(X, Y). anc(X, Y) <- par(X, Z), anc(Z, Y).")
    kb.facts("par", [("a", "b")])
    return kb.compile("anc($X, Y)?").plan


def test_plan_nodes_walk_and_count():
    plan = family_plan()
    nodes = plan_nodes(plan)
    assert nodes[0] is plan
    assert count_nodes(plan) == len(nodes) >= 3


def test_node_describe_methods():
    plan = family_plan()
    assert plan.describe().startswith("OR")
    wrapper = plan.children[0]
    assert wrapper.describe().startswith("AND")
    step = wrapper.steps[0]
    assert "anc" in step.describe()
    assert step.child.describe().startswith("CC")


def test_explain_renders_infinite_costs():
    from repro.datalog import PredicateRef
    from repro.plans.nodes import JoinNode, UnionNode

    rule = parse_rule("p(X) <- q(X).")
    node = UnionNode(
        PredicateRef("p", 1), BindingPattern("f"),
        (JoinNode(rule, BindingPattern("f"), (), Estimate.unsafe()),),
        Estimate.unsafe(),
    )
    assert "∞" in explain(node)


# -- interpreter guards ---------------------------------------------------------


def test_counting_node_requires_keys():
    from repro import OptimizerConfig

    kb = KnowledgeBase(OptimizerConfig(recursive_methods=("counting",)))
    kb.rules("anc(X, Y) <- par(X, Y). anc(X, Y) <- par(X, Z), anc(Z, Y).")
    kb.facts("par", [(f"n{i}", f"n{i+1}") for i in range(30)])
    compiled = kb.compile("anc($X, Y)?")
    cc = compiled.plan.children[0].steps[0].child
    assert cc.method == "counting"
    interpreter = Interpreter(kb.db)
    with pytest.raises(ExecutionError):
        interpreter.execute(cc, None)  # sideways method without bindings


def test_unknown_recursive_method_rejected():
    from repro.datalog import PredicateRef, Program
    from repro.plans.nodes import FixpointNode

    node = FixpointNode(
        ref=PredicateRef("t", 2), binding=BindingPattern("bf"),
        method="quantum", program=Program(()),
        answer_predicate="t", seed_predicate=None, seed_arity=0,
    )
    kb = KnowledgeBase()
    kb.facts("noop", [(0,)])
    with pytest.raises(ExecutionError):
        Interpreter(kb.db).execute(node, frozenset({()}))


# -- optimizer configuration -----------------------------------------------------


def test_unknown_strategy_rejected():
    with pytest.raises(OptimizationError):
        Optimizer(parse_program("p(X) <- q(X)."), DeclaredStatistics(),
                  OptimizerConfig(strategy="psychic"))


def test_large_body_switches_strategy():
    body = ", ".join(f"r{i}(A{i}, A{i+1})" for i in range(11))
    program = parse_program(f"big(A0, A11) <- {body}.")
    stats = DeclaredStatistics()
    for i in range(11):
        stats.declare(f"r{i}", 100, [10, 10])
    optimizer = Optimizer(program, stats, OptimizerConfig(strategy="dp"))
    compiled = optimizer.optimize(parse_query("big($X, Y)?"))
    assert compiled.safe
    # the n! / 2^n budgets would explode at n=11; the switch kept it sane
    assert optimizer.counters["order_evaluations"] < 5000


# -- greedy SIP ------------------------------------------------------------------


def test_greedy_sip_prefers_bound_literals():
    rule = parse_rule("sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).")
    assert greedy_sip_permutation(rule, BindingPattern("bf")) == (0, 1, 2)
    # bound on Y: dn first, then sg, then up
    assert greedy_sip_permutation(rule, BindingPattern("fb")) == (2, 1, 0)


def test_greedy_sip_places_comparisons_when_ec():
    rule = parse_rule("p(X, Y) <- Y = Z + 1, q(X, Z).")
    order = greedy_sip_permutation(rule, BindingPattern("bf"))
    assert order == (1, 0)  # q binds Z, then the equality is computable


def test_cpermutation_greedy_key_differs_from_identity():
    assert CPermutation.greedy_sip().key() != CPermutation.identity().key()


# -- KB odds and ends --------------------------------------------------------------


def test_kb_rule_object_api():
    kb = KnowledgeBase()
    kb.rule(parse_rule("p(X) <- q(X)."))
    kb.facts("q", [("a",)])
    assert kb.ask("p(X)?").to_python() == [("a",)]


def test_compile_accepts_query_form_object():
    kb = KnowledgeBase()
    kb.rules("p(X) <- q(X).")
    kb.facts("q", [("a",)])
    form = parse_query("p(X)?")
    compiled = kb.compile(form)
    assert compiled is kb.compile(form)  # cached


def test_zero_answer_query():
    kb = KnowledgeBase()
    kb.rules("p(X) <- q(X), X > 100.")
    kb.facts("q", [(1,), (2,)])
    answers = kb.ask("p(X)?")
    assert len(answers) == 0
    assert answers.to_python() == []


def test_queryanswers_to_dicts_and_first():
    kb = KnowledgeBase()
    kb.rules("p(X, Y) <- q(X, Y).")
    kb.facts("q", [("a", 1), ("b", 2)])
    answers = kb.ask("p(X, Y)?")
    assert answers.to_dicts() == [{"X": "a", "Y": 1}, {"X": "b", "Y": 2}]
    assert answers.first() == ("a", 1)
    empty = kb.ask("p(zzz, Y)?")
    assert empty.first() is None and empty.to_dicts() == []


def test_queryanswers_repr_and_iter():
    kb = KnowledgeBase()
    kb.rules("p(X) <- q(X).")
    kb.facts("q", [("b",), ("a",)])
    answers = kb.ask("p(X)?")
    assert "QueryAnswers" in repr(answers)
    ordered = [row for row in answers]
    assert ordered == sorted(ordered, key=lambda r: tuple(str(f) for f in r))
