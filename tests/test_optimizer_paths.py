"""Less-travelled optimizer paths: sampling, naive method, forced methods."""

import pytest

from repro import KnowledgeBase, Optimizer, OptimizerConfig
from repro.datalog import parse_program, parse_query
from repro.engine import evaluate_program
from repro.storage import Database
from repro.storage.statistics import DeclaredStatistics


def test_cpermutation_sampling_on_large_clique():
    """Two 4-literal recursive rules: (4!)^2 = 576 c-permutations exceeds
    the default 512 budget, so the seeded sampling path runs — and must
    still produce a correct plan."""
    source = """
    t(A, D) <- e1(A, B), e2(B, C), e3(C, D), base(A).
    t(A, D) <- e1(A, B), t(B, C), e2(C, X), e3(X, D).
    """
    kb = KnowledgeBase()
    kb.rules(source)
    kb.facts("base", [(f"n{i}",) for i in range(4)])
    kb.facts("e1", [(f"n{i}", f"m{i}") for i in range(4)])
    kb.facts("e2", [(f"m{i}", f"p{i}") for i in range(4)])
    kb.facts("e3", [(f"p{i}", f"q{i}") for i in range(4)])

    reference = evaluate_program(kb.db, kb.program)
    expected = {
        tuple(f.value for f in row) for row in reference["t"] if row[0].value == "n1"
    }
    got = {("n1", y) for (y,) in kb.ask("t($A, D)?", A="n1").to_python()}
    assert got == expected


def test_naive_method_executes():
    kb = KnowledgeBase(OptimizerConfig(recursive_methods=("naive",)))
    kb.rules("t(X, Y) <- e(X, Y). t(X, Y) <- e(X, Z), t(Z, Y).")
    kb.facts("e", [("a", "b"), ("b", "c")])
    compiled = kb.compile("t(X, Y)?")
    cc = compiled.plan.children[0].steps[0].child
    assert cc.method == "naive"
    assert kb.ask("t(X, Y)?").to_python() == [("a", "b"), ("a", "c"), ("b", "c")]


@pytest.mark.parametrize("method", ["nested_loop", "hash", "index", "merge"])
def test_forced_methods_execute(method):
    kb = KnowledgeBase(OptimizerConfig(strategy="textual", force_method=method))
    kb.rules("j(X, Z) <- l(X, Y), r(Y, Z).")
    kb.facts("l", [("a", 1), ("b", 2)])
    kb.facts("r", [(1, "x"), (2, "y")])
    assert kb.ask("j(X, Z)?").to_python() == [("a", "x"), ("b", "y")]


def test_annealing_strategy_full_pipeline():
    kb = KnowledgeBase(OptimizerConfig(strategy="annealing", seed=3))
    kb.rules("p(A, D) <- e1(A, B), e2(B, C), e3(C, D).")
    kb.facts("e1", [("a", 1)])
    kb.facts("e2", [(1, 2)])
    kb.facts("e3", [(2, "z")])
    assert kb.ask("p(A, D)?").to_python() == [("a", "z")]


def test_kbz_strategy_full_pipeline():
    kb = KnowledgeBase(OptimizerConfig(strategy="kbz"))
    kb.rules("p(A, D) <- e1(A, B), e2(B, C), e3(C, D).")
    kb.facts("e1", [("a", 1)])
    kb.facts("e2", [(1, 2)])
    kb.facts("e3", [(2, "z")])
    assert kb.ask("p(A, D)?").to_python() == [("a", "z")]


def test_diagnostics_attached_to_compiled_query():
    source = """
    t(X, Y) <- e(X, Y).
    t(X, Y) <- e(X, Z), t(Z, Y).
    """
    stats = DeclaredStatistics()
    stats.declare("e", 100, [50, 50], acyclic=None)  # unknown acyclicity
    optimizer = Optimizer(parse_program(source), stats)
    compiled = optimizer.optimize(parse_query("t($X, Y)?"))
    assert compiled.safe  # magic still available


def test_supplementary_and_magic_compete():
    """With both available the winner is whichever estimates cheaper,
    and either way execution is correct."""
    kb = KnowledgeBase(OptimizerConfig(recursive_methods=("magic", "supplementary")))
    kb.rules("t(X, Y) <- e(X, Y). t(X, Y) <- e(X, Z), t(Z, Y).")
    kb.facts("e", [(f"n{i}", f"n{i+1}") for i in range(20)])
    compiled = kb.compile("t($X, Y)?")
    cc = compiled.plan.children[0].steps[0].child
    assert cc.method in ("magic", "supplementary")
    assert len(kb.ask("t($X, Y)?", X="n0")) == 20
