"""Optimizer tests: NR-OPT and OPT behaviour (Figures 7-1 and 7-2)."""

import math

import pytest

from repro import Optimizer, OptimizerConfig, UnsafeQueryError
from repro.datalog import BindingPattern, PredicateRef, parse_program, parse_query
from repro.plans.nodes import FixpointNode, JoinNode, UnionNode
from repro.storage.statistics import DeclaredStatistics

NONREC = """
p(X, Y) <- q(X, Z), r(Z, Y).
q(X, Y) <- a(X, Y).
q(X, Y) <- b(X, Y).
r(X, Y) <- c(X, Y), X != Y.
"""


def nonrec_stats():
    stats = DeclaredStatistics()
    stats.declare("a", 1000, [100, 100])
    stats.declare("b", 50, [50, 50])
    stats.declare("c", 10_000, [1000, 1000])
    return stats


def make_optimizer(source, stats, **config):
    return Optimizer(parse_program(source), stats, OptimizerConfig(**config))


def test_nonrecursive_plan_shape():
    opt = make_optimizer(NONREC, nonrec_stats())
    compiled = opt.optimize(parse_query("p($X, Y)?"))
    assert compiled.safe
    root = compiled.plan
    assert isinstance(root, UnionNode)
    wrapper = root.children[0]
    assert isinstance(wrapper, JoinNode)
    p_node = wrapper.steps[0].child
    assert isinstance(p_node, UnionNode)
    assert p_node.ref == PredicateRef("p", 2)
    assert len(p_node.children) == 1  # one rule for p


def test_memoization_once_per_binding():
    """NR-OPT step 2: each OR subtree is optimized exactly once per binding."""
    opt = make_optimizer(NONREC, nonrec_stats())
    opt.optimize(parse_query("p($X, Y)?"))
    first = opt.counters["or_optimizations"]
    opt.optimize(parse_query("p($X, Y)?"))
    assert opt.counters["or_optimizations"] == first  # fully memoized


def test_distinct_bindings_get_distinct_plans():
    opt = make_optimizer(NONREC, nonrec_stats())
    bound = opt.optimize(parse_query("p($X, Y)?"))
    free = opt.optimize(parse_query("p(X, Y)?"))
    assert bound.est.cost <= free.est.cost


def test_query_on_base_predicate():
    opt = make_optimizer(NONREC, nonrec_stats())
    compiled = opt.optimize(parse_query("c($X, Y)?"))
    assert compiled.safe


def test_unknown_predicate_rejected():
    from repro.errors import OptimizationError

    opt = make_optimizer(NONREC, nonrec_stats())
    with pytest.raises(OptimizationError):
        opt.optimize(parse_query("mystery(X)?"))


def test_strategies_consistent_on_small_queries():
    compiled = {}
    for strategy in ("exhaustive", "dp"):
        opt = make_optimizer(NONREC, nonrec_stats(), strategy=strategy)
        compiled[strategy] = opt.optimize(parse_query("p($X, Y)?")).est.cost
    assert compiled["exhaustive"] == pytest.approx(compiled["dp"])


def test_textual_strategy_keeps_order():
    source = "p(X) <- big(X, Y), small(Y, Z)."
    stats = DeclaredStatistics()
    stats.declare("big", 100_000, [10, 10])
    stats.declare("small", 10, [10, 10])
    textual = make_optimizer(source, stats, strategy="textual")
    smart = make_optimizer(source, stats, strategy="dp")
    t = textual.optimize(parse_query("p(X)?"))
    s = smart.optimize(parse_query("p(X)?"))
    assert s.est.cost <= t.est.cost
    t_order = [step.literal.predicate for step in t.plan.children[0].steps[0].child.children[0].steps]
    assert t_order[0] == "big"  # textual order preserved


# -- recursive (OPT) -------------------------------------------------------------

SG = """
sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
sg(X, Y) <- flat(X, Y).
"""


def sg_stats(scale=10_000, fanout=2.0, acyclic=True):
    stats = DeclaredStatistics()
    stats.declare("up", scale, [scale / fanout, scale / fanout / fanout], acyclic=acyclic)
    stats.declare("dn", scale, [scale / fanout / fanout, scale / fanout], acyclic=acyclic)
    stats.declare("flat", scale / 10, [scale / 10, scale / 10])
    return stats


def test_bound_sg_uses_sideways_method():
    opt = make_optimizer(SG, sg_stats())
    compiled = opt.optimize(parse_query("sg($X, Y)?"))
    cc = compiled.plan.children[0].steps[0].child
    assert isinstance(cc, FixpointNode)
    assert cc.method in ("magic", "supplementary", "counting")
    assert cc.binding.code == "bf"


def test_free_sg_materializes():
    opt = make_optimizer(SG, sg_stats())
    compiled = opt.optimize(parse_query("sg(X, Y)?"))
    cc = compiled.plan.children[0].steps[0].child
    assert cc.method == "seminaive"


def test_counting_gated_on_acyclic_data():
    cyclic = make_optimizer(SG, sg_stats(acyclic=False))
    compiled = cyclic.optimize(parse_query("sg($X, Y)?"))
    cc = compiled.plan.children[0].steps[0].child
    assert cc.method in ("magic", "supplementary")  # counting needs acyclic data


def test_method_restriction_respected():
    opt = make_optimizer(SG, sg_stats(), recursive_methods=("seminaive",))
    compiled = opt.optimize(parse_query("sg($X, Y)?"))
    cc = compiled.plan.children[0].steps[0].child
    assert cc.method == "seminaive"


def test_only_used_bindings_optimized():
    """Section 7.2: "In order to avoid optimizing a subtree with a binding
    pattern that may never be used, a top-down algorithm can be devised"
    — our NR-OPT is that top-down algorithm: the bindings optimized for
    an arity-3 view are only those its call sites can induce, not the
    2^3 = 8 of the power set."""
    source = """
    top(X) <- s(X, W), view(X, W, Z).
    view(A, B, C) <- t(A, B), u(B, C).
    """
    stats = DeclaredStatistics()
    stats.declare("s", 100, [10, 10])
    stats.declare("t", 100, [10, 10])
    stats.declare("u", 100, [10, 10])
    opt = make_optimizer(source, stats)
    opt.optimize(parse_query("top($X)?"))
    view_entries = [k for k in opt._memo if k[0] == "view/3"]
    assert 0 < len(view_entries) < 8


def test_cc_memoized_per_binding():
    opt = make_optimizer(SG, sg_stats())
    opt.optimize(parse_query("sg($X, Y)?"))
    count = opt.counters["cc_optimizations"]
    opt.optimize(parse_query("sg($X, Y)?"))
    assert opt.counters["cc_optimizations"] == count


# -- safety integration (Section 8) ----------------------------------------------


def test_paper_unsafe_example_rejected():
    """Section 8.3: p(x,y,z) ? with y = 2**x over p(x,y,z) <- x=3, z=x+y is
    safe for no permutation — the optimizer must report it unsafe."""
    source = "p(X, Y, Z) <- X = 3, Z = X + Y.\nanswer(X, Y, Z) <- p(X, Y, Z), Y = 2 ** X."
    stats = DeclaredStatistics()
    opt = make_optimizer(source, stats)
    with pytest.raises(UnsafeQueryError) as excinfo:
        opt.optimize(parse_query("answer(X, Y, Z)?"))
    assert excinfo.value.reasons


def test_reordering_rescues_safety():
    """A textually unsafe rule is safe after reordering — the optimizer
    finds the safe permutation (unlike Prolog's fixed order)."""
    source = "p(X, Y) <- Y = X + 1, q(X)."
    stats = DeclaredStatistics()
    stats.declare("q", 100, [100])
    opt = make_optimizer(source, stats)
    compiled = opt.optimize(parse_query("p(X, Y)?"))
    assert compiled.safe
    steps = compiled.plan.children[0].steps[0].child.children[0].steps
    assert [s.literal.predicate for s in steps] == ["q", "="]


def test_unsafe_recursion_free_query():
    source = """
    nat(X) <- zero(X).
    nat(Y) <- nat(X), Y = X + 1.
    """
    stats = DeclaredStatistics()
    stats.declare("zero", 1, [1])
    opt = make_optimizer(source, stats)
    with pytest.raises(UnsafeQueryError):
        opt.optimize(parse_query("nat(X)?"))


def test_comparison_only_query_with_bound_vars():
    source = "check(X, Y) <- q(X), Y = X * 2, Y > 3."
    stats = DeclaredStatistics()
    stats.declare("q", 10, [10])
    opt = make_optimizer(source, stats)
    compiled = opt.optimize(parse_query("check($X, Y)?"))
    assert compiled.safe


def test_negation_plans():
    source = """
    reach(X, Y) <- e(X, Y).
    reach(X, Y) <- e(X, Z), reach(Z, Y).
    blocked(X, Y) <- node(X), node(Y), ~reach(X, Y).
    """
    stats = DeclaredStatistics()
    stats.declare("e", 100, [50, 50], acyclic=True)
    stats.declare("node", 50, [50])
    opt = make_optimizer(source, stats)
    compiled = opt.optimize(parse_query("blocked($X, Y)?"))
    assert compiled.safe
