"""Unit tests for term representation and helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.datalog.terms import (
    Constant,
    Struct,
    Variable,
    is_ground,
    list_elements,
    make_list,
    rename_term,
    term_depth,
    term_from_python,
    term_size,
    variables_of,
    walk_terms,
)


def test_constant_equality_and_hash():
    assert Constant(3) == Constant(3)
    assert Constant(3) != Constant("3")
    assert hash(Constant("a")) == hash(Constant("a"))


def test_variable_str_and_anonymous():
    assert str(Variable("X1")) == "X1"
    assert Variable("_anon1").is_anonymous
    assert not Variable("X").is_anonymous


def test_struct_str_prefix_and_infix():
    t = Struct("wheel", (Constant("front"),))
    assert str(t) == "wheel(front)"
    plus = Struct("+", (Variable("X"), Constant(1)))
    assert str(plus) == "(X + 1)"


def test_struct_tolerates_list_args():
    t = Struct("f", [Constant(1)])  # type: ignore[arg-type]
    assert t.args == (Constant(1),)
    assert t.arity == 1


def test_term_from_python_scalars():
    assert term_from_python(3) == Constant(3)
    assert term_from_python("a") == Constant("a")
    assert term_from_python(2.5) == Constant(2.5)
    assert term_from_python(True) == Constant(True)


def test_term_from_python_lists_become_cons():
    t = term_from_python([1, 2])
    assert t == Struct("cons", (Constant(1), Struct("cons", (Constant(2), Constant("nil")))))


def test_term_from_python_passthrough_and_error():
    v = Variable("X")
    assert term_from_python(v) is v
    with pytest.raises(TypeError):
        term_from_python(object())


def test_make_list_roundtrip():
    items = [Constant(1), Constant("b"), Struct("f", (Constant(2),))]
    assert list_elements(make_list(items)) == items


def test_list_elements_rejects_improper_list():
    assert list_elements(Struct("cons", (Constant(1), Variable("T")))) is None
    assert list_elements(Constant("nil")) == []


def test_variables_of_nested():
    t = Struct("f", (Variable("X"), Struct("g", (Variable("Y"), Constant(1)))))
    assert variables_of(t) == {Variable("X"), Variable("Y")}
    assert variables_of(Constant(1)) == frozenset()
    assert variables_of(Variable("Z")) == {Variable("Z")}


def test_is_ground():
    assert is_ground(Constant(1))
    assert not is_ground(Variable("X"))
    assert is_ground(Struct("f", (Constant(1),)))
    assert not is_ground(Struct("f", (Struct("g", (Variable("X"),)),)))


def test_term_depth_and_size():
    assert term_depth(Constant(1)) == 0
    assert term_size(Constant(1)) == 1
    nested = Struct("f", (Struct("g", (Constant(1),)), Constant(2)))
    assert term_depth(nested) == 2
    assert term_size(nested) == 4


def test_walk_terms_preorder():
    t = Struct("f", (Variable("X"), Constant(1)))
    walked = list(walk_terms(t))
    assert walked[0] == t
    assert Variable("X") in walked and Constant(1) in walked


def test_rename_term():
    mapping = {Variable("X"): Variable("Z")}
    t = Struct("f", (Variable("X"), Variable("Y")))
    assert rename_term(t, mapping) == Struct("f", (Variable("Z"), Variable("Y")))


# -- property tests -----------------------------------------------------------

ground_terms = st.recursive(
    st.one_of(
        st.integers(-100, 100).map(Constant),
        st.text("abcxyz", min_size=1, max_size=4).map(Constant),
    ),
    lambda children: st.builds(
        lambda args: Struct("f", tuple(args)), st.lists(children, min_size=1, max_size=3)
    ),
    max_leaves=8,
)


@given(ground_terms)
def test_ground_terms_have_no_variables(term):
    assert is_ground(term)
    assert variables_of(term) == frozenset()


@given(ground_terms)
def test_term_size_bounds_depth(term):
    assert term_depth(term) < term_size(term)


@given(st.lists(st.integers(-5, 5).map(Constant), max_size=6))
def test_make_list_elements_roundtrip(items):
    assert list_elements(make_list(items)) == items
