"""File-based loaders and remaining storage micro-gaps."""

import pytest

from repro.datalog.bindings import BindingPattern
from repro.datalog.terms import Constant
from repro.errors import SchemaError
from repro.storage import Database, Relation, load_facts_file, load_tsv_file
from repro.storage.loader import dump_facts_text


def test_load_facts_file(tmp_path):
    path = tmp_path / "facts.ldl"
    path.write_text("up(a, b).\nup(b, c).\nflat(c, c).\n")
    db = Database()
    assert load_facts_file(db, path) == 3
    assert len(db.relation("up")) == 2


def test_load_tsv_file(tmp_path):
    path = tmp_path / "data.tsv"
    path.write_text("a\t1\nb\t2\n# comment\n")
    db = Database()
    assert load_tsv_file(db, "m", path) == 2
    values = {tuple(f.value for f in row) for row in db.relation("m")}
    assert values == {("a", 1), ("b", 2)}


def test_load_tsv_custom_delimiter(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("a,1\nb,2\n")
    db = Database()
    assert load_tsv_file(db, "m", path, delimiter=",") == 2


def test_dump_facts_selected_names():
    db = Database()
    db.load("a", [(1,)])
    db.load("b", [(2,)])
    text = dump_facts_text(db, names=["a"])
    assert "a(1)." in text and "b(" not in text
    assert dump_facts_text(Database()) == ""


def test_relation_named_columns():
    r = Relation("emp", 2, columns=("name", "dept"))
    assert r.columns == ("name", "dept")
    with pytest.raises(SchemaError):
        Relation("emp", 2, columns=("only_one",))


def test_relation_default_column_names():
    assert Relation("e", 3).columns == ("c0", "c1", "c2")


def test_binding_pattern_from_positions():
    assert BindingPattern.from_positions(4, [0, 3]).code == "bffb"
    assert BindingPattern.from_positions(2, []).code == "ff"


def test_database_drop():
    db = Database()
    db.load("e", [("a", "b")])
    db.stats_for("e")
    db.drop("e")
    assert "e" not in db
    assert db.stats_for("e") is None


def test_database_add_relation():
    db = Database()
    r = Relation("outside", 1)
    r.insert((Constant("x"),))
    db.add_relation(r)
    assert db.relation("outside") is r
    with pytest.raises(SchemaError):
        db.add_relation(Relation("outside", 1))


def test_database_repr():
    db = Database()
    db.load("e", [("a", "b")])
    assert "e(1)" in repr(db)
