"""Cost model tests: monotonicity, order-independence, unsafe pricing."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost import BodyEstimator, CostParams, Estimate, INFINITE_COST, estimate_fixpoint
from repro.cost.model import DerivedEstimate, StepState, clamp_card
from repro.datalog import parse_program, parse_rule, parse_literal
from repro.datalog.terms import Variable
from repro.storage.statistics import DeclaredStatistics, RelationStats
from repro.workloads import generate_conjunctive

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def make_estimator(**relations):
    stats = DeclaredStatistics()
    for name, (card, distincts) in relations.items():
        stats.declare(name, card, distincts)
    return BodyEstimator(stats)


def test_estimate_records():
    assert Estimate(1, 2) + Estimate(3, 4) == Estimate(4, 6)
    assert Estimate.unsafe().is_infinite
    assert not Estimate(1, 1).is_infinite


def test_clamp_card():
    params = CostParams()
    assert clamp_card(10, params) == 10
    # saturates finite: size explosion is not unsafety (only EC/WF are)
    assert clamp_card(1e20, params) == params.cardinality_cap
    assert math.isinf(clamp_card(math.inf, params))
    assert clamp_card(-5, params) == 0.0


def test_scaled_zero_times_inf():
    from repro.cost.model import scaled

    assert scaled(0.0, math.inf) == 0.0
    assert scaled(math.inf, 0.0) == 0.0
    assert scaled(2.0, 3.0) == 6.0


def test_base_step_selectivity():
    est = make_estimator(e=(1000, [100, 10]))
    state = StepState(card=1.0, bound=frozenset({X}), var_ndvs={X: 1.0})
    out, method = est.literal_step(state, parse_literal("e(X, Y)"))
    # one bound value out of 100 distinct: ~10 matching tuples
    assert out.card == pytest.approx(10.0)
    assert method in ("index", "hash", "nested_loop", "merge")


def test_index_beats_nested_loop_when_selective():
    est = make_estimator(e=(100_000, [100_000, 10]))
    state = StepState(card=1.0, bound=frozenset({X}), var_ndvs={X: 1.0})
    indexed = est.base_step(state, parse_literal("e(X, Y)"), est.stats_for("e", 2), "index")
    nl = est.base_step(state, parse_literal("e(X, Y)"), est.stats_for("e", 2), "nested_loop")
    assert indexed.cost < nl.cost


def test_scan_cost_monotone_in_cardinality():
    small = make_estimator(e=(100, [10, 10]))
    large = make_estimator(e=(10_000, [10, 10]))
    state = StepState(card=1.0, bound=frozenset())
    cost_small = small.literal_step(state, parse_literal("e(X, Y)"))[0].cost
    cost_large = large.literal_step(state, parse_literal("e(X, Y)"))[0].cost
    assert cost_large > cost_small


def test_comparison_unsafe_prices_infinite():
    est = make_estimator()
    state = StepState(card=1.0, bound=frozenset())
    out, __ = est.literal_step(state, parse_literal("X < Y"))
    assert math.isinf(out.cost)


def test_equality_binding_keeps_cardinality():
    est = make_estimator()
    state = StepState(card=7.0, bound=frozenset({X}))
    out, __ = est.literal_step(state, parse_literal("Y = X + 1"))
    assert out.card == 7.0
    assert Y in out.bound


def test_negation_requires_bound():
    est = make_estimator(b=(100, [10]))
    free = est.literal_step(StepState(1.0, frozenset()), parse_literal("~b(X)"))[0]
    assert math.isinf(free.cost)
    bound = est.literal_step(StepState(4.0, frozenset({X})), parse_literal("~b(X)"))[0]
    assert bound.card == pytest.approx(2.0)  # negation selectivity 0.5


def test_derived_oracle_pipelined_vs_materialized():
    stats = DeclaredStatistics()
    derived = DerivedEstimate(
        per_probe=Estimate(50.0, 2.0),
        materialized=Estimate(1000.0, 500.0),
        ndvs=(100.0, 100.0),
    )
    est = BodyEstimator(stats, derived_oracle=lambda l, b: derived if l.predicate == "d" else None)
    state = StepState(card=3.0, bound=frozenset({X}))
    out, method = est.literal_step(state, parse_literal("d(X, Y)"))
    assert method == "pipelined"      # 3 * 50 << 1000 + ...
    assert out.card == pytest.approx(6.0)
    big_state = StepState(card=10_000.0, bound=frozenset({X}))
    out2, method2 = est.literal_step(big_state, parse_literal("d(X, Y)"))
    assert method2 == "materialized"  # amortize the build over many probes


def test_overlay_shadows_oracle():
    called = []

    def oracle(literal, binding):
        called.append(literal.predicate)
        return None

    stats = DeclaredStatistics()
    est = BodyEstimator(
        stats,
        derived_oracle=oracle,
        extra_stats={"t": RelationStats.declared(50, [10, 10])},
    )
    est.literal_step(StepState(1.0, frozenset()), parse_literal("t(X, Y)"))
    assert "t" not in called


def test_default_stats_for_unknown():
    est = make_estimator()
    stats = est.stats_for("mystery", 2)
    assert stats.cardinality == CostParams().default_cardinality


def test_body_estimate_unsafe_order():
    est = make_estimator(q=(10, [10]))
    rule = parse_rule("p(X, Y) <- Y = X + 1, q(X).")
    bad, __ = est.body_estimate(rule.body)
    good, __ = est.body_estimate((rule.body[1], rule.body[0]))
    assert math.isinf(bad.cost)
    assert not math.isinf(good.cost)


# -- order independence (the DP invariant) --------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.permutations(range(5)))
def test_cardinality_is_order_independent(seed, perm):
    w = generate_conjunctive(5, "random", seed=seed)
    est = BodyEstimator(w.stats)
    original, __ = est.body_estimate(w.body)
    permuted, __ = est.body_estimate([w.body[i] for i in perm])
    if math.isinf(original.card) or math.isinf(permuted.card):
        assert math.isinf(original.card) == math.isinf(permuted.card)
    else:
        assert permuted.card == pytest.approx(original.card, rel=1e-6)


# -- fixpoint estimation ---------------------------------------------------------


def test_estimate_fixpoint_prefers_selective_seed():
    program = parse_program(
        """
        t(X, Y) <- e(X, Y).
        t(X, Y) <- e(X, Z), t(Z, Y).
        """
    )
    stats = DeclaredStatistics()
    stats.declare("e", 10_000, [10_000, 10_000])

    def factory(overlay):
        return BodyEstimator(stats, extra_stats=overlay)

    params = CostParams()
    full, __ = estimate_fixpoint(program, factory, {}, params)

    magic_program = parse_program(
        """
        t.bf(X, Y) <- m(X), e(X, Y).
        t.bf(X, Y) <- m(X), e(X, Z), t.bf(Z, Y).
        m(Z) <- m(X), e(X, Z).
        """
    )
    seeded, __ = estimate_fixpoint(magic_program, factory, {"m": (1.0, 1)}, params)
    assert seeded.cost < full.cost


def test_estimate_fixpoint_unsafe_body():
    program = parse_program("t(X, Y) <- Y = W + 1, e(X, Y).")
    stats = DeclaredStatistics()
    stats.declare("e", 100, [10, 10])
    est, __ = estimate_fixpoint(
        program, lambda o: BodyEstimator(stats, extra_stats=o), {}, CostParams()
    )
    assert est.is_infinite
