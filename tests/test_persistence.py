"""Knowledge-base persistence: save/load round trips."""

import pytest

from repro import KnowledgeBase, OptimizerConfig


def build() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.rules(
        """
        anc(X, Y) <- par(X, Y).
        anc(X, Y) <- par(X, Z), anc(Z, Y).
        """
    )
    kb.facts("par", [("abe", "homer"), ("homer", "bart")])
    kb.facts_text("owns(joe, bike(front, red)).")
    return kb


def test_save_load_roundtrip(tmp_path):
    original = build()
    original.save(tmp_path / "kb")
    loaded = KnowledgeBase.load(tmp_path / "kb")
    assert loaded.ask("anc(abe, Y)?").to_python() == original.ask("anc(abe, Y)?").to_python()
    assert loaded.db.names == original.db.names
    # complex terms survive the round trip
    assert loaded.db.relation("owns").rows == original.db.relation("owns").rows


def test_save_creates_readable_files(tmp_path):
    build().save(tmp_path / "kb")
    rules_text = (tmp_path / "kb" / "rules.ldl").read_text()
    facts_text = (tmp_path / "kb" / "facts.ldl").read_text()
    assert "anc(X, Y) <- par(X, Y)." in rules_text
    assert "par(abe, homer)." in facts_text
    assert "owns(joe, bike(front, red))." in facts_text


def test_load_empty_directory(tmp_path):
    (tmp_path / "empty").mkdir()
    kb = KnowledgeBase.load(tmp_path / "empty")
    assert len(kb.program) == 0
    assert not kb.db.names


def test_load_with_config(tmp_path):
    build().save(tmp_path / "kb")
    kb = KnowledgeBase.load(tmp_path / "kb", OptimizerConfig(strategy="kbz"))
    assert kb.config.strategy == "kbz"
    assert kb.ask("anc(abe, Y)?").to_python()


def test_save_load_save_stable(tmp_path):
    """Saving a loaded KB reproduces identical files (canonical form)."""
    original = build()
    original.save(tmp_path / "a")
    loaded = KnowledgeBase.load(tmp_path / "a")
    loaded.save(tmp_path / "b")
    assert (tmp_path / "a" / "facts.ldl").read_text() == (tmp_path / "b" / "facts.ldl").read_text()
    assert (tmp_path / "a" / "rules.ldl").read_text() == (tmp_path / "b" / "rules.ldl").read_text()
