"""Built-in (infinite) predicates: modes, evaluation, safety, optimization."""

import pytest

from repro import KnowledgeBase, KnowledgeBaseError, UnsafeQueryError
from repro.datalog.bindings import BindingPattern
from repro.datalog.builtins import (
    BuiltinPredicate,
    BuiltinRegistry,
    builtin_oracle,
    default_builtins,
)
from repro.datalog.parser import parse_literal
from repro.datalog.terms import Constant, Variable
from repro.errors import ExecutionError


def kb_with(rules: str) -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.rules(rules)
    kb.facts("noop", [(0,)])
    return kb


# -- registry mechanics -----------------------------------------------------------


def test_registry_register_and_lookup():
    registry = default_builtins()
    assert "range" in registry
    assert registry.get("range").arity == 3
    assert registry.get("missing") is None


def test_registry_rejects_duplicates():
    registry = default_builtins()
    with pytest.raises(ValueError):
        registry.register(BuiltinPredicate("range", 3, (BindingPattern("bbb"),), lambda a: []))


def test_mode_arity_validated():
    with pytest.raises(ValueError):
        BuiltinPredicate("p", 2, (BindingPattern("bbb"),), lambda a: [])


def test_satisfied_mode_subsumption():
    builtin = default_builtins().get("range")
    assert builtin.satisfied_mode(BindingPattern("bbf")) is not None
    assert builtin.satisfied_mode(BindingPattern("bbb")) is not None  # extra bindings fine
    assert builtin.satisfied_mode(BindingPattern("bff")) is None


def test_builtin_oracle():
    oracle = builtin_oracle(default_builtins())
    lo, hi, x = Variable("L"), Variable("H"), Variable("X")
    literal = parse_literal("range(L, H, X)")
    assert oracle(literal, frozenset({lo, hi}))
    assert not oracle(literal, frozenset({lo}))
    assert oracle(parse_literal("ordinary(L)"), frozenset())  # non-builtin: finite


# -- stock builtins end to end -------------------------------------------------------


def test_range_enumeration():
    kb = kb_with("small(N) <- range(0, 5, N).")
    assert kb.ask("small(N)?").to_python() == [(0,), (1,), (2,), (3,), (4,)]


def test_range_composed_with_arithmetic():
    kb = kb_with("sq(N, S) <- range(1, 4, N), S = N * N.")
    assert kb.ask("sq(N, S)?").to_python() == [(1, 1), (2, 4), (3, 9)]


def test_succ_both_modes():
    kb = kb_with("nxt(X, Y) <- succ(X, Y).")
    assert kb.ask("nxt(3, Y)?").to_python() == [(4,)]
    assert kb.ask("nxt(X, 3)?").to_python() == [(2,)]


def test_string_concat_forward_and_splits():
    kb = kb_with(
        """
        greet(G) <- string_concat(hello, world, G).
        cut(A, B) <- string_concat(A, B, abc).
        """
    )
    assert kb.ask("greet(G)?").to_python() == [("helloworld",)]
    assert kb.ask("cut(A, B)?").to_python() == [
        ("", "abc"), ("a", "bc"), ("ab", "c"), ("abc", ""),
    ]


def test_list_length():
    kb = kb_with("n(N) <- list_length(cons(a, cons(b, cons(c, nil))), N).")
    assert kb.ask("n(N)?").to_python() == [(3,)]


def test_builtin_in_recursive_rule():
    kb = kb_with(
        """
        count_down(N) <- start(N).
        count_down(M) <- count_down(N), N > 0, succ(M, N).
        """
    )
    kb.facts("start", [(3,)])
    assert kb.ask("count_down(N)?").to_python() == [(0,), (1,), (2,), (3,)]


# -- safety -----------------------------------------------------------------------


def test_unbound_builtin_rejected():
    kb = kb_with("bad(N) <- range(1, M, N).")  # M never bound
    with pytest.raises(UnsafeQueryError):
        kb.ask("bad(N)?")


def test_reordering_makes_builtin_safe():
    kb = kb_with("ok(N) <- range(0, H, N), high(H).")  # textual order unsafe
    kb.facts("high", [(3,)])
    assert kb.ask("ok(N)?").to_python() == [(0,), (1,), (2,)]


def test_builtin_cannot_be_redefined():
    kb = KnowledgeBase()
    with pytest.raises(KnowledgeBaseError):
        kb.rules("range(A, B, C) <- q(A, B, C).")


def test_mode_violation_at_execution_raises():
    """Bypassing the optimizer, the engine's own mode check fires."""
    from repro.engine.operators import BindingsTable, builtin_join

    builtin = default_builtins().get("range")
    table = BindingsTable.unit()
    with pytest.raises(ExecutionError):
        builtin_join(table, parse_literal("range(X, Y, Z)"), builtin)


# -- user-defined builtins -----------------------------------------------------------


def test_custom_builtin_registration():
    def eval_double(args):
        x, y = args
        if isinstance(x, Constant):
            yield (x, Constant(x.value * 2))
        else:
            yield (Constant(y.value // 2), y)

    kb = KnowledgeBase()
    kb.register_builtin(
        BuiltinPredicate(
            "double_of", 2,
            (BindingPattern("bf"), BindingPattern("fb")),
            eval_double,
            per_probe_card=1.0, per_probe_cost=1.0,
        )
    )
    kb.rules("d(X, Y) <- double_of(X, Y).")
    kb.facts("noop", [(0,)])
    assert kb.ask("d(21, Y)?").to_python() == [(42,)]
    assert kb.ask("d(X, 42)?").to_python() == [(21,)]


def test_builtin_filters_when_overbound():
    """With every argument bound, a builtin acts as a filter."""
    kb = kb_with("check(X) <- candidates(X), succ(X, 4).")
    kb.facts("candidates", [(1,), (3,), (5,)])
    assert kb.ask("check(X)?").to_python() == [(3,)]
