"""Parallel round recovery: retry, repair, and the tier-degradation ladder.

PR 6's pool poisoned itself on any worker death.  The recovery contract
(docs/robustness.md) replaces that: a fan-out round is an idempotent
descriptor, so a worker SIGKILLed or cut off mid-round is respawned and
the round retried (bounded, exponential backoff); when retries are
exhausted the rule degrades parallel → serial batch → row with identical
answers, a ``parallel_degradations{reason}`` metric, and a structured
warning span.  These tests drive both paths with the crash-shaped fault
actions from :mod:`repro.engine.faults`.
"""

import pytest

from repro.cli import build_parser
from repro.datalog.parser import parse_program
from repro.engine.faults import FaultInjector
from repro.engine.fixpoint import evaluate_program
from repro.engine.governor import ResourceGovernor
from repro.engine.parallel import shutdown_pools
from repro.engine.profiler import Profiler
from repro.kb import KnowledgeBase
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.storage import Database

TC = "p(X, Y) <- e(X, Y). p(X, Y) <- e(X, Z), p(Z, Y)."


def chain_database(n: int) -> Database:
    db = Database()
    db.load("e", [(f"n{i}", f"n{i + 1}") for i in range(n)])
    return db


def run(db, source, parallel, *, retries=None, governor=None, tracer=None,
        metrics=None):
    kwargs = {}
    if retries is not None:
        kwargs["parallel_retries"] = retries
    result = evaluate_program(
        db,
        parse_program(source),
        profiler=Profiler(),
        batch=True,
        batch_min_rows=0,
        parallel=parallel,
        parallel_min_rows=0,
        parallel_workers=2,
        governor=governor if governor is not None else False,
        tracer=tracer if tracer is not None else NULL_TRACER,
        metrics=metrics,
        **kwargs,
    )
    return result


@pytest.fixture(autouse=True, scope="module")
def _pool_teardown():
    yield
    shutdown_pools()


def baseline(n=40):
    return run(chain_database(n), TC, parallel=False).relations


# --------------------------------------------------------------- retry path


def test_sigkilled_worker_round_is_retried_with_identical_answers():
    # "join:p:e" is the parallel plan's step-0 (parent) checkpoint: the
    # kill lands after the pool is acquired, so the loss is mid-round
    faults = FaultInjector().inject("join:p:e", after=3, kill_worker=True)
    metrics = MetricsRegistry()
    governor = ResourceGovernor(faults=faults).arm()
    result = run(chain_database(40), TC, parallel=True,
                 governor=governor, metrics=metrics)
    assert result.relations == baseline()
    assert faults.fired_count() == 1
    assert metrics.counter_total("parallel_round_retries_total") >= 1
    assert metrics.counter_total("parallel_degradations") == 0


def test_dropped_pipe_round_is_retried_with_identical_answers():
    faults = FaultInjector().inject("join:*", after=2, drop_pipe=True)
    metrics = MetricsRegistry()
    governor = ResourceGovernor(faults=faults).arm()
    result = run(chain_database(40), TC, parallel=True,
                 governor=governor, metrics=metrics)
    assert result.relations == baseline()
    assert metrics.counter_total("parallel_round_retries_total") >= 1
    assert metrics.counter_total("parallel_degradations") == 0


def test_retry_emits_a_recovery_span():
    # "join:p:e" is the parallel plan's step-0 (parent) checkpoint: the
    # kill lands after the pool is acquired, so the loss is mid-round
    faults = FaultInjector().inject("join:p:e", after=3, kill_worker=True)
    tracer = Tracer()
    governor = ResourceGovernor(faults=faults, tracer=tracer).arm()
    result = run(chain_database(40), TC, parallel=True,
                 governor=governor, tracer=tracer)
    assert result.relations == baseline()
    retry_spans = [s for s in tracer.spans if s.name == "parallel_retry"]
    assert retry_spans and retry_spans[0].kind == "recovery"
    assert retry_spans[0].attrs["attempt"] == 1


# --------------------------------------------------------- degradation path


def test_exhausted_retries_degrade_to_serial_with_identical_answers():
    """retries=0 with a kill every round: every parallel attempt dies,
    every rule degrades to the serial batch tier, answers unchanged."""
    faults = FaultInjector().inject("join:p:e", kill_worker=True, times=1000)
    metrics = MetricsRegistry()
    tracer = Tracer()
    governor = ResourceGovernor(faults=faults, tracer=tracer).arm()
    result = run(chain_database(40), TC, parallel=True, retries=0,
                 governor=governor, tracer=tracer, metrics=metrics)
    assert result.relations == baseline()
    assert metrics.counter_total("parallel_degradations") >= 1
    warn = [s for s in tracer.spans if s.name == "degrade:parallel->batch"]
    assert warn and warn[0].kind == "warning"
    assert warn[0].attrs["reason"] == "worker_lost"


def test_degraded_run_still_counts_retries_per_attempt():
    faults = FaultInjector().inject("join:p:e", kill_worker=True, times=1000)
    metrics = MetricsRegistry()
    governor = ResourceGovernor(faults=faults).arm()
    result = run(chain_database(40), TC, parallel=True, retries=1,
                 governor=governor, metrics=metrics)
    assert result.relations == baseline()
    # each degraded round burned its full retry budget first
    assert metrics.counter_total("parallel_round_retries_total") >= 2


# ------------------------------------------------------------------ plumbing


def test_round_deadline_is_none_without_a_deadline():
    governor = ResourceGovernor().arm()
    assert governor.round_deadline() is None


def test_round_deadline_tracks_the_remaining_budget():
    import time

    governor = ResourceGovernor(deadline_seconds=30.0).arm()
    cutoff = governor.round_deadline(grace=2.0)
    assert cutoff is not None
    assert 0 < cutoff - time.time() <= 32.5


def test_cli_flag_reaches_the_knowledge_base():
    args = build_parser().parse_args(["--parallel-retries", "5"])
    assert args.parallel_retries == 5
    kb = KnowledgeBase(parallel_retries=args.parallel_retries)
    assert kb.parallel_retries == 5


def test_default_retries_are_bounded():
    from repro.engine.parallel import DEFAULT_PARALLEL_RETRIES

    assert 1 <= DEFAULT_PARALLEL_RETRIES <= 5
