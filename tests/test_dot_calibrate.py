"""DOT rendering and cost-model calibration."""

import pytest

from repro import KnowledgeBase
from repro.cost.calibrate import (
    CalibrationResult,
    calibrate_cost_params,
    kendall_tau,
)
from repro.plans.dot import plan_to_dot


def make_plan():
    kb = KnowledgeBase()
    kb.rules(
        """
        anc(X, Y) <- par(X, Y).
        anc(X, Y) <- par(X, Z), anc(Z, Y).
        named(X, Y) <- anc(X, Y), name(Y, N).
        """
    )
    kb.facts("par", [("a", "b"), ("b", "c")])
    kb.facts("name", [("b", "bee"), ("c", "sea")])
    return kb.compile("named($X, Y)?").plan


# -- DOT ------------------------------------------------------------------


def test_dot_structure():
    dot = plan_to_dot(make_plan())
    assert dot.startswith("digraph plan {")
    assert dot.rstrip().endswith("}")
    assert "shape=ellipse" in dot      # OR nodes
    assert "shape=box" in dot          # AND nodes / materialized steps
    assert "shape=doubleoctagon" in dot  # CC node
    assert "->" in dot


def test_dot_escapes_quotes():
    kb = KnowledgeBase()
    kb.rules('p(X) <- q(X, "quo\\"ted").')
    kb.facts("q", [("a", 'quo"ted')])
    dot = plan_to_dot(kb.compile("p(X)?").plan)
    # every label line must be well-formed: unescaped quotes balanced
    import re

    for line in dot.splitlines():
        unescaped = re.findall(r'(?<!\\)"', line)
        assert len(unescaped) % 2 == 0, line


def test_dot_custom_name():
    dot = plan_to_dot(make_plan(), name="myplan")
    assert dot.startswith("digraph myplan {")


# -- Kendall tau -------------------------------------------------------------


def test_kendall_tau_perfect_and_inverse():
    assert kendall_tau([1, 2, 3], [10, 20, 30]) == 1.0
    assert kendall_tau([1, 2, 3], [30, 20, 10]) == -1.0
    assert kendall_tau([1.0], [5.0]) == 1.0


def test_kendall_tau_partial():
    tau = kendall_tau([1, 2, 3, 4], [1, 3, 2, 4])
    assert 0 < tau < 1


# -- calibration -----------------------------------------------------------------


def test_calibration_runs_and_never_degrades():
    result = calibrate_cost_params(seed=3, probes=4)
    assert isinstance(result, CalibrationResult)
    assert result.tau_after >= result.tau_before
    assert result.samples
    # the calibrated model must rank well on its own probes
    assert result.tau_after > 0.4


def test_calibration_deterministic():
    a = calibrate_cost_params(seed=5, probes=3)
    b = calibrate_cost_params(seed=5, probes=3)
    assert a.params == b.params
    assert a.tau_after == b.tau_after


def test_calibrated_params_usable():
    from repro import OptimizerConfig

    result = calibrate_cost_params(seed=1, probes=3)
    kb = KnowledgeBase(OptimizerConfig(params=result.params))
    kb.rules("p(X, Y) <- e(X, Y).")
    kb.facts("e", [("a", 1)])
    assert kb.ask("p(X, Y)?").to_python() == [("a", 1)]
