"""Observability: span tracing, EXPLAIN ANALYZE, metrics, trace export.

The tracer's contract is determinism — the same program and seed produce
the identical span tree run to run, across optimizer strategies, and
whether rules execute compiled or interpreted — plus conservation: the
per-span exclusive counters sum to the query-global profiler totals.
These tests pin both, the degradation paths (a failing sink must never
fail the query), and the export formats (JSONL schema, Prometheus text).
"""

import io
import json
import warnings

import pytest

from repro import (
    KnowledgeBase,
    OptimizerConfig,
    ResourceExhausted,
    Tracer,
    TraceSinkWarning,
)
from repro.engine import FaultInjector, Interpreter, Profiler, make_governor
from repro.obs import (
    COUNTER_FIELDS,
    JsonlSink,
    MetricsRegistry,
    NULL_TRACER,
    SCHEMA,
    span_event,
    validate_events,
    validate_trace_file,
)
from repro.plans.printer import q_error
from repro.workloads.paper_rulebase import PAPER_RULEBASE, paper_database
from repro.workloads.querygen import generate_random_program

ANC = "anc(X, Y) <- par(X, Y). anc(X, Y) <- par(X, Z), anc(Z, Y)."
PAR = [("abe", "homer"), ("mona", "homer"), ("homer", "bart"), ("homer", "lisa")]


def family_kb(strategy="dp"):
    kb = KnowledgeBase(OptimizerConfig(strategy=strategy, seed=7))
    kb.rules(ANC)
    kb.facts("par", PAR)
    return kb


def traced_run(kb, query, **bindings):
    tracer = Tracer()
    answers = kb.ask(query, tracer=tracer, **bindings)
    return tracer, answers


# --------------------------------------------------------------- span trees


def test_span_tree_covers_the_whole_pipeline():
    tracer, answers = traced_run(family_kb(), "anc(abe, Y)?")
    assert len(answers) == 3
    names = [s.name for s in tracer.spans]
    assert "query" in names and "parse" in names and "safety" in names
    assert "optimize:dp" in names
    assert "execute:anc" in names
    assert any(n.startswith("fixpoint:round:") for n in names)
    assert any(n.startswith("rule:anc") for n in names)
    assert any(n.startswith("join:anc:") for n in names)
    # one root, and it is the query span
    roots = tracer.roots()
    assert [r.name for r in roots] == ["query"]
    assert tracer.tree()[0][0] == "query"


def test_span_ids_are_stable_and_parents_link_upward():
    tracer, _ = traced_run(family_kb(), "anc(abe, Y)?")
    by_id = {s.span_id: s for s in tracer.spans}
    assert sorted(by_id) == list(range(1, len(tracer.spans) + 1))
    for span in tracer.spans:
        if span.parent_id is not None:
            assert span.parent_id in by_id
            assert by_id[span.parent_id].depth == span.depth - 1


@pytest.mark.parametrize("strategy", ["dp", "kbz", "annealing"])
def test_trace_is_deterministic_run_to_run(strategy):
    rules, facts, query = generate_random_program(seed=11)
    source = facts["b0"][0][0]

    def one_run():
        kb = KnowledgeBase(OptimizerConfig(strategy=strategy, seed=7))
        kb.rules(rules)
        for name, rows in facts.items():
            kb.facts(name, rows)
        tracer = Tracer()
        kb.ask(query, tracer=tracer, X=source)
        shape = [
            (s.name, s.kind, s.depth, s.parent_id, s.self_counters)
            for s in tracer.spans
        ]
        return tracer.tree(), shape

    assert one_run() == one_run()


def test_compiled_and_interpreted_runs_trace_identical_trees():
    kb = family_kb()
    compiled = kb.compile("anc(abe, Y)?")

    def run(compile_flag):
        tracer = Tracer()
        interpreter = Interpreter(
            kb.db, builtins=kb.builtins, compile=compile_flag, tracer=tracer
        )
        answers = interpreter.run(compiled.plan, compiled.query)
        return tracer, answers

    traced_on, on_answers = run(True)
    traced_off, off_answers = run(False)
    assert on_answers.to_python() == off_answers.to_python()
    assert traced_on.tree() == traced_off.tree()
    # produced counts agree (examined may differ: the compiled path
    # skips work the interpreted path performs, see BENCH_PR1)
    assert (
        traced_on.total_self_counters()["produced"]
        == traced_off.total_self_counters()["produced"]
    )


# ------------------------------------------------------- counter attribution


def test_self_counters_sum_to_profiler_totals():
    kb = family_kb()
    tracer = Tracer()
    answers = kb.ask("anc(abe, Y)?", tracer=tracer)
    totals = tracer.total_self_counters()
    profiler = answers.profiler
    for field in COUNTER_FIELDS:
        assert totals[field] == getattr(profiler, field), field


def test_self_counters_sum_to_profiler_totals_on_paper_rulebase():
    kb = KnowledgeBase(OptimizerConfig(strategy="dp", seed=7))
    kb.rules(PAPER_RULEBASE)
    db = paper_database(seed=0, scale=20)
    for name in db.names:
        kb.facts(name, [tuple(f.value for f in row) for row in db.relation(name)])
    tracer = Tracer()
    answers = kb.ask("p1(X, Y)?", tracer=tracer)
    assert len(answers) > 0
    totals = tracer.total_self_counters()
    for field in COUNTER_FIELDS:
        assert totals[field] == getattr(answers.profiler, field), field


def parallel_family_kb():
    """The family KB with the parallel batch tier forced on: thresholds
    zeroed so even this tiny workload partitions and barriers."""
    kb = KnowledgeBase(
        OptimizerConfig(strategy="dp", seed=7),
        batch_min_rows=0,
        parallel_min_rows=0,
        parallel_workers=2,
    )
    kb.rules(ANC)
    kb.facts("par", PAR)
    return kb


def test_self_counters_sum_to_profiler_totals_on_the_parallel_tier():
    """Conservation survives the fan-out: worker counter deltas are
    folded into partition child spans at the barrier, so per-span
    exclusive sums still reproduce the profiler totals exactly."""
    kb = parallel_family_kb()
    tracer = Tracer()
    answers = kb.ask("anc(abe, Y)?", tracer=tracer)
    assert any(s.kind == "partition" for s in tracer.spans), (
        "the parallel tier never engaged"
    )
    totals = tracer.total_self_counters()
    for field in COUNTER_FIELDS:
        assert totals[field] == getattr(answers.profiler, field), field


def test_partition_spans_fold_exactly_into_their_step_span():
    """Each partitioned step span's inclusive counters equal the sum of
    its partition children plus its own exclusive work (resolve-time
    examined, the merged head emit) — no partition delta is lost or
    double-counted."""
    kb = parallel_family_kb()
    tracer = Tracer()
    kb.ask("anc(abe, Y)?", tracer=tracer)
    folded = 0
    for span in tracer.spans:
        children = [c for c in tracer.children_of(span) if c.kind == "partition"]
        if not children:
            continue
        folded += 1
        for f in COUNTER_FIELDS:
            child_sum = sum(c.counters[f] for c in children)
            assert span.counters[f] == child_sum + span.self_counters[f], f
    assert folded, "no step span carried partition children"


def test_parallel_trace_keeps_the_serial_operator_labels():
    """The barrier replay reopens the serial span labels in order:
    stripping the partition children must leave the serial operator
    sequence bit-for-bit."""
    serial = KnowledgeBase(
        OptimizerConfig(strategy="dp", seed=7), batch_min_rows=0, parallel=False
    )
    serial.rules(ANC)
    serial.facts("par", PAR)
    serial_tracer = Tracer()
    serial_answers = serial.ask("anc(abe, Y)?", tracer=serial_tracer)

    parallel_tracer = Tracer()
    parallel_answers = parallel_family_kb().ask(
        "anc(abe, Y)?", tracer=parallel_tracer
    )
    assert set(parallel_answers) == set(serial_answers)

    def operator_labels(tracer):
        return [s.name for s in tracer.spans if s.kind == "operator"]

    assert operator_labels(parallel_tracer) == operator_labels(serial_tracer)


def test_inclusive_counters_are_supersets_of_children():
    tracer, _ = traced_run(family_kb(), "anc(abe, Y)?")
    for span in tracer.spans:
        child_sum = {f: 0 for f in COUNTER_FIELDS}
        for child in tracer.children_of(span):
            for f in COUNTER_FIELDS:
                child_sum[f] += child.counters[f]
        for f in COUNTER_FIELDS:
            assert span.counters[f] == child_sum[f] + span.self_counters[f]


# ------------------------------------------------------------ explain analyze


def paper_kb(scale=20):
    kb = KnowledgeBase(OptimizerConfig(strategy="dp", seed=7))
    kb.rules(PAPER_RULEBASE)
    db = paper_database(seed=0, scale=scale)
    for name in db.names:
        kb.facts(name, [tuple(f.value for f in row) for row in db.relation(name)])
    return kb


def test_analyze_annotates_every_node_on_the_paper_rulebase():
    text = paper_kb().analyze("p1(X, Y)?")
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith(("OR ", "AND ", "CC ")):
            assert "est=" in line and "act=" in line and "err=" in line, line
    assert "top misestimates" in text
    assert "answers:" in text and "work:" in text


def test_analyze_marks_unexecuted_branches():
    kb = family_kb()
    # bound query on a missing constant: the fixpoint still runs, but a
    # query against a value outside the domain yields zero answers
    text = kb.analyze("anc(zelda, Y)?")
    assert "answers: 0" in text


def test_q_error_definition():
    assert q_error(10.0, 10) == 1.0
    assert q_error(1.0, 10) == 10.0
    assert q_error(10.0, 1) == 10.0
    assert q_error(0.0, 0) == 1.0  # both clamped to 1
    assert q_error(float("inf"), 5) == float("inf")


def test_repl_analyze_command_prints_measurements():
    from repro.cli import main

    out = io.StringIO()
    code = main(
        ["-i"],
        stdin=io.StringIO(
            "anc(X, Y) <- par(X, Y). anc(X, Y) <- par(X, Z), anc(Z, Y).\n"
            "par(a, b). par(b, c).\n"
            ":analyze anc(a, Y)?\n"
            ":quit\n"
        ),
        stdout=out,
    )
    text = out.getvalue()
    assert code == 0
    assert "est=" in text and "err=" in text and "top misestimates" in text


# ------------------------------------------------------------------ metrics


def _counter(snapshot, name):
    return sum(c["value"] for c in snapshot["counters"] if c["name"] == name)


def _histogram(snapshot, name):
    for h in snapshot["histograms"]:
        if h["name"] == name:
            return h
    return None


def test_metrics_aggregate_across_queries():
    kb = family_kb()
    kb.ask("anc(abe, Y)?")
    kb.ask("anc(abe, Y)?")  # second run hits the plan *and* result caches
    kb.ask("anc(homer, Y)?")
    snap = kb.metrics.snapshot()
    assert _counter(snap, "queries_total") == 3
    assert _counter(snap, "plan_cache_misses_total") == 2
    assert _counter(snap, "plan_cache_hits_total") == 1
    assert _counter(snap, "kernel_compiles_total") > 0
    assert _counter(snap, "result_cache_hits_total") == 1
    # only two fixpoints actually ran: the repeated query was served
    # from the result cache without touching the engine
    assert _histogram(snap, "fixpoint_rounds")["count"] == 2


def test_metrics_records_governor_denials():
    kb = family_kb()
    governor = make_governor(max_tuples=1)
    with pytest.raises(ResourceExhausted):
        kb.ask("anc(abe, Y)?", governor=governor)
    snap = kb.metrics.snapshot()
    assert _counter(snap, "governor_denials_total") == 1


def test_prometheus_text_format():
    registry = MetricsRegistry()
    registry.inc("queries_total", 3)
    registry.inc("governor_denials_total", kind="tuples")
    registry.set_gauge("live_tuples", 42)
    registry.observe("fixpoint_rounds", 3)
    text = registry.to_prometheus_text()
    assert "# TYPE repro_queries_total counter" in text
    assert "repro_queries_total 3" in text
    assert 'repro_governor_denials_total{kind="tuples"} 1' in text
    assert "# TYPE repro_live_tuples gauge" in text
    assert 'repro_fixpoint_rounds_bucket{le="5"} 1' in text
    assert 'repro_fixpoint_rounds_bucket{le="+Inf"} 1' in text
    assert "repro_fixpoint_rounds_count 1" in text
    assert text.endswith("\n")


def test_metrics_json_round_trips():
    registry = MetricsRegistry()
    registry.inc("queries_total")
    registry.observe("fixpoint_rounds", 2)
    parsed = json.loads(registry.to_json())
    assert _counter(parsed, "queries_total") == 1
    assert _histogram(parsed, "fixpoint_rounds")["count"] == 1


# ------------------------------------------------------------- trace export


def test_jsonl_sink_round_trips_and_validates(tmp_path):
    path = tmp_path / "trace.jsonl"
    kb = family_kb()
    tracer = Tracer(sink=JsonlSink(path))
    kb.ask("anc(abe, Y)?", tracer=tracer)
    tracer.close()
    assert validate_trace_file(str(path)) == []
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(events) == len(tracer.spans)
    assert all(e["schema"] == SCHEMA for e in events)
    # stream invariant: children close before parents
    closed = set()
    for event in events:
        assert event["parent"] not in closed or event["parent"] is None
        closed.add(event["id"])


def test_validator_flags_bad_events():
    good = json.dumps(span_event(next(iter(_one_span()))))
    assert validate_events([good]) == []
    assert validate_events(["{not json"])
    assert validate_events([json.dumps({"schema": "other/9"})])
    missing_counter = json.loads(good)
    del missing_counter["counters"]["examined"]
    assert any(
        "examined" in problem
        for problem in validate_events([json.dumps(missing_counter)])
    )


def _one_span():
    tracer = Tracer()
    # a registered kind: the validator now rejects unknown span kinds
    with tracer.span("unit", kind="operator"):
        pass
    return tracer.spans


def test_failing_sink_degrades_to_warning_not_failure():
    kb = family_kb()

    def broken_sink(event):
        raise OSError("disk full")

    tracer = Tracer(sink=broken_sink)
    with pytest.warns(TraceSinkWarning):
        answers = kb.ask("anc(abe, Y)?", tracer=tracer)
    assert len(answers) == 3
    assert tracer.sink is None  # dropped after the first failure
    # in-memory spans survive the sink loss
    assert tracer.roots()[0].name == "query"


def test_trace_drop_fault_breaks_the_sink_mid_query():
    kb = family_kb()
    faults = FaultInjector().inject(site="join:*", trace_drop=True)
    governor = make_governor(max_tuples=10_000, faults=faults)
    sink = JsonlSink(io.StringIO())
    tracer = Tracer(sink=sink)
    with pytest.warns(TraceSinkWarning):
        answers = kb.ask("anc(abe, Y)?", governor=governor, tracer=tracer)
    assert len(answers) == 3
    assert any(entry.endswith(":trace_drop") for entry in faults.log)
    assert tracer.sink is None
    # the trace itself is intact: conservation still holds
    totals = tracer.total_self_counters()
    assert totals["produced"] == answers.profiler.produced


def test_resource_exhausted_carries_the_open_span_stack():
    kb = family_kb()
    tracer = Tracer()
    governor = make_governor(max_tuples=1)
    with pytest.raises(ResourceExhausted) as excinfo:
        kb.ask("anc(abe, Y)?", governor=governor, tracer=tracer)
    spans = excinfo.value.spans
    assert spans and spans[0] == "query"
    # the innermost frame names the running operator or fixpoint stage
    assert any(
        name.split(":")[0] in ("join", "compare", "negation", "builtin", "fixpoint", "rule")
        for name in spans
    )


# ----------------------------------------------------------- profiler fields


def test_profiler_snapshot_includes_wall_and_labels():
    profiler = Profiler()
    profiler.bump_examined(3)
    profiler.charge("join:anc:par", 7)
    profiler.add_time("join:anc:par", 0.25)
    snap = profiler.snapshot()
    assert snap["examined"] == 3
    assert "wall_seconds" in snap and snap["wall_seconds"] >= 0.25
    assert snap["by_label"] == {"join:anc:par": 7}
    # the deterministic repr stays free of wall time and labels
    assert "wall_seconds" not in repr(profiler)


def test_null_tracer_is_inert():
    assert NULL_TRACER.open_stack() == ()
    with NULL_TRACER.span("anything", kind="x") as span:
        span.note(ignored=True)
    NULL_TRACER.attach(object())
    NULL_TRACER.inject_sink_failure()
    NULL_TRACER.close()
    assert NULL_TRACER.spans == ()


def test_cli_trace_metrics_and_analyze(tmp_path):
    from repro.cli import main

    rules = tmp_path / "family.ldl"
    rules.write_text(ANC + "\npar(a, b). par(b, c).\n")
    trace = tmp_path / "trace.jsonl"
    metrics_json = tmp_path / "metrics.json"
    out = io.StringIO()
    code = main(
        [str(rules), "-q", "anc(a, Y)?", "--analyze",
         "--trace", str(trace), "--metrics", str(metrics_json)],
        stdout=out,
    )
    assert code == 0
    assert "err=" in out.getvalue()
    assert validate_trace_file(str(trace)) == []
    parsed = json.loads(metrics_json.read_text())
    assert _counter(parsed, "queries_total") == 1
