"""Tabled top-down evaluation: correctness vs the bottom-up reference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import parse_literal, parse_program
from repro.datalog.builtins import default_builtins
from repro.engine import Profiler, evaluate_program
from repro.engine.topdown import TopDownEngine
from repro.errors import ExecutionError
from repro.storage import Database
from repro.workloads import random_dag, same_generation_instance

RIGHT_ANC = "anc(X, Y) <- par(X, Y). anc(X, Y) <- par(X, Z), anc(Z, Y)."
LEFT_ANC = "anc(X, Y) <- anc(X, Z), par(Z, Y). anc(X, Y) <- par(X, Y)."


def family_db():
    db = Database()
    db.load("par", [("abe", "homer"), ("homer", "bart"), ("homer", "lisa")])
    return db


def solve(db, program_text, goal_text, **kwargs):
    engine = TopDownEngine(db, parse_program(program_text), **kwargs)
    return engine.solve(parse_literal(goal_text))


def values(rows):
    return {tuple(str(f) for f in row) for row in rows}


def test_ground_facts():
    db = family_db()
    got = solve(db, RIGHT_ANC, "par(abe, Y)")
    assert values(got) == {("abe", "homer")}


def test_bound_goal_matches_reference():
    db = family_db()
    reference = evaluate_program(db, parse_program(RIGHT_ANC))["anc"]
    got = solve(db, RIGHT_ANC, "anc(abe, Y)")
    assert got == {r for r in reference if str(r[0]) == "abe"}


def test_free_goal_matches_reference():
    db = family_db()
    reference = evaluate_program(db, parse_program(RIGHT_ANC))["anc"]
    assert solve(db, RIGHT_ANC, "anc(X, Y)") == reference


def test_left_recursion_terminates_with_tabling():
    db = family_db()
    reference = evaluate_program(db, parse_program(RIGHT_ANC))["anc"]
    assert solve(db, LEFT_ANC, "anc(X, Y)") == reference


def test_left_recursion_without_tabling_raises():
    db = family_db()
    with pytest.raises(ExecutionError):
        solve(db, LEFT_ANC, "anc(abe, Y)", tabling=False, max_depth=200)


def test_right_recursion_works_without_tabling():
    db = family_db()
    got = solve(db, RIGHT_ANC, "anc(abe, Y)", tabling=False)
    assert values(got) == {("abe", "homer"), ("abe", "bart"), ("abe", "lisa")}


def test_comparisons_and_arithmetic():
    db = Database()
    db.load("num", [(1,), (5,)])
    got = solve(db, "big(X, Y) <- num(X), X > 2, Y = X * 10.", "big(X, Y)")
    assert values(got) == {("5", "50")}


def test_negation():
    db = Database()
    db.load("e", [("a", "b")])
    db.load("node", [("a",), ("b",)])
    program = "sink(X) <- node(X), ~moves(X). moves(X) <- e(X, Y)."
    got = solve(db, program, "sink(X)")
    assert values(got) == {("b",)}


def test_negation_over_incomplete_recursive_table_is_sound():
    # Minimized differential reproducer (repro.testing shrinker): the
    # left-recursive q tables are still growing when ~q(a, X) is first
    # tested, so the unfixed engine let the negation succeed for the
    # not-yet-derived pair (a, d) and parked p(d) in the table forever.
    db = Database()
    db.load("edge", [("a", "b"), ("b", "c"), ("c", "d")])
    db.load("node", [("a",), ("b",), ("c",), ("d",)])
    program = """
    q(X, Y) <- q(X, Z), edge(Z, Y).
    q(X, Y) <- edge(X, Y).
    p(X) <- node(X), ~q(a, X).
    """
    reference = evaluate_program(db, parse_program(program))["p"]
    assert solve(db, program, "p(X)") == reference
    assert values(reference) == {("a",)}


def test_negation_over_recursive_predicate_matches_bottom_up():
    # Stratified negation over a whole recursive stratum, free query:
    # unreached(X, Y) holds for node pairs with no path between them.
    db = Database()
    names = random_dag(db, "edge", nodes=8, edges=12, seed=7)
    db.load("node", [(n,) for n in names])
    program = """
    path(X, Y) <- edge(X, Y).
    path(X, Y) <- path(X, Z), edge(Z, Y).
    unreached(X, Y) <- node(X), node(Y), ~path(X, Y).
    """
    reference = evaluate_program(db, parse_program(program))["unreached"]
    assert solve(db, program, "unreached(X, Y)") == reference


def test_negation_unbound_raises():
    db = Database()
    db.load("node", [("a",)])
    with pytest.raises(ExecutionError):
        solve(db, "weird(X) <- ~mystery(Y), node(X).", "weird(X)")


def test_builtins_in_topdown():
    db = Database()
    db.load("noop", [(0,)])
    got = solve(
        db, "small(N) <- noop(Z), range(0, 4, N).", "small(N)",
        builtins=default_builtins(),
    )
    assert values(got) == {("0",), ("1",), ("2",), ("3",)}


def test_unknown_predicate_raises():
    db = Database()
    with pytest.raises(ExecutionError):
        solve(db, "p(X) <- mystery(X).", "p(X)")


def test_same_generation_matches_bottom_up():
    db = Database()
    same_generation_instance(db, fanout=2, depth=3)
    sg = """
    sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
    sg(X, Y) <- flat(X, Y).
    """
    reference = evaluate_program(db, parse_program(sg))["sg"]
    assert solve(db, sg, "sg(X, Y)") == reference


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_tabled_equals_bottom_up_on_random_dags(seed):
    db = Database()
    names = random_dag(db, "par", nodes=10, edges=18, seed=seed)
    reference = evaluate_program(db, parse_program(RIGHT_ANC))["anc"]
    goal = parse_literal(f"anc({names[0]}, Y)")
    engine = TopDownEngine(db, parse_program(RIGHT_ANC))
    got = engine.solve(goal)
    assert got == {r for r in reference if str(r[0]) == names[0]}


def test_aborted_expansion_does_not_poison_tables():
    # Minimized differential reproducer (repro.testing shrinker): a fault
    # injected during the recursive expansion of path/2 used to leave the
    # partially-filled table marked complete, so later reads on the same
    # engine silently returned short answers.
    from repro.engine.faults import FaultInjector
    from repro.engine.governor import ResourceGovernor

    db = Database()
    db.load("edge", [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")])
    program = parse_program(
        "path(X, Y) <- edge(X, Y). path(X, Y) <- path(X, Z), edge(Z, Y)."
    )
    injector = FaultInjector()
    injector.inject(site="sld:path", after=1, times=1)
    engine = TopDownEngine(db, program, governor=ResourceGovernor(faults=injector))
    goal = parse_literal("path(a, Y)")
    with pytest.raises(ExecutionError):
        engine.solve(goal)
    # the partial table must have rolled back its completion mark
    assert not any(table.complete for table in engine._tables.values())
    # and a retry on the same engine must deliver the full answer set
    reference = evaluate_program(db, program)["path"]
    assert engine.solve(goal) == {r for r in reference if str(r[0]) == "a"}


def test_profiler_counts_work():
    db = family_db()
    profiler = Profiler()
    engine = TopDownEngine(db, parse_program(RIGHT_ANC), profiler=profiler)
    engine.solve(parse_literal("anc(abe, Y)"))
    assert profiler.total_work > 0


def test_unsafe_rule_raises_instead_of_hanging():
    """A head variable the body never binds must raise, not loop.

    Found by the differential shrinker: the head-merge used one-way
    match(), whose ground-side contract breaks on an unbound head
    variable — it wrote a self-referential binding (X -> X) and every
    later substitution walk spun forever.  The engine must instead
    report the same unsafe-execution diagnosis as the bottom-up engines.
    """
    db = Database()
    db.load("e0", [("d0", "d1"), ("d1", "d2"), ("d2", "d3")])
    db.load("node", [("d0",)])
    unsafe = """
    n1(X, Y) <- node(Y), ~p0(d2, Y).
    top(X, Y) <- n1(X, Y).
    """
    # right-recursive p0 so the tabling=False run reaches the unsafe rule
    # instead of dying on left recursion first
    for recursive, tabling in [
        ("p0(X, Y) <- p0(X, Z), e0(Z, Y).", True),
        ("p0(X, Y) <- e0(X, Z), p0(Z, Y).", True),
        ("p0(X, Y) <- e0(X, Z), p0(Z, Y).", False),
    ]:
        program = f"p0(X, Y) <- e0(X, Y). {recursive} {unsafe}"
        with pytest.raises(ExecutionError, match="not fully bound"):
            solve(db, program, "top(X, Y)", tabling=tabling)
