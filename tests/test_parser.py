"""Parser unit tests: grammar coverage and error reporting."""

import pytest

from repro.datalog.parser import (
    iter_statements,
    parse_literal,
    parse_program,
    parse_query,
    parse_rule,
    tokenize,
)
from repro.datalog.terms import Constant, Struct, Variable
from repro.errors import ParseError


def test_simple_rule():
    rule = parse_rule("anc(X, Y) <- par(X, Y).")
    assert rule.head.predicate == "anc"
    assert [l.predicate for l in rule.body] == ["par"]
    assert rule.head.args == (Variable("X"), Variable("Y"))


def test_prolog_style_arrow():
    rule = parse_rule("p(X) :- q(X).")
    assert rule.head.predicate == "p"


def test_fact():
    rule = parse_rule("par(abe, homer).")
    assert rule.is_fact
    assert rule.head.args == (Constant("abe"), Constant("homer"))


def test_numbers_and_strings():
    rule = parse_rule("p(1, 2.5, 'hello world', \"x\").")
    values = [a.value for a in rule.head.args]
    assert values == [1, 2.5, "hello world", "x"]


def test_negative_number_folds():
    rule = parse_rule("p(-3).")
    assert rule.head.args == (Constant(-3),)


def test_comments_are_skipped():
    program = parse_program("% a comment\np(X) <- q(X). # another\n")
    assert len(program) == 1


def test_complex_terms():
    rule = parse_rule("owns(joe, bike(wheel(front), W)).")
    bike = rule.head.args[1]
    assert isinstance(bike, Struct)
    assert bike.functor == "bike"
    assert bike.args[0] == Struct("wheel", (Constant("front"),))
    assert bike.args[1] == Variable("W")


def test_list_sugar():
    rule = parse_rule("p([1, 2 | T]).")
    term = rule.head.args[0]
    assert term == Struct("cons", (Constant(1), Struct("cons", (Constant(2), Variable("T")))))
    empty = parse_rule("p([]).").head.args[0]
    assert empty == Constant("nil")


def test_arithmetic_precedence():
    rule = parse_rule("p(X) <- q(Y), X = Y + 2 * 3.")
    eq = rule.body[1]
    assert eq.predicate == "="
    assert eq.args[1] == Struct("+", (Variable("Y"), Struct("*", (Constant(2), Constant(3)))))


def test_power_right_associative():
    rule = parse_rule("p(X) <- X = 2 ** 3 ** 2.")
    expr = rule.body[0].args[1]
    assert expr == Struct("**", (Constant(2), Struct("**", (Constant(3), Constant(2)))))


def test_comparisons():
    rule = parse_rule("p(X, Y) <- q(X, Y), X < Y, X != 3, Y >= 0.")
    ops = [l.predicate for l in rule.body[1:]]
    assert ops == ["<", "!=", ">="]


def test_negation_both_spellings():
    rule = parse_rule("p(X) <- q(X), ~r(X), not s(X).")
    assert [l.negated for l in rule.body] == [False, True, True]


def test_negated_comparison_rejected():
    with pytest.raises(ParseError):
        parse_rule("p(X) <- q(X), ~(X < 3).")


def test_anonymous_variables_are_distinct():
    rule = parse_rule("p(X) <- q(_, _), r(X).")
    a, b = rule.body[0].args
    assert a != b


def test_query_form_bound_markers():
    form = parse_query("sg($X, Y)?")
    assert form.adornment.code == "bf"
    assert form.bound_vars == {Variable("X")}
    assert form.output_vars == (Variable("Y"),)
    assert str(form) == "sg($X, Y)?"


def test_query_form_constants_bound():
    form = parse_query("sg(joe, Y)?")
    assert form.adornment.code == "bf"
    assert form.bound_vars == frozenset()


def test_query_trailing_junk_rejected():
    with pytest.raises(ParseError):
        parse_query("sg(X, Y)? extra")


def test_zero_ary_predicate():
    rule = parse_rule("halt <- p(X).")
    assert rule.head.predicate == "halt"
    assert rule.head.arity == 0


def test_struct_equality_literal():
    literal = parse_literal("f(X) = g(Y)")
    assert literal.predicate == "="
    assert literal.args[0] == Struct("f", (Variable("X"),))


def test_parse_error_reports_location():
    with pytest.raises(ParseError) as excinfo:
        parse_program("p(X) <- q(X)\np(Y) <- r(Y).")
    assert "line" in str(excinfo.value)


def test_unexpected_character():
    with pytest.raises(ParseError):
        tokenize("p(X) <- q(X) @ r(X).")


def test_missing_period():
    with pytest.raises(ParseError):
        parse_rule("p(X) <- q(X)")


def test_iter_statements_respects_strings_and_nesting():
    source = "p('a.b', f(1, 2)). q(X)."
    statements = list(iter_statements(source))
    assert len(statements) == 2
    assert statements[0].startswith("p(")


def test_mod_keyword_is_operator():
    rule = parse_rule("p(X) <- q(Y), X = Y mod 3.")
    assert rule.body[1].args[1] == Struct("mod", (Variable("Y"), Constant(3)))


def test_roundtrip_str_parse():
    source = "sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y)."
    rule = parse_rule(source)
    assert str(rule) == source
    assert parse_rule(str(rule)) == rule
