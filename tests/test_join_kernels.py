"""Compiled execution kernels: equivalence, layouts, and delta indexing.

The contract of :mod:`repro.engine.kernels` is strict observational
equivalence — for any program and any join-method choice, the compiled
slot-indexed path must produce exactly the rows the interpreted
unification path produces.  The seeded randomized tests here sweep that
cross-product (4 join methods x compile on/off) over generated
workloads; the unit tests pin the layout computations and the
incremental index maintenance underneath.
"""

import random

import pytest

from repro.datalog.parser import parse_literal, parse_program
from repro.datalog.rules import Program
from repro.datalog.terms import Constant, Variable
from repro.engine.fixpoint import FixpointEngine
from repro.engine.kernels import (
    ComparisonKernel,
    JoinKernel,
    KernelCache,
    compile_rule,
    execute_join_kernel,
)
from repro.engine.operators import BindingsTable, JOIN_METHODS, scan_join
from repro.engine.profiler import Profiler
from repro.storage import Database, DerivedRelation, relation_from_rows

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


# -- randomized cross-method / cross-mode equivalence -------------------------


def random_database(rng: random.Random) -> Database:
    """A small random universe: two binary relations and one ternary."""
    db = Database()
    values = [f"v{i}" for i in range(rng.randint(4, 9))]
    for name in ("e", "f"):
        rows = {
            (rng.choice(values), rng.choice(values))
            for _ in range(rng.randint(3, 18))
        }
        db.add_relation(relation_from_rows(name, sorted(rows), arity=2))
    triples = {
        (rng.choice(values), rng.choice(values), rng.randint(0, 5))
        for _ in range(rng.randint(3, 12))
    }
    db.add_relation(relation_from_rows("t", sorted(triples), arity=3))
    return db


PROGRAMS = [
    # transitive closure — the semi-naive delta path
    "p(X, Y) <- e(X, Y). p(X, Y) <- e(X, Z), p(Z, Y).",
    # join across two base relations plus a derived one
    "p(X, Y) <- e(X, Y). q(X, Z) <- p(X, Y), f(Y, Z).",
    # same-generation shape: two clique literals per body
    "s(X, Y) <- f(X, Y). s(X, Y) <- e(X, Z), s(Z, W), e(Y, W).",
    # comparisons and arithmetic between joins
    "r(X, C) <- t(X, Y, C), C > 1. w(X, D) <- r(X, C), D = C + 1.",
    # constants in body literals and in the head
    "c(X) <- e(v1, X). k(X, ok) <- c(X), f(X, Y).",
    # negation against a base relation
    "n(X, Y) <- e(X, Y), ~f(X, Y).",
]


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("source", PROGRAMS)
def test_methods_and_compilation_agree(seed, source):
    """All four join methods x {compiled, uncompiled} derive the same
    relations on randomized data (the ISSUE's cross-method property)."""
    rng = random.Random(seed)
    db = random_database(rng)
    program = Program(list(parse_program(source)))

    reference = None
    for method in JOIN_METHODS:
        for compiled in (True, False):
            engine = FixpointEngine(
                db, method_chooser=lambda literal: method, compile=compiled
            )
            result = engine.evaluate(program)
            derived = {
                name: rows
                for name, rows in result.relations.items()
                if rows  # empty relations may or may not appear
            }
            if reference is None:
                reference = derived
            else:
                assert derived == reference, (
                    f"method={method} compiled={compiled} diverged on seed {seed}"
                )


@pytest.mark.parametrize("seed", range(4))
def test_kernel_join_matches_scan_join(seed):
    """execute_join_kernel == scan_join for a flat literal, per method."""
    rng = random.Random(100 + seed)
    db = random_database(rng)
    rule = parse_program("h(X, Z) <- e(X, Y), f(Y, Z).").rules[0]
    compiled = compile_rule(rule)
    first = compiled.steps[0]
    assert isinstance(first, JoinKernel) and first.flat

    table = scan_join(
        BindingsTable.unit(), parse_literal("e(X, Y)"), db.relation("e"), "hash"
    )
    second = compiled.steps[1]
    for method in JOIN_METHODS:
        expected = scan_join(table, parse_literal("f(Y, Z)"), db.relation("f"), method)
        actual = execute_join_kernel(second, table, db.relation("f"), method, Profiler())
        assert actual.schema == expected.schema
        assert actual.rows == expected.rows


# -- compiled layouts ---------------------------------------------------------


def test_compile_rule_layouts():
    rule = parse_program("h(Y, X) <- e(X, Y), f(Y, Z), Z = X.").rules[0]
    compiled = compile_rule(rule, reorder=False)
    join_e, join_f, cmp_step = compiled.steps

    assert isinstance(join_e, JoinKernel)
    assert join_e.in_schema == ()
    assert join_e.out_schema == (X, Y)
    assert join_e.bound_positions == ()
    assert join_e.flat and join_e.free_out == (0, 1)

    assert isinstance(join_f, JoinKernel)
    assert join_f.in_schema == (X, Y)
    assert join_f.out_schema == (X, Y, Z)
    assert join_f.bound_positions == (0,)
    assert join_f.key_slots == (1,)  # Y lives at slot 1 of the input schema
    assert join_f.free_out == (1,)

    assert isinstance(cmp_step, ComparisonKernel)
    assert cmp_step.out_schema == (X, Y, Z)

    # Flat head: projection slots, no substitutions.
    assert compiled.head_kernel is not None
    assert compiled.head_kernel.slots == (1, 0)


def test_constants_and_complex_terms_in_layout():
    rule = parse_program("h(X) <- e(a, X).").rules[0]
    compiled = compile_rule(rule)
    (join,) = compiled.steps
    assert join.flat
    assert join.bound_positions == (0,)
    assert join.key_slots == (None,)
    assert join.key_consts == (Constant("a"),)

    # A struct argument is not flat — it needs unification.
    rule2 = parse_program("h(X) <- e(g(X), X).").rules[0]
    compiled2 = compile_rule(rule2, reorder=False)
    assert not compiled2.steps[0].flat

    # A repeated free variable is not flat either.
    rule3 = parse_program("h(X) <- e(X, X).").rules[0]
    compiled3 = compile_rule(rule3)
    assert not compiled3.steps[0].flat


def test_delta_position_mapping_survives_reordering():
    # Safe order must move the comparison after the join; the delta map
    # still addresses literals by their original body index.
    rule = parse_program("h(X, Y) <- e(X, Z), p(Z, Y).").rules[0]
    compiled = compile_rule(rule)
    for original_index, literal in enumerate(rule.body):
        mapped = compiled.delta_position(original_index)
        assert compiled.body[mapped] is literal


def test_kernel_cache_compiles_each_rule_once():
    program = Program(
        list(parse_program("p(X, Y) <- e(X, Y). p(X, Y) <- e(X, Z), p(Z, Y)."))
    )
    cache = KernelCache()
    first = [cache.get(rule) for rule in program]
    second = [cache.get(rule) for rule in program]
    assert len(cache) == 2
    for a, b in zip(first, second):
        assert a is b


# -- incremental delta indexing ----------------------------------------------


def test_derived_relation_maintains_indexes_incrementally():
    rel = DerivedRelation("p")
    a, b, c = Constant("a"), Constant("b"), Constant("c")
    assert rel.add((a, b))
    index = rel.ensure_index((0,))
    assert set(index.get_bucket((a,))) == {(a, b)}
    # Inserts after index creation land in the buckets without a rebuild.
    assert rel.add((a, c))
    assert not rel.add((a, c))  # set semantics: duplicates rejected
    assert set(index.get_bucket((a,))) == {(a, b), (a, c)}
    assert len(rel) == 2
    assert rel.rows == frozenset({(a, b), (a, c)})


def test_derived_relation_sorted_cache_invalidates_on_insert():
    rel = DerivedRelation("p")
    a, b, c = Constant("a"), Constant("b"), Constant("c")
    rel.add((b, a))
    key_fn = lambda row: (str(row[0]),)
    first, cached = rel.sorted_by((0,), key_fn)
    assert not cached and [row for _, row in first] == [(b, a)]
    again, cached = rel.sorted_by((0,), key_fn)
    assert cached and again is first
    rel.add((a, c))
    fresh, cached = rel.sorted_by((0,), key_fn)
    assert not cached
    assert [row for _, row in fresh] == [(a, c), (b, a)]


def test_fixpoint_workspace_uses_persistent_indexes():
    """Compiled semi-naive evaluation examines fewer tuples than the
    uncompiled path: derived-extension buckets are never rebuilt."""
    db = Database()
    chain = [(f"n{i}", f"n{i+1}") for i in range(40)]
    db.add_relation(relation_from_rows("par", chain))
    program = Program(
        list(parse_program("anc(X, Y) <- par(X, Y). anc(X, Y) <- par(X, Z), anc(Z, Y)."))
    )

    compiled_profiler, baseline_profiler = Profiler(), Profiler()
    compiled = FixpointEngine(db, profiler=compiled_profiler, compile=True).evaluate(program)
    baseline = FixpointEngine(db, profiler=baseline_profiler, compile=False).evaluate(program)

    assert compiled.relations["anc"] == baseline.relations["anc"]
    assert compiled_profiler.examined < baseline_profiler.examined
    assert compiled_profiler.total_work <= baseline_profiler.total_work


def test_compiled_rules_record_kernel_timings():
    db = Database()
    db.add_relation(relation_from_rows("e", [("a", "b"), ("b", "c")]))
    program = Program(list(parse_program("p(X, Y) <- e(X, Y). p(X, Y) <- e(X, Z), p(Z, Y).")))
    profiler = Profiler()
    FixpointEngine(db, profiler=profiler).evaluate(program)
    assert profiler.wall_seconds > 0
    assert any(label.startswith("join:p:") for label in profiler.timings)
