"""Dependency graph, cliques, stratification (Section 2 definitions)."""

import pytest

from repro.datalog.graph import DependencyGraph
from repro.datalog.literals import PredicateRef
from repro.datalog.parser import parse_program
from repro.errors import KnowledgeBaseError


def refs(*names):
    return [PredicateRef(n, 2) for n in names]


def test_implies_and_recursive():
    program = parse_program(
        """
        p(X, Y) <- q(X, Y).
        q(X, Y) <- r(X, Y).
        r(X, Y) <- base(X, Y).
        """
    )
    g = DependencyGraph(program)
    p, q, r = refs("p", "q", "r")
    assert g.implies(q, p)
    assert g.implies(r, p)  # transitivity
    assert not g.implies(p, r)
    assert not g.is_recursive(p)


def test_self_recursion():
    program = parse_program("t(X, Y) <- e(X, Y). t(X, Y) <- e(X, Z), t(Z, Y).")
    g = DependencyGraph(program)
    t = PredicateRef("t", 2)
    assert g.is_recursive(t)
    cliques = g.recursive_cliques()
    assert len(cliques) == 1
    assert cliques[0].predicates == {t}
    assert len(cliques[0].recursive_rules) == 1
    assert len(cliques[0].exit_rules) == 1


def test_mutual_recursion_single_clique():
    program = parse_program(
        """
        even(X) <- zero(X).
        even(X) <- pred(X, Y), odd(Y).
        odd(X) <- pred(X, Y), even(Y).
        """
    )
    g = DependencyGraph(program)
    cliques = g.recursive_cliques()
    assert len(cliques) == 1
    names = {r.name for r in cliques[0].predicates}
    assert names == {"even", "odd"}


def test_two_cliques_follow_order():
    program = parse_program(
        """
        a(X, Y) <- e(X, Y).
        a(X, Y) <- e(X, Z), a(Z, Y).
        b(X, Y) <- a(X, Y).
        b(X, Y) <- f(X, Z), b(Z, Y).
        """
    )
    g = DependencyGraph(program)
    cliques = {next(iter(c.predicates)).name: c for c in g.recursive_cliques()}
    assert set(cliques) == {"a", "b"}
    assert g.follows(cliques["b"], cliques["a"])
    assert not g.follows(cliques["a"], cliques["b"])


def test_evaluation_order_callees_first():
    program = parse_program(
        """
        top(X, Y) <- mid(X, Y).
        mid(X, Y) <- bot(X, Y).
        bot(X, Y) <- base(X, Y).
        """
    )
    g = DependencyGraph(program)
    order = [next(iter(c)).name for c in g.evaluation_order() if len(c) == 1]
    assert order.index("bot") < order.index("mid") < order.index("top")


def test_clique_linearity():
    linear = parse_program("t(X, Y) <- e(X, Y). t(X, Y) <- e(X, Z), t(Z, Y).")
    nonlinear = parse_program("t(X, Y) <- e(X, Y). t(X, Y) <- t(X, Z), t(Z, Y).")
    assert DependencyGraph(linear).recursive_cliques()[0].is_linear
    assert not DependencyGraph(nonlinear).recursive_cliques()[0].is_linear


def test_reachable_from():
    program = parse_program(
        """
        p(X, Y) <- q(X, Y).
        q(X, Y) <- base(X, Y).
        unrelated(X, Y) <- other(X, Y).
        """
    )
    g = DependencyGraph(program)
    reach = {str(r) for r in g.reachable_from(PredicateRef("p", 2))}
    assert "q/2" in reach and "base/2" in reach
    assert "unrelated/2" not in reach


def test_stratified_ok():
    program = parse_program(
        """
        reach(X, Y) <- edge(X, Y).
        reach(X, Y) <- edge(X, Z), reach(Z, Y).
        unreach(X, Y) <- node(X, X), node(Y, Y), ~reach(X, Y).
        """
    )
    g = DependencyGraph(program)
    g.check_stratified()  # should not raise
    strata = g.strata()
    assert strata[PredicateRef("unreach", 2)] > strata[PredicateRef("reach", 2)]


def test_unstratified_rejected():
    program = parse_program(
        """
        win(X) <- move(X, Y), ~win(Y).
        """
    )
    g = DependencyGraph(program)
    with pytest.raises(KnowledgeBaseError):
        g.check_stratified()


def test_successors_predecessors():
    program = parse_program("p(X, Y) <- q(X, Y), r(X, Y).")
    g = DependencyGraph(program)
    p, q, r = refs("p", "q", "r")
    assert g.successors(q) == {p}
    assert g.predecessors(p) == {q, r}
