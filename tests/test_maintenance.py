"""Incremental view maintenance: insertions and DRed deletions.

The maintained invariant throughout: after any sequence of insertions
and retractions, the stored extension equals a from-scratch recomputation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import KnowledgeBase, KnowledgeBaseError
from repro.engine import evaluate_program

TC = "t(X, Y) <- e(X, Y). t(X, Y) <- e(X, Z), t(Z, Y)."


def recompute(kb: KnowledgeBase, predicate: str):
    result = evaluate_program(kb.db, kb.program)
    return {
        tuple(f.value for f in row) for row in result.rows(predicate)
    }


def tc_kb(edges):
    kb = KnowledgeBase()
    kb.rules(TC)
    kb.facts("e", edges)
    return kb


def test_materialize_matches_recompute():
    kb = tc_kb([("a", "b"), ("b", "c")])
    kb.materialize()
    assert kb.view_rows("t") == recompute(kb, "t")


def test_insert_extends_closure():
    kb = tc_kb([("a", "b")])
    kb.materialize()
    kb.facts("e", [("b", "c")])
    assert kb.view_rows("t") == {("a", "b"), ("b", "c"), ("a", "c")}
    assert kb.view_rows("t") == recompute(kb, "t")


def test_insert_bridging_edge():
    """A new edge connecting two existing chains derives the product."""
    kb = tc_kb([("a", "b"), ("c", "d")])
    kb.materialize()
    kb.facts("e", [("b", "c")])
    assert ("a", "d") in kb.view_rows("t")
    assert kb.view_rows("t") == recompute(kb, "t")


def test_duplicate_insert_is_noop():
    kb = tc_kb([("a", "b")])
    kb.materialize()
    before = kb.view_rows("t")
    kb.facts("e", [("a", "b")])
    assert kb.view_rows("t") == before


def test_delete_simple():
    kb = tc_kb([("a", "b"), ("b", "c")])
    kb.materialize()
    kb.retract("e", [("b", "c")])
    assert kb.view_rows("t") == {("a", "b")}
    assert kb.view_rows("t") == recompute(kb, "t")


def test_delete_with_rederivation():
    """DRed's re-derive phase: an alternative path keeps the tuple."""
    kb = tc_kb([("a", "b"), ("b", "c"), ("a", "c")])
    kb.materialize()
    kb.retract("e", [("b", "c")])
    # (a, c) is over-deleted (it had a derivation through (b,c)) but must
    # be re-derived from the direct edge.
    assert ("a", "c") in kb.view_rows("t")
    assert kb.view_rows("t") == recompute(kb, "t")


def test_delete_in_cycle():
    kb = tc_kb([("a", "b"), ("b", "a")])
    kb.materialize()
    kb.retract("e", [("b", "a")])
    assert kb.view_rows("t") == {("a", "b")}
    assert kb.view_rows("t") == recompute(kb, "t")


def test_multi_view_layering():
    kb = KnowledgeBase()
    kb.rules(
        """
        t(X, Y) <- e(X, Y).
        t(X, Y) <- e(X, Z), t(Z, Y).
        twohop(X, Y) <- t(X, Z), t(Z, Y).
        """
    )
    kb.facts("e", [("a", "b"), ("b", "c")])
    kb.materialize()
    kb.facts("e", [("c", "d")])
    assert kb.view_rows("twohop") == recompute(kb, "twohop")
    kb.retract("e", [("b", "c")])
    assert kb.view_rows("twohop") == recompute(kb, "twohop")
    assert kb.view_rows("t") == recompute(kb, "t")


def test_views_reject_negation_and_aggregates():
    kb = KnowledgeBase()
    kb.rules("p(X) <- q(X), ~r(X).")
    kb.facts("q", [("a",)])
    kb.facts("r", [("b",)])
    with pytest.raises(KnowledgeBaseError):
        kb.materialize()

    kb2 = KnowledgeBase()
    kb2.rules("c(count(X)) <- q(X).")
    kb2.facts("q", [("a",)])
    with pytest.raises(KnowledgeBaseError):
        kb2.materialize()


def test_view_rows_requires_materialize():
    kb = tc_kb([("a", "b")])
    with pytest.raises(KnowledgeBaseError):
        kb.view_rows("t")


def test_rules_change_drops_views():
    kb = tc_kb([("a", "b")])
    kb.materialize()
    kb.rules("extra(X) <- e(X, Y).")
    with pytest.raises(KnowledgeBaseError):
        kb.view_rows("t")


def test_delete_row_joined_with_itself():
    """Over-deletion must evaluate suspect derivations against the
    *pre-deletion* state: p(a,a) <- e(a,a), e(a,a) uses the deleted row at
    both body positions, which a post-deletion join can no longer see —
    the old code left p(a,a) stranded in the view forever."""
    kb = KnowledgeBase()
    kb.rules("p(X, Y) <- e(X, Z), e(Z, Y).")
    kb.facts("e", [("a", "a")])
    kb.materialize()
    assert kb.view_rows("p") == {("a", "a")}
    kb.retract("e", [("a", "a")])
    assert kb.view_rows("p") == set()
    assert kb.view_rows("p") == recompute(kb, "p")


def test_delete_pair_of_rows_in_one_call():
    """Both halves of a two-row derivation retracted in one call: neither
    delta row alone kills the derivation under post-deletion semantics."""
    kb = KnowledgeBase()
    kb.rules("p(X, Y) <- e(X, Z), e(Z, Y).")
    kb.facts("e", [("a", "b"), ("b", "c")])
    kb.materialize()
    assert kb.view_rows("p") == {("a", "c")}
    kb.retract("e", [("a", "b"), ("b", "c")])
    assert kb.view_rows("p") == set()
    assert kb.view_rows("p") == recompute(kb, "p")


def test_delete_survives_alternative_rule():
    """A tuple with a remaining derivation through a *different* rule of
    the same view must survive the deletion (ISSUE 9 satellite: the old
    per-rule rederivation could miss cross-rule support)."""
    kb = KnowledgeBase()
    kb.rules("s(X, Y) <- e(X, Z), e(Z, Y). s(X, Y) <- f(X, Y).")
    kb.facts("e", [("a", "a")])
    kb.facts("f", [("a", "a")])
    kb.materialize()
    assert kb.view_rows("s") == {("a", "a")}
    kb.retract("e", [("a", "a")])
    # support dropped 2 -> 1, not 1 -> 0: the f-rule derivation remains
    assert kb.view_rows("s") == {("a", "a")}
    assert kb.view_rows("s") == recompute(kb, "s")
    kb.retract("f", [("a", "a")])
    assert kb.view_rows("s") == set()


def test_derivation_counts_track_support():
    """Non-recursive strata expose exact per-tuple derivation counts;
    recursive predicates (maintained by DRed) report None."""
    kb = KnowledgeBase()
    kb.rules(TC + " q(X, Y) <- t(X, Y), f(Y, X). q(X, Y) <- f(X, Y).")
    kb.facts("e", [("a", "b")])
    kb.facts("f", [("b", "a")])
    kb.materialize()
    views = kb._views
    assert views.support("t", (None,)) is None  # recursive: DRed, no counts
    # q(a, b): one derivation through the t-join rule
    from repro.datalog.terms import Constant

    row_ab = (Constant("a"), Constant("b"))
    assert views.support("q", row_ab) == 1
    kb.facts("f", [("a", "b")])
    # second derivation arrives through the f-copy rule
    assert views.support("q", row_ab) == 2
    kb.retract("f", [("a", "b")])
    assert views.support("q", row_ab) == 1
    assert kb.view_rows("q") == recompute(kb, "q")


def test_counted_delete_is_not_rederivation():
    """Counting strata never run a rederivation join: deleting one of two
    supports just decrements, deleting the last removes the tuple."""
    kb = KnowledgeBase()
    kb.rules("j(X) <- a(X, Y). j(X) <- b(X, Y).")
    kb.facts("a", [("k", 1), ("k", 2)])
    kb.facts("b", [("k", 9)])
    kb.materialize()
    views = kb._views
    from repro.datalog.terms import Constant

    row = (Constant("k"),)
    assert views.support("j", row) == 3
    kb.retract("a", [("k", 1)])
    assert views.support("j", row) == 2
    assert kb.view_rows("j") == {("k",)}
    kb.retract("a", [("k", 2)])
    kb.retract("b", [("k", 9)])
    assert views.support("j", row) == 0
    assert kb.view_rows("j") == set()


@settings(max_examples=12, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.booleans(),  # True = insert, False = delete
            st.sampled_from("abcde"),
            st.sampled_from("abcde"),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_random_update_sequences_stay_consistent(updates):
    """Property: after any insert/delete sequence, view == recompute."""
    kb = tc_kb([("a", "b")])
    kb.materialize()
    for insert, x, y in updates:
        if x == y:
            continue
        if insert:
            kb.facts("e", [(x, y)])
        else:
            kb.retract("e", [(x, y)])
        assert kb.view_rows("t") == recompute(kb, "t")
