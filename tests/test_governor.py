"""Execution-governor stress tests: budgets, deadlines, cancellation, faults.

Every abort path is driven deterministically — injected clocks and the
:class:`~repro.engine.faults.FaultInjector` replace real time and real
memory pressure — so these tests never sleep and never allocate their
way to an OOM.
"""

import io

import pytest

from repro import KnowledgeBase, OptimizerConfig
from repro.cli import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_PARSE,
    EXIT_RESOURCE,
    EXIT_UNSAFE,
    main,
)
from repro.datalog.parser import parse_program, parse_query
from repro.engine import FixpointEngine, Interpreter, TopDownEngine, evaluate_program
from repro.engine.faults import FaultInjector, InjectedFault
from repro.engine.governor import ResourceGovernor, make_governor
from repro.errors import (
    DeadlineExceeded,
    ExecutionCancelled,
    ExecutionError,
    IterationBudgetExceeded,
    MemoryBudgetExceeded,
    ResourceExhausted,
    TupleBudgetExceeded,
)
from repro.storage import Database
from repro.workloads.querygen import RUNAWAY_KINDS, generate_runaway_program

ANC = "anc(X, Y) <- par(X, Y). anc(X, Y) <- par(X, Z), anc(Z, Y)."


class FakeClock:
    """A deterministic clock: advances only when told to."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


def runaway_db(kind, **kwargs):
    rules, facts, query = generate_runaway_program(kind, **kwargs)
    db = Database()
    for name, rows in facts.items():
        db.load(name, rows)
    return parse_program(rules), db, query


def runaway_kb(kind, **kwargs):
    rules, facts, query = generate_runaway_program(kind, **kwargs)
    kb = KnowledgeBase()
    kb.rules(rules)
    for name, rows in facts.items():
        kb.facts(name, rows)
    return kb, query


# --------------------------------------------------------- governor unit


def test_make_governor_none_when_unlimited():
    assert make_governor(max_tuples=None, max_iterations=None) is None
    assert make_governor() is not None


def test_deadline_with_injected_clock():
    clock = FakeClock()
    gov = ResourceGovernor(deadline_seconds=5.0, clock=clock, tick_interval=1).arm()
    gov.tick()
    clock.advance(10.0)
    with pytest.raises(DeadlineExceeded) as excinfo:
        gov.tick()
    assert excinfo.value.partial["elapsed_seconds"] == pytest.approx(10.0)


def test_cancellation_is_cooperative():
    gov = ResourceGovernor(tick_interval=4).arm()
    gov.cancel("user hit ^C")
    gov.tick()  # within the interval: not yet observed
    with pytest.raises(ExecutionCancelled, match="user hit"):
        for __ in range(4):
            gov.tick()


def test_tuple_budget_charges_inflight_immediately():
    gov = ResourceGovernor(max_tuples=10, tick_interval=1_000_000).arm()
    gov.tick(5)
    with pytest.raises(TupleBudgetExceeded):
        gov.tick(6)  # 11 live > 10, despite the huge tick interval


def test_memory_budget_is_deterministic_tuple_pricing():
    gov = ResourceGovernor(
        max_tuples=None, max_memory_bytes=1000, bytes_per_tuple=100
    ).arm()
    gov.tick(10)  # exactly 1000 bytes: at the limit, fine
    with pytest.raises(MemoryBudgetExceeded):
        gov.retain(1)  # 1100 bytes


def test_settle_and_retain_compose_query_wide():
    gov = ResourceGovernor(max_tuples=100).arm()
    gov.tick(60)
    gov.settle(60)       # folded into the region
    gov.end_region()     # workspace released...
    gov.retain(60)       # ...but the result is cached
    with pytest.raises(TupleBudgetExceeded):
        gov.retain(41)   # 101 retained across operators


def test_errors_carry_snapshot_and_partial():
    gov = make_governor(max_tuples=1)
    gov.arm()
    with pytest.raises(TupleBudgetExceeded) as excinfo:
        gov.tick(2)
    err = excinfo.value
    assert err.partial["live_tuples"] == 2
    assert "elapsed_seconds" in err.partial
    assert isinstance(err.snapshot, dict)
    assert isinstance(err, ResourceExhausted)
    assert isinstance(err, ExecutionError)  # legacy guard contract


# ------------------------------------------------- runaway generator diet


@pytest.mark.parametrize("kind", RUNAWAY_KINDS)
def test_runaway_programs_parse_and_terminate_small(kind):
    program, db, query = runaway_db(kind, depth=10, fanout=4)
    result = evaluate_program(db, program)  # default guards: finishes
    goal = parse_query(query).goal
    assert len(result.rows(goal.predicate)) > 0


def test_runaway_generator_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown runaway kind"):
        generate_runaway_program("infinite")


# -------------------------------------------- budgets inside the fixpoint


def test_counter_trips_tuple_budget_mid_fixpoint():
    program, db, __ = runaway_db("counter", depth=10**9)
    with pytest.raises(TupleBudgetExceeded) as excinfo:
        evaluate_program(db, program, max_tuples=50)
    # caught promptly, not after some huge round
    assert excinfo.value.partial["live_tuples"] <= 60


def test_counter_trips_iteration_budget():
    program, db, __ = runaway_db("counter", depth=10**9)
    with pytest.raises(IterationBudgetExceeded):
        evaluate_program(db, program, max_iterations=20)


def test_naive_strategy_is_guarded_too():
    program, db, __ = runaway_db("counter", depth=10**9)
    with pytest.raises(ResourceExhausted):
        evaluate_program(db, program, naive=True, max_tuples=50)


def test_blowup_aborts_inside_a_single_round():
    """The guard-granularity fix: fanout**2 tuples are produced by ONE
    rule in ONE round; the old per-round guard would only notice after
    materializing all of them."""
    fanout = 40
    program, db, __ = runaway_db("blowup", fanout=fanout)
    with pytest.raises(TupleBudgetExceeded) as excinfo:
        evaluate_program(db, program, max_tuples=100)
    live = excinfo.value.partial["live_tuples"]
    assert live < fanout * fanout / 2, "abort happened mid-join, not post-round"


def test_uncompiled_path_is_guarded_identically():
    fanout = 40
    program, db, __ = runaway_db("blowup", fanout=fanout)
    with pytest.raises(TupleBudgetExceeded) as excinfo:
        evaluate_program(db, program, compile=False, max_tuples=100)
    assert excinfo.value.partial["live_tuples"] < fanout * fanout / 2


def test_governor_false_disables_all_guards():
    program, db, __ = runaway_db("blowup", fanout=10)
    engine = FixpointEngine(db, max_tuples=5, governor=False)
    result = engine.evaluate(program)  # no abort despite tiny max_tuples
    assert len(result.rows("pair")) == 100


def test_final_round_production_is_guarded():
    """A chain fixpoint's last productive round must still be checked."""
    program, db, __ = runaway_db("chain", depth=40)
    with pytest.raises(ResourceExhausted):
        evaluate_program(db, program, max_tuples=700)  # 40*41/2 = 820 pairs


# ------------------------------------------- whole-query (interpreter/KB)


def test_kb_ask_budget_trips_mid_join():
    kb, query = runaway_kb("blowup", fanout=40)
    with pytest.raises(TupleBudgetExceeded) as excinfo:
        kb.ask(query, governor=make_governor(max_tuples=200))
    assert 200 < excinfo.value.partial["live_tuples"] < 1600


def test_budget_spans_cached_extensions_across_operators():
    """Two derived subgoals, each under the budget alone, exceed it
    together — the governor accounts query-wide, not per operator."""
    kb = KnowledgeBase()
    kb.rules(
        """
        a(X, Y) <- e(X, Y).
        b(X, Y) <- e(X, Y).
        q(X, Z) <- a(X, Y), b(Y, Z).
        """
    )
    kb.facts("e", [(i, i) for i in range(100)])
    kb.ask("q(X, Z)?", governor=make_governor(max_tuples=5000))  # fits
    with pytest.raises(TupleBudgetExceeded):
        kb.ask("q(X, Z)?", governor=make_governor(max_tuples=150))


def test_deadline_mid_join_via_clock_skew_fault():
    """Clock skew injected at a join checkpoint: the deadline trips at a
    kernel step, without any sleeping.  The site pattern is
    method-agnostic (`join:*`) because the optimizer is free to pick a
    rewrite that renames the predicates (magic/counting)."""
    faults = FaultInjector().inject("join:*", after=2, advance_clock=60.0)
    gov = ResourceGovernor(deadline_seconds=1.0, faults=faults)
    kb = KnowledgeBase()
    kb.rules(ANC)
    kb.facts("par", [(f"n{i}", f"n{i + 1}") for i in range(30)])
    with pytest.raises(DeadlineExceeded):
        kb.ask("anc(n0, Y)?", governor=gov)
    assert any("advance_clock" in line for line in faults.log)


def test_injected_operator_failure_at_named_site():
    faults = FaultInjector().inject("join:anc:par", error="disk on fire")
    gov = ResourceGovernor(faults=faults)
    kb = KnowledgeBase()
    kb.rules(ANC)
    kb.facts("par", [("a", "b"), ("b", "c")])
    with pytest.raises(InjectedFault, match="disk on fire"):
        kb.ask("anc(a, Y)?", governor=gov)
    assert faults.fired_count() == 1


def test_exhaust_injection_forces_budget_abort():
    faults = FaultInjector().inject("fixpoint:round", exhaust="tuples")
    gov = ResourceGovernor(faults=faults)
    kb = KnowledgeBase()
    kb.rules(ANC)
    kb.facts("par", [("a", "b"), ("b", "c")])
    with pytest.raises(TupleBudgetExceeded):
        kb.ask("anc(a, Y)?", governor=gov)


def test_fault_rule_counting_is_deterministic():
    faults = FaultInjector().inject("fixpoint:round", after=1, times=1)
    gov = ResourceGovernor(faults=faults)
    program, db, __ = runaway_db("chain", depth=10)
    engine = FixpointEngine(db, governor=gov)
    with pytest.raises(InjectedFault):
        engine.evaluate(program)
    rule = faults.rules[0]
    assert (rule.hits, rule.fired) == (2, 1)  # skipped one, fired once


# -------------------------------------------------- SLD (top-down) engine


def _sld_setup(tabling, faults=None, governor=None):
    db = Database()
    db.load("par", [(f"n{i}", f"n{i + 1}") for i in range(20)])
    program = parse_program(ANC)
    gov = governor or ResourceGovernor(faults=faults, tick_interval=1)
    engine = TopDownEngine(db, program, tabling=tabling, governor=gov)
    return engine, gov


@pytest.mark.parametrize("tabling", [True, False])
def test_sld_cancellation(tabling):
    engine, gov = _sld_setup(tabling)
    gov.cancel("test requested stop")
    goal = parse_query("anc(n0, Y)?").goal
    with pytest.raises(ExecutionCancelled):
        engine.solve(goal)


@pytest.mark.parametrize("tabling", [True, False])
def test_sld_fault_injection_at_predicate_site(tabling):
    faults = FaultInjector().inject("sld:anc", after=3)
    engine, __ = _sld_setup(tabling, faults=faults)
    goal = parse_query("anc(n0, Y)?").goal
    with pytest.raises(InjectedFault):
        engine.solve(goal)


def test_sld_deadline_via_clock_skew():
    faults = FaultInjector().inject("sld:anc", after=2, advance_clock=99.0)
    gov = ResourceGovernor(deadline_seconds=1.0, faults=faults, tick_interval=1)
    engine, __ = _sld_setup(True, governor=gov)
    goal = parse_query("anc(n0, Y)?").goal
    with pytest.raises(DeadlineExceeded):
        engine.solve(goal)


def test_sld_tabled_answers_count_against_tuple_budget():
    gov = ResourceGovernor(max_tuples=50, tick_interval=1)
    engine, __ = _sld_setup(True, governor=gov)
    goal = parse_query("anc(X, Y)?").goal  # 20*21/2 = 210 tabled answers
    with pytest.raises(TupleBudgetExceeded):
        engine.solve(goal)


def test_sld_ungoverned_still_works():
    engine = TopDownEngine(
        Database(), parse_program("p(X) <- q(X). q(a)."), tabling=True
    )
    # q(a) parses as a fact rule; just confirm no governor is required
    assert engine.governor is None


# ------------------------------------------------ optimizer deadline path


def _expired_governor():
    gov = ResourceGovernor(deadline_seconds=0.5)
    gov.arm()
    gov.skew(10.0)  # elapsed 10s > 0.5s: already expired
    assert gov.deadline_exceeded()
    return gov


def test_optimizer_downgrades_strategy_on_deadline():
    kb = KnowledgeBase(OptimizerConfig(strategy="dp"))
    kb.rules("q(A, D) <- r1(A, B), r2(B, C), r3(C, D).")
    for name in ("r1", "r2", "r3"):
        kb.facts(name, [(i, i + 1) for i in range(5)])
    compiled = kb.compile("q(A, D)?", governor=_expired_governor())
    assert any("downgraded dp to kbz" in d for d in compiled.diagnostics)
    assert kb.optimizer.counters["deadline_downgrades"] >= 1
    # degraded, not aborted: the plan still answers correctly
    assert compiled.safe


def test_optimizer_truncates_cpermutation_search_on_deadline():
    kb = KnowledgeBase(OptimizerConfig(strategy="dp"))
    kb.rules(ANC)
    kb.facts("par", [("a", "b"), ("b", "c")])
    compiled = kb.compile("anc($X, Y)?", governor=_expired_governor())
    assert any("c-permutation" in d and "truncated" in d for d in compiled.diagnostics)
    assert compiled.safe


def test_governed_compile_bypasses_the_plan_cache():
    kb = KnowledgeBase()
    kb.rules(ANC)
    kb.facts("par", [("a", "b")])
    degraded = kb.compile("anc($X, Y)?", governor=_expired_governor())
    clean = kb.compile("anc($X, Y)?")
    assert not any("deadline" in d for d in clean.diagnostics)
    assert degraded is not clean


def test_optimizer_deadline_never_aborts():
    """soft_checkpoint: an expired deadline degrades the search but the
    optimizer still returns a plan (aborting is the executor's job)."""
    kb = KnowledgeBase(OptimizerConfig(strategy="exhaustive"))
    kb.rules("q(A, C) <- r1(A, B), r2(B, C).")
    kb.facts("r1", [(1, 2)])
    kb.facts("r2", [(2, 3)])
    compiled = kb.compile("q(A, C)?", governor=_expired_governor())
    assert compiled.plan is not None


def test_optimizer_config_deadline_builds_internal_governor():
    kb = KnowledgeBase(OptimizerConfig(strategy="dp", deadline_seconds=3600.0))
    kb.rules(ANC)
    kb.facts("par", [("a", "b")])
    compiled = kb.compile("anc(a, Y)?")  # huge deadline: no downgrade
    assert not any("deadline" in d for d in compiled.diagnostics)


# --------------------------------------------------------- answers intact


def test_governed_and_ungoverned_answers_agree():
    kb = KnowledgeBase()
    kb.rules(ANC)
    kb.facts("par", [(f"n{i}", f"n{i + 1}") for i in range(25)])
    governed = kb.ask("anc(n0, Y)?").to_python()
    ungoverned = kb.ask("anc(n0, Y)?", governor=False).to_python()
    tight_but_enough = kb.ask(
        "anc(n0, Y)?", governor=make_governor(max_tuples=10_000)
    ).to_python()
    assert governed == ungoverned == tight_but_enough
    assert len(governed) == 25


def test_interpreter_resource_knobs():
    kb = KnowledgeBase()
    kb.rules(ANC)
    kb.facts("par", [(f"n{i}", f"n{i + 1}") for i in range(25)])
    compiled = kb.compile("anc(n0, Y)?")
    interp = Interpreter(
        kb.db, builtins=kb.builtins, deadline_seconds=3600.0,
        max_memory_bytes=50_000_000,
    )
    assert interp.governor.deadline_seconds == 3600.0
    assert len(interp.run(compiled.plan, compiled.query)) == 25
    tiny = Interpreter(kb.db, builtins=kb.builtins, max_memory_bytes=10 * 112)
    with pytest.raises(MemoryBudgetExceeded):
        tiny.run(compiled.plan, compiled.query)


# ----------------------------------------------------------- CLI contract


def run_cli(*argv):
    out = io.StringIO()
    status = main(list(argv), stdin=io.StringIO(""), stdout=out)
    return status, out.getvalue()


@pytest.fixture
def family_file(tmp_path):
    path = tmp_path / "family.ldl"
    path.write_text(
        ANC + "\npar(abe, homer).\npar(homer, bart).\n"
    )
    return path


@pytest.fixture
def blowup_file(tmp_path):
    rules, facts, __ = generate_runaway_program("blowup", fanout=40)
    lines = [rules]
    for name, rows in facts.items():
        for row in rows:
            lines.append(f"{name}({', '.join(str(v) for v in row)}).")
    path = tmp_path / "blowup.ldl"
    path.write_text("\n".join(lines))
    return path


def test_cli_exit_ok(family_file):
    status, out = run_cli(str(family_file), "-q", "anc(abe, Y)?")
    assert status == EXIT_OK


def test_cli_exit_parse_error(family_file):
    status, out = run_cli(str(family_file), "-q", "anc(abe,")
    assert status == EXIT_PARSE
    assert "error:" in out


def test_cli_exit_unsafe(tmp_path):
    path = tmp_path / "unsafe.ldl"
    path.write_text("n(0).\nbig(Y) <- big(X), Y = X + 1.\nbig(X) <- n(X).\n")
    status, out = run_cli(str(path), "-q", "big(X)?")
    assert status == EXIT_UNSAFE
    assert "no safe execution" in out


def test_cli_exit_resource_tuples(blowup_file):
    status, out = run_cli(
        str(blowup_file), "-q", "pairs(X, Y)?", "--max-tuples", "100"
    )
    assert status == EXIT_RESOURCE
    assert "live tuples" in out


def test_cli_exit_resource_memory(blowup_file):
    status, out = run_cli(
        str(blowup_file), "-q", "pairs(X, Y)?", "--max-memory", str(100 * 112)
    )
    assert status == EXIT_RESOURCE


def test_cli_timeout_flag_passes_when_generous(family_file):
    status, __ = run_cli(
        str(family_file), "-q", "anc(abe, Y)?", "--timeout", "3600"
    )
    assert status == EXIT_OK


def test_cli_first_failure_code_wins(family_file):
    status, __ = run_cli(
        str(family_file), "-q", "anc(abe,", "-q", "anc(abe, Y)?"
    )
    assert status == EXIT_PARSE


def test_cli_generic_errors_stay_exit_one(family_file):
    status, out = run_cli(str(family_file), "-q", "nosuch(X)?")
    assert status == EXIT_ERROR
    assert "error:" in out
