"""The partitioned-parallel batch tier: parallel ≡ serial, abort parity.

:mod:`repro.engine.parallel` promises a drop-in batch executor: for any
batchable program the parallel tier must produce the same answer sets,
the same per-query profiler counters, the same governor abort types, and
the same span labels as the serial batch tier — partitioning and the
merge barrier must be observationally invisible.  These tests sweep that
property over generated workloads, pin the abort and recovery paths
(budget exhaustion mid-partition, worker death), and check that the
registry-level metrics are parent-only (workers report raw counter
triples over the pipe; they never touch a :class:`MetricsRegistry`, so
nothing can be double-counted no matter how partitions overlap).

The pool is a module-level singleton shared across tests; every test
must leave it reusable (or dead-and-respawnable) for the next one.
"""

import random

import pytest

from repro.datalog.parser import parse_program
from repro.engine.faults import FaultInjector, InjectedFault
from repro.engine.fixpoint import evaluate_program
from repro.engine.governor import ResourceGovernor
from repro.engine.parallel import (
    ParallelPool,
    default_worker_count,
    get_pool,
    shutdown_pools,
)
from repro.errors import ParallelRoundError
from repro.engine.profiler import Profiler
from repro.errors import ExecutionError, TupleBudgetExceeded
from repro.obs.metrics import MetricsRegistry
from repro.storage import Database, relation_from_rows

TC = "p(X, Y) <- e(X, Y). p(X, Y) <- e(X, Z), p(Z, Y)."

PROGRAMS = [
    TC,
    # join across a base and a derived relation
    "p(X, Y) <- e(X, Y). q(X, Z) <- p(X, Y), f(Y, Z).",
    # same-generation: two clique literals per body
    "s(X, Y) <- f(X, Y). s(X, Y) <- e(X, Z), s(Z, W), e(Y, W).",
    # constants in body literals and in the head
    "c(X) <- e(v1, X). k(X, ok) <- c(X), f(X, Y).",
    # an empty probe side (f yields nothing matching) next to a live one
    "q(X, Y) <- e(X, Y), f(Y, X). p(X, Y) <- e(X, Z), p(Z, Y). p(X, Y) <- e(X, Y).",
]


def random_database(rng: random.Random) -> Database:
    db = Database()
    values = [f"v{i}" for i in range(rng.randint(4, 9))]
    for name in ("e", "f"):
        rows = {
            (rng.choice(values), rng.choice(values))
            for _ in range(rng.randint(3, 18))
        }
        db.add_relation(relation_from_rows(name, sorted(rows), arity=2))
    return db


def chain_database(n: int) -> Database:
    db = Database()
    db.load("e", [(f"n{i}", f"n{i + 1}") for i in range(n)])
    return db


def run(db, source, parallel, **kwargs):
    profiler = Profiler()
    result = evaluate_program(
        db,
        parse_program(source),
        profiler=profiler,
        batch=True,
        batch_min_rows=0,
        parallel=parallel,
        parallel_min_rows=0,
        parallel_workers=2,
        **kwargs,
    )
    return result, profiler


# ------------------------------------------------------- serial ≡ parallel


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("source", PROGRAMS)
def test_parallel_matches_serial_answers_and_counters(seed, source):
    """Partitioning must be invisible: identical relations AND identical
    examined/produced/probes, because every input row lands in exactly
    one partition and the barrier replays per-step counter sums."""
    serial, sp = run(random_database(random.Random(seed)), source, parallel=False)
    # regenerate with the same seed so both runs see identical facts
    parallel, pp = run(random_database(random.Random(seed)), source, parallel=True)
    assert parallel.relations == serial.relations
    assert (pp.examined, pp.produced, pp.probes) == (
        sp.examined,
        sp.produced,
        sp.probes,
    )


def test_parallel_matches_serial_on_a_long_chain():
    """Many rounds of deltas, so the pool's cached-store tail shipping
    (base, new_length) protocol is exercised round after round."""
    serial, sp = run(chain_database(60), TC, parallel=False)
    parallel, pp = run(chain_database(60), TC, parallel=True)
    assert parallel["p"] == serial["p"]
    assert len(parallel["p"]) == 60 * 61 // 2
    assert (pp.examined, pp.produced, pp.probes) == (
        sp.examined,
        sp.produced,
        sp.probes,
    )


def test_single_step_plans_fall_back_to_serial():
    """One-literal bodies have no tail to fan out; the parallel executor
    must delegate to the serial step loop, not crash or miscount."""
    db = Database()
    db.load("e", [("a", "b"), ("b", "c")])
    result, __ = run(db, "p(X, Y) <- e(Y, X).", parallel=True)
    assert result["p"] == frozenset({(("b",), ("a",))}) or len(result["p"]) == 2


# ----------------------------------------------------------- abort parity


def _governor(**kwargs):
    return ResourceGovernor(**kwargs).arm()


def test_tuple_budget_abort_parity():
    """Both tiers must raise the same ResourceExhausted subtype when the
    tuple budget dies mid-evaluation."""
    with pytest.raises(TupleBudgetExceeded):
        run(chain_database(80), TC, parallel=False, governor=_governor(max_tuples=500))
    with pytest.raises(TupleBudgetExceeded):
        run(chain_database(80), TC, parallel=True, governor=_governor(max_tuples=500))


def test_pool_survives_a_governor_abort():
    """A budget abort at the barrier must not poison the pool: the next
    query reuses the same workers and still answers correctly."""
    with pytest.raises(TupleBudgetExceeded):
        run(chain_database(80), TC, parallel=True, governor=_governor(max_tuples=500))
    pool = get_pool(2)
    assert pool.alive()
    result, __ = run(chain_database(10), TC, parallel=True)
    assert len(result["p"]) == 10 * 11 // 2
    assert get_pool(2) is pool  # same pool, not a respawn


def test_fault_injection_parity():
    """Checkpoint-site faults fire at the same point in both tiers: the
    parent replays serial checkpoint labels in order at the barrier."""
    for parallel in (False, True):
        faults = FaultInjector().inject("join:p:*", after=2)
        with pytest.raises(InjectedFault):
            run(
                chain_database(30),
                TC,
                parallel=parallel,
                governor=ResourceGovernor(faults=faults).arm(),
            )


def test_dead_worker_is_repaired_not_poisoning():
    """A worker dying mid-round raises ParallelRoundError but leaves the
    pool repaired and usable: the failed worker is respawned (shipped map
    reset for a full re-broadcast) and the same round re-runs as-is."""
    pool = ParallelPool(2)
    victim = pool._procs[0]
    victim.kill()
    victim.join(timeout=5.0)
    task = {"columns": [[1]], "length": 1, "emit_cap": None, "deadline": None,
            "steps": [], "head": ((0,), (None,))}
    with pytest.raises(ParallelRoundError):
        pool.run([task, task], {})
    assert not pool.closed
    assert pool.alive()
    assert pool.repairs == 1
    assert pool._procs[0] is not victim
    assert pool._shipped[0] == {}
    results = pool.run([task, task], {})
    assert results[0]["head"] == {(1,)} and results[1]["head"] == {(1,)}
    pool.close()


def test_engine_respawns_a_dead_pool_transparently():
    """The executor re-checks pool liveness before every dispatch: a
    worker killed between queries costs a respawn, never a wrong answer."""
    pool = get_pool(2)
    pool._procs[0].terminate()
    pool._procs[0].join(timeout=5.0)
    result, __ = run(chain_database(30), TC, parallel=True)
    assert len(result["p"]) == 30 * 31 // 2
    fresh = get_pool(2)
    assert fresh is not pool and fresh.alive()


# ---------------------------------------------------------------- metrics


def test_parallel_metrics_are_parent_only():
    """The registry sees pool gauges and per-rule fan-out counts, and the
    counts are identical run-to-run: workers have no registry handle, so
    there is no double-count path through partitions."""
    metrics = MetricsRegistry()
    run(chain_database(40), TC, parallel=True, metrics=metrics)
    rules = metrics.counter_value("parallel_rules_total")
    assert rules >= 1
    assert metrics.gauge_value("parallel_workers") == 2
    warmup = metrics.gauge_value("parallel_pool_warmup_seconds")
    assert warmup is None or warmup >= 0.0
    histogram = metrics.histogram_for("parallel_partitions")
    assert histogram is not None and histogram.observations >= rules

    again = MetricsRegistry()
    run(chain_database(40), TC, parallel=True, metrics=again)
    assert again.counter_value("parallel_rules_total") == rules


def test_serial_run_records_no_parallel_metrics():
    metrics = MetricsRegistry()
    run(chain_database(40), TC, parallel=False, metrics=metrics)
    assert metrics.counter_value("parallel_rules_total") == 0
    assert metrics.histogram_for("parallel_partitions") is None


# ------------------------------------------------------------------- pool


def test_default_worker_count_is_bounded():
    assert 1 <= default_worker_count() <= 4


def test_shutdown_pools_then_reuse():
    """shutdown_pools (the atexit hook) must leave the module usable:
    the next parallel query simply spawns a fresh pool."""
    shutdown_pools()
    result, __ = run(chain_database(12), TC, parallel=True)
    assert len(result["p"]) == 12 * 13 // 2


def test_pool_close_is_idempotent():
    pool = ParallelPool(1)
    pool.close()
    pool.close()
    assert not pool.alive()
