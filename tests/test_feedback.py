"""The cardinality feedback loop: store, estimator precedence, re-opt.

The contract under test is LEO's, adapted to LDL plans: executed plans
are harvested into a persistent fingerprint → learned-selectivity store,
the cost model prefers fresh learned evidence over static guesses, the
knowledge base evicts (once) a cached plan whose observed q-error
crosses the threshold — and none of it may ever change query *answers*,
only plans.  Telemetry rides along: every ask (cache hits included)
lands one ``repro.telemetry/1`` record.
"""

import io
import json
import math

import pytest

from repro import KnowledgeBase, OptimizerConfig
from repro.cost.estimates import BodyEstimator
from repro.cost.model import StepState
from repro.datalog.parser import parse_program
from repro.obs import JsonlSink, TelemetryLog, validate_events
from repro.obs.feedback import (
    FEEDBACK_SCHEMA,
    FeedbackStore,
    canonical_literal,
    main as feedback_cli,
    step_fingerprint,
)
from repro.storage.statistics import RelationStats
from repro.testing.oracle import Case, DifferentialOracle
from repro.workloads import generate_differential_program

ANC = "anc(X, Y) <- par(X, Y). anc(X, Y) <- par(X, Z), anc(Z, Y)."
PAR = [("abe", "homer"), ("mona", "homer"), ("homer", "bart"), ("homer", "lisa")]


def family_kb(**kwargs):
    kb = KnowledgeBase(OptimizerConfig(strategy="dp", seed=0), **kwargs)
    kb.rules(ANC)
    kb.facts("par", PAR)
    return kb


def skewed_kb(**kwargs):
    """hot(k0) fans out to 60 rows while every other key has one — the
    static uniform guess is off by ~20x, which is what feedback fixes."""
    kb = KnowledgeBase(OptimizerConfig(strategy="dp", seed=0), **kwargs)
    kb.rules("out(W) <- hot(K, V), filt(V), wide(V, W).")
    kb.facts(
        "hot",
        [("k0", f"v{i}") for i in range(60)]
        + [(f"k{j}", "v0") for j in range(1, 40)],
    )
    kb.facts("filt", [(f"v{i}",) for i in range(8)])
    kb.facts("wide", [(f"v{i}", f"w{i}") for i in range(60)])
    return kb


def lit(text):
    (rule,) = parse_program(f"q(X) <- {text}.")
    return rule.body[0]


# ------------------------------------------------------------- fingerprints


def test_canonical_literal_erases_variable_names_but_keeps_constants():
    assert canonical_literal(lit("par(A, B)")) == canonical_literal(lit("par(X, Y)"))
    assert canonical_literal(lit("par(X, X)")) == "par(V0,V0)"
    assert canonical_literal(lit("par(abe, Y)")) == "par(abe,V0)"
    assert canonical_literal(lit("par(abe, Y)")) != canonical_literal(lit("par(X, Y)"))
    assert canonical_literal(lit("~par(X, Y)")).startswith("~")


def test_step_fingerprint_separates_adornment_and_method():
    literal = lit("par(X, Y)")
    assert step_fingerprint(literal, "bf", "index") != step_fingerprint(
        literal, "ff", "index"
    )
    assert step_fingerprint(literal, "bf", "index") != step_fingerprint(
        literal, "bf", "hash"
    )


# ---------------------------------------------------------------- EMA math


def test_ema_update_math():
    store = FeedbackStore(alpha=0.5)
    fp = "step|par(V0,V1)|bf|index"
    store.record(fp, kind="step", predicate="par", method="index",
                 observed=8.0, est=1.0, act=8.0)
    entry = store.get(fp)
    assert entry.value == 8.0 and entry.observations == 1
    store.record(fp, kind="step", predicate="par", method="index",
                 observed=4.0, est=1.0, act=4.0)
    # EMA: 0.5*4 + 0.5*8
    assert entry.value == pytest.approx(6.0)
    assert entry.observations == 2
    store.record(fp, kind="step", predicate="par", method="index",
                 observed=2.0, est=1.0, act=2.0)
    assert entry.value == pytest.approx(0.5 * 2.0 + 0.5 * 6.0)
    assert entry.max_qerror == pytest.approx(8.0)  # worst of 8x, 4x, 2x


def test_staleness_decay_blends_toward_static_and_expires():
    store = FeedbackStore(staleness_half_life=4, min_weight=0.05)
    literal = lit("par(abe, Y)")
    store.record(step_fingerprint(literal, "bf", "index"), kind="step",
                 predicate="par", method="index", observed=100.0, est=10.0, act=100.0)
    fresh = store.learned_fanout(literal, frozenset(), "index", 10.0)
    assert fresh == pytest.approx(100.0)
    store.tick += 4  # one half-life: halfway back to static
    assert store.learned_fanout(literal, frozenset(), "index", 10.0) == pytest.approx(
        0.5 * 100.0 + 0.5 * 10.0
    )
    store.tick += 40  # ~11 half-lives: weight < min_weight, entry expires
    assert store.learned_fanout(literal, frozenset(), "index", 10.0) is None


def test_min_observations_gate():
    store = FeedbackStore(min_observations=2)
    literal = lit("par(abe, Y)")
    store.record(step_fingerprint(literal, "bf", "index"), kind="step",
                 predicate="par", method="index", observed=50.0, est=5.0, act=50.0)
    assert store.learned_fanout(literal, frozenset(), "index", 5.0) is None
    store.record(step_fingerprint(literal, "bf", "index"), kind="step",
                 predicate="par", method="index", observed=50.0, est=5.0, act=50.0)
    assert store.learned_fanout(literal, frozenset(), "index", 5.0) is not None


def test_method_wildcard_fallback():
    store = FeedbackStore()
    literal = lit("par(abe, Y)")
    store.record(step_fingerprint(literal, "bf", "*"), kind="step",
                 predicate="par", method="*", observed=42.0, est=1.0, act=42.0)
    # never executed with merge, but the wildcard carries the cardinality
    assert store.learned_fanout(literal, frozenset(), "merge", 1.0) == pytest.approx(42.0)
    assert store.has_fanout(literal, frozenset(), "merge")


# ------------------------------------------------------------- persistence


def test_store_round_trips_through_jsonl(tmp_path):
    path = tmp_path / "feedback.jsonl"
    store = FeedbackStore(path)
    literal = lit("par(abe, Y)")
    store.tick = 7
    store.record(step_fingerprint(literal, "bf", "index"), kind="step",
                 predicate="par", method="index", observed=12.0, est=2.0, act=12.0)
    store.flush()
    lines = path.read_text().splitlines()
    assert json.loads(lines[0]) == {
        "schema": FEEDBACK_SCHEMA, "type": "meta", "tick": 7,
    }
    reloaded = FeedbackStore(path)
    assert reloaded.tick == 7
    assert len(reloaded) == 1
    assert reloaded.learned_fanout(literal, frozenset(), "index", 2.0) == pytest.approx(12.0)
    assert reloaded.load_errors == []


def test_load_is_lenient_about_garbage_lines(tmp_path):
    path = tmp_path / "feedback.jsonl"
    path.write_text(
        json.dumps({"schema": FEEDBACK_SCHEMA, "type": "meta", "tick": 3}) + "\n"
        + "not json at all\n"
        + json.dumps({"schema": "other/1", "type": "entry"}) + "\n"
        + json.dumps({
            "schema": FEEDBACK_SCHEMA, "type": "entry",
            "fingerprint": "step|p(V0)|f|index", "kind": "step",
            "predicate": "p", "method": "index", "value": 2.0,
            "observations": 1, "last_tick": 1,
        }) + "\n"
    )
    store = FeedbackStore(path)
    assert len(store) == 1
    assert len(store.load_errors) == 2


def test_persistence_across_knowledge_base_restarts(tmp_path):
    path = tmp_path / "feedback.jsonl"
    kb = skewed_kb(feedback=str(path), result_cache=False)
    first = sorted(kb.ask("out(W)?").to_python())
    assert len(kb.feedback) > 0
    kb.close()

    # a fresh KnowledgeBase (fresh process, conceptually) starts with the
    # learned cardinalities already applied to its very first plan
    kb2 = skewed_kb(feedback=str(path), result_cache=False)
    assert len(kb2.feedback) == len(kb.feedback)
    plan = kb2.explain("out(W)?")
    assert "~learned" in plan
    assert sorted(kb2.ask("out(W)?").to_python()) == first
    kb2.close()


def test_lru_eviction_bounds_the_store():
    store = FeedbackStore(max_entries=4)
    for i in range(10):
        store.tick = i
        store.record(f"step|p{i}(V0)|f|index", kind="step", predicate=f"p{i}",
                     method="index", observed=1.0, est=1.0, act=1.0)
    assert len(store) == 4
    # the survivors are the most recently ticked
    assert {e.predicate for e in store.entries()} == {"p6", "p7", "p8", "p9"}


# ------------------------------------------- estimator precedence


def _estimator(feedback=None):
    stats = {"par": RelationStats.declared(100.0, [10.0, 10.0])}

    class _Provider:
        def stats_for(self, name):
            return stats.get(name)

    return BodyEstimator(_Provider(), feedback=feedback)


def test_learned_fanout_takes_precedence_over_static_guess():
    literal = lit("par(abe, Y)")
    static = _estimator()
    state0 = StepState(1.0, frozenset(), 0.0)
    baseline = static.base_step(
        state0, literal, static.stats_for("par", 2), "index"
    )
    store = FeedbackStore()
    store.record(step_fingerprint(literal, "bf", "index"), kind="step",
                 predicate="par", method="index", observed=77.0, est=10.0, act=77.0)
    learned = _estimator(feedback=store).base_step(
        state0, literal, static.stats_for("par", 2), "index"
    )
    assert baseline.card == pytest.approx(10.0)  # 100 * 1/10
    assert learned.card == pytest.approx(77.0)
    # an empty store changes nothing
    both = _estimator(feedback=FeedbackStore()).base_step(
        state0, literal, static.stats_for("par", 2), "index"
    )
    assert both.card == baseline.card


def test_learned_values_never_resurrect_infinite_estimates():
    store = FeedbackStore()
    literal = lit("par(abe, Y)")
    store.record(step_fingerprint(literal, "bf", "index"), kind="step",
                 predicate="par", method="index", observed=5.0, est=1.0, act=5.0)
    entry = store.get(step_fingerprint(literal, "bf", "index"))
    assert store._blend(entry, math.inf) == math.inf
    assert store.learned_node_card("or", "p/1", "f", None, math.inf) is None


# ------------------------------------------------------------ re-opt


def test_auto_reopt_evicts_once_per_threshold_crossing():
    kb = skewed_kb(result_cache=False, reopt_qerror_threshold=2.0)
    q = "out(W)?"
    first = sorted(kb.ask(q).to_python())
    assert kb.telemetry.last["reopt"] is True
    assert kb.metrics.counter_total("reopt_total") == 1
    key = next(iter([("out(W)", "f")]))
    assert key not in kb._compiled  # evicted

    # the replanned form re-caches; even if its q-error still crosses the
    # threshold, re-opt must NOT fire again for this form
    second = sorted(kb.ask(q).to_python())
    assert second == first
    assert kb.telemetry.last["reopt"] is False
    assert kb.metrics.counter_total("reopt_total") == 1
    third = sorted(kb.ask(q).to_python())
    assert third == first
    assert kb.metrics.counter_total("reopt_total") == 1

    # a data change invalidates plans AND re-arms the trigger
    kb.facts("hot", [("k0", "v_new")])
    assert kb._reopt_fired == set()
    # forget the learned truths: the fresh plan misestimates statically
    # again, and the re-armed trigger fires a second time
    kb.feedback.clear()
    kb.ask(q)
    assert kb.metrics.counter_total("reopt_total") == 2


def test_feedback_off_means_fully_static():
    kb = skewed_kb(feedback=False, result_cache=False)
    q = "out(W)?"
    kb.ask(q)
    assert kb.feedback is None
    assert kb.metrics.counter_total("reopt_total") == 0
    assert "~learned" not in kb.explain(q)
    assert kb.telemetry.last["worst_qerror"] == 1.0  # nothing measured


def test_feedback_informs_the_replan():
    kb = skewed_kb(result_cache=False, reopt_qerror_threshold=2.0)
    q = "out(W)?"
    kb.ask(q)
    replanned = kb.explain(q)
    assert "~learned" in replanned
    # the replanned execution's estimates track reality much more closely
    worst_before = kb.telemetry.events()[0]["worst_qerror"]
    kb.ask(q)
    worst_after = kb.telemetry.last["worst_qerror"]
    assert worst_after < worst_before


# ---------------------------------------------------------------- telemetry


def test_telemetry_records_every_ask_including_cache_hits():
    kb = family_kb()
    kb.ask("anc(abe, Y)?")
    assert kb.telemetry.last["tier"] == "row"
    assert kb.telemetry.last["cache"] == "miss"
    kb.ask("anc(abe, Y)?")
    hit = kb.telemetry.last
    assert hit["tier"] == "cache" and hit["cache"] == "hit"
    assert hit["rows"] == 3
    assert len(kb.telemetry) == 2
    assert kb.telemetry.by_tier() == {"cache": 1, "row": 1}


def test_telemetry_ring_buffer_drops_oldest():
    log = TelemetryLog(capacity=2)
    for i in range(5):
        log.record(goal=f"q{i}", adornment="f", wall_ms=float(i), tier="row",
                   cache="off", rows=i, worst_qerror=1.0, denials=0, reopt=False)
    assert len(log) == 2
    assert [e["goal"] for e in log.events()] == ["q3", "q4"]
    assert log.records_total == 5
    assert log.slow_queries(1)[0]["goal"] == "q4"


def test_telemetry_jsonl_stream_validates(tmp_path):
    out = io.StringIO()
    kb = family_kb(telemetry_sink=JsonlSink(out))
    kb.ask("anc(abe, Y)?")
    kb.ask("anc(abe, Y)?")  # cache hit — also a record
    lines = out.getvalue().splitlines()
    assert len(lines) == 2
    assert validate_events(lines) == []
    assert json.loads(lines[0])["schema"] == "repro.telemetry/1"


def test_telemetry_validator_rejects_malformed_records():
    good = TelemetryLog(capacity=1).record(
        goal="q", adornment="f", wall_ms=1.0, tier="row", cache="off",
        rows=0, worst_qerror=1.0, denials=0, reopt=False,
    )
    assert validate_events([json.dumps(good)]) == []
    bad = dict(good, tier="hovercraft")
    assert any("tier" in p for p in validate_events([json.dumps(bad)]))
    missing = {k: v for k, v in good.items() if k != "rows"}
    assert any("rows" in p for p in validate_events([json.dumps(missing)]))


def test_trace_validator_accepts_new_span_labels():
    def span(name, kind, span_id):
        return json.dumps({
            "schema": "repro.trace/1", "type": "span", "id": span_id,
            "parent": None, "name": name, "kind": kind, "depth": 0,
            "attrs": {}, "counters": _counters(), "self_counters": _counters(),
            "wall_ms": 0.1, "status": "ok",
        })

    def _counters():
        from repro.obs import COUNTER_FIELDS
        return {k: 0 for k in COUNTER_FIELDS}

    good = [
        span("partition:3", "partition", 1),
        span("parallel_retry", "recovery", 2),
        span("degrade:parallel->batch", "warning", 3),
        span("spill-stream:par", "operator", 4),
    ]
    assert validate_events(good) == []
    assert any(
        "kind" in p for p in validate_events([span("partition:3", "operator", 1)])
    )
    assert any(
        "malformed" in p for p in validate_events([span("partition:x", "partition", 1)])
    )
    assert any(
        "unknown span kind" in p for p in validate_events([span("foo", "mystery", 1)])
    )


# ------------------------------------------------------------------- CLI


def test_feedback_cli_dump_stats_clear(tmp_path, capsys):
    path = tmp_path / "fb.jsonl"
    kb = skewed_kb(feedback=str(path), result_cache=False)
    kb.ask("out(W)?")
    kb.close()

    assert feedback_cli(["stats", str(path)]) == 0
    stats_out = capsys.readouterr().out
    assert "entries:" in stats_out and "worst q-error" in stats_out

    assert feedback_cli(["dump", "--top", "3", str(path)]) == 0
    dump_out = capsys.readouterr().out
    assert "step|hot(" in dump_out

    assert feedback_cli(["clear", str(path)]) == 0
    capsys.readouterr()
    assert feedback_cli(["dump", str(path)]) == 0
    assert "no entries" in capsys.readouterr().out

    assert feedback_cli(["dump", str(tmp_path / "missing.jsonl")]) == 1


# ----------------------------------------------- the answer-identity sweep


def test_feedback_differential_sweep_50_seeds():
    """Feedback changes plans, never answers: 50 seeded random programs
    through the kb-feedback runner (ask, learn, force a replan, ask
    again) against the interpreted reference — zero disagreements."""
    oracle = DifferentialOracle(strategies=["kb-feedback"])
    cases = 0
    for seed in range(50):
        sample = generate_differential_program(seed)
        for query in sample.queries[:1]:
            case = Case.make(sample.rules, sample.facts, query)
            disagreements = oracle.check(case)
            assert disagreements == [], (
                f"seed {seed}: feedback changed answers: {disagreements}"
            )
            cases += 1
    assert cases >= 50
