"""Storage substrate tests: relations, indexes, catalog, statistics, loaders."""

import pytest
from hypothesis import given, strategies as st

from repro.datalog.terms import Constant, Struct
from repro.errors import SchemaError
from repro.storage import (
    Database,
    Relation,
    collect_statistics,
    dump_facts_text,
    load_facts_text,
    load_tsv,
    relation_from_rows,
)
from repro.storage.statistics import DeclaredStatistics, RelationStats


# -- relations ------------------------------------------------------------------


def test_insert_and_dedupe():
    r = Relation("p", 2)
    assert r.insert_values(("a", 1))
    assert not r.insert_values(("a", 1))
    assert len(r) == 1


def test_arity_and_groundness_enforced():
    r = Relation("p", 2)
    with pytest.raises(SchemaError):
        r.insert_values(("a",))
    from repro.datalog.terms import Variable

    with pytest.raises(SchemaError):
        r.insert((Constant("a"), Variable("X")))


def test_complex_terms_stored():
    r = Relation("owns", 2)
    r.insert((Constant("joe"), Struct("bike", (Constant("red"),))))
    assert (Constant("joe"), Struct("bike", (Constant("red"),))) in r


def test_zero_arity_relation():
    r = Relation("flag", 0)
    assert r.insert(())
    assert len(r) == 1


def test_negative_arity_rejected():
    with pytest.raises(SchemaError):
        Relation("p", -1)


def test_index_lookup():
    r = relation_from_rows("e", [("a", "b"), ("a", "c"), ("b", "c")])
    index = r.ensure_index([0])
    assert index.distinct_keys == 2
    rows = set(r.lookup([0], (Constant("a"),)))
    assert rows == {(Constant("a"), Constant("b")), (Constant("a"), Constant("c"))}


def test_index_maintained_on_insert():
    r = Relation("e", 2)
    r.ensure_index([1])
    r.insert_values(("a", "b"))
    assert set(r.lookup([1], (Constant("b"),))) == {(Constant("a"), Constant("b"))}


def test_lookup_without_index_scans():
    r = relation_from_rows("e", [("a", "b"), ("b", "c")])
    assert set(r.lookup([1], (Constant("c"),))) == {(Constant("b"), Constant("c"))}


def test_index_position_out_of_range():
    with pytest.raises(SchemaError):
        Relation("p", 2).ensure_index([5])


def test_relation_copy_independent():
    r = relation_from_rows("e", [("a", "b")])
    c = r.copy()
    c.insert_values(("x", "y"))
    assert len(r) == 1 and len(c) == 2


# -- catalog ----------------------------------------------------------------------


def test_database_create_and_load():
    db = Database()
    db.load("e", [("a", "b"), ("b", "c")])
    assert "e" in db
    assert len(db.relation("e")) == 2
    with pytest.raises(SchemaError):
        db.relation("missing")


def test_database_duplicate_name_rejected():
    db = Database()
    db.create("e", 2)
    with pytest.raises(SchemaError):
        db.create("e", 2)


def test_stats_cached_and_invalidated():
    db = Database()
    db.load("e", [("a", "b")])
    stats1 = db.stats_for("e")
    assert stats1.cardinality == 1
    db.load("e", [("b", "c")])
    stats2 = db.stats_for("e")
    assert stats2.cardinality == 2


def test_declared_stats_override():
    db = Database()
    db.load("e", [("a", "b")])
    db.declare_stats("e", RelationStats.declared(1000, [100, 10]))
    assert db.stats_for("e").cardinality == 1000


# -- statistics --------------------------------------------------------------------


def test_collect_statistics_distincts_and_minmax():
    r = relation_from_rows("m", [("a", 1), ("b", 2), ("a", 3)])
    stats = collect_statistics(r)
    assert stats.cardinality == 3
    assert stats.columns[0].distinct == 2
    assert stats.columns[1].minimum == 1 and stats.columns[1].maximum == 3


def test_acyclicity_detection():
    acyclic = relation_from_rows("d", [("a", "b"), ("b", "c")])
    cyclic = relation_from_rows("c", [("a", "b"), ("b", "a")])
    assert collect_statistics(acyclic).acyclic is True
    assert collect_statistics(cyclic).acyclic is False
    ternary = relation_from_rows("t", [("a", "b", "c")])
    assert collect_statistics(ternary).acyclic is None


def test_fanout_and_distinct():
    stats = RelationStats.declared(100, [10, 50])
    assert stats.fanout(0) == 10.0
    assert stats.distinct(1) == 50.0


def test_declared_statistics_provider():
    provider = DeclaredStatistics()
    provider.declare("e", 100, [10, 10], acyclic=True)
    assert provider.stats_for("e").acyclic is True
    assert provider.stats_for("missing") is None
    assert "e" in provider


# -- loaders -----------------------------------------------------------------------


def test_load_facts_text_roundtrip():
    db = Database()
    n = load_facts_text(db, "up(a, b). up(b, c). flat(c, c).")
    assert n == 3
    dumped = dump_facts_text(db)
    db2 = Database()
    assert load_facts_text(db2, dumped) == 3
    assert db2.relation("up").rows == db.relation("up").rows


def test_load_facts_text_rejects_rules_and_vars():
    from repro.errors import KnowledgeBaseError

    db = Database()
    with pytest.raises(KnowledgeBaseError):
        load_facts_text(db, "p(X) <- q(X).")
    with pytest.raises(KnowledgeBaseError):
        load_facts_text(db, "p(X).")


def test_load_facts_with_complex_terms():
    db = Database()
    load_facts_text(db, "owns(joe, bike(front_wheel)).")
    row = next(iter(db.relation("owns")))
    assert row[1] == Struct("bike", (Constant("front_wheel"),))


def test_load_tsv_types():
    db = Database()
    n = load_tsv(db, "m", ["a\t1", "b\t2.5", "# comment", "", "c\ttext"])
    assert n == 3
    values = {tuple(f.value for f in row) for row in db.relation("m")}
    assert values == {("a", 1), ("b", 2.5), ("c", "text")}


@given(st.sets(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=30))
def test_relation_set_semantics(rows):
    r = Relation("p", 2)
    for row in rows:
        r.insert_values(row)
    for row in rows:  # duplicates change nothing
        r.insert_values(row)
    assert len(r) == len(rows)
