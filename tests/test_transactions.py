"""Transactional updates: atomicity at the Database and KnowledgeBase layer.

The fault-tolerance contract (docs/robustness.md) for mutations is
all-or-nothing: any group of ``insert``/``retract``/rule changes inside
``with db.transaction():`` / ``with kb.transaction():`` either commits as
one unit — version vector bumped, result-cache/batch-store invalidation
fired exactly once — or, on any exception, leaves the database
byte-identical to before ``begin``: rows, versions, schema, statistics,
spilled SQLite state, compiled rules, and the cross-query result cache.
"""

import pytest

from repro.engine.parallel import shutdown_pools
from repro.errors import TransactionError
from repro.kb import KnowledgeBase
from repro.storage import Database
from repro.storage.backend import SpilledRelation
from repro.datalog.intern import TermInterner
from repro.storage.relation import Relation


class Boom(RuntimeError):
    """A foreign, non-Repro error: rollback must not depend on the type."""


def db_state(db):
    """Everything the byte-identical guarantee covers, comparable."""
    return {
        "names": db.names,
        "rows": {r.name: frozenset(r) for r in db},
        "versions": db.version_vector(),
    }


@pytest.fixture(autouse=True, scope="module")
def _pool_teardown():
    yield
    shutdown_pools()


# ----------------------------------------------------------- Database layer


def test_commit_applies_the_whole_group():
    db = Database()
    db.create("e", 2)
    db.load("e", [("a", "b")])
    with db.transaction():
        db.load("e", [("b", "c"), ("c", "d")])
        db.retract("e", [("a", "b")])
    rows = {tuple(str(t) for t in row) for row in db.relation("e")}
    assert rows == {("b", "c"), ("c", "d")}


def test_rollback_restores_rows_versions_and_schema():
    db = Database()
    db.create("e", 2)
    db.load("e", [("a", "b"), ("b", "c")])
    before = db_state(db)
    with pytest.raises(Boom):
        with db.transaction():
            db.load("e", [("c", "d")])
            db.retract("e", [("a", "b")])
            db.create("fresh", 1)
            db.load("fresh", [("x",)])
            db.drop("e")
            raise Boom()
    assert db_state(db) == before
    assert "fresh" not in db


def test_rollback_restores_a_dropped_then_recreated_name():
    db = Database()
    db.create("e", 2)
    db.load("e", [("a", "b")])
    before = db_state(db)
    with pytest.raises(Boom):
        with db.transaction():
            db.drop("e")
            db.create("e", 1)
            db.load("e", [("solo",)])
            raise Boom()
    assert db_state(db) == before


def test_nested_and_orphan_transaction_calls_are_typed_errors():
    db = Database()
    with pytest.raises(TransactionError):
        db.commit_transaction()
    with pytest.raises(TransactionError):
        db.rollback_transaction()
    db.begin_transaction()
    with pytest.raises(TransactionError):
        db.begin_transaction()
    db.rollback_transaction()
    assert not db.in_transaction


def test_sqlite_rollback_restores_spilled_rows():
    db = Database(backend="sqlite", spill_threshold=4)
    db.create("e", 2)
    db.load("e", [(f"n{i}", f"n{i + 1}") for i in range(10)])
    relation = db.relation("e")
    assert isinstance(relation, SpilledRelation)
    before = db_state(db)
    with pytest.raises(Boom):
        with db.transaction():
            db.load("e", [("x", "y")])
            db.retract("e", [("n0", "n1")])
            raise Boom()
    assert db_state(db) == before
    db.close()


def test_spill_migration_is_deferred_to_commit():
    db = Database(backend="sqlite", spill_threshold=4)
    db.create("e", 2)
    db.load("e", [("a", "b")])
    with db.transaction():
        db.load("e", [(f"n{i}", f"n{i + 1}") for i in range(10)])
        # still resident inside the txn: the physical class never
        # changes while an undo log points at it
        assert isinstance(db.relation("e"), Relation)
    assert isinstance(db.relation("e"), SpilledRelation)
    db.close()


def test_aborted_spill_migration_stays_resident():
    db = Database(backend="sqlite", spill_threshold=4)
    db.create("e", 2)
    db.load("e", [("a", "b")])
    before = db_state(db)
    with pytest.raises(Boom):
        with db.transaction():
            db.load("e", [(f"n{i}", f"n{i + 1}") for i in range(10)])
            raise Boom()
    assert isinstance(db.relation("e"), Relation)
    assert db_state(db) == before
    db.close()


def test_rollback_drops_caches_built_inside_the_transaction():
    db = Database()
    db.create("e", 2)
    db.load("e", [("a", "b")])
    interner = TermInterner()
    before_version = db.relation("e").version
    with pytest.raises(Boom):
        with db.transaction():
            db.load("e", [("b", "c")])
            # build version-keyed caches against the uncommitted rows
            db.relation("e").batch_store(interner)
            raise Boom()
    relation = db.relation("e")
    assert relation.version == before_version
    # the rebuilt mirror must describe the restored rows, not the
    # discarded ones (a stale cache would validate against the reused
    # version number)
    store = relation.batch_store(interner)
    assert store.length == 1


# ------------------------------------------------------ KnowledgeBase layer

TC_RULES = "path(X, Y) <- e(X, Y). path(X, Y) <- e(X, Z), path(Z, Y)."


def fresh_kb():
    kb = KnowledgeBase()
    kb.rules(TC_RULES)
    kb.facts("e", [("a", "b"), ("b", "c"), ("c", "d")])
    return kb


def answers(kb, query="path(a, X)?"):
    return frozenset(
        tuple(str(t) for t in row) for row in kb.ask(query).rows
    )


def test_kb_commit_is_atomic_and_visible():
    kb = fresh_kb()
    assert ("d",) in answers(kb)
    with kb.transaction():
        kb.retract("e", [("c", "d")])
        kb.facts("e", [("c", "z")])
    got = answers(kb)
    assert ("z",) in got and ("d",) not in got


def test_kb_transaction_counts_commit_and_rollback_outcomes():
    kb = fresh_kb()
    with kb.transaction():
        kb.facts("e", [("d", "e")])
    with pytest.raises(Boom):
        with kb.transaction():
            kb.facts("e", [("d", "q")])
            raise Boom()
    assert kb.metrics.counter_total("transactions_total") == 2
    got = answers(kb)
    assert ("e",) in got and ("q",) not in got


def test_kb_rule_change_rolls_back_with_the_transaction():
    kb = fresh_kb()
    before = answers(kb)
    with pytest.raises(Boom):
        with kb.transaction():
            kb.rules("path(X, Y) <- e(Y, X).")
            raise Boom()
    assert len(kb._rules) == 2
    assert answers(kb) == before


def test_retract_under_failure_restores_every_derived_artifact():
    """Satellite: a transaction raising after a retract leaves derived
    relations, columnar BatchStores, and the kb.ask result cache exactly
    as before the transaction opened."""
    kb = fresh_kb()
    before = answers(kb)  # also primes the result cache
    cache_before = dict(kb._result_cache)
    version_before = kb.db.version_vector()
    with pytest.raises(Boom):
        with kb.transaction():
            kb.retract("e", [("a", "b")])
            kb.facts("e", [("a", "q")])
            # evaluate mid-txn so derived state is rebuilt against the
            # uncommitted retract ...
            assert ("q",) in answers(kb)
            raise Boom()
    # ... and the rollback must erase all of it
    assert kb.db.version_vector() == version_before
    assert kb._result_cache == cache_before
    assert answers(kb) == before
    base = {tuple(str(t) for t in row) for row in kb.db.relation("e")}
    assert base == {("a", "b"), ("b", "c"), ("c", "d")}


def test_kb_transaction_open_flag_and_closed_kb():
    kb = fresh_kb()
    assert not kb.in_transaction
    with kb.transaction():
        assert kb.in_transaction
    assert not kb.in_transaction
    kb.close()
