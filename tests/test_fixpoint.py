"""Fixpoint engine tests: semantics, strategies, stratification, guards."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import parse_program
from repro.datalog.terms import Constant
from repro.engine.fixpoint import FixpointEngine, evaluate_program
from repro.errors import ExecutionError
from repro.storage import Database
from repro.workloads import random_dag, random_graph


def values(rows):
    return {tuple(f.value for f in row) for row in rows}


def tc_db(edges):
    db = Database()
    db.load("e", edges)
    return db


TC = "t(X, Y) <- e(X, Y). t(X, Y) <- e(X, Z), t(Z, Y)."


def python_tc(edges):
    """Reference transitive closure in plain Python."""
    out = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(out):
            for (c, d) in list(out):
                if b == c and (a, d) not in out:
                    out.add((a, d))
                    changed = True
    return out


def test_transitive_closure_chain():
    edges = [("a", "b"), ("b", "c"), ("c", "d")]
    result = evaluate_program(tc_db(edges), parse_program(TC))
    assert values(result["t"]) == python_tc(edges)


def test_transitive_closure_cycle_terminates():
    edges = [("a", "b"), ("b", "a")]
    result = evaluate_program(tc_db(edges), parse_program(TC))
    assert values(result["t"]) == {("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")}


def test_naive_equals_seminaive():
    edges = [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]
    db = tc_db(edges)
    semi = evaluate_program(db, parse_program(TC))
    naive = evaluate_program(db, parse_program(TC), naive=True)
    assert semi["t"] == naive["t"]
    # and semi-naive does less work
    assert semi.profiler.total_work <= naive.profiler.total_work


def test_mutual_recursion():
    program = parse_program(
        """
        even(X) <- zero(X).
        even(Y) <- succ(X, Y), odd(X).
        odd(Y) <- succ(X, Y), even(X).
        """
    )
    db = Database()
    db.load("zero", [(0,)])
    db.load("succ", [(i, i + 1) for i in range(6)])
    result = evaluate_program(db, program)
    assert values(result["even"]) == {(0,), (2,), (4,), (6,)}
    assert values(result["odd"]) == {(1,), (3,), (5,)}


def test_nonrecursive_layering():
    program = parse_program(
        """
        gp(X, Z) <- par(X, Y), par(Y, Z).
        ggp(X, W) <- gp(X, Z), par(Z, W).
        """
    )
    db = Database()
    db.load("par", [("a", "b"), ("b", "c"), ("c", "d")])
    result = evaluate_program(db, program)
    assert values(result["gp"]) == {("a", "c"), ("b", "d")}
    assert values(result["ggp"]) == {("a", "d")}


def test_comparisons_in_rules():
    program = parse_program("big(X, Y) <- m(X, Y), Y > 10.")
    db = Database()
    db.load("m", [("a", 5), ("b", 15)])
    result = evaluate_program(db, program)
    assert values(result["big"]) == {("b", 15)}


def test_arithmetic_binding_in_rules():
    program = parse_program("next(X, Y) <- num(X), Y = X + 1.")
    db = Database()
    db.load("num", [(1,), (2,)])
    result = evaluate_program(db, program)
    assert values(result["next"]) == {(1, 2), (2, 3)}


def test_body_reordering_makes_textual_unsafe_order_work():
    # evaluable predicate textually first: greedy reorder must fix it
    program = parse_program("next(X, Y) <- Y = X + 1, num(X).")
    db = Database()
    db.load("num", [(1,)])
    result = evaluate_program(db, program)
    assert values(result["next"]) == {(1, 2)}


def test_trusted_order_raises_when_unsafe():
    program = parse_program("next(X, Y) <- Y = X + 1, num(X).")
    db = Database()
    db.load("num", [(1,)])
    with pytest.raises(ExecutionError):
        evaluate_program(db, program, reorder_bodies=False)


def test_stratified_negation():
    program = parse_program(
        """
        reach(X, Y) <- e(X, Y).
        reach(X, Y) <- e(X, Z), reach(Z, Y).
        cut(X, Y) <- e(X, Y), ~reach(Y, X).
        """
    )
    db = tc_db([("a", "b"), ("b", "a"), ("b", "c")])
    result = evaluate_program(db, program)
    assert values(result["cut"]) == {("b", "c")}


def test_unstratified_rejected():
    from repro.errors import KnowledgeBaseError

    program = parse_program("win(X) <- move(X, Y), ~win(Y).")
    db = Database()
    db.load("move", [("a", "b")])
    with pytest.raises(KnowledgeBaseError):
        evaluate_program(db, program)


def test_unknown_predicate_raises():
    program = parse_program("p(X) <- mystery(X).")
    with pytest.raises(ExecutionError):
        evaluate_program(Database(), program)


def test_arity_mismatch_raises():
    program = parse_program("p(X) <- e(X).")
    db = Database()
    db.load("e", [("a", "b")])
    with pytest.raises(ExecutionError):
        evaluate_program(db, program)


def test_iteration_guard_stops_value_invention():
    program = parse_program("nat(Y) <- nat0(Y). nat(Y) <- nat(X), Y = X + 1.")
    db = Database()
    db.load("nat0", [(0,)])
    engine = FixpointEngine(db, max_iterations=50)
    with pytest.raises(ExecutionError):
        engine.evaluate(parse_program("nat(Y) <- nat0(Y). nat(Y) <- nat(X), Y = X + 1."))


def test_tuple_guard():
    program = parse_program(TC)
    db = tc_db([(f"n{i}", f"n{j}") for i in range(15) for j in range(15) if i != j])
    engine = FixpointEngine(db, max_tuples=10)
    with pytest.raises(ExecutionError):
        engine.evaluate(program)


def test_seeds_participate():
    program = parse_program("t(X, Y) <- seedrel(X), e(X, Y).")
    db = tc_db([("a", "b"), ("c", "d")])
    result = evaluate_program(db, program, seeds={"seedrel": {(Constant("a"),)}})
    assert values(result["t"]) == {("a", "b")}


def test_function_symbols_in_fixpoint():
    """Structural recursion over stored complex terms: all suffixes of a list."""
    program = parse_program(
        """
        suffix(L, L) <- list(L).
        suffix(T, L) <- suffix(cons(H, T), L).
        """
    )
    db = Database()
    from repro.datalog.terms import Constant as C, make_list

    lst = make_list([C(1), C(2)])
    db.create("list", 1).insert((lst,))
    result = evaluate_program(db, program)
    suffixes = {row[0] for row in result["suffix"]}
    assert suffixes == {lst, make_list([C(2)]), C("nil")}


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_tc_matches_reference_on_random_graphs(seed):
    db = Database()
    random_graph(db, "e", nodes=8, edges=14, seed=seed)
    edges = {tuple(f.value for f in row) for row in db.relation("e")}
    result = evaluate_program(db, parse_program(TC))
    assert values(result["t"]) == python_tc(edges)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_naive_equals_seminaive_property(seed):
    db = Database()
    random_dag(db, "e", nodes=10, edges=18, seed=seed)
    semi = evaluate_program(db, parse_program(TC))
    naive = evaluate_program(db, parse_program(TC), naive=True)
    assert semi["t"] == naive["t"]
