"""Integration: the Figure 2-1 rule base end to end, plus nonlinear magic.

The paper's own running example, compiled and executed for every derived
predicate in both free and bound forms, against the reference fixpoint —
and the magic rewrite exercised on a *nonlinear* clique (two recursive
literals per rule), which the OPT machinery must also handle.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import KnowledgeBase, Optimizer, OptimizerConfig
from repro.datalog import (
    BindingPattern,
    CPermutation,
    DependencyGraph,
    PredicateRef,
    adorn_clique,
    magic_rewrite,
    parse_program,
    parse_query,
)
from repro.engine import Interpreter, evaluate_program
from repro.storage import Database
from repro.workloads import paper_database, paper_program
from repro.workloads.paper_rulebase import PAPER_RULEBASE


def paper_kb(seed=2, scale=25) -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.rules(PAPER_RULEBASE)
    db = paper_database(seed=seed, scale=scale)
    for name in ("b1", "b2", "b3", "b4", "b5"):
        kb.facts(name, [tuple(f.value for f in row) for row in db.relation(name)])
    return kb


def reference(kb: KnowledgeBase):
    result = evaluate_program(kb.db, kb.program)
    return {
        name: {tuple(f.value for f in row) for row in result.rows(name)}
        for name in ("p1", "p2", "p3", "p4")
    }


def test_every_predicate_free_form_matches_reference():
    kb = paper_kb()
    expected = reference(kb)
    for name in ("p1", "p2", "p3", "p4"):
        got = set(kb.ask(f"{name}(X, Y)?").to_python())
        assert got == expected[name], name


def test_every_predicate_bound_form_matches_reference():
    kb = paper_kb()
    expected = reference(kb)
    for name in ("p1", "p2", "p3", "p4"):
        sources = sorted({x for x, __ in expected[name]})[:3]
        for source in sources:
            got = {(source, y) for (y,) in kb.ask(f"{name}($X, Y)?", X=source).to_python()}
            assert got == {(x, y) for x, y in expected[name] if x == source}, (name, source)


def test_reverse_bound_form_matches_reference():
    kb = paper_kb()
    expected = reference(kb)
    targets = sorted({y for __, y in expected["p1"]})[:2]
    for target in targets:
        got = {(x, target) for (x,) in kb.ask("p1(X, $Y)?", Y=target).to_python()}
        assert got == {(x, y) for x, y in expected["p1"] if y == target}


def test_recursive_clique_is_p2_and_contracts():
    kb = paper_kb()
    compiled = kb.compile("p1($X, Y)?")
    from repro.plans import plan_nodes
    from repro.plans.nodes import FixpointNode

    cc_nodes = [n for n in plan_nodes(compiled.plan) if isinstance(n, FixpointNode)]
    assert cc_nodes
    assert all(n.ref == PredicateRef("p2", 2) for n in cc_nodes)


# -- nonlinear magic -----------------------------------------------------------

NONLINEAR = """
t(X, Y) <- e(X, Y).
t(X, Y) <- t(X, Z), t(Z, Y).
"""


def test_nonlinear_magic_semantics():
    """Magic on the nonlinear transitive closure: two clique literals in
    one rule, hence two magic rules from one source rule."""
    program = parse_program(NONLINEAR)
    clique = DependencyGraph(program).recursive_cliques()[0]
    assert not clique.is_linear
    adorned = adorn_clique(
        clique, PredicateRef("t", 2), BindingPattern("bf"), CPermutation.greedy_sip()
    )
    rewritten = magic_rewrite(adorned)
    db = Database()
    db.load("e", [("a", "b"), ("b", "c"), ("c", "d"), ("x", "y")])
    full = evaluate_program(db, program)["t"]
    from repro.datalog.terms import Constant

    seeds = {rewritten.seed_predicate: {(Constant("a"),)}}
    got = evaluate_program(db, rewritten.program, seeds=seeds)
    answers = {r for r in got[rewritten.answer_predicate] if r[0] == Constant("a")}
    assert answers == {r for r in full if r[0] == Constant("a")}


def test_nonlinear_end_to_end():
    kb = KnowledgeBase()
    kb.rules(NONLINEAR)
    kb.facts("e", [(f"n{i}", f"n{i+1}") for i in range(12)])
    compiled = kb.compile("t($X, Y)?")
    cc = compiled.plan.children[0].steps[0].child
    assert cc.method in ("seminaive", "magic", "supplementary")  # counting: not linear
    answers = kb.ask("t($X, Y)?", X="n0").to_python()
    assert len(answers) == 12


def test_counting_refused_on_nonlinear():
    from repro.datalog import counting_applicable

    program = parse_program(NONLINEAR)
    clique = DependencyGraph(program).recursive_cliques()[0]
    adorned = adorn_clique(
        clique, PredicateRef("t", 2), BindingPattern("bf"), CPermutation.greedy_sip()
    )
    assert not counting_applicable(adorned)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10_000))
def test_paper_rulebase_random_states(seed):
    """Random database states of Figure 2-1: optimized == reference."""
    kb = paper_kb(seed=seed, scale=15)
    expected = reference(kb)
    got = set(kb.ask("p1(X, Y)?").to_python())
    assert got == expected["p1"]
