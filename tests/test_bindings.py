"""Tests for binding patterns, SIPs and query forms (Section 2 machinery)."""

import pytest
from hypothesis import given, strategies as st

from repro.datalog.bindings import (
    BindingPattern,
    QueryForm,
    adorned_name,
    adornment_sequence,
    all_binding_patterns,
    binds_after,
    head_bound_vars,
    is_invertible_pattern,
    sip_bindings,
    split_adorned_name,
)
from repro.datalog.parser import parse_literal, parse_rule
from repro.datalog.terms import Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def test_binding_pattern_basics():
    p = BindingPattern("bfb")
    assert p.bound_positions == (0, 2)
    assert p.free_positions == (1,)
    assert p.bound_count == 2
    assert p.is_bound(0) and not p.is_bound(1)
    assert str(p) == "bfb"


def test_binding_pattern_validation():
    with pytest.raises(ValueError):
        BindingPattern("bx")


def test_all_free_all_bound():
    assert BindingPattern.all_free(3).code == "fff"
    assert BindingPattern.all_bound(2).is_all_bound
    assert BindingPattern.all_free(2).is_all_free


def test_of_literal_complex_args():
    literal = parse_literal("p(f(X, Y), Z)")
    assert BindingPattern.of_literal(literal, frozenset({X, Y})).code == "bf"
    assert BindingPattern.of_literal(literal, frozenset({X})).code == "ff"
    # constants are always bound
    assert BindingPattern.of_literal(parse_literal("p(a, Z)"), frozenset()).code == "bf"


def test_subsumes():
    assert BindingPattern("bf").subsumes(BindingPattern("bb"))
    assert not BindingPattern("bb").subsumes(BindingPattern("bf"))


def test_adorned_name_roundtrip():
    name = adorned_name("sg", BindingPattern("bf"))
    assert name == "sg.bf"
    base, pattern = split_adorned_name(name)
    assert base == "sg" and pattern.code == "bf"
    assert split_adorned_name("plain") == ("plain", None)


def test_all_binding_patterns_counts():
    patterns = all_binding_patterns(3)
    assert len(patterns) == 8
    assert patterns[0].is_all_bound
    assert patterns[-1].is_all_free


def test_sip_bindings_basic():
    rule = parse_rule("sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).")
    entries = sip_bindings(rule.body, frozenset({X}))
    assert entries[0] == {X}
    assert entries[1] == {X, Variable("X1")}
    assert entries[2] == {X, Variable("X1"), Variable("Y1")}


def test_adornment_sequence_matches_paper():
    rule = parse_rule("sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).")
    adornments = adornment_sequence(rule.body, frozenset({X}))
    # up enters with X bound; sg with X1 bound; dn with Y1 bound (from sg)
    assert [a.code for a in adornments] == ["bf", "fb", "bf"]


def test_binds_after_equality_patterns():
    eq = parse_literal("Z = X + 1")
    assert binds_after(eq, frozenset({X})) == {X, Z}
    # not invertible: X+1 cannot be solved from Z
    assert binds_after(eq, frozenset({Z})) == {Z}
    # constructor terms are invertible
    decon = parse_literal("pair(A, B) = P")
    assert binds_after(decon, frozenset({Variable("P")})) >= {Variable("A"), Variable("B")}


def test_binds_after_comparison_and_negation():
    assert binds_after(parse_literal("X < Y"), frozenset({X})) == {X}
    negated = parse_literal("~p(X, Y)")
    assert binds_after(negated, frozenset({X})) == {X}


def test_is_invertible_pattern():
    assert is_invertible_pattern(parse_literal("p(f(A))").args[0], frozenset())
    plus = parse_literal("Z = A + 1").args[1]
    assert not is_invertible_pattern(plus, frozenset())
    assert is_invertible_pattern(plus, frozenset({Variable("A")}))


def test_head_bound_vars():
    rule = parse_rule("p(f(X), Y) <- q(X, Y).")
    assert head_bound_vars(rule.head, BindingPattern("bf")) == {X}
    with pytest.raises(ValueError):
        head_bound_vars(rule.head, BindingPattern("b"))


def test_query_form_properties():
    from repro.datalog.parser import parse_query

    form = parse_query("p($A, B, f(C))?")
    assert form.adornment.code == "bff"
    assert form.output_vars == (Variable("B"), Variable("C"))
    assert form.adorned_predicate == "p.bff"
    assert form.free_vars == {Variable("B"), Variable("C")}


@given(st.integers(0, 6))
def test_all_binding_patterns_unique(arity):
    patterns = all_binding_patterns(arity)
    assert len(set(p.code for p in patterns)) == 2 ** arity


@given(st.sets(st.sampled_from([X, Y, Z])))
def test_sip_monotone(bound):
    """Bound sets grow monotonically along any SIP."""
    rule = parse_rule("p(X) <- q(X, Y), Y > 1, r(Y, Z), Z = Y + 1.")
    entries = sip_bindings(rule.body, frozenset(bound))
    for earlier, later in zip(entries, entries[1:]):
        assert earlier <= later
