"""Adornment tests — including the paper's published sg example (Sec 7.3)."""

import pytest

from repro.datalog.adorn import CPermutation, adorn_clique, enumerate_cpermutations
from repro.datalog.bindings import BindingPattern
from repro.datalog.graph import DependencyGraph
from repro.datalog.literals import PredicateRef
from repro.datalog.parser import parse_program
from repro.errors import OptimizationError

SG = """
sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
sg(X, Y) <- flat(X, Y).
"""


def sg_clique():
    program = parse_program(SG)
    return DependencyGraph(program).recursive_cliques()[0]


SG_REF = PredicateRef("sg", 2)

#: the paper's SIP for the fb replica: dn first, then sg, then up
PAPER_CPERM = CPermutation(choices={(0, BindingPattern("fb")): (2, 1, 0)})


def rules_as_strings(adorned):
    return {str(ar.rule) for ar in adorned.rules}


def test_sg_bf_identity_sip():
    adorned = adorn_clique(sg_clique(), SG_REF, BindingPattern("bf"))
    assert adorned.query_predicate == "sg.bf"
    assert rules_as_strings(adorned) == {
        "sg.bf(X, Y) <- up(X, X1), sg.fb(Y1, X1), dn(Y1, Y).",
        "sg.bf(X, Y) <- flat(X, Y).",
        "sg.fb(X, Y) <- up(X, X1), sg.fb(Y1, X1), dn(Y1, Y).",
        "sg.fb(X, Y) <- flat(X, Y).",
    }


def test_sg_bf_paper_sip():
    """The paper's adorned clique for sg.bf: the fb replica runs dn first
    and recurses through sg.bf — a two-predicate alternation."""
    adorned = adorn_clique(sg_clique(), SG_REF, BindingPattern("bf"), PAPER_CPERM)
    assert rules_as_strings(adorned) == {
        "sg.bf(X, Y) <- up(X, X1), sg.fb(Y1, X1), dn(Y1, Y).",
        "sg.bf(X, Y) <- flat(X, Y).",
        "sg.fb(X, Y) <- dn(Y1, Y), sg.bf(Y1, X1), up(X, X1).",
        "sg.fb(X, Y) <- flat(X, Y).",
    }


def test_sg_bb_reaches_three_adornments():
    """For sg.bb the paper's adorned clique contains sg.bb, sg.fb and sg.bf."""
    adorned = adorn_clique(sg_clique(), SG_REF, BindingPattern("bb"), PAPER_CPERM)
    names = {ar.rule.head.predicate for ar in adorned.rules}
    assert names == {"sg.bb", "sg.fb", "sg.bf"}


def test_adornment_terminates_marking():
    """The worklist marks (predicate, adornment) pairs: each replica appears once."""
    adorned = adorn_clique(sg_clique(), SG_REF, BindingPattern("bb"), PAPER_CPERM)
    seen = [(ar.rule.head.predicate, ar.source_index) for ar in adorned.rules]
    assert len(seen) == len(set(seen))


def test_literal_adornments_recorded():
    adorned = adorn_clique(sg_clique(), SG_REF, BindingPattern("bf"))
    recursive = next(ar for ar in adorned.rules if ar.is_recursive and ar.head_adornment.code == "bf")
    assert [a.code for a in recursive.literal_adornments] == ["bf", "fb", "bf"]


def test_external_goals_collected():
    program = parse_program(
        """
        t(X, Y) <- e(X, Y).
        t(X, Y) <- helper(X, Z), t(Z, Y).
        helper(X, Y) <- e(X, Y), e(Y, X).
        """
    )
    graph = DependencyGraph(program)
    clique = graph.recursive_cliques()[0]
    adorned = adorn_clique(
        clique,
        PredicateRef("t", 2),
        BindingPattern("bf"),
        derived_predicates=program.derived_predicates,
    )
    externals = {(str(l), p.code) for l, p in adorned.external_goals}
    assert externals == {("helper(X, Z)", "bf")}


def test_invalid_inputs_rejected():
    clique = sg_clique()
    with pytest.raises(OptimizationError):
        adorn_clique(clique, PredicateRef("nope", 2), BindingPattern("bf"))
    with pytest.raises(OptimizationError):
        adorn_clique(clique, SG_REF, BindingPattern("b"))
    bad = CPermutation(defaults={0: (0, 0, 1)})
    with pytest.raises(OptimizationError):
        adorn_clique(clique, SG_REF, BindingPattern("bf"), bad)


def test_enumerate_cpermutations_counts():
    clique = sg_clique()
    # rule bodies: 3 literals and 1 literal -> 3! * 1! = 6 c-permutations
    perms = list(enumerate_cpermutations(clique, SG_REF, BindingPattern("bf")))
    assert len(perms) == 6
    capped = list(enumerate_cpermutations(clique, SG_REF, BindingPattern("bf"), max_count=2))
    assert len(capped) == 2


def test_cpermutation_key_hashable():
    key1 = PAPER_CPERM.key()
    key2 = CPermutation(choices={(0, BindingPattern("fb")): (2, 1, 0)}).key()
    assert key1 == key2
    assert hash(key1) == hash(key2)
