"""Physical operator tests: the join methods must agree with each other."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.parser import parse_literal
from repro.datalog.terms import Constant, Struct, Variable
from repro.engine.operators import (
    BindingsTable,
    apply_comparison,
    head_rows,
    negation_filter,
    scan_join,
    union_tables,
)
from repro.engine.profiler import Profiler
from repro.errors import ExecutionError
from repro.storage import relation_from_rows

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def rows_of(*values):
    return frozenset(tuple(Constant(v) for v in row) for row in values)


def test_unit_table_is_join_identity():
    unit = BindingsTable.unit()
    rel = relation_from_rows("e", [("a", "b")])
    out = scan_join(unit, parse_literal("e(X, Y)"), rel)
    assert out.schema == (X, Y)
    assert out.rows == rows_of(("a", "b"))


def test_scan_join_extends_schema_in_order():
    table = BindingsTable.from_rows((X,), rows_of(("a",), ("b",)))
    rel = relation_from_rows("e", [("a", 1), ("a", 2), ("c", 3)])
    out = scan_join(table, parse_literal("e(X, Y)"), rel)
    assert out.schema == (X, Y)
    assert out.rows == rows_of(("a", 1), ("a", 2))


@pytest.mark.parametrize("method", ["nested_loop", "hash", "index", "merge"])
def test_all_methods_agree(method):
    table = BindingsTable.from_rows((X,), rows_of(("a",), ("b",), ("z",)))
    rel = relation_from_rows("e", [("a", 1), ("b", 2), ("b", 3), ("c", 4)])
    out = scan_join(table, parse_literal("e(X, Y)"), rel, method=method)
    assert out.rows == rows_of(("a", 1), ("b", 2), ("b", 3))


def test_scan_join_repeated_variable():
    rel = relation_from_rows("e", [("a", "a"), ("a", "b")])
    out = scan_join(BindingsTable.unit(), parse_literal("e(X, X)"), rel)
    assert out.rows == rows_of(("a",))
    assert out.schema == (X,)


def test_scan_join_with_constant():
    rel = relation_from_rows("e", [("a", 1), ("b", 2)])
    out = scan_join(BindingsTable.unit(), parse_literal("e(b, Y)"), rel)
    assert out.rows == rows_of((2,))


def test_scan_join_complex_term_pattern():
    from repro.storage import Relation

    rel = Relation("owns", 2)
    rel.insert((Constant("joe"), Struct("bike", (Constant("red"),))))
    rel.insert((Constant("joe"), Constant("car")))
    out = scan_join(BindingsTable.unit(), parse_literal("owns(P, bike(C))"), rel)
    assert out.schema == (Variable("P"), Variable("C"))
    assert out.rows == rows_of(("joe", "red"))


def test_scan_join_unknown_method():
    with pytest.raises(ExecutionError):
        scan_join(BindingsTable.unit(), parse_literal("e(X, Y)"), [], method="sort")


def test_profiler_counts_differ_by_method():
    table = BindingsTable.from_rows((X,), rows_of(*[(f"k{i}",) for i in range(10)]))
    rel = relation_from_rows("e", [(f"k{i}", i) for i in range(10)])
    nl, hashed = Profiler(), Profiler()
    scan_join(table, parse_literal("e(X, Y)"), rel, "nested_loop", nl)
    scan_join(table, parse_literal("e(X, Y)"), rel, "hash", hashed)
    assert nl.examined == 100          # 10 probes x 10 tuples
    assert hashed.examined < nl.examined


def test_merge_join_reuses_sorted_order_cache():
    """Regression: repeated merge joins against an unchanged relation must
    not re-sort the extension — the examined count drops after call one."""
    table = BindingsTable.from_rows((X,), rows_of(*[(f"k{i}",) for i in range(5)]))
    rel = relation_from_rows("e", [(f"k{i}", i) for i in range(50)])
    literal = parse_literal("e(X, Y)")

    first = Profiler()
    out_first = scan_join(table, literal, rel, "merge", first)
    second = Profiler()
    out_second = scan_join(table, literal, rel, "merge", second)

    assert out_first.rows == out_second.rows
    # First call pays the extension sorting pass (50 tuples); the repeat
    # is served from the cache and only sorts the 5 input rows.
    assert second.examined == first.examined - len(rel)

    # Mutating the relation invalidates the cached order: one more tuple
    # in the sorting pass and one more matched candidate.
    rel.insert_values(("k0", 99))
    third = Profiler()
    out_third = scan_join(table, literal, rel, "merge", third)
    assert third.examined == first.examined + 2
    assert len(out_third.rows) == len(out_first.rows) + 1


def test_apply_comparison_filters():
    table = BindingsTable.from_rows((X,), rows_of((1,), (5,)))
    out = apply_comparison(table, parse_literal("X < 3"))
    assert out.rows == rows_of((1,))


def test_apply_comparison_binds():
    table = BindingsTable.from_rows((X,), rows_of((1,), (2,)))
    out = apply_comparison(table, parse_literal("Y = X * 10"))
    assert out.schema == (X, Y)
    assert out.rows == rows_of((1, 10), (2, 20))


def test_negation_filter():
    table = BindingsTable.from_rows((X,), rows_of(("a",), ("b",)))
    out = negation_filter(table, parse_literal("blocked(X)"), rows_of(("a",)))
    assert out.rows == rows_of(("b",))


def test_negation_requires_ground():
    table = BindingsTable.from_rows((X,), rows_of(("a",)))
    with pytest.raises(ExecutionError):
        negation_filter(table, parse_literal("blocked(X, Y)"), frozenset())


def test_union_aligns_columns():
    t1 = BindingsTable.from_rows((X, Y), rows_of(("a", 1)))
    t2 = BindingsTable.from_rows((Y, X), rows_of((2, "b")))
    out = union_tables([t1, t2])
    assert out.schema == (X, Y)
    assert out.rows == rows_of(("a", 1), ("b", 2))


def test_union_incompatible_schemas():
    t1 = BindingsTable.from_rows((X,), rows_of(("a",)))
    t2 = BindingsTable.from_rows((Y,), rows_of(("b",)))
    with pytest.raises(ExecutionError):
        union_tables([t1, t2])


def test_head_rows_instantiates():
    table = BindingsTable.from_rows((X, Y), rows_of(("a", 1), ("b", 2)))
    out = head_rows(table, parse_literal("p(Y, f(X))"))
    assert out == {
        (Constant(1), Struct("f", (Constant("a"),))),
        (Constant(2), Struct("f", (Constant("b"),))),
    }


def test_head_rows_unbound_raises():
    table = BindingsTable.from_rows((X,), rows_of(("a",)))
    with pytest.raises(ExecutionError):
        head_rows(table, parse_literal("p(X, Unbound)"))


def test_project_dedupes():
    table = BindingsTable.from_rows((X, Y), rows_of(("a", 1), ("a", 2)))
    assert table.project((X,)).rows == rows_of(("a",))


@settings(max_examples=30, deadline=None)
@given(
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=15),
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=15),
)
def test_methods_equivalent_property(left_rows, right_rows):
    """All four join methods compute the same natural join."""
    table = BindingsTable.from_rows((X, Y), rows_of(*left_rows))
    rel = relation_from_rows("e", list(right_rows) or [(0, 0)], arity=2)
    if not right_rows:
        rel.clear()
    literal = parse_literal("e(Y, Z)")
    results = {
        method: scan_join(table, literal, rel, method).rows
        for method in ("nested_loop", "hash", "index", "merge")
    }
    values = list(results.values())
    assert all(v == values[0] for v in values)
