"""Unit and property tests for unification and substitutions."""

from hypothesis import given, strategies as st

from repro.datalog.terms import Constant, Struct, Variable
from repro.datalog.unify import (
    apply,
    compose,
    fresh_variables,
    is_renaming,
    match,
    restrict,
    unify,
    unify_sequences,
    walk,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def test_unify_variable_with_constant():
    assert unify(X, Constant(3)) == {X: Constant(3)}
    assert unify(Constant(3), X) == {X: Constant(3)}


def test_unify_constants():
    assert unify(Constant(3), Constant(3)) == {}
    assert unify(Constant(3), Constant(4)) is None


def test_unify_structs():
    left = Struct("f", (X, Constant(1)))
    right = Struct("f", (Constant(2), Y))
    subst = unify(left, right)
    assert subst == {X: Constant(2), Y: Constant(1)}


def test_unify_functor_and_arity_clash():
    assert unify(Struct("f", (X,)), Struct("g", (X,))) is None
    assert unify(Struct("f", (X,)), Struct("f", (X, Y))) is None
    assert unify(Struct("f", (X,)), Constant(1)) is None


def test_unify_shared_variable_chains():
    subst = unify(Struct("f", (X, X)), Struct("f", (Y, Constant(3))))
    assert apply(X, subst) == Constant(3)
    assert apply(Y, subst) == Constant(3)


def test_occurs_check_blocks_cyclic_binding():
    assert unify(X, Struct("f", (X,))) is None
    # without the check, a (dangerous) rational-tree binding is produced
    assert unify(X, Struct("f", (X,)), occurs_check=False) is not None


def test_unify_does_not_mutate_input():
    base = {X: Constant(1)}
    out = unify(Y, Constant(2), base)
    assert base == {X: Constant(1)}
    assert out == {X: Constant(1), Y: Constant(2)}


def test_unify_sequences_length_mismatch():
    assert unify_sequences([X], [Constant(1), Constant(2)]) is None
    assert unify_sequences([X, Y], [Constant(1), Constant(2)]) == {X: Constant(1), Y: Constant(2)}


def test_match_one_way():
    subst = match(Struct("f", (X, Constant(1))), Struct("f", (Constant(2), Constant(1))))
    assert subst == {X: Constant(2)}
    assert match(Constant(1), Constant(2)) is None


def test_walk_and_apply():
    subst = {X: Y, Y: Constant(5)}
    assert walk(X, subst) == Constant(5)
    assert apply(Struct("f", (X,)), subst) == Struct("f", (Constant(5),))


def test_compose():
    first = {X: Y}
    second = {Y: Constant(1)}
    composed = compose(first, second)
    assert apply(X, composed) == Constant(1)


def test_restrict():
    assert restrict({X: Constant(1), Y: Constant(2)}, [X]) == {X: Constant(1)}


def test_is_renaming():
    assert is_renaming({X: Y, Z: Variable("W")})
    assert not is_renaming({X: Y, Z: Y})  # not injective
    assert not is_renaming({X: Constant(1)})


def test_fresh_variables_avoids_taken():
    taken = {"X", "X_1"}
    mapping = fresh_variables([Struct("f", (X,))], taken)
    assert mapping[X].name == "X_2"


# -- properties ---------------------------------------------------------------

ground = st.recursive(
    st.integers(-20, 20).map(Constant),
    lambda c: st.builds(lambda a: Struct("g", tuple(a)), st.lists(c, min_size=1, max_size=2)),
    max_leaves=6,
)

patterns = st.recursive(
    st.one_of(
        st.integers(-20, 20).map(Constant),
        st.sampled_from("XYZW").map(Variable),
    ),
    lambda c: st.builds(lambda a: Struct("g", tuple(a)), st.lists(c, min_size=1, max_size=2)),
    max_leaves=6,
)


@given(patterns, ground)
def test_unifier_is_a_solution(pattern, value):
    """If unification succeeds, applying the substitution equates the terms."""
    subst = unify(pattern, value)
    if subst is not None:
        assert apply(pattern, subst) == apply(value, subst)


@given(patterns, ground)
def test_match_agrees_with_unify_on_ground_right(pattern, value):
    m = match(pattern, value)
    u = unify(pattern, value)
    assert (m is None) == (u is None)
    if m is not None:
        assert apply(pattern, m) == value


@given(patterns)
def test_unify_with_self_is_trivial(pattern):
    assert unify(pattern, pattern) == {}
