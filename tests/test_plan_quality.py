"""Plan-quality properties of the pruned search (PR 10 acceptance).

Branch-and-bound must be invisible in the *result*: on every body where
the exhaustive search is feasible, the DP/B&B enumerator returns a plan
of identical cost, and the pruned c-permutation search picks the same
recursive plan as the un-pruned one — only the amount of work differs.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import KnowledgeBase, OptimizerConfig
from repro.cost import BodyEstimator
from repro.optimizer import dp_order, exhaustive_order
from repro.workloads import generate_conjunctive, same_generation_instance

SG = """
sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
sg(X, Y) <- flat(X, Y).
"""

ANC = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, Z), anc(Z, Y).
"""


def bound_subset(body, seed):
    """A deterministic pseudo-random subset of the body's variables —
    the 'binding pattern' axis of the property."""
    rng = random.Random(seed)
    variables = sorted({v for l in body for v in l.variables}, key=lambda v: v.name)
    return frozenset(v for v in variables if rng.random() < 0.3)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(2, 6),
    st.integers(0, 10_000),
    st.sampled_from(["chain", "star", "cycle", "random"]),
)
def test_bb_cost_equals_exhaustive(n, seed, shape):
    """DP + branch-and-bound is cost-identical to exhaustive search."""
    w = generate_conjunctive(n, shape, seed=seed)
    est = BodyEstimator(w.stats)
    bound = bound_subset(w.body, seed)
    pruned = dp_order(w.body, bound, est, prune=True)
    exact = exhaustive_order(w.body, bound, est)
    assert pruned.est.cost == pytest.approx(exact.est.cost)


@pytest.mark.parametrize(
    "n,seeds",
    [(7, (0, 1, 2, 3)), (8, (0, 1))],
)
def test_bb_cost_equals_exhaustive_wide(n, seeds):
    """The same identity on wide bodies (n <= 8), where exhaustive is at
    the edge of feasibility — and B&B does far less work getting there."""
    for seed in seeds:
        w = generate_conjunctive(n, ("random", "chain")[seed % 2], seed=seed)
        est = BodyEstimator(w.stats)
        bound = bound_subset(w.body, seed)
        pruned = dp_order(w.body, bound, est, prune=True)
        exact = exhaustive_order(w.body, bound, est)
        assert pruned.est.cost == pytest.approx(exact.est.cost)
        assert exact.evaluations == math.factorial(n)
        assert pruned.evaluations < exact.evaluations


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from(["chain", "star", "random"]))
def test_bb_prune_flag_preserves_cost(seed, shape):
    """prune=True vs prune=False: identical best cost, fewer costings."""
    w = generate_conjunctive(6, shape, seed=seed)
    est = BodyEstimator(w.stats)
    bound = bound_subset(w.body, seed)
    on = dp_order(w.body, bound, est, prune=True)
    off = dp_order(w.body, bound, est, prune=False)
    assert on.est.cost == pytest.approx(off.est.cost)
    assert on.evaluations <= off.evaluations


def _sg_kb(search):
    kb = KnowledgeBase(
        OptimizerConfig(strategy="dp", seed=0, search=search), feedback=False
    )
    same_generation_instance(kb.db, fanout=2, depth=3)
    kb.rules(SG)
    return kb


def _anc_kb(search):
    kb = KnowledgeBase(
        OptimizerConfig(strategy="dp", seed=0, search=search), feedback=False
    )
    kb.facts("par", [(f"n{i}", f"n{i + 1}") for i in range(20)])
    kb.rules(ANC)
    return kb


@pytest.mark.parametrize("query", ["sg($X, Y)?", "sg(X, $Y)?", "sg($X, $Y)?"])
def test_bb_cperm_choice_matches_full_sg(query):
    """Pruned c-permutation search picks the same plan as the un-pruned."""
    bb = _sg_kb("bb").compile(query)
    full = _sg_kb("full").compile(query)
    assert bb.plan.est.cost == pytest.approx(full.plan.est.cost)
    assert bb.plan.children[0].steps[0].child.method == (
        full.plan.children[0].steps[0].child.method
    )


@pytest.mark.parametrize("query", ["anc($X, Y)?", "anc(X, $Y)?"])
def test_bb_cperm_choice_matches_full_anc(query):
    bb = _anc_kb("bb").compile(query)
    full = _anc_kb("full").compile(query)
    assert bb.plan.est.cost == pytest.approx(full.plan.est.cost)


def test_bb_does_less_work_and_counts_it():
    """plans_costed drops under bb; the saved work lands in plans_pruned."""
    bb_kb, full_kb = _sg_kb("bb"), _sg_kb("full")
    bb_kb.compile("sg($X, Y)?")
    full_kb.compile("sg($X, Y)?")
    bb_counters = bb_kb.optimizer.counters
    full_counters = full_kb.optimizer.counters
    assert bb_counters["plans_costed"] < full_counters["plans_costed"]
    assert bb_counters["plans_pruned"] > 0
    # the un-pruned baseline never prunes order candidates
    assert full_counters["plans_pruned"] == 0


def test_unknown_search_mode_rejected():
    from repro.errors import OptimizationError

    kb = KnowledgeBase(OptimizerConfig(search="greedy"))
    kb.rules(ANC)
    with pytest.raises(OptimizationError):
        kb.compile("anc($X, Y)?")


def test_join_node_records_pruning():
    """EXPLAIN's ~pruned diagnostic source: JoinNode.pruned is populated."""
    kb = KnowledgeBase(OptimizerConfig(strategy="dp", seed=0), feedback=False)
    w = generate_conjunctive(6, "random", seed=7, prefix="w")
    for literal in w.body:
        kb.facts(literal.predicate, [(1, 2)])
    head_vars = sorted({v.name for l in w.body for v in l.variables})[:1]
    rule = f"wide({head_vars[0]}) <- " + ", ".join(str(l) for l in w.body) + "."
    kb.rules(rule)
    plan = kb.compile("wide(X)?").plan
    assert plan.children[0].pruned >= 0  # field exists and is populated
