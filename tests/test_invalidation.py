"""Surgical invalidation: footprint-scoped eviction + no-op write fixes.

ISSUE 9's acceptance criterion in executable form: a write to relation A
must not evict cached queries reading only relation B, and writes that
change nothing (duplicate inserts, absent retracts) must not bump
versions or clear anything at all.
"""

import pytest

from repro import KnowledgeBase

#: two independent query families over disjoint base relations
RULES = """
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
    owner(X, Y) <- owns(X, Y).
"""

PAR = [("abe", "homer"), ("homer", "bart")]
OWNS = [("homer", "car")]


def _counter(kb, name):
    return sum(c["value"] for c in kb.metrics.snapshot()["counters"] if c["name"] == name)


def make_kb(**kwargs):
    kb = KnowledgeBase(**kwargs)
    kb.rules(RULES)
    kb.facts("par", PAR)
    kb.facts("owns", OWNS)
    return kb


# ------------------------------------------------------------- footprints


def test_footprint_of_derived_predicate_is_its_base_relations():
    kb = make_kb()
    assert kb._dependency_footprint("anc", 2) == {"par"}
    assert kb._dependency_footprint("owner", 2) == {"owns"}
    assert kb._dependency_footprint("par", 2) == {"par"}  # base: itself


def test_write_to_unrelated_relation_keeps_cache_hot():
    """The acceptance criterion itself: insert into owns, anc stays cached."""
    kb = make_kb()
    first = kb.ask("anc(abe, Y)?")
    kb.facts("owns", [("bart", "skateboard")])
    second = kb.ask("anc(abe, Y)?")
    assert second is first  # identity: served from cache, engine untouched


def test_write_to_footprint_relation_invalidates():
    kb = make_kb()
    first = kb.ask("anc(abe, Y)?")
    kb.facts("par", [("bart", "maggie")])
    second = kb.ask("anc(abe, Y)?")
    assert second is not first
    assert ("maggie",) in second.to_python()


def test_unrelated_retract_keeps_cache_hot():
    kb = make_kb()
    first = kb.ask("anc(abe, Y)?")
    kb.retract("owns", [("homer", "car")])
    assert kb.ask("anc(abe, Y)?") is first


def test_unrelated_write_keeps_compiled_plan_and_reopt_state():
    kb = make_kb()
    kb.ask("anc(abe, Y)?")
    key = next(iter(kb._compiled))
    plan = kb._compiled[key]
    kb.facts("owns", [("bart", "skateboard")])
    assert kb._compiled.get(key) is plan
    kb.facts("par", [("bart", "maggie")])
    assert key not in kb._compiled


def test_transaction_commit_invalidates_by_footprint():
    kb = make_kb()
    first_anc = kb.ask("anc(abe, Y)?")
    first_owner = kb.ask("owner(homer, Y)?")
    with kb.transaction():
        kb.facts("owns", [("bart", "skateboard")])
    assert kb.ask("anc(abe, Y)?") is first_anc
    assert kb.ask("owner(homer, Y)?") is not first_owner


# ----------------------------------------------------------- no-op writes


def test_duplicate_insert_does_not_bump_version():
    kb = make_kb()
    version = kb.db.relation("par").version
    assert kb.facts("par", [PAR[0]]) == 0
    assert kb.db.relation("par").version == version


def test_absent_retract_does_not_bump_version():
    kb = make_kb()
    version = kb.db.relation("par").version
    assert kb.retract("par", [("nobody", "nowhere")]) == 0
    assert kb.db.relation("par").version == version


def test_duplicate_insert_keeps_cache_and_plans():
    kb = make_kb()
    first = kb.ask("anc(abe, Y)?")
    plans = dict(kb._compiled)
    kb.facts("par", [PAR[0]])  # all rows already present
    assert kb.ask("anc(abe, Y)?") is first
    assert kb._compiled == plans


def test_absent_retract_keeps_cache():
    kb = make_kb()
    first = kb.ask("anc(abe, Y)?")
    kb.retract("par", [("nobody", "nowhere")])
    assert kb.ask("anc(abe, Y)?") is first


def test_noop_facts_text_keeps_cache():
    kb = make_kb()
    first = kb.ask("anc(abe, Y)?")
    assert kb.facts_text("par(abe, homer).") == 0  # already present
    assert kb.ask("anc(abe, Y)?") is first


def test_noop_writes_in_transaction_keep_cache():
    kb = make_kb()
    first = kb.ask("anc(abe, Y)?")
    with kb.transaction():
        kb.facts("par", [PAR[0]])
        kb.retract("par", [("nobody", "nowhere")])
    assert kb.ask("anc(abe, Y)?") is first


def test_noop_insert_keeps_stats_cache():
    kb = make_kb()
    stats = kb.db.stats_for("par")
    kb.facts("par", [PAR[0]])
    assert kb.db.stats_for("par") is stats  # cache entry survived
    kb.facts("par", [("bart", "maggie")])
    assert kb.db.stats_for("par") is not stats


# ------------------------------------------------- telemetry attribution


def test_view_tier_attribution_after_partial_invalidation():
    """tier="view" vs tier="cache" must follow where the rows actually
    came from: hit -> cache, miss through the maintained view -> view —
    including after a write evicted only *some* footprints."""
    kb = make_kb()
    kb.materialize()

    kb.ask("anc(abe, Y)?")
    assert kb.telemetry.last["tier"] == "view"
    assert kb.telemetry.last["cache"] == "miss"

    kb.ask("anc(abe, Y)?")
    assert kb.telemetry.last["tier"] == "cache"
    assert kb.telemetry.last["cache"] == "hit"

    kb.ask("owner(homer, Y)?")
    assert kb.telemetry.last["tier"] == "view"

    # partial invalidation: only owner's footprint moves
    kb.facts("owns", [("bart", "skateboard")])
    kb.ask("anc(abe, Y)?")
    assert kb.telemetry.last["tier"] == "cache"  # anc untouched: still a hit
    kb.ask("owner(homer, Y)?")
    assert kb.telemetry.last["tier"] == "view"  # owner evicted: view refilter
    assert kb.telemetry.last["cache"] == "miss"


def test_view_queries_count_cache_hits():
    kb = make_kb()
    kb.materialize()
    kb.ask("anc(abe, Y)?")
    hits0 = _counter(kb, "result_cache_hits_total")
    misses0 = _counter(kb, "result_cache_misses_total")
    kb.ask("anc(abe, Y)?")
    assert _counter(kb, "result_cache_hits_total") == hits0 + 1
    assert _counter(kb, "result_cache_misses_total") == misses0
    kb.facts("par", [("bart", "maggie")])
    kb.ask("anc(abe, Y)?")
    assert _counter(kb, "result_cache_misses_total") == misses0 + 1


def test_view_answers_stay_fresh_through_cache():
    """Cached view answers are version-fenced like engine answers."""
    kb = make_kb()
    kb.materialize()
    assert ("bart",) in kb.ask("anc(abe, Y)?").to_python()
    kb.facts("par", [("bart", "maggie")])
    assert ("maggie",) in kb.ask("anc(abe, Y)?").to_python()
    kb.retract("par", [("homer", "bart")])
    answers = kb.ask("anc(abe, Y)?").to_python()
    assert ("bart",) not in answers and ("maggie",) not in answers


def test_uncacheable_view_query_reports_cache_off():
    from repro.engine.profiler import Profiler

    kb = make_kb()
    kb.materialize()
    kb.ask("anc(abe, Y)?", profiler=Profiler())
    assert kb.telemetry.last["tier"] == "view"
    assert kb.telemetry.last["cache"] == "off"


# --------------------------------------------------- feedback invalidation


def test_retract_drops_feedback_for_footprint():
    kb = make_kb()
    kb.ask("anc(abe, Y)?")
    assert any(e.predicate in ("anc", "par") for e in kb.feedback.entries())
    kb.retract("par", [("homer", "bart")])
    assert not any(e.predicate in ("anc", "par") for e in kb.feedback.entries())


def test_insert_keeps_learned_feedback():
    """Insertions rely on EMA drift + staleness decay, never hard drops —
    a persisted store must survive a restart that reloads facts."""
    kb = make_kb()
    kb.ask("anc(abe, Y)?")
    entries = len(kb.feedback)
    assert entries > 0
    kb.facts("par", [("bart", "maggie")])
    assert len(kb.feedback) == entries


def test_retract_keeps_feedback_for_unrelated_predicates():
    kb = make_kb()
    kb.ask("anc(abe, Y)?")
    kb.ask("owner(homer, Y)?")
    kb.retract("owns", [("homer", "car")])
    assert any(e.predicate in ("anc", "par") for e in kb.feedback.entries())
    assert not any(e.predicate in ("owner", "owns") for e in kb.feedback.entries())
