"""Common subexpression elimination (paper Section 9)."""

import pytest

from repro.datalog import PredicateRef, parse_literal, parse_program, parse_query
from repro.engine import evaluate_program
from repro.optimizer.cse import (
    anti_unify,
    anti_unify_literals,
    eliminate_common_subexpressions,
    factor_segment,
    find_common_segments,
)
from repro.datalog.terms import Constant, Variable
from repro.storage import Database
from repro.storage.statistics import DeclaredStatistics

SHARED = """
report_a(X, W) <- emp(X, D), dept(D, M), salary(M, W).
report_b(X, M) <- emp(X, D), dept(D, M), located(M, hq).
report_c(X) <- emp(X, D), bonus(D).
"""


def test_find_common_segments_detects_shared_join():
    program = parse_program(SHARED)
    segments = find_common_segments(program)
    assert segments
    top = segments[0]
    predicates = sorted(l.predicate for l in top.representative)
    assert predicates == ["dept", "emp"]
    assert len(top.occurrences) == 2


def test_segments_must_be_connected():
    program = parse_program(
        """
        a(X, Y) <- p(X), q(Y).
        b(X, Y) <- p(X), q(Y).
        """
    )
    # p(X), q(Y) share no variable: not a candidate
    assert find_common_segments(program) == []


def test_renamed_occurrences_match():
    program = parse_program(
        """
        a(U) <- e(U, V), f(V, W).
        b(P) <- e(P, Q), f(Q, R).
        """
    )
    segments = find_common_segments(program)
    assert len(segments) == 1
    assert len(segments[0].occurrences) == 2


def test_factor_segment_preserves_semantics():
    program = parse_program(SHARED)
    segment = find_common_segments(program)[0]
    factored = factor_segment(program, segment, "cse_test")

    db = Database()
    db.load("emp", [("ann", "eng"), ("bob", "ops"), ("cal", "eng")])
    db.load("dept", [("eng", "meg"), ("ops", "oli")])
    db.load("salary", [("meg", 90), ("oli", 80)])
    db.load("located", [("meg", "hq")])
    db.load("bonus", [("eng",)])

    before = evaluate_program(db, program)
    after = evaluate_program(db, factored)
    for pred in ("report_a", "report_b", "report_c"):
        assert before[pred] == after[pred], pred
    assert PredicateRef("cse_test", 3) in factored.derived_predicates


def test_hill_climbing_accepts_only_improvements():
    program = parse_program(SHARED)
    stats = DeclaredStatistics()
    stats.declare("emp", 10_000, [10_000, 50])
    stats.declare("dept", 50, [50, 50])
    stats.declare("salary", 50, [50, 40])
    stats.declare("located", 50, [50, 5])
    stats.declare("bonus", 10, [10])
    query = parse_query("report_a(X, W)?")
    rewritten, log = eliminate_common_subexpressions(program, stats, query)
    # whatever happened, the result still optimizes and runs
    db = Database()
    db.load("emp", [("ann", "eng")])
    db.load("dept", [("eng", "meg")])
    db.load("salary", [("meg", 90)])
    db.load("located", [("meg", "hq")])
    db.load("bonus", [("eng",)])
    assert (
        evaluate_program(db, rewritten)["report_a"]
        == evaluate_program(db, program)["report_a"]
    )
    # and the log matches whether the program changed
    assert (rewritten == program) == (not log)


def test_no_candidates_returns_program_unchanged():
    program = parse_program("only(X) <- solo(X).")
    stats = DeclaredStatistics()
    stats.declare("solo", 10, [10])
    rewritten, log = eliminate_common_subexpressions(
        program, stats, parse_query("only(X)?")
    )
    assert rewritten == program and log == []


# -- anti-unification --------------------------------------------------------------


def test_anti_unify_papers_example():
    """P(a,b,X) vs P(a,Y,c) generalize to P(a, _, _) — 'computing
    P(a,Y,X) once and restricting the result'."""
    left = parse_literal("p(a, b, X)")
    right = parse_literal("p(a, Y, c)")
    general = anti_unify_literals(left, right)
    assert general is not None
    assert general.args[0] == Constant("a")
    assert isinstance(general.args[1], Variable)
    assert isinstance(general.args[2], Variable)


def test_anti_unify_identical_terms():
    term = parse_literal("p(f(X), 1)").args[0]
    assert anti_unify(term, term) == term


def test_anti_unify_consistent_mismatches():
    """The same mismatch pair maps to the same variable (lgg property)."""
    left = parse_literal("p(a, a)")
    right = parse_literal("p(b, b)")
    general = anti_unify_literals(left, right)
    assert general.args[0] == general.args[1]


def test_anti_unify_structs():
    left = parse_literal("p(f(a, b))").args[0]
    right = parse_literal("p(f(a, c))").args[0]
    out = anti_unify(left, right)
    assert out.functor == "f"
    assert out.args[0] == Constant("a")
    assert isinstance(out.args[1], Variable)


def test_anti_unify_literals_mismatched():
    assert anti_unify_literals(parse_literal("p(X)"), parse_literal("q(X)")) is None
    assert anti_unify_literals(parse_literal("p(X)"), parse_literal("p(X, Y)")) is None
