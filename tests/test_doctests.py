"""Docstring examples must stay runnable — they are the first thing a
reader tries."""

import doctest
import importlib

import pytest

MODULES = [
    "repro",
    "repro.kb",
    "repro.datalog.terms",
    "repro.datalog.unify",
    "repro.datalog.literals",
    "repro.datalog.bindings",
    "repro.datalog.parser",
    "repro.datalog.rewrite",
    "repro.engine.faults",
    "repro.storage.relation",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module_name}"
