"""Evaluable-predicate execution tests (the built-in routines of Sec. 8)."""

import pytest
from hypothesis import given, strategies as st

from repro.datalog.parser import parse_literal
from repro.datalog.terms import Constant, Struct, Variable
from repro.engine.evaluable import (
    compare_terms,
    eval_term,
    solve_comparison,
    term_sort_key,
)
from repro.errors import ExecutionError

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def test_eval_arithmetic():
    term = parse_literal("Z = (X + 2) * Y").args[1]
    out = eval_term(term, {X: Constant(3), Y: Constant(4)})
    assert out == Constant(20)


def test_eval_all_operators():
    cases = {
        "X + Y": 7, "X - Y": 3, "X * Y": 10, "X // Y": 2, "X mod Y": 1,
        "X ** Y": 25, "X / Y": 2.5,
    }
    binding = {X: Constant(5), Y: Constant(2)}
    for text, expected in cases.items():
        term = parse_literal(f"Z = {text}").args[1]
        assert eval_term(term, binding) == Constant(expected)


def test_eval_unary_and_builtin():
    assert eval_term(Struct("neg", (Constant(3),)), {}) == Constant(-3)
    assert eval_term(Struct("abs", (Constant(-3),)), {}) == Constant(3)
    assert eval_term(Struct("min", (Constant(2), Constant(5))), {}) == Constant(2)
    assert eval_term(Struct("max", (Constant(2), Constant(5))), {}) == Constant(5)


def test_eval_unbound_raises():
    term = parse_literal("Z = X + 1").args[1]
    with pytest.raises(ExecutionError):
        eval_term(term, {})


def test_eval_non_numeric_raises():
    term = parse_literal("Z = X + 1").args[1]
    with pytest.raises(ExecutionError):
        eval_term(term, {X: Constant("text")})


def test_division_by_zero():
    term = parse_literal("Z = X / 0").args[1]
    with pytest.raises(ExecutionError):
        eval_term(term, {X: Constant(1)})


def test_structural_terms_pass_through():
    term = Struct("f", (X,))
    assert eval_term(term, {X: Constant(1)}) == Struct("f", (Constant(1),))


def test_solve_equality_binds():
    out = solve_comparison(parse_literal("Z = X + 1"), {X: Constant(2)})
    assert out[Z] == Constant(3)


def test_solve_equality_checks():
    assert solve_comparison(parse_literal("X = 3"), {X: Constant(3)}) is not None
    assert solve_comparison(parse_literal("X = 3"), {X: Constant(4)}) is None


def test_solve_equality_decomposes_structs():
    out = solve_comparison(
        parse_literal("pair(A, B) = P"),
        {Variable("P"): Struct("pair", (Constant(1), Constant(2)))},
    )
    assert out[Variable("A")] == Constant(1)
    assert out[Variable("B")] == Constant(2)


def test_solve_equality_both_unbound_raises():
    with pytest.raises(ExecutionError):
        solve_comparison(parse_literal("X = Y"), {})


def test_solve_equality_noninvertible_raises():
    with pytest.raises(ExecutionError):
        solve_comparison(parse_literal("5 = X + 1"), {})


def test_solve_orderings():
    binding = {X: Constant(1), Y: Constant(2)}
    assert solve_comparison(parse_literal("X < Y"), binding) is not None
    assert solve_comparison(parse_literal("X > Y"), binding) is None
    assert solve_comparison(parse_literal("X <= 1"), binding) is not None
    assert solve_comparison(parse_literal("X != Y"), binding) is not None
    assert solve_comparison(parse_literal("X >= Y"), binding) is None


def test_solve_comparison_unbound_raises():
    with pytest.raises(ExecutionError):
        solve_comparison(parse_literal("X < Y"), {X: Constant(1)})


def test_comparison_evaluates_arithmetic():
    out = solve_comparison(parse_literal("X + 1 < Y * 2"), {X: Constant(1), Y: Constant(2)})
    assert out is not None


def test_compare_terms_total_order():
    assert compare_terms(Constant(1), Constant(2)) == -1
    assert compare_terms(Constant("a"), Constant("b")) == -1
    assert compare_terms(Constant(1), Constant("a")) == -1  # numbers < strings
    assert compare_terms(Constant("z"), Struct("f", ())) == -1  # strings < structs
    assert compare_terms(Constant(2), Constant(2.0)) == 0


@given(st.integers(-50, 50), st.integers(-50, 50))
def test_compare_agrees_with_python(a, b):
    expected = -1 if a < b else (1 if a > b else 0)
    assert compare_terms(Constant(a), Constant(b)) == expected


@given(st.lists(st.integers(-20, 20), min_size=1, max_size=10))
def test_sort_key_is_consistent(values):
    terms = [Constant(v) for v in values]
    assert sorted(terms, key=term_sort_key) == [Constant(v) for v in sorted(values)]
