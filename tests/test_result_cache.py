"""The version-keyed cross-query result cache (and retract invalidation).

The cache key includes the versions of the relations in the query's
dependency footprint, so any insert or retract a query *could observe*
fences its cached answer — a stale hit is impossible by construction,
while writes to unrelated relations leave entries hot (see
tests/test_invalidation.py).  These tests pin the hit/miss behavior, the
invalidation paths (insert, retract, new rules), the bypass rules
(profiler / governor / tracer arguments mean "measure this run", never
serve a memo), and the escape hatch.  The retract regressions double as
the index/sort-cache invalidation audit: a retract mid-session must bump
the relation version and the re-query must see post-retract answers
whether it goes through the cache or not.
"""

import pytest

from repro import KnowledgeBase
from repro.engine.governor import make_governor
from repro.engine.profiler import Profiler
from repro.obs import Tracer
from repro.storage.relation import DerivedRelation, relation_from_rows

ANC = "anc(X, Y) <- par(X, Y). anc(X, Y) <- par(X, Z), anc(Z, Y)."

PAR = [("abe", "homer"), ("homer", "bart"), ("homer", "lisa")]


def _counter(kb, name):
    return sum(c["value"] for c in kb.metrics.snapshot()["counters"] if c["name"] == name)


def make_kb(**kwargs):
    kb = KnowledgeBase(**kwargs)
    kb.rules(ANC)
    kb.facts("par", PAR)
    return kb


# ----------------------------------------------------------------- warm hits


def test_repeated_query_hits_cache():
    kb = make_kb()
    first = kb.ask("anc(abe, Y)?")
    second = kb.ask("anc(abe, Y)?")
    assert second is first  # served verbatim, no re-evaluation
    assert _counter(kb, "result_cache_hits_total") == 1
    assert _counter(kb, "result_cache_misses_total") == 1


def test_different_bindings_are_different_entries():
    kb = make_kb()
    a = kb.ask("anc($X, Y)?", X="abe")
    b = kb.ask("anc($X, Y)?", X="homer")
    assert a.to_python() != b.to_python()
    assert _counter(kb, "result_cache_hits_total") == 0
    assert kb.ask("anc($X, Y)?", X="abe") is a


def test_cache_disabled_by_constructor_flag():
    kb = make_kb(result_cache=False)
    first = kb.ask("anc(abe, Y)?")
    second = kb.ask("anc(abe, Y)?")
    assert first is not second
    assert first.to_python() == second.to_python()
    assert _counter(kb, "result_cache_hits_total") == 0


# -------------------------------------------------------------- invalidation


def test_insert_invalidates():
    kb = make_kb()
    before = kb.ask("anc(abe, Y)?")
    kb.facts("par", [("bart", "maggie")])
    after = kb.ask("anc(abe, Y)?")
    assert after is not before
    assert ("maggie",) in set(after.to_python())


def test_retract_invalidates_and_requery_is_correct():
    """The ISSUE's retract regression: retract mid-session, then re-query
    through the cache — the answer must shrink, and a further repeat of
    the *post-retract* query may hit the cache again."""
    kb = make_kb()
    before = kb.ask("anc(abe, Y)?")
    assert ("bart",) in set(before.to_python())
    removed = kb.retract("par", [("homer", "bart")])
    assert removed == 1
    after = kb.ask("anc(abe, Y)?")
    assert after is not before
    assert ("bart",) not in set(after.to_python())
    assert ("lisa",) in set(after.to_python())
    assert kb.ask("anc(abe, Y)?") is after


def test_retract_bumps_relation_version():
    kb = make_kb()
    relation = kb.db.relation("par")
    version = relation.version
    kb.retract("par", [("homer", "bart")])
    assert relation.version > version


def test_new_rule_invalidates():
    kb = make_kb()
    before = kb.ask("anc(abe, Y)?")
    kb.rules("anc(X, Y) <- par(Y, X).")  # symmetric closure changes answers
    after = kb.ask("anc(abe, Y)?")
    assert after is not before


# -------------------------------------------------------------- bypass rules


def test_profiler_governor_tracer_bypass_cache():
    kb = make_kb()
    kb.ask("anc(abe, Y)?")  # primes the cache
    profiler = Profiler()
    kb.ask("anc(abe, Y)?", profiler=profiler)
    assert profiler.produced > 0  # actually executed, not a memo
    kb.ask("anc(abe, Y)?", governor=make_governor(max_tuples=10_000))
    tracer = Tracer()
    kb.ask("anc(abe, Y)?", tracer=tracer)
    assert _counter(kb, "result_cache_hits_total") == 0


# ------------------------------------------------- derived-store invalidation


def test_derived_relation_discard_invalidates_batch_store():
    from repro.datalog.intern import INTERNER
    from repro.datalog.terms import Constant

    rel = DerivedRelation("d")
    rel.add((Constant("a"),))
    rel.add((Constant("b"),))
    store = rel.batch_store(INTERNER)
    assert store.length == 2
    version = rel.version
    rel.discard((Constant("a"),))
    assert rel.version > version
    assert (Constant("a"),) not in rel
    # the dropped store is rebuilt from the survivors on next use
    rebuilt = rel.batch_store(INTERNER)
    assert rebuilt.length == 1


def test_relation_remove_drops_batch_store():
    from repro.datalog.intern import INTERNER
    from repro.datalog.terms import Constant

    rel = relation_from_rows("r", [("a",), ("b",)], arity=1)
    assert rel.batch_store(INTERNER).length == 2
    version = rel.version
    rel.remove((Constant("a"),))
    assert rel.version > version
    assert rel.batch_store(INTERNER).length == 1


def test_version_vector_orders_names_deterministically():
    kb = make_kb()
    vector = kb.db.version_vector()
    names = [name for name, _ in vector]
    assert names == sorted(names)


# ----------------------------------------------------------------- eviction


def test_fifo_eviction_bounds_the_cache():
    kb = make_kb(result_cache_size=2)
    kb.ask("anc(abe, Y)?")
    kb.ask("anc(homer, Y)?")
    kb.ask("anc(bart, Y)?")  # evicts the oldest entry
    assert len(kb._result_cache) == 2
    kb.ask("anc(abe, Y)?")  # the evicted query re-runs (miss, re-inserted)
    assert _counter(kb, "result_cache_hits_total") == 0
    assert _counter(kb, "result_cache_misses_total") == 4
