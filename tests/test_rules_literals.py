"""Unit tests for literals, rules and programs."""

import pytest

from repro.datalog.literals import Literal, PredicateRef, comparison, lit, pred_ref
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import Constant, Variable
from repro.errors import KnowledgeBaseError

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def test_lit_builder_lifts_values():
    literal = lit("up", X, "a", 3)
    assert literal.args == (X, Constant("a"), Constant(3))
    assert str(literal) == "up(X, a, 3)"


def test_comparison_builder_validates_op():
    assert comparison("<", X, 3).predicate == "<"
    with pytest.raises(ValueError):
        comparison("<>", X, 3)


def test_comparison_arity_enforced():
    with pytest.raises(ValueError):
        Literal("<", (X,))


def test_negated_comparison_rejected():
    with pytest.raises(ValueError):
        Literal("<", (X, Y), negated=True)


def test_literal_variables_and_ground():
    literal = lit("p", X, "a")
    assert literal.variables == {X}
    assert not literal.is_ground
    assert lit("p", "a", 1).is_ground


def test_literal_with_predicate_rename():
    renamed = lit("sg", X, Y).with_predicate("sg.bf")
    assert renamed.predicate == "sg.bf"
    assert renamed.args == (X, Y)


def test_positive_strips_negation():
    negated = lit("p", X, negated=True)
    assert negated.positive() == lit("p", X)
    assert lit("p", X).positive() == lit("p", X)


def test_pred_ref():
    assert pred_ref(lit("p", X, Y)) == PredicateRef("p", 2)
    assert str(PredicateRef("p", 2)) == "p/2"


def test_rule_head_restrictions():
    with pytest.raises(KnowledgeBaseError):
        Rule(lit("p", X, negated=True), ())
    with pytest.raises(KnowledgeBaseError):
        Rule(comparison("=", X, 1), ())


def test_rule_variables_and_fact():
    rule = parse_rule("p(X, Y) <- q(X, Z), r(Z, Y).")
    assert rule.variables == {X, Y, Z}
    assert not rule.is_fact
    assert parse_rule("p(a).").is_fact


def test_rule_substitute():
    rule = parse_rule("p(X) <- q(X, Y).")
    out = rule.substitute({X: Constant(1)})
    assert str(out) == "p(1) <- q(1, Y)."


def test_rule_with_body_permutation():
    rule = parse_rule("p(X) <- q(X), r(X).")
    swapped = rule.with_body((rule.body[1], rule.body[0]))
    assert [l.predicate for l in swapped.body] == ["r", "q"]


def test_program_classification():
    program = parse_program(
        """
        p(X, Y) <- q(X, Z), base1(Z, Y).
        q(X, Y) <- base2(X, Y), Y > 2.
        """
    )
    derived = {str(r) for r in program.derived_predicates}
    base = {str(r) for r in program.base_predicates}
    assert derived == {"p/2", "q/2"}
    assert base == {"base1/2", "base2/2"}
    assert program.is_derived(PredicateRef("p", 2))
    assert not program.is_derived(PredicateRef("base1", 2))


def test_program_rules_for():
    program = parse_program("p(X) <- a(X). p(X) <- b(X). q(X) <- p(X).")
    assert len(program.rules_for(PredicateRef("p", 1))) == 2
    assert program.rules_for(PredicateRef("missing", 1)) == ()


def test_program_arity_conflict_detected():
    with pytest.raises(KnowledgeBaseError):
        parse_program("p(X) <- q(X). q(X, Y) <- r(X, Y), p(X, Y).")


def test_program_extend_and_replace():
    program = parse_program("p(X) <- a(X).")
    extended = program.extend([parse_rule("p(X) <- b(X).")])
    assert len(extended) == 2
    replaced = extended.replace_rules(PredicateRef("p", 1), [parse_rule("p(X) <- c(X).")])
    assert len(replaced) == 1
    assert replaced.rules[0].body[0].predicate == "c"


def test_program_equality_and_hash():
    p1 = parse_program("p(X) <- a(X).")
    p2 = parse_program("p(X) <- a(X).")
    assert p1 == p2
    assert hash(p1) == hash(p2)
