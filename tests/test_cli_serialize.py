"""CLI and plan-serialization tests."""

import io
import json

import pytest

from repro.cli import main
from repro.plans.serialize import plan_to_dict, plan_to_json

FAMILY = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, Z), anc(Z, Y).
par(abe, homer).
par(homer, bart).
par(homer, lisa).
"""


@pytest.fixture
def family_file(tmp_path):
    path = tmp_path / "family.ldl"
    path.write_text(FAMILY)
    return path


def run_cli(*argv, stdin_text=""):
    out = io.StringIO()
    status = main(list(argv), stdin=io.StringIO(stdin_text), stdout=out)
    return status, out.getvalue()


def test_batch_query(family_file):
    status, out = run_cli(str(family_file), "-q", "anc(abe, Y)?")
    assert status == 0
    assert "'bart'" in out and "'lisa'" in out and "'homer'" in out


def test_bound_query_form(family_file):
    status, out = run_cli(str(family_file), "-q", "anc($X, Y)?", "-b", "X=homer")
    assert status == 0
    assert "'bart'" in out and "'homer'" not in out.split("rows)")[1]


def test_boolean_query(family_file):
    __, out_true = run_cli(str(family_file), "-q", "anc(abe, bart)?")
    __, out_false = run_cli(str(family_file), "-q", "anc(bart, abe)?")
    assert "true." in out_true
    assert "false." in out_false


def test_explain_flag(family_file):
    status, out = run_cli(str(family_file), "-q", "anc(abe, Y)?", "--explain")
    assert status == 0
    assert "CC anc/2" in out


def test_json_flag(family_file):
    status, out = run_cli(str(family_file), "-q", "anc(abe, Y)?", "--json")
    assert status == 0
    payload = json.loads(out.split("loaded", 1)[1].split("\n", 1)[1])
    assert payload["node"] == "or"


def test_unknown_query_reports_error(family_file):
    status, out = run_cli(str(family_file), "-q", "mystery(X)?")
    assert status == 1
    assert "error:" in out


def test_missing_file():
    status, out = run_cli("no_such_file.ldl")
    assert status == 1
    assert "error:" in out


def test_bad_binding_syntax():
    with pytest.raises(SystemExit):
        run_cli("-b", "novalue")


def test_strategy_flag(family_file):
    status, out = run_cli(str(family_file), "--strategy", "kbz", "-q", "anc(abe, Y)?")
    assert status == 0


def test_repl_session(family_file):
    session = "\n".join(
        [
            "gp(X, Z) <- par(X, Y), par(Y, Z).",
            "gp(abe, Z)?",
            ":relations",
            ":explain gp(abe, Z)?",
            "nonsense(",  # buffered, then completed:
            "X)?",
            ":quit",
        ]
    ) + "\n"
    status, out = run_cli(str(family_file), "-i", stdin_text=session)
    assert status == 0
    assert "ok (1 rules)" in out
    assert "'bart'" in out
    assert "par/2" in out
    assert "OR __query__" in out or "AND" in out
    assert "error:" in out  # the nonsense query


def test_materialize_flag_answers_through_views(family_file):
    status, out = run_cli(str(family_file), "--materialize", "-q", "anc(abe, Y)?")
    assert status == 0
    assert "materialized 1 views" in out
    assert "'bart'" in out and "'homer'" in out


def test_repl_views_command(family_file):
    session = "\n".join([":views", ":materialize", ":views", ":quit"]) + "\n"
    status, out = run_cli(str(family_file), "-i", stdin_text=session)
    assert status == 0
    assert "no materialized views" in out
    assert "anc: 5 tuples [dred]" in out


def test_repl_error_recovery(family_file):
    session = "anc(abe Y)?\n:quit\n"  # parse error, then quit
    status, out = run_cli(str(family_file), "-i", stdin_text=session)
    assert status == 0
    assert "error:" in out


# -- serialization ----------------------------------------------------------------


def make_plan():
    from repro import KnowledgeBase

    kb = KnowledgeBase()
    kb.rules(FAMILY)
    return kb.compile("anc($X, Y)?").plan


def test_plan_to_dict_structure():
    plan = make_plan()
    data = plan_to_dict(plan)
    assert data["node"] == "or"
    assert data["binding"] == "bf"
    wrapper = data["children"][0]
    assert wrapper["node"] == "and"
    step = wrapper["steps"][0]
    assert step["child"]["node"] == "cc"
    assert step["child"]["method"] in ("magic", "supplementary", "counting", "seminaive")
    assert isinstance(step["child"]["program"], list)


def test_plan_to_json_roundtrips_through_json():
    plan = make_plan()
    payload = json.loads(plan_to_json(plan))
    assert payload["node"] == "or"


def test_infinite_costs_serialize():
    from repro.cost.model import Estimate
    from repro.datalog import BindingPattern, PredicateRef, parse_rule
    from repro.plans.nodes import JoinNode, UnionNode

    rule = parse_rule("p(X) <- q(X).")
    node = UnionNode(
        PredicateRef("p", 1), BindingPattern("f"),
        (JoinNode(rule, BindingPattern("f"), (), Estimate.unsafe()),),
        Estimate.unsafe(),
    )
    data = plan_to_dict(node)
    assert data["est"]["cost"] == "inf"


def test_serialize_rejects_non_plan():
    with pytest.raises(TypeError):
        plan_to_dict("not a plan")
