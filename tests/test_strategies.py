"""Search strategy tests: exhaustive, DP, KBZ, annealing (Section 7.1)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost import BodyEstimator
from repro.datalog.parser import parse_rule
from repro.optimizer import (
    AnnealingSchedule,
    anneal,
    annealing_order,
    cost_order,
    dp_order,
    enumerate_orders,
    exhaustive_order,
    kbz_order,
    split_joinable,
)
from repro.storage.statistics import DeclaredStatistics
from repro.workloads import generate_conjunctive


def estimator_for(workload):
    return BodyEstimator(workload.stats)


def test_split_joinable():
    rule = parse_rule("p(X) <- q(X, Y), Y > 1, ~r(Y), s(Y, Z).")
    joinable, floating = split_joinable(rule.body)
    assert joinable == [0, 3]
    assert floating == [1, 2]


def test_enumerate_orders_counts_factorial():
    w = generate_conjunctive(4, "chain", seed=1)
    assert sum(1 for __ in enumerate_orders(w.body, frozenset(), estimator_for(w))) == 24


def test_exhaustive_is_minimum_of_enumeration():
    w = generate_conjunctive(5, "random", seed=3)
    est = estimator_for(w)
    best = exhaustive_order(w.body, frozenset(), est)
    all_costs = [r.est.cost for r in enumerate_orders(w.body, frozenset(), est)]
    assert best.est.cost == min(all_costs)
    assert best.evaluations == len(all_costs)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from(["chain", "star", "cycle", "random"]))
def test_dp_equals_exhaustive(seed, shape):
    """Selinger DP is exact for this cost model (order-independent states)."""
    w = generate_conjunctive(5, shape, seed=seed)
    est = estimator_for(w)
    assert dp_order(w.body, frozenset(), est).est.cost == pytest.approx(
        exhaustive_order(w.body, frozenset(), est).est.cost
    )


def test_dp_fewer_evaluations_than_exhaustive():
    w = generate_conjunctive(7, "random", seed=11)
    est = estimator_for(w)
    dp = dp_order(w.body, frozenset(), est)
    assert dp.evaluations < math.factorial(7)


def test_kbz_quality_bulk():
    """The paper's claim: optimal in most cases, >=90%% within 2-3x."""
    ratios = []
    for seed in range(30):
        w = generate_conjunctive(6, ("chain", "star", "random")[seed % 3], seed=seed)
        est = estimator_for(w)
        exact = exhaustive_order(w.body, frozenset(), est).est.cost
        quick = kbz_order(w.body, frozenset(), est).est.cost
        ratios.append(quick / exact)
    within_3x = sum(r <= 3.0 for r in ratios) / len(ratios)
    assert within_3x >= 0.9
    assert min(ratios) >= 1.0 - 1e-9  # never better than the optimum


def test_kbz_quadratic_evaluation_count():
    w = generate_conjunctive(10, "random", seed=5)
    est = estimator_for(w)
    result = kbz_order(w.body, frozenset(), est)
    assert result.evaluations <= 10 * 10 + 10  # n roots + n sweeps of n-1 swaps
    assert not result.est.is_infinite


def test_kbz_handles_degenerate_bodies():
    rule = parse_rule("p(X) <- q(X, Y).")
    stats = DeclaredStatistics()
    stats.declare("q", 10, [5, 5])
    result = kbz_order(rule.body, frozenset(), BodyEstimator(stats))
    assert result.order == (0,)


def test_annealing_close_to_optimal():
    failures = 0
    for seed in range(10):
        w = generate_conjunctive(6, "random", seed=500 + seed)
        est = estimator_for(w)
        exact = exhaustive_order(w.body, frozenset(), est).est.cost
        sa = annealing_order(w.body, frozenset(), est, rng=random.Random(seed))
        if sa.est.cost > 2 * exact:
            failures += 1
    assert failures <= 1


def test_annealing_fewer_evaluations_than_space():
    w = generate_conjunctive(8, "random", seed=77)
    est = estimator_for(w)
    sa = annealing_order(
        w.body, frozenset(), est,
        rng=random.Random(0),
        schedule=AnnealingSchedule(max_evaluations=500),
    )
    assert sa.evaluations <= 500 < math.factorial(8)


def test_annealing_deterministic_given_seed():
    w = generate_conjunctive(6, "random", seed=9)
    est = estimator_for(w)
    a = annealing_order(w.body, frozenset(), est, rng=random.Random(42))
    b = annealing_order(w.body, frozenset(), est, rng=random.Random(42))
    assert a.order == b.order and a.est.cost == b.est.cost


def test_generic_anneal_escapes_unsafe_states():
    """States with infinite cost are priced by a finite surrogate, so the
    walk can move off them."""
    def cost_of(state):
        return math.inf if state == 0 else float(state)

    result = anneal(
        0,
        lambda s, rng: rng.choice([1, 2, 3]),
        cost_of,
        random.Random(1),
        AnnealingSchedule(max_evaluations=50),
    )
    assert result.cost == 1.0


def test_cost_order_flushes_floats_early():
    rule = parse_rule("p(X, Y) <- q(X, Z), r(Z, Y), Z > 1.")
    stats = DeclaredStatistics()
    stats.declare("q", 100, [10, 10])
    stats.declare("r", 100, [10, 10])
    joinable, floating = split_joinable(rule.body)
    result = cost_order(rule.body, joinable, floating, frozenset(), BodyEstimator(stats))
    # the comparison (original index 2) runs right after q binds Z
    assert result.order.index(2) == 1


def test_unsafe_orders_price_infinite():
    rule = parse_rule("p(X, Y) <- Y = W + 1, q(X).")  # W never bound
    stats = DeclaredStatistics()
    stats.declare("q", 10, [10])
    result = exhaustive_order(rule.body, frozenset(), BodyEstimator(stats))
    assert result.est.is_infinite
    assert not result.is_safe
