"""The chaos harness itself: a short seeded sweep must be green.

CI's ``chaos`` job runs the long sweep (``python -m repro.testing.chaos
--count 100``); this tier-1 slice keeps the harness importable, the
scenario dispatch exercised, and the no-violation contract pinned on a
handful of seeds so a regression shows up in the default test run, not
only in the nightly-style job.
"""

import pytest

from repro.testing import chaos_case, run_sweep
from repro.testing.chaos import SCENARIOS, check_no_leaked_workers


@pytest.fixture(autouse=True, scope="module")
def _pool_teardown():
    yield
    check_no_leaked_workers()


def test_every_scenario_name_is_reachable():
    # the scenario picker is seeded; over enough seeds all arms appear
    seen = set()
    seed = 0
    while len(seen) < len(SCENARIOS) and seed < 200:
        import random

        rng = random.Random(seed * 2654435761 % (2**31))
        seen.add(rng.choice(SCENARIOS))
        seed += 1
    assert seen == set(SCENARIOS)


@pytest.mark.parametrize("seed", range(8))
def test_chaos_case_has_no_violations(seed):
    result = chaos_case(seed)
    assert result.ok, result.violations
    assert result.queries > 0


def test_short_sweep_reports_and_leaves_no_workers():
    report = run_sweep(seed=100, count=6)
    assert report.ok, report.violations
    assert report.cases == 6
    assert not check_no_leaked_workers()
