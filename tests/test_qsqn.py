"""Unit tests for the query-subquery-net evaluator (`repro.engine.qsqn`).

The differential strategy (`qsqn` in `repro.testing.oracle`) holds the
engine to answer parity on random programs; these tests pin the specific
behaviours that make it correct — seed filtering, subsumption
termination, mixed-literal bodies, support materialization — and the
end-to-end path through the optimizer (`recursive_methods=("qsqn",)`).
"""

import pytest

from repro import KnowledgeBase, OptimizerConfig
from repro.datalog import (
    CPermutation,
    DependencyGraph,
    adorn_clique,
    parse_program,
    parse_query,
    pred_ref,
)
from repro.datalog.rules import Program
from repro.engine import evaluate_program
from repro.engine.qsqn import QSQNEngine
from repro.errors import ExecutionError
from repro.obs import MetricsRegistry
from repro.storage import Database, load_facts_text

SG = """
sg(X, Y) <- flat(X, Y).
sg(X, Y) <- up(X, X1), sg(X1, Y1), down(Y1, Y).
"""

ANC = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, Z), anc(Z, Y).
"""


def _adorned(rules_text, query_text, program=None):
    program = program if program is not None else parse_program(rules_text)
    form = parse_query(query_text)
    ref = pred_ref(form.goal)
    graph = DependencyGraph(program)
    clique = graph.clique_of(ref)
    assert clique is not None
    adorned = adorn_clique(
        clique, ref, form.adornment, CPermutation.greedy_sip(),
        derived_predicates=program.derived_predicates,
    )
    needed = set()
    for clique_ref in clique.predicates:
        needed |= set(graph.reachable_from(clique_ref))
    needed -= set(clique.predicates)
    support = Program([r for r in program if r.head_ref in needed])
    seed = tuple(form.goal.args[i] for i in form.adornment.bound_positions)
    return adorned, support, seed


def _db(facts_text):
    db = Database()
    load_facts_text(db, facts_text)
    return db


def _oracle_rows(db, rules_text, name, *, filter_first=None):
    result = evaluate_program(db, parse_program(rules_text))
    rows = {tuple(f.value for f in row) for row in result.rows(name)}
    if filter_first is not None:
        rows = {row for row in rows if row[0] == filter_first}
    return rows


def test_anc_bound_first():
    db = _db("par(a, b). par(b, c). par(c, d). par(x, y).")
    adorned, support, seed = _adorned(ANC, "anc(a, Y)?")
    answers = QSQNEngine(db).solve(adorned, support, {seed})
    assert {row[1].value for row in answers} == {"b", "c", "d"}
    assert all(row[0].value == "a" for row in answers)


def test_sg_bound_first_matches_seminaive():
    db = _db(
        "flat(b, d). flat(d, b). up(a, b). up(c, d). "
        "down(d, e). down(b, f)."
    )
    adorned, support, seed = _adorned(SG, "sg(a, Y)?")
    answers = QSQNEngine(db).solve(adorned, support, {seed})
    got = {tuple(f.value for f in row) for row in answers}
    assert got == _oracle_rows(db, SG, "sg", filter_first="a")


def test_seed_filter_excludes_internal_subquery_answers():
    # Solving sg(a, Y) spawns internal subqueries for intermediate
    # generations; their answers must not leak into the result.
    db = _db(
        "flat(b, d). flat(d, b). up(a, b). up(c, d). "
        "down(d, e). down(b, f)."
    )
    adorned, support, seed = _adorned(SG, "sg(a, Y)?")
    engine = QSQNEngine(db)
    answers = engine.solve(adorned, support, {seed})
    assert all(row[0].value == "a" for row in answers)
    # ... but the same net solves several seeds in one run
    adorned, support, _ = _adorned(SG, "sg(a, Y)?")
    seeds = {seed, tuple(seed_of for seed_of in seed)}  # identical, dedup
    assert QSQNEngine(db).solve(adorned, support, seeds) == answers


def test_multiple_seeds_union():
    db = _db("par(a, b). par(b, c). par(x, y).")
    adorned, support, _ = _adorned(ANC, "anc(a, Y)?")
    from repro.datalog.terms import term_from_python

    seeds = {(term_from_python("a"),), (term_from_python("x"),)}
    answers = QSQNEngine(db).solve(adorned, support, seeds)
    got = {(row[0].value, row[1].value) for row in answers}
    assert got == {("a", "b"), ("a", "c"), ("x", "y")}


def test_termination_on_cyclic_graph():
    # Subsumption (set membership) must drain the worklist on a cycle.
    db = _db("par(a, b). par(b, c). par(c, a).")
    adorned, support, seed = _adorned(ANC, "anc(a, Y)?")
    answers = QSQNEngine(db).solve(adorned, support, {seed})
    assert {row[1].value for row in answers} == {"a", "b", "c"}


def test_mutual_recursion():
    rules = """
    even(X) <- zero(X).
    even(X) <- succ(Y, X), odd(Y).
    odd(X) <- succ(Y, X), even(Y).
    """
    db = _db("zero(n0). succ(n0, n1). succ(n1, n2). succ(n2, n3).")
    adorned, support, seed = _adorned(rules, "even(n2)?")
    answers = QSQNEngine(db).solve(adorned, support, {seed})
    assert {row[0].value for row in answers} == {"n2"}
    adorned, support, seed = _adorned(rules, "even(n3)?")
    assert QSQNEngine(db).solve(adorned, support, {seed}) == frozenset()


def test_comparison_and_base_negation_in_clique_body():
    rules = """
    reach(X, Y) <- edge(X, Y), Y > a, ~blocked(Y).
    reach(X, Y) <- reach(X, Z), edge(Z, Y), ~blocked(Y).
    """
    db = _db("edge(a, b). edge(b, c). edge(c, d). blocked(c).")
    adorned, support, seed = _adorned(rules, "reach(a, Y)?")
    answers = QSQNEngine(db).solve(adorned, support, {seed})
    assert {row[1].value for row in answers} == {"b"}


def test_support_predicates_materialized_once():
    rules = """
    hop(X, Y) <- e1(X, Y).
    hop(X, Y) <- e2(X, Y).
    path(X, Y) <- hop(X, Y).
    path(X, Y) <- hop(X, Z), path(Z, Y).
    """
    db = _db("e1(a, b). e2(b, c). e1(c, d).")
    adorned, support, seed = _adorned(rules, "path(a, Y)?")
    assert {r.head.predicate for r in support} == {"hop"}
    answers = QSQNEngine(db).solve(adorned, support, {seed})
    assert {row[1].value for row in answers} == {"b", "c", "d"}


def test_aggregate_rule_rejected():
    from repro.datalog import parse_rule

    rules = parse_program(ANC)
    db = _db("par(a, b).")
    adorned, support, seed = _adorned(ANC, "anc(a, Y)?")
    # Splice an aggregate rule into the adorned clique: the net builder
    # must refuse rather than silently mis-evaluate.
    from dataclasses import replace

    agg = parse_rule("anc(X, count(Y)) <- par(X, Y).")
    assert agg.is_aggregate
    bad = replace(
        adorned,
        rules=tuple(
            [replace(adorned.rules[0], rule=agg)] + list(adorned.rules[1:])
        ),
    )
    with pytest.raises(ExecutionError, match="aggregate"):
        QSQNEngine(db).solve(bad, support, {seed})


def test_counters_and_metrics():
    db = _db("par(a, b). par(b, c).")
    adorned, support, seed = _adorned(ANC, "anc(a, Y)?")
    metrics = MetricsRegistry()
    engine = QSQNEngine(db, metrics=metrics)
    answers = engine.solve(adorned, support, {seed})
    assert len(answers) == 2
    assert engine.counters["subqueries"] >= 1
    # internal subqueries' answers count too (only the result is filtered)
    assert engine.counters["answers"] >= 2
    assert engine.counters["events"] > 0
    assert metrics.counter_value("qsqn_answers_total") == engine.counters["answers"]
    assert metrics.counter_value("qsqn_subqueries_total") >= 1


def test_qsqn_span_emitted():
    from repro import Tracer

    db = _db("par(a, b).")
    adorned, support, seed = _adorned(ANC, "anc(a, Y)?")
    tracer = Tracer()
    QSQNEngine(db, tracer=tracer).solve(adorned, support, {seed})
    spans = [s for s in tracer.spans if s.kind == "qsqn"]
    assert len(spans) == 1
    assert spans[0].name.startswith("qsqn:anc")
    assert spans[0].attrs["answers"] == 1


def _kb(rules, facts, **config_kwargs):
    kb = KnowledgeBase(
        OptimizerConfig(strategy="dp", seed=0, **config_kwargs),
        feedback=False,
    )
    kb.rules(rules)
    for name, rows in facts.items():
        kb.facts(name, rows)
    return kb


SG_FACTS = {
    "flat": [("b", "d"), ("d", "b")],
    "up": [("a", "b"), ("c", "d")],
    "down": [("d", "e"), ("b", "f")],
}


def test_forced_qsqn_through_knowledge_base():
    forced = _kb(SG, SG_FACTS, recursive_methods=("qsqn",))
    default = _kb(SG, SG_FACTS)
    assert "method=qsqn" in forced.explain("sg($X, Y)?")
    assert sorted(forced.ask("sg($X, Y)?", X="a").to_python()) == sorted(
        default.ask("sg($X, Y)?", X="a").to_python()
    )


def test_default_config_prices_qsqn_but_prefers_supplementary_tie():
    # qsqn_weight=1.0 makes the qsqn estimate tie the supplementary
    # method's; the earlier-listed method must win the tie, so default
    # plans are unchanged by qsqn's availability.
    with_qsqn = _kb(SG, SG_FACTS)
    without = _kb(
        SG, SG_FACTS,
        recursive_methods=("seminaive", "magic", "supplementary", "counting"),
    )
    assert with_qsqn.explain("sg($X, Y)?") == without.explain("sg($X, Y)?")


def test_low_qsqn_weight_prefers_qsqn():
    from dataclasses import replace as dc_replace

    from repro.cost import CostParams

    params = CostParams(qsqn_weight=0.01)
    kb = KnowledgeBase(
        OptimizerConfig(strategy="dp", seed=0, params=params), feedback=False
    )
    kb.rules(SG)
    for name, rows in SG_FACTS.items():
        kb.facts(name, rows)
    assert "method=qsqn" in kb.explain("sg($X, Y)?")
    default = _kb(SG, SG_FACTS)
    assert sorted(kb.ask("sg($X, Y)?", X="a").to_python()) == sorted(
        default.ask("sg($X, Y)?", X="a").to_python()
    )
