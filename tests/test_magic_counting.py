"""Magic-set and counting rewrites: structure + semantic equivalence.

The semantic tests are the important ones: for every binding, the magic
(and, where applicable, counting) rewrite must return exactly the tuples
of the plain fixpoint that match the query — over trees, DAGs, and mutual
recursion.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import (
    BindingPattern,
    CPermutation,
    DependencyGraph,
    PredicateRef,
    adorn_clique,
    counting_applicable,
    counting_rewrite,
    magic_rewrite,
    parse_program,
)
from repro.datalog.terms import Constant
from repro.engine.fixpoint import evaluate_program
from repro.storage import Database
from repro.workloads import same_generation_instance

SG = """
sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
sg(X, Y) <- flat(X, Y).
"""

ANC = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, Z), anc(Z, Y).
"""

PAPER_CPERM = CPermutation(choices={(0, BindingPattern("fb")): (2, 1, 0)})


def adorned_sg(binding="bf", cperm=PAPER_CPERM):
    program = parse_program(SG)
    clique = DependencyGraph(program).recursive_cliques()[0]
    return adorn_clique(clique, PredicateRef("sg", 2), BindingPattern(binding), cperm)


def adorned_anc(binding="bf"):
    program = parse_program(ANC)
    clique = DependencyGraph(program).recursive_cliques()[0]
    return adorn_clique(clique, PredicateRef("anc", 2), BindingPattern(binding))


# -- structure ----------------------------------------------------------------


def test_magic_structure_sg():
    mp = magic_rewrite(adorned_sg())
    rules = {str(r) for r in mp.program}
    assert "m_sg.fb(X1) <- m_sg.bf(X), up(X, X1)." in rules
    assert mp.seed_predicate == "m_sg.bf"
    assert mp.answer_predicate == "sg.bf"
    assert mp.seed_arity == 1


def test_magic_modified_rules_gated():
    mp = magic_rewrite(adorned_anc())
    for rule in mp.program:
        if rule.head.predicate.startswith("anc."):
            assert rule.body[0].predicate.startswith("m_anc.")


def test_counting_applicability():
    assert counting_applicable(adorned_sg())          # paper SIP: separable
    assert not counting_applicable(adorned_sg(cperm=CPermutation.identity()))
    assert counting_applicable(adorned_anc())


def test_counting_rejects_inapplicable():
    with pytest.raises(ValueError):
        counting_rewrite(adorned_sg(cperm=CPermutation.identity()))


def test_counting_anc_collapses_to_any_level():
    cp = counting_rewrite(adorned_anc())
    assert cp.answer_any_level
    # pure-copy down phase: no down rules at all
    assert all(not r.head.predicate.startswith("ans_") or
               not any(l.predicate.startswith("ans_") for l in r.body)
               for r in cp.program)


def test_counting_sg_keeps_down_rules():
    cp = counting_rewrite(adorned_sg())
    assert not cp.answer_any_level
    down = [r for r in cp.program
            if r.head.predicate.startswith("ans_")
            and any(l.predicate.startswith("ans_") for l in r.body)]
    assert down  # alternating clique: real down phase


# -- semantics ----------------------------------------------------------------


def sg_database(fanout=2, depth=3):
    db = Database()
    same_generation_instance(db, fanout=fanout, depth=depth)
    return db


def full_sg(db):
    return evaluate_program(db, parse_program(SG))["sg"]


def test_magic_equals_full_filtered_every_node():
    db = sg_database()
    full = full_sg(db)
    mp = magic_rewrite(adorned_sg())
    nodes = {row[0] for row in db.relation("up")} | {row[1] for row in db.relation("up")}
    for node in sorted(nodes, key=str):
        res = evaluate_program(db, mp.program, seeds={mp.seed_predicate: {(node,)}})
        got = {r for r in res[mp.answer_predicate] if r[0] == node}
        expected = {r for r in full if r[0] == node}
        assert got == expected, f"magic mismatch at {node}"


def test_counting_equals_full_filtered_every_node():
    db = sg_database()
    full = full_sg(db)
    cp = counting_rewrite(adorned_sg())
    zero = Constant(0)
    nodes = {row[0] for row in db.relation("up")} | {row[1] for row in db.relation("up")}
    for node in sorted(nodes, key=str):
        res = evaluate_program(db, cp.program, seeds={cp.seed_predicate: {(zero, node)}})
        got = {row[1] for row in res[cp.answer_predicate] if row[0] == zero}
        expected = {r[1] for r in full if r[0] == node}
        assert got == expected, f"counting mismatch at {node}"


def test_magic_anc_on_dag():
    from repro.workloads import random_dag

    db = Database()
    random_dag(db, "par", nodes=30, edges=60, seed=7)
    full = evaluate_program(db, parse_program(ANC))["anc"]
    mp = magic_rewrite(adorned_anc())
    for node in sorted({r[0] for r in db.relation("par")}, key=str)[:10]:
        res = evaluate_program(db, mp.program, seeds={mp.seed_predicate: {(node,)}})
        got = {r for r in res[mp.answer_predicate] if r[0] == node}
        assert got == {r for r in full if r[0] == node}


def test_counting_anc_any_level_semantics():
    db = Database()
    db.load("par", [(f"n{i}", f"n{i+1}") for i in range(10)])
    cp = counting_rewrite(adorned_anc())
    zero = Constant(0)
    res = evaluate_program(db, cp.program, seeds={cp.seed_predicate: {(zero, Constant("n0"))}})
    got = {row[1].value for row in res[cp.answer_predicate]}
    assert got == {f"n{i}" for i in range(1, 11)}


def test_magic_second_argument_bound():
    """anc.fb: magic through the fb adornment (needs a reordered SIP)."""
    program = parse_program(ANC)
    clique = DependencyGraph(program).recursive_cliques()[0]
    cperm = CPermutation(defaults={1: (1, 0)})  # recursive rule: anc first
    adorned = adorn_clique(clique, PredicateRef("anc", 2), BindingPattern("fb"), cperm)
    mp = magic_rewrite(adorned)
    db = Database()
    db.load("par", [("a", "b"), ("b", "c"), ("x", "c")])
    res = evaluate_program(db, mp.program, seeds={mp.seed_predicate: {(Constant("c"),)}})
    got = {(r[0].value, r[1].value) for r in res[mp.answer_predicate] if r[1] == Constant("c")}
    assert got == {("a", "c"), ("b", "c"), ("x", "c")}


def test_magic_zero_ary_seed_end_to_end():
    """All-free adornment: the magic predicate is zero-ary and its seed is
    the empty tuple; the rewritten program must recompute the full
    extension once the engine inserts that seed."""
    adorned = adorned_anc(binding="ff")
    mp = magic_rewrite(adorned)
    assert mp.seed_predicate == "m_anc.ff"
    assert mp.seed_arity == 0
    # every rule is gated on the zero-ary magic literal, never dropped
    for rule in mp.program:
        if rule.head.predicate == mp.answer_predicate:
            assert rule.body[0].predicate == mp.seed_predicate
            assert rule.body[0].arity == 0
    db = Database()
    db.load("par", [("a", "b"), ("b", "c"), ("x", "c")])
    res = evaluate_program(db, mp.program, seeds={mp.seed_predicate: {()}})
    reference = evaluate_program(db, parse_program(ANC))["anc"]
    assert res[mp.answer_predicate] == reference
    # without the seed the gate stays shut: nothing is derived
    empty = evaluate_program(db, mp.program, seeds={mp.seed_predicate: set()})
    assert not empty[mp.answer_predicate]


def test_supplementary_zero_ary_seed_end_to_end():
    from repro.datalog.magic import supplementary_magic_rewrite

    sup = supplementary_magic_rewrite(adorned_anc(binding="ff"))
    assert sup.seed_arity == 0
    db = Database()
    db.load("par", [("a", "b"), ("b", "c"), ("x", "c")])
    res = evaluate_program(db, sup.program, seeds={sup.seed_predicate: {()}})
    reference = evaluate_program(db, parse_program(ANC))["anc"]
    assert res[sup.answer_predicate] == reference


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_magic_equivalence_random_dags(seed):
    """Property: magic-from-seed == full-fixpoint-filtered, on random DAGs."""
    from repro.workloads import random_dag

    db = Database()
    names = random_dag(db, "par", nodes=12, edges=20, seed=seed)
    full = evaluate_program(db, parse_program(ANC))["anc"]
    mp = magic_rewrite(adorned_anc())
    node = Constant(names[0])
    res = evaluate_program(db, mp.program, seeds={mp.seed_predicate: {(node,)}})
    got = {r for r in res[mp.answer_predicate] if r[0] == node}
    assert got == {r for r in full if r[0] == node}


# -- edge cases feeding the delta-maintenance path (ISSUE 9) ------------------


def counting_first_kb(rules):
    from repro import KnowledgeBase, OptimizerConfig

    kb = KnowledgeBase(OptimizerConfig(recursive_methods=("counting", "seminaive")))
    kb.rules(rules)
    return kb


def test_nonlinear_recursion_falls_back_cleanly():
    """Two recursive body occurrences violate counting's linearity
    condition; with counting listed first the optimizer must skip it —
    not crash, not mis-rewrite — and still answer correctly."""
    kb = counting_first_kb("t(X, Y) <- e(X, Y). t(X, Y) <- t(X, Z), t(Z, Y).")
    kb.facts("e", [("a", "b"), ("b", "c"), ("c", "d")])
    answers = set(kb.ask("t(a, Y)?").to_python())
    assert answers == {("b",), ("c",), ("d",)}


def test_nonseparable_sip_falls_back_cleanly():
    """The identity c-permutation makes sg non-separable (bound args of
    the recursive call depend on dn, which needs the recursive result);
    structural applicability fails and evaluation falls back."""
    adorned = adorned_sg(cperm=CPermutation.identity())
    assert not counting_applicable(adorned)
    kb = counting_first_kb(SG)
    levels = same_generation_instance(kb.db, fanout=2, depth=3)
    node = levels[1][0]
    got = set(kb.ask("sg($X, Y)?", X=node).to_python())
    full = full_sg(sg_database(fanout=2, depth=3))
    want = {(r[1].value,) for r in full if r[0].value == node}
    assert got == want


def test_zero_ary_adornment_not_counting_applicable():
    """An all-free query binds nothing: counting needs at least one bound
    argument to seed levels from, so applicability must say no."""
    assert not counting_applicable(adorned_anc(binding="ff"))


def test_zero_ary_gate_predicate_end_to_end():
    """A zero-ary base predicate gating the exit rule flows through both
    the counting-first optimizer and incremental view maintenance."""
    kb = counting_first_kb(
        "reach(X) <- go, src(X). reach(Y) <- reach(X), e(X, Y)."
    )
    kb.facts("go", [()])
    kb.facts("src", [("a",)])
    kb.facts("e", [("a", "b"), ("b", "c")])
    assert set(kb.ask("reach(X)?").to_python()) == {("a",), ("b",), ("c",)}
    kb.materialize()
    kb.facts("e", [("c", "d")])
    assert kb.view_rows("reach") == {("a",), ("b",), ("c",), ("d",)}
    kb.retract("go", [()])
    assert kb.view_rows("reach") == set()


def test_zero_ary_head_counts_derivations():
    """Zero-ary derived head: support is the number of witnesses, and the
    view empties only when the last witness is retracted."""
    from repro import KnowledgeBase

    kb = KnowledgeBase()
    kb.rules("alarm <- hot(X).")
    kb.facts("hot", [("k1",), ("k2",)])
    kb.materialize()
    assert kb._views.support("alarm", ()) == 2
    kb.retract("hot", [("k1",)])
    assert kb.view_rows("alarm") == {()}
    kb.retract("hot", [("k2",)])
    assert kb.view_rows("alarm") == set()


def test_counting_retraction_in_rolled_back_transaction():
    """Retraction under a counting-first plan inside a transaction that
    rolls back: answers, views, and caches all rewind to the pre-txn
    state — no stale counting levels or half-applied deltas survive."""
    kb = counting_first_kb(ANC)
    kb.facts("par", [("a", "b"), ("b", "c"), ("x", "c")])
    before = kb.ask("anc($X, Y)?", X="a")
    assert set(before.to_python()) == {("b",), ("c",)}
    with pytest.raises(RuntimeError):
        with kb.transaction():
            kb.retract("par", [("b", "c")])
            # mid-transaction asks see the transaction's own writes
            mid = kb.ask("anc($X, Y)?", X="a")
            assert set(mid.to_python()) == {("b",)}
            raise RuntimeError("abort")
    assert set(kb.ask("anc($X, Y)?", X="a").to_python()) == {("b",), ("c",)}
    # materialized views: maintenance deferred to commit, so a rollback
    # must discard the pending delete ops without ever applying them
    kb.materialize()
    with pytest.raises(RuntimeError):
        with kb.transaction():
            kb.retract("par", [("b", "c")])
            raise RuntimeError("abort")
    assert kb.view_rows("anc") == {
        ("a", "b"), ("a", "c"), ("b", "c"), ("x", "c")
    }
