"""Cross-strategy soundness: every search strategy, same answers.

The execution space contains only *equivalence-preserving* plans
(Section 5), so whatever strategy the optimizer uses — exhaustive, DP,
KBZ, annealing, or the Prolog-style textual baseline — execution must
return exactly the reference fixpoint's answers.  These property tests
pin that on randomly generated layered programs and data.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import KnowledgeBase, OptimizerConfig
from repro.engine import evaluate_program
from repro.workloads.querygen import generate_random_program

STRATEGIES = ("exhaustive", "dp", "kbz", "annealing", "textual")


def build_kb(rules, facts, strategy):
    kb = KnowledgeBase(OptimizerConfig(strategy=strategy, seed=7))
    kb.rules(rules)
    for name, rows in facts.items():
        kb.facts(name, rows)
    return kb


def reference_answers(rules, facts, source):
    kb = build_kb(rules, facts, "dp")
    result = evaluate_program(kb.db, kb.program)
    return {
        (a.value, b.value) for a, b in result["top"] if a.value == source
    }


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_all_strategies_agree_on_random_programs(seed):
    rules, facts, query = generate_random_program(seed=seed)
    # pick a source value that exists in the data
    source = facts["b0"][0][0] if facts["b0"] else "d0"
    expected = reference_answers(rules, facts, source)
    for strategy in STRATEGIES:
        kb = build_kb(rules, facts, strategy)
        got = {(source, y) for (y,) in kb.ask(query, X=source).to_python()}
        assert got == expected, f"{strategy} diverged on seed {seed}"


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10_000))
def test_free_and_bound_forms_consistent(seed):
    """The bound form's answers are exactly the free form's, filtered."""
    rules, facts, __ = generate_random_program(seed=seed, layers=1)
    kb = build_kb(rules, facts, "dp")
    free = set(kb.ask("top(X, Y)?").to_python())
    sources = {x for x, __ in free}
    for source in sorted(sources)[:3]:
        bound = {(source, y) for (y,) in kb.ask("top($X, Y)?", X=source).to_python()}
        assert bound == {(x, y) for x, y in free if x == source}


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_recursive_methods_agree_on_random_linear_programs(seed):
    """Property: on random linear-recursive programs over acyclic data,
    every recursive-method restriction returns the reference answers."""
    from repro.workloads import random_linear_program

    rules, facts, source = random_linear_program(seed=seed)
    reference = None
    for methods in (("seminaive",), ("magic",), ("supplementary",)):
        kb = KnowledgeBase(OptimizerConfig(recursive_methods=methods))
        kb.rules(rules)
        for name, rows in facts.items():
            kb.facts(name, rows)
        got = sorted(kb.ask("walk($X, Y)?", X=source).to_python())
        if reference is None:
            expected_full = evaluate_program(kb.db, kb.program)
            reference = sorted(
                (b.value,)
                for a, b in expected_full["walk"]
                if a.value == source
            )
            assert got == reference
        else:
            assert got == reference, f"{methods} diverged on seed {seed}"


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 3))
def test_deeper_layering(seed, layers):
    rules, facts, query = generate_random_program(seed=seed, layers=layers, width=2)
    kb = build_kb(rules, facts, "dp")
    reference = evaluate_program(kb.db, kb.program)
    expected = {(a.value, b.value) for a, b in reference["top"]}
    got = set(kb.ask("top(X, Y)?").to_python())
    assert got == expected
