"""Cross-cutting property tests: round trips and model invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.cost import BodyEstimator, CostParams
from repro.cost.model import StepState
from repro.datalog import (
    BindingPattern,
    parse_rule,
)
from repro.datalog.adorn import greedy_sip_permutation
from repro.datalog.literals import Literal
from repro.datalog.parser import parse_rule as parse_rule_text
from repro.datalog.terms import Constant, Struct, Variable
from repro.optimizer.cse import _canonical_segment
from repro.storage.statistics import DeclaredStatistics

# -- generators ---------------------------------------------------------------

var_names = st.sampled_from(["X", "Y", "Z", "W", "V1", "V2"])
constants = st.one_of(
    st.integers(-99, 99).map(Constant),
    st.sampled_from(["a", "b", "c", "foo"]).map(Constant),
)
terms = st.recursive(
    st.one_of(constants, var_names.map(Variable)),
    lambda children: st.builds(
        lambda args: Struct("f", tuple(args)),
        st.lists(children, min_size=1, max_size=2),
    ),
    max_leaves=4,
)
literals = st.builds(
    lambda name, args: Literal(name, tuple(args)),
    st.sampled_from(["p", "q", "r"]),
    st.lists(terms, min_size=1, max_size=3),
)
rules = st.builds(
    lambda head_args, body: parse_rule_text("dummy(X) <- q(X).").with_body(tuple(body))
    if False
    else None,
    st.just(None),
    st.just(None),
)


@st.composite
def generated_rules(draw):
    head = Literal("h", tuple(draw(st.lists(terms, min_size=1, max_size=3))))
    body = tuple(draw(st.lists(literals, min_size=1, max_size=4)))
    from repro.datalog.rules import Rule

    return Rule(head, body)


# -- parser round trip ---------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(generated_rules())
def test_rule_str_parse_roundtrip(rule):
    """str() of any rule parses back to an equal rule."""
    # anonymous/underscore variable names would be renamed by the parser;
    # our generator only emits plain names, so the round trip is exact.
    assert parse_rule(str(rule)) == rule


# -- greedy SIP -----------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(generated_rules(), st.integers(0, 7))
def test_greedy_sip_is_a_permutation(rule, mask):
    arity = rule.head.arity
    code = "".join("b" if mask & (1 << i) else "f" for i in range(arity))
    perm = greedy_sip_permutation(rule, BindingPattern(code))
    assert sorted(perm) == list(range(len(rule.body)))


# -- cost model invariants --------------------------------------------------------


def estimator_with(card: float, ndv: float) -> BodyEstimator:
    stats = DeclaredStatistics()
    stats.declare("e", card, [ndv, ndv])
    return BodyEstimator(stats)


@settings(max_examples=40, deadline=None)
@given(
    st.floats(10, 1e6),
    st.floats(10, 1e6),
    st.sampled_from(["nested_loop", "hash", "index", "merge"]),
)
def test_cost_monotone_in_relation_size(small, large, method):
    """Section 6: 'the cost can be viewed as some monotonically increasing
    function on the size of the operands' — with the other statistics
    (distinct counts) held fixed."""
    if small > large:
        small, large = large, small
    literal = parse_rule("p(X) <- e(X, Y).").body[0]
    state = StepState(card=5.0, bound=frozenset({Variable("X")}), var_ndvs={Variable("X"): 3.0})
    ndv = 8.0  # fixed: only the operand size varies
    cost_small = estimator_with(small, ndv).base_step(
        state, literal, estimator_with(small, ndv).stats_for("e", 2), method
    ).cost
    cost_large = estimator_with(large, ndv).base_step(
        state, literal, estimator_with(large, ndv).stats_for("e", 2), method
    ).cost
    assert cost_large >= cost_small - 1e-9


@settings(max_examples=40, deadline=None)
@given(st.floats(1, 1e5), st.floats(1, 1e5))
def test_cost_monotone_in_input_cardinality(small, large):
    if small > large:
        small, large = large, small
    literal = parse_rule("p(X) <- e(X, Y).").body[0]
    est = estimator_with(1000, 100)
    stats = est.stats_for("e", 2)
    for method in ("nested_loop", "hash", "index", "merge"):
        a = est.base_step(StepState(small, frozenset({Variable("X")})), literal, stats, method)
        b = est.base_step(StepState(large, frozenset({Variable("X")})), literal, stats, method)
        assert b.cost >= a.cost - 1e-9
        assert b.card >= a.card - 1e-9


# -- CSE canonical form --------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.lists(literals, min_size=1, max_size=3))
def test_canonical_segment_invariant_under_renaming(segment):
    mapping = {
        Variable(n): Variable(f"R_{n}") for n in ["X", "Y", "Z", "W", "V1", "V2"]
    }

    def rename(literal: Literal) -> Literal:
        from repro.datalog.terms import rename_term

        return Literal(
            literal.predicate,
            tuple(rename_term(a, mapping) for a in literal.args),
            literal.negated,
        )

    renamed = [rename(l) for l in segment]
    assert _canonical_segment(segment) == _canonical_segment(renamed)


# -- binding patterns -----------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 6), st.integers(0, 63), st.integers(0, 63))
def test_subsumes_is_a_partial_order(arity, mask_a, mask_b):
    def pattern(mask: int) -> BindingPattern:
        return BindingPattern("".join("b" if mask & (1 << i) else "f" for i in range(arity)))

    a, b = pattern(mask_a), pattern(mask_b)
    assert a.subsumes(a)  # reflexive
    if a.subsumes(b) and b.subsumes(a):
        assert a.code == b.code  # antisymmetric
    all_free = BindingPattern.all_free(arity)
    assert all_free.subsumes(a)  # bottom element
