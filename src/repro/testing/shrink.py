"""Delta-debugging shrinker for disagreeing differential cases.

Given a case on which :meth:`DifferentialOracle.still_failing` holds,
the shrinker greedily removes rules, body literals, fact relations, and
fact rows — keeping a removal only while the case still disagrees —
until a fixpoint.  Candidates that make the *reference* strategy fail
(parse errors, unknown predicates, non-stratified programs) are never
"failing": the predicate treats them as invalid, so the minimal
reproducer is always a well-formed program.

The result can be emitted two ways:

* :func:`to_pytest_source` — a ready-to-paste pytest test asserting the
  case produces no disagreements;
* :func:`to_corpus_dict` — the JSON corpus format replayed by
  ``tests/test_differential.py`` (see ``docs/testing.md``).
"""

from __future__ import annotations

import re
import signal
import threading
from typing import Callable

from ..datalog.parser import parse_program
from ..errors import ReproError
from .oracle import Case, case_to_dict

Predicate = Callable[[Case], bool]


class _CandidateTimeout(BaseException):
    """Internal alarm signal — BaseException so engine code that catches
    ``Exception`` cannot swallow it."""


def _bounded(predicate: Predicate, timeout: float | None) -> Predicate:
    """*predicate* with a wall-clock cap per candidate (timeout = False).

    Shrinking explores *mutated* programs, which is exactly where engine
    pathologies live (the shrinker once minted an unsafe rule that sent
    the seed SLD engine into an infinite substitution walk).  A candidate
    that exceeds the cap is treated as not-failing and discarded, keeping
    every shrink run bounded.  Uses ``SIGALRM``, so the cap only engages
    on the main thread of a Unix process; elsewhere the predicate runs
    unbounded, which matches the previous behaviour.
    """
    if (
        not timeout
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return predicate

    def raise_timeout(signum, frame):
        raise _CandidateTimeout()

    def bounded(candidate: Case) -> bool:
        previous = signal.signal(signal.SIGALRM, raise_timeout)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            return predicate(candidate)
        except _CandidateTimeout:
            return False
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)

    return bounded


def _rule_lines(case: Case) -> list[str]:
    """The program as one parseable line per rule (str(Rule) round-trips)."""
    return [str(rule) for rule in parse_program(case.rules)]


def _with_rules(case: Case, lines: list[str]) -> Case:
    return Case(rules="\n".join(lines), facts=case.facts, query=case.query)


def _try(predicate: Predicate, candidate: Case) -> bool:
    try:
        return predicate(candidate)
    except ReproError:
        return False


def _shrink_rules(case: Case, predicate: Predicate) -> Case:
    changed = True
    while changed:
        changed = False
        lines = _rule_lines(case)
        for index in range(len(lines)):
            candidate = _with_rules(case, lines[:index] + lines[index + 1:])
            if _try(predicate, candidate):
                case = candidate
                changed = True
                break
    return case


def _shrink_body_literals(case: Case, predicate: Predicate) -> Case:
    changed = True
    while changed:
        changed = False
        rules = list(parse_program(case.rules))
        for rule_index, rule in enumerate(rules):
            for position in range(len(rule.body)):
                body = rule.body[:position] + rule.body[position + 1:]
                if not body:
                    continue  # dropping to a bodiless rule changes safety shape
                slimmed = rule.with_body(list(body))
                lines = [
                    str(slimmed if i == rule_index else r) for i, r in enumerate(rules)
                ]
                candidate = _with_rules(case, lines)
                if _try(predicate, candidate):
                    case = candidate
                    changed = True
                    break
            if changed:
                break
    return case


def _shrink_facts(case: Case, predicate: Predicate) -> Case:
    # whole relations first, then halves of each, then single rows
    changed = True
    while changed:
        changed = False
        for name in sorted(case.facts):
            facts = {k: v for k, v in case.facts.items() if k != name}
            candidate = Case(rules=case.rules, facts=facts, query=case.query)
            if _try(predicate, candidate):
                case = candidate
                changed = True
                break
        if changed:
            continue
        for name in sorted(case.facts):
            rows = list(case.facts[name])
            if len(rows) <= 1:
                continue
            chunk = max(1, len(rows) // 2)
            for start in range(0, len(rows), chunk):
                kept = rows[:start] + rows[start + chunk:]
                if not kept:
                    continue
                facts = dict(case.facts)
                facts[name] = tuple(kept)
                candidate = Case(rules=case.rules, facts=facts, query=case.query)
                if _try(predicate, candidate):
                    case = candidate
                    changed = True
                    break
            if changed:
                break
        if changed:
            continue
        for name in sorted(case.facts):
            rows = list(case.facts[name])
            for index in range(len(rows)):
                kept = rows[:index] + rows[index + 1:]
                if not kept:
                    continue
                facts = dict(case.facts)
                facts[name] = tuple(kept)
                candidate = Case(rules=case.rules, facts=facts, query=case.query)
                if _try(predicate, candidate):
                    case = candidate
                    changed = True
                    break
            if changed:
                break
    return case


def shrink_case(
    case: Case,
    predicate: Predicate,
    max_rounds: int = 10,
    candidate_timeout: float | None = 10.0,
) -> Case:
    """Reduce *case* to a (1-minimal-ish) reproducer of ``predicate``.

    *predicate* must be True for *case* itself; the result is the
    smallest case the greedy passes reach for which it stays True.
    Each candidate evaluation is capped at *candidate_timeout* seconds
    (see :func:`_bounded`); pass ``None`` to disable the cap.
    """
    predicate = _bounded(predicate, candidate_timeout)
    if not _try(predicate, case):
        raise ValueError("shrink_case needs a case the predicate accepts")
    for __ in range(max_rounds):
        before = (case.rules, case.facts)
        case = _shrink_rules(case, predicate)
        case = _shrink_body_literals(case, predicate)
        case = _shrink_facts(case, predicate)
        if (case.rules, case.facts) == before:
            break
    return case


# ------------------------------------------------------------------ output


def to_corpus_dict(case: Case, note: str, seed: int | None = None,
                   strategies: tuple[str, ...] = ()) -> dict:
    """The corpus-file payload for a minimized reproducer."""
    out = case_to_dict(case)
    out["note"] = note
    if seed is not None:
        out["seed"] = seed
    if strategies:
        out["strategies"] = list(strategies)
    return out


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_")[:48] or "case"


def to_pytest_source(case: Case, name: str, note: str) -> str:
    """A ready-to-paste pytest test asserting the case agrees everywhere."""
    facts = {k: [tuple(r) for r in v] for k, v in sorted(case.facts.items())}
    rules = "\n".join(f"    {line}" for line in case.rules.splitlines())
    return (
        f"def test_{_slug(name)}():\n"
        f'    """{note}"""\n'
        f"    from repro.testing import Case, DifferentialOracle\n\n"
        f"    rules = '''\n{rules}\n    '''\n"
        f"    facts = {facts!r}\n"
        f"    case = Case.make(rules, facts, {case.query!r})\n"
        f"    assert DifferentialOracle().check(case) == []\n"
    )
