"""The differential oracle: one case, every execution strategy, one diff.

A *case* is a program (rules text), a fact base (plain-python rows per
base relation), and one query whose bound arguments are constants — so
every strategy can run it without keyword bindings.  Answers are
normalized to frozensets of full goal-argument term tuples, which makes
``Constant(3)`` compare equal across engines regardless of how each
strategy surfaces its rows.

Strategy families:

* ``fixpoint-interpreted`` / ``fixpoint-compiled`` / ``fixpoint-naive``
  — the bottom-up engine, with and without compiled join kernels and
  semi-naive deltas;
* ``fixpoint-batch`` — the columnar batch tier
  (:mod:`repro.engine.batch`) with its size threshold forced to zero so
  every batchable rule actually takes the columnar path on the small
  seeded corpus (``fixpoint-compiled`` pins ``batch=False``, so the two
  strategies cover the row and batch tiers separately);
* ``fixpoint-parallel`` — the hash-partitioned parallel batch tier
  (:mod:`repro.engine.parallel`): a two-worker pool with both size
  thresholds forced to zero, so every batchable rule is partitioned,
  fanned out, and merged at the barrier even on tiny corpus programs —
  exercising the partitioning, replay, and dedup machinery, not just the
  happy large-input path;
* ``sld-tabled`` — the tabled top-down engine;
* ``magic-basic`` / ``magic-supplementary`` — the rewrites applied
  *directly* (adorn + rewrite + seeded fixpoint), bypassing the
  optimizer, so the rewrite paths are exercised even when the cost model
  would not choose them; only applicable to recursive query predicates;
* ``qsqn`` — the Query-Subquery Nets engine
  (:mod:`repro.engine.qsqn`) driven directly over the greedy-SIP adorned
  clique, again bypassing the optimizer; only applicable to recursive
  query predicates whose adorned bodies are effectively computable in
  SIP order (QSQN executes them literally, without reordering);
* ``kb-<strategy>`` — the full pipeline under each optimizer search
  strategy, plus method-restricted variants (``kb-dp-magic``,
  ``kb-dp-supplementary``) that force the magic rewrites through the
  optimizer as well.

``fixpoint-interpreted`` is the reference: it is the simplest path and
the one the original paper's semantics define.  Comparing every strategy
against the reference compares every strategy *pair* — answer equality
is transitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Mapping

from ..datalog.adorn import CPermutation, adorn_clique
from ..datalog.graph import DependencyGraph
from ..datalog.literals import Literal, pred_ref
from ..datalog.magic import MagicProgram, magic_rewrite, supplementary_magic_rewrite
from ..datalog.parser import parse_program, parse_query
from ..datalog.rules import Program
from ..datalog.terms import Term
from ..datalog.unify import apply, match
from ..engine.fixpoint import evaluate_program
from ..engine.topdown import TopDownEngine
from ..errors import ExecutionError, ReproError
from ..kb import KnowledgeBase
from ..optimizer import STRATEGIES, OptimizerConfig
from ..storage.catalog import Database

Row = tuple[Term, ...]
Answers = frozenset[Row]


class OracleSkip(ReproError):
    """A strategy does not apply to this case (not a disagreement)."""


class OracleError(ReproError):
    """The *reference* strategy failed: the case itself is invalid."""


@dataclass(frozen=True)
class Case:
    """One differential test case: rules + facts + a single query."""

    rules: str
    facts: Mapping[str, tuple[tuple, ...]]
    query: str

    @staticmethod
    def make(rules: str, facts: Mapping[str, Iterable[tuple]], query: str) -> "Case":
        frozen = {name: tuple(tuple(row) for row in rows) for name, rows in facts.items()}
        return Case(rules=rules, facts=frozen, query=query)

    def database(self) -> Database:
        db = Database()
        for name in sorted(self.facts):
            rows = self.facts[name]
            if rows:
                db.load(name, [tuple(row) for row in rows])
        return db


def case_to_dict(case: Case) -> dict:
    """JSON-ready form (tuples become lists)."""
    return {
        "rules": case.rules,
        "facts": {name: [list(row) for row in rows] for name, rows in sorted(case.facts.items())},
        "query": case.query,
    }


def case_from_dict(data: Mapping) -> Case:
    return Case.make(data["rules"], data["facts"], data["query"])


@dataclass(frozen=True)
class StrategyOutcome:
    strategy: str
    status: str  # "ok" | "skip" | "error"
    answers: Answers | None = None
    detail: str = ""


@dataclass(frozen=True)
class Disagreement:
    """One strategy's answers (or error) differ from the reference's."""

    strategy: str
    reference: str
    kind: str  # "answers" | "error"
    detail: str
    missing: tuple[str, ...] = ()  # in reference, not in strategy
    extra: tuple[str, ...] = ()  # in strategy, not in reference

    def __str__(self) -> str:
        parts = [f"{self.strategy} vs {self.reference} [{self.kind}] {self.detail}"]
        if self.missing:
            parts.append(f"  missing: {', '.join(self.missing)}")
        if self.extra:
            parts.append(f"  extra:   {', '.join(self.extra)}")
        return "\n".join(parts)


# ------------------------------------------------------------- normalization


def _filter_rows(goal: Literal, rows: Iterable[Row]) -> Answers:
    """Rows of the goal's relation that match the goal's argument pattern
    (constants filter, repeated variables force equality)."""
    out = set()
    for row in rows:
        subst: dict | None = {}
        for pattern, value in zip(goal.args, row):
            subst = match(apply(pattern, subst), value, subst)
            if subst is None:
                break
        if subst is not None:
            out.add(tuple(row))
    return frozenset(out)


# ----------------------------------------------------------------- runners


def _parsed(case: Case) -> tuple[Database, Program, "object"]:
    db = case.database()
    program = parse_program(case.rules)
    form = parse_query(case.query)
    if form.bound_vars:
        raise OracleSkip("cases bind query arguments with constants, not $vars")
    return db, program, form


def run_fixpoint(case: Case, **engine_kwargs) -> Answers:
    db, program, form = _parsed(case)
    result = evaluate_program(db, program, **engine_kwargs)
    ref = pred_ref(form.goal)
    if program.is_derived(ref):
        rows: Iterable[Row] = result.rows(form.predicate)
    else:
        relation = db.get(form.predicate)
        if relation is None:
            # mirror the other engines: an unknown query predicate is an
            # error, not an empty answer — otherwise the shrinker could
            # reduce any disagreement to a degenerate empty program
            raise ExecutionError(f"unknown predicate {form.predicate!r}")
        rows = frozenset(tuple(r) for r in relation)
    return _filter_rows(form.goal, rows)


def run_sld(case: Case) -> Answers:
    db, program, form = _parsed(case)
    engine = TopDownEngine(db, program)
    return frozenset(engine.solve(form.goal))


def run_direct_magic(case: Case, rewrite: Callable[..., MagicProgram]) -> Answers:
    """Adorn + rewrite + seeded fixpoint, without the optimizer.

    Applies only to recursive, negation-free query cliques; the rewritten
    program is extended with the support rules for non-clique derived
    predicates the clique uses (the optimizer does the same).
    """
    db, program, form = _parsed(case)
    ref = pred_ref(form.goal)
    if not program.is_derived(ref):
        raise OracleSkip("query predicate is a base relation")
    graph = DependencyGraph(program)
    graph.check_stratified()
    clique = graph.clique_of(ref)
    if clique is None:
        raise OracleSkip("query predicate is not recursive")
    if any(l.negated for rule in clique.rules for l in rule.body):
        raise OracleSkip("magic rewrite of a negated clique body")
    adorned = adorn_clique(
        clique,
        ref,
        form.adornment,
        CPermutation.greedy_sip(),
        derived_predicates=program.derived_predicates,
    )
    rewritten = rewrite(adorned)
    needed: set = set()
    for clique_ref in clique.predicates:
        needed |= set(graph.reachable_from(clique_ref))
    needed -= set(clique.predicates)
    support = [r for r in program if r.head_ref in needed]
    full = rewritten.program.extend(support)
    seed_row = tuple(form.goal.args[i] for i in form.adornment.bound_positions)
    result = evaluate_program(db, full, seeds={rewritten.seed_predicate: {seed_row}})
    # the answer relation covers every *asked* subquery; the goal filter
    # narrows it back to the seeded one
    return _filter_rows(form.goal, result.rows(rewritten.answer_predicate))


def run_qsqn(case: Case) -> Answers:
    """Adorn + query-subquery net evaluation, without the optimizer.

    Applies only to recursive, negation-free, aggregate-free query
    cliques whose greedy-SIP adorned bodies are effectively computable in
    order — QSQN executes the SIP order literally (no body reordering),
    so a stuck comparison is a skip here, not a failure.
    """
    from ..datalog.bindings import head_bound_vars
    from ..datalog.safety import ec_check
    from ..engine.qsqn import QSQNEngine

    db, program, form = _parsed(case)
    ref = pred_ref(form.goal)
    if not program.is_derived(ref):
        raise OracleSkip("query predicate is a base relation")
    graph = DependencyGraph(program)
    graph.check_stratified()
    clique = graph.clique_of(ref)
    if clique is None:
        raise OracleSkip("query predicate is not recursive")
    if any(l.negated for rule in clique.rules for l in rule.body):
        raise OracleSkip("qsqn over a negated clique body")
    if any(rule.is_aggregate for rule in clique.rules):
        raise OracleSkip("qsqn over an aggregate clique rule")
    adorned = adorn_clique(
        clique,
        ref,
        form.adornment,
        CPermutation.greedy_sip(),
        derived_predicates=program.derived_predicates,
    )
    for adorned_rule in adorned.rules:
        bound0 = head_bound_vars(adorned_rule.rule.head, adorned_rule.head_adornment)
        if not ec_check(adorned_rule.rule.body, bound0).ok:
            raise OracleSkip("adorned body not EC in SIP order")
    needed: set = set()
    for clique_ref in clique.predicates:
        needed |= set(graph.reachable_from(clique_ref))
    needed -= set(clique.predicates)
    support = Program([r for r in program if r.head_ref in needed])
    seed_row = tuple(form.goal.args[i] for i in form.adornment.bound_positions)
    answers = QSQNEngine(db).solve(adorned, support, {seed_row})
    return _filter_rows(form.goal, answers)


def run_kb(case: Case, config: OptimizerConfig) -> Answers:
    kb = KnowledgeBase(config)
    kb.rules(case.rules)
    for name in sorted(case.facts):
        rows = case.facts[name]
        if rows:
            kb.facts(name, [tuple(row) for row in rows])
    form = parse_query(case.query)
    answers = kb.ask(case.query)
    out = set()
    for row in answers.rows:
        subst = dict(zip(answers.variables, row))
        out.add(tuple(apply(arg, subst) for arg in form.goal.args))
    return frozenset(out)


def run_kb_feedback(case: Case) -> Answers:
    """The feedback loop's answer-identity contract: ask twice with the
    cardinality feedback store live and an aggressive re-opt threshold,
    forcing a replan with learned cardinalities between the runs, and
    return the *second* run's answers.  Feedback must change plans, never
    answers — any disagreement with the reference is a loop bug.
    """
    kb = KnowledgeBase(
        OptimizerConfig(strategy="dp", seed=0),
        result_cache=False,  # the second ask must re-execute, not replay
        feedback=True,
        reopt_qerror_threshold=1.5,
    )
    kb.rules(case.rules)
    for name in sorted(case.facts):
        rows = case.facts[name]
        if rows:
            kb.facts(name, [tuple(row) for row in rows])
    form = parse_query(case.query)
    kb.ask(case.query)
    # Even a sub-threshold q-error must not change answers: always replan
    # from scratch with whatever the store learned (internals on purpose —
    # this is the testing harness exercising the worst case).
    kb._compiled.clear()
    kb._optimizer = None
    answers = kb.ask(case.query)
    out = set()
    for row in answers.rows:
        subst = dict(zip(answers.variables, row))
        out.add(tuple(apply(arg, subst) for arg in form.goal.args))
    return frozenset(out)


def _default_runners() -> dict[str, Callable[[Case], Answers]]:
    runners: dict[str, Callable[[Case], Answers]] = {
        "fixpoint-interpreted": partial(run_fixpoint, compile=False),
        "fixpoint-compiled": partial(run_fixpoint, compile=True, batch=False),
        "fixpoint-batch": partial(
            run_fixpoint, compile=True, batch=True, batch_min_rows=0
        ),
        "fixpoint-parallel": partial(
            run_fixpoint, compile=True, batch=True, batch_min_rows=0,
            parallel=True, parallel_min_rows=0, parallel_workers=2,
        ),
        "fixpoint-naive": partial(run_fixpoint, compile=False, naive=True),
        "sld-tabled": run_sld,
        "magic-basic": partial(run_direct_magic, rewrite=magic_rewrite),
        "magic-supplementary": partial(run_direct_magic, rewrite=supplementary_magic_rewrite),
        "qsqn": run_qsqn,
    }
    for strategy in STRATEGIES:
        runners[f"kb-{strategy}"] = partial(
            run_kb, config=OptimizerConfig(strategy=strategy, seed=0)
        )
    runners["kb-dp-magic"] = partial(
        run_kb,
        config=OptimizerConfig(strategy="dp", recursive_methods=("magic", "seminaive")),
    )
    runners["kb-dp-supplementary"] = partial(
        run_kb,
        config=OptimizerConfig(strategy="dp", recursive_methods=("supplementary", "seminaive")),
    )
    runners["kb-feedback"] = run_kb_feedback
    return runners


def strategy_names() -> tuple[str, ...]:
    """All registered strategy names, reference first."""
    return tuple(_default_runners())


REFERENCE = "fixpoint-interpreted"


class DifferentialOracle:
    """Run a case through every strategy and diff against the reference."""

    def __init__(self, strategies: Iterable[str] | None = None, reference: str = REFERENCE):
        registry = _default_runners()
        if strategies is not None:
            wanted = list(strategies)
            unknown = sorted(set(wanted) - set(registry))
            if unknown:
                raise ValueError(f"unknown strategies: {unknown}")
            names = [reference] + [n for n in registry if n in wanted and n != reference]
            registry = {name: registry[name] for name in names}
        self.reference = reference
        self.runners = registry

    def outcomes(self, case: Case) -> list[StrategyOutcome]:
        """Every strategy's answers (or skip/error) on *case*.

        Raises :class:`OracleError` if the reference strategy itself
        fails — the case is then invalid, not a disagreement.
        """
        try:
            expected = self.runners[self.reference](case)
        except OracleSkip as skip:
            raise OracleError(f"reference cannot run case: {skip}") from skip
        except ReproError as exc:
            raise OracleError(f"reference failed: {exc}") from exc
        out = [StrategyOutcome(self.reference, "ok", expected)]
        for name, runner in self.runners.items():
            if name == self.reference:
                continue
            try:
                out.append(StrategyOutcome(name, "ok", runner(case)))
            except OracleSkip as skip:
                out.append(StrategyOutcome(name, "skip", detail=str(skip)))
            except ReproError as exc:
                out.append(StrategyOutcome(name, "error", detail=f"{type(exc).__name__}: {exc}"))
        return out

    def check(self, case: Case) -> list[Disagreement]:
        """Disagreements between each strategy and the reference (empty ==
        every strategy pair agrees on this case)."""
        outcomes = self.outcomes(case)
        expected = outcomes[0].answers
        assert expected is not None
        disagreements: list[Disagreement] = []
        for outcome in outcomes[1:]:
            if outcome.status == "skip":
                continue
            if outcome.status == "error":
                disagreements.append(
                    Disagreement(
                        strategy=outcome.strategy,
                        reference=self.reference,
                        kind="error",
                        detail=outcome.detail,
                    )
                )
                continue
            assert outcome.answers is not None
            if outcome.answers != expected:
                missing = sorted(str(r) for r in expected - outcome.answers)
                extra = sorted(str(r) for r in outcome.answers - expected)
                disagreements.append(
                    Disagreement(
                        strategy=outcome.strategy,
                        reference=self.reference,
                        kind="answers",
                        detail=(
                            f"{len(outcome.answers)} answers vs "
                            f"{len(expected)} expected"
                        ),
                        missing=tuple(missing[:6]),
                        extra=tuple(extra[:6]),
                    )
                )
        return disagreements

    def still_failing(self, case: Case) -> bool:
        """Shrinker predicate: True while the case still disagrees.

        An invalid candidate (reference fails) is *not* failing — the
        shrinker must not reduce a disagreement into a parse error.
        """
        try:
            return bool(self.check(case))
        except OracleError:
            return False

    def failure_predicate(self, case: Case) -> Callable[["Case"], bool]:
        """A shrinker predicate pinned to *case*'s disagreement signature.

        Candidates count as failing only while some ``(strategy, kind)``
        pair of the original disagreement persists, so the shrinker cannot
        drift onto an unrelated failure while minimizing.
        """
        signature = {(d.strategy, d.kind) for d in self.check(case)}
        if not signature:
            raise ValueError("failure_predicate needs a disagreeing case")
        # only the disagreeing strategies need to re-run per candidate —
        # shrinking makes hundreds of oracle calls, so the narrowing is
        # the difference between seconds and minutes
        narrowed = DifferentialOracle(
            strategies={s for s, __ in signature}, reference=self.reference
        )

        def predicate(candidate: Case) -> bool:
            try:
                found = narrowed.check(candidate)
            except OracleError:
                return False
            return any((d.strategy, d.kind) in signature for d in found)

        return predicate
