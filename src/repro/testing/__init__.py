"""Differential correctness harness across execution strategies.

The paper's execution space (Section 5) is the closure of a plan under
equivalence-preserving transformations, and the optimizer may pick *any*
point in it — which is only trustworthy if the evaluation paths really
are answer-equivalent.  This package enforces that mechanically:

* :mod:`~repro.testing.oracle` — run one program + query through every
  execution strategy (interpreted/compiled fixpoint, tabled SLD, direct
  basic/supplementary magic, and the optimizer under each search
  strategy) and diff the answer sets;
* :mod:`~repro.testing.shrink` — delta-debug a disagreeing case down to
  a minimal reproducer, emitted as a pytest test plus a corpus file;
* :mod:`~repro.testing.metamorphic` — re-run programs under the
  MP/PR/PS/EL plan transforms asserting answer stability, and check the
  cost model's internal consistency (the exhaustive optimum really is
  the minimum over the enumerated orders);
* :mod:`~repro.testing.sweep` — the CLI driver
  (``python -m repro.testing.sweep --seed 0 --count 200``);
* :mod:`~repro.testing.chaos` — seeded fault sweeps (worker crashes,
  injected I/O errors, aborted transactions) asserting the
  fault-tolerance contract (``python -m repro.testing.chaos``).
"""

from .oracle import (
    Case,
    DifferentialOracle,
    Disagreement,
    OracleError,
    OracleSkip,
    StrategyOutcome,
    case_from_dict,
    case_to_dict,
    strategy_names,
)
from .chaos import ChaosCaseResult, ChaosReport, chaos_case, run_sweep
from .metamorphic import MetamorphicChecker
from .shrink import shrink_case, to_corpus_dict, to_pytest_source

__all__ = [
    "Case",
    "ChaosCaseResult",
    "ChaosReport",
    "chaos_case",
    "run_sweep",
    "DifferentialOracle",
    "Disagreement",
    "MetamorphicChecker",
    "OracleError",
    "OracleSkip",
    "StrategyOutcome",
    "case_from_dict",
    "case_to_dict",
    "shrink_case",
    "strategy_names",
    "to_corpus_dict",
    "to_pytest_source",
]
