"""Seeded differential sweep: ``python -m repro.testing.sweep``.

Generates programs with :func:`~repro.workloads.generate_differential_program`,
runs every query through the :class:`~repro.testing.DifferentialOracle`,
and — on the first disagreement — shrinks the case to a minimal
reproducer, prints it as a ready-to-paste pytest test, optionally writes
it to a corpus directory, and exits 1.

The CI smoke sweep runs ``--seed 0 --count 200``; the dispatch-only wide
sweep raises ``--count`` and randomizes ``--seed``.  ``--metamorphic-every
N`` additionally runs the plan-transform and cost-consistency checks on
every Nth program.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from ..workloads import generate_differential_program
from .metamorphic import MetamorphicChecker
from .oracle import Case, DifferentialOracle, OracleError, strategy_names
from .shrink import shrink_case, to_corpus_dict, to_pytest_source


def _report_failure(
    oracle: DifferentialOracle,
    case: Case,
    seed: int,
    corpus_dir: str | None,
) -> None:
    disagreements = oracle.check(case)
    print(f"\nDISAGREEMENT (program seed {seed}, query {case.query}):")
    for d in disagreements:
        print(f"  {d}")
    print("\nshrinking ...", flush=True)
    shrunk = shrink_case(case, oracle.failure_predicate(case))
    strategies = tuple(d.strategy for d in oracle.check(shrunk))
    note = (
        f"Minimized differential reproducer (seed {seed}): "
        f"{', '.join(strategies)} disagree with {oracle.reference}."
    )
    print("\nminimal reproducer as a pytest case:\n")
    print(to_pytest_source(shrunk, f"differential_seed_{seed}", note))
    if corpus_dir is not None:
        path = Path(corpus_dir)
        path.mkdir(parents=True, exist_ok=True)
        target = path / f"seed_{seed}.json"
        target.write_text(
            json.dumps(to_corpus_dict(shrunk, note, seed=seed, strategies=strategies), indent=2)
            + "\n"
        )
        print(f"reproducer written to {target}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.sweep",
        description="differential sweep across all execution strategies",
    )
    parser.add_argument("--seed", type=int, default=0, help="first program seed")
    parser.add_argument("--count", type=int, default=200, help="number of programs")
    parser.add_argument(
        "--queries-per-program", type=int, default=0,
        help="cap queries per program (0 = run all generated queries)",
    )
    parser.add_argument(
        "--strategies", nargs="*", default=None, metavar="NAME",
        help=f"strategy subset (default: all of {', '.join(strategy_names())})",
    )
    parser.add_argument(
        "--metamorphic-every", type=int, default=0, metavar="N",
        help="run metamorphic plan-transform/cost checks on every Nth program",
    )
    parser.add_argument(
        "--corpus-dir", default=None,
        help="directory for shrunk reproducer JSON files",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="continue after a disagreement instead of exiting",
    )
    args = parser.parse_args(argv)

    oracle = DifferentialOracle(strategies=args.strategies)
    checker = MetamorphicChecker()
    started = time.time()
    programs = cases = runs = skips = 0
    failures = 0
    metamorphic_checked = 0

    for index in range(args.count):
        seed = args.seed + index
        sample = generate_differential_program(seed)
        programs += 1
        queries = sample.queries
        if args.queries_per_program:
            queries = queries[: args.queries_per_program]
        for query in queries:
            case = Case.make(sample.rules, sample.facts, query)
            cases += 1
            try:
                outcomes = oracle.outcomes(case)
            except OracleError as exc:
                print(f"INVALID CASE (seed {seed}, query {query}): {exc}")
                failures += 1
                if not args.keep_going:
                    return 1
                continue
            runs += sum(1 for o in outcomes if o.status == "ok")
            skips += sum(1 for o in outcomes if o.status == "skip")
            if any(o.status == "error" for o in outcomes) or any(
                o.answers != outcomes[0].answers
                for o in outcomes
                if o.status == "ok"
            ):
                failures += 1
                _report_failure(oracle, case, seed, args.corpus_dir)
                if not args.keep_going:
                    return 1
        if args.metamorphic_every and index % args.metamorphic_every == 0:
            metamorphic_checked += 1
            violations = checker.check(
                Case.make(sample.rules, sample.facts, sample.queries[0])
            )
            if violations:
                failures += 1
                print(f"\nMETAMORPHIC VIOLATIONS (seed {seed}):")
                for violation in violations:
                    print(f"  {violation}")
                if not args.keep_going:
                    return 1

    elapsed = time.time() - started
    print(
        f"{programs} programs, {cases} cases, {runs} strategy runs "
        f"({skips} skips), {metamorphic_checked} metamorphic checks, "
        f"{failures} failures, {elapsed:.1f}s"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
