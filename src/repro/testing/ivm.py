"""Streaming-ingest differential sweep: ``python -m repro.testing.ivm``.

The oracle strategy for incremental view maintenance is from-scratch
recomputation: after *every* insert/retract in a random update script,
the maintained extension of every derived predicate must equal
:func:`~repro.engine.fixpoint.evaluate_program` run fresh over the
current fact base, and a cached ``ask`` answer must equal the same
recomputation (catching both maintenance bugs and stale
footprint-invalidation hits).  Programs are drawn from a template pool
that covers the shapes the delta path distinguishes — counted
non-recursive joins (including self-joins and cross-rule alternative
derivations), linear and non-linear recursion, multi-stratum layering,
zero-ary gates — and update scripts mix genuine writes, no-op writes
(duplicate inserts, absent retracts), multi-row deltas, and aborted
transactions.

On a disagreement the sweep prints the trial seed, the program, and the
full update history (enough to replay by hand), then exits 1.  The CI
maintenance job runs ``--seed 0 --count 150``.
"""

from __future__ import annotations

import argparse
import random
import sys

from ..datalog.terms import Constant
from ..engine.fixpoint import evaluate_program
from ..kb import KnowledgeBase

#: (rules, derived predicates, base relations with arity)
PROGRAMS: list[tuple[str, tuple[str, ...], dict[str, int]]] = [
    (
        "p(X, Y) <- e(X, Z), e(Z, Y).",
        ("p",),
        {"e": 2},
    ),
    (
        "s(X, Y) <- e(X, Z), e(Z, Y). s(X, Y) <- f(X, Y).",
        ("s",),
        {"e": 2, "f": 2},
    ),
    (
        "t(X, Y) <- e(X, Y). t(X, Y) <- t(X, Z), e(Z, Y).",
        ("t",),
        {"e": 2},
    ),
    (
        "t(X, Y) <- e(X, Y). t(X, Y) <- t(X, Z), t(Z, Y).",
        ("t",),
        {"e": 2},
    ),
    (
        """
        t(X, Y) <- e(X, Y).
        t(X, Y) <- t(X, Z), e(Z, Y).
        q(X, Y) <- t(X, Y), f(Y, X).
        q(X, Y) <- f(X, Y).
        """,
        ("t", "q"),
        {"e": 2, "f": 2},
    ),
    (
        "reach(X) <- go, src(X). reach(Y) <- reach(X), e(X, Y).",
        ("reach",),
        {"go": 0, "src": 1, "e": 2},
    ),
    (
        "alarm <- hot(X), wired(X).",
        ("alarm",),
        {"hot": 1, "wired": 1},
    ),
]

DOMAIN = ("a", "b", "c", "d")


def _random_row(rng: random.Random, arity: int) -> tuple:
    return tuple(rng.choice(DOMAIN) for __ in range(arity))


def _recompute(kb: KnowledgeBase, predicates: tuple[str, ...]) -> dict[str, set]:
    result = evaluate_program(kb.db, kb.program, builtins=kb.builtins)
    return {
        name: {
            tuple(f.value if isinstance(f, Constant) else f for f in row)
            for row in result.rows(name)
        }
        for name in predicates
    }


class Mismatch(Exception):
    pass


def _check(kb: KnowledgeBase, predicates: tuple[str, ...], rng: random.Random) -> None:
    oracle = _recompute(kb, predicates)
    for name in predicates:
        got = kb.view_rows(name)
        if got != oracle[name]:
            raise Mismatch(
                f"view {name!r}: extra={sorted(got - oracle[name])} "
                f"missing={sorted(oracle[name] - got)}"
            )
    # One asked goal per step: exercises the footprint-keyed result cache
    # under the same write stream (a stale hit would disagree here even
    # though the view itself is correct).
    name = rng.choice(predicates)
    arity = next(r.head.arity for r in kb.program if r.head.predicate == name)
    variables = ", ".join(f"V{i}" for i in range(arity))
    goal = f"{name}({variables})?" if arity else f"{name}?"
    result = kb.ask(goal)
    if arity == 0:
        answers = {()} if len(result) else set()
    else:
        answers = set(result.to_python())
    if answers != oracle[name]:
        raise Mismatch(
            f"ask {goal!r}: extra={sorted(answers - oracle[name])} "
            f"missing={sorted(oracle[name] - answers)}"
        )


def run_trial(seed: int, steps: int = 8) -> list[str]:
    """One seeded trial; returns the update history (for replay dumps).

    Raises :class:`Mismatch` on the first maintained-vs-recomputed
    disagreement.
    """
    rng = random.Random(seed)
    rules, predicates, bases = rng.choice(PROGRAMS)
    history = [f"rules: {' '.join(rules.split())}"]
    kb = KnowledgeBase()
    kb.rules(rules)
    for base, arity in bases.items():
        rows = [_random_row(rng, arity) for __ in range(rng.randint(1, 5))]
        kb.facts(base, rows)
        history.append(f"facts {base} {sorted(set(rows))}")
    kb.materialize()
    for __ in range(steps):
        base, arity = rng.choice(sorted(bases.items()))
        rows = [_random_row(rng, arity) for __ in range(rng.randint(1, 3))]
        action = rng.random()
        if action < 0.45:
            kb.facts(base, rows)
            history.append(f"facts {base} {rows}")
        elif action < 0.9:
            kb.retract(base, rows)
            history.append(f"retract {base} {rows}")
        else:
            # an aborted transaction must leave no trace in the views
            try:
                with kb.transaction():
                    kb.facts(base, rows)
                    raise RuntimeError("chaos abort")
            except RuntimeError:
                pass
            history.append(f"aborted-txn facts {base} {rows}")
        try:
            _check(kb, predicates, rng)
        except Mismatch as err:
            history.append(f"MISMATCH: {err}")
            raise Mismatch("\n".join(history)) from None
    return history


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.ivm",
        description="streaming-ingest sweep: maintained views vs recompute oracle",
    )
    parser.add_argument("--seed", type=int, default=0, help="first trial seed")
    parser.add_argument("--count", type=int, default=150, help="number of trials")
    parser.add_argument("--steps", type=int, default=8, help="updates per trial")
    args = parser.parse_args(argv)

    for trial in range(args.seed, args.seed + args.count):
        try:
            run_trial(trial, steps=args.steps)
        except Mismatch as err:
            print(f"\nDISAGREEMENT (trial seed {trial}) — replay history:")
            print(err)
            return 1
    print(
        f"ivm sweep: {args.count} trials x {args.steps} updates, "
        f"0 disagreements (views == recompute, asks == recompute)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
