"""Chaos harness: seeded fault sweeps over differential-oracle programs.

The fault-tolerance contract (docs/robustness.md) is a single sentence:
under any injected fault, a query either returns the *same answers* as
an undisturbed run, or raises a *clean typed error* with the database
unchanged — never a wrong answer, a partial update, a leaked worker
process, or a leftover spill file.  This module enforces that sentence
mechanically, the same way :mod:`repro.testing.sweep` enforces
answer-equivalence across execution strategies.

Each seed samples one program from
:func:`~repro.workloads.generate_differential_program` plus one fault
*scenario* from a seeded RNG:

* ``kill_worker`` / ``drop_pipe`` / ``crash_mix`` — crash-shaped
  schedules (SIGKILL a pool worker, close a parent-side pipe end) fired
  at operator/round checkpoints.  Recovery (round retry, then tier
  degradation) must produce answers identical to the undisturbed run.
* ``inject_error`` — a non-transient operator fault.  The query must
  raise a :class:`~repro.errors.ReproError` subtype, and a subsequent
  clean run must still produce the baseline answers (no corrupted
  state).
* ``spill_error`` — a simulated sqlite I/O failure at a ``spill:*``
  checkpoint under the sqlite backend.  Must surface as
  :class:`~repro.errors.StorageError`; the database stays usable.
* ``txn_abort`` — a mutation batch (inserts, retracts, sometimes a rule
  change) aborted mid-transaction by a foreign exception.  Every
  relation, every query answer, and the kb result cache must be exactly
  as before the transaction began.

CLI: ``python -m repro.testing.chaos --seed 0 --count 100``.
"""

from __future__ import annotations

import argparse
import glob
import multiprocessing
import os
import random
import sys
import tempfile
import time
from dataclasses import dataclass, field

from ..engine import parallel
from ..engine.faults import FaultInjector
from ..engine.governor import ResourceGovernor
from ..errors import ReproError, StorageError
from ..kb import KnowledgeBase
from ..workloads import generate_differential_program

SCENARIOS = (
    "kill_worker",
    "drop_pipe",
    "crash_mix",
    "inject_error",
    "spill_error",
    "txn_abort",
)

#: checkpoint sites a crash/error schedule may target (parent-side).
_CRASH_SITES = ("join:*", "fixpoint:round")


class _ChaosAbort(RuntimeError):
    """A deliberately foreign (non-Repro) error aborting a transaction."""


@dataclass
class ChaosCaseResult:
    """Outcome of one seeded chaos case."""

    seed: int
    scenario: str
    queries: int = 0
    clean_errors: int = 0
    fired: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _spill_files() -> set[str]:
    return set(glob.glob(os.path.join(tempfile.gettempdir(), "repro-spill-*.db")))


def _answers(kb: KnowledgeBase, query: str, governor=None) -> frozenset:
    return frozenset(kb.ask(query, governor=governor).rows)


def _snapshot(kb: KnowledgeBase) -> dict[str, frozenset]:
    return {relation.name: frozenset(relation) for relation in kb.db}


def _build_kb(sample, *, backend: str = "memory", spill_threshold=None,
              result_cache: bool = False, parallel_on: bool = True,
              retries: int | None = None) -> KnowledgeBase:
    kb = KnowledgeBase(
        batch=True,
        batch_min_rows=0,
        parallel=parallel_on,
        parallel_min_rows=0,
        parallel_workers=2,
        parallel_retries=retries,
        backend=backend,
        spill_threshold=spill_threshold,
        result_cache=result_cache,
    )
    kb.rules(sample.rules)
    for name in sorted(sample.facts):
        rows = sample.facts[name]
        if rows:
            kb.facts(name, [tuple(row) for row in rows])
    return kb


def _crash_schedule(rng: random.Random, scenario: str) -> FaultInjector:
    faults = FaultInjector()
    if scenario == "crash_mix":
        actions = [rng.choice(("kill_worker", "drop_pipe")) for _ in range(2)]
    else:
        actions = [scenario]
    for action in actions:
        faults.inject(
            rng.choice(_CRASH_SITES),
            after=rng.randint(0, 4),
            times=rng.randint(1, 2),
            **{action: True},
        )
    return faults


def _run_crash_case(sample, rng: random.Random, result: ChaosCaseResult) -> None:
    """Crash schedules must be answer-invisible (retry or degrade)."""
    kb = _build_kb(sample)
    try:
        for query in sample.queries[:2]:
            baseline = _answers(kb, query)
            faults = _crash_schedule(rng, result.scenario)
            governor = ResourceGovernor(faults=faults).arm()
            try:
                chaotic = _answers(kb, query, governor=governor)
            except ReproError as err:
                result.violations.append(
                    f"{query}: crash schedule raised {type(err).__name__}: {err}"
                )
                continue
            finally:
                result.queries += 1
                result.fired += faults.fired_count()
            if chaotic != baseline:
                result.violations.append(
                    f"{query}: answers diverged under {result.scenario} "
                    f"(want {len(baseline)} rows, got {len(chaotic)})"
                )
    finally:
        kb.close()


def _run_error_case(sample, rng: random.Random, result: ChaosCaseResult) -> None:
    """Injected non-transient faults must be clean, typed, and stateless."""
    spill = result.scenario == "spill_error"
    kb = _build_kb(
        sample,
        backend="sqlite" if spill else "memory",
        spill_threshold=4 if spill else None,
        parallel_on=not spill,  # spilled joins run on the serial batch tier
    )
    try:
        for query in sample.queries[:2]:
            baseline = _answers(kb, query)
            faults = FaultInjector()
            if spill:
                faults.inject(
                    "spill:*",
                    after=rng.randint(0, 2),
                    error=StorageError("injected sqlite I/O failure"),
                )
            else:
                faults.inject(
                    rng.choice(_CRASH_SITES),
                    after=rng.randint(0, 4),
                    error=f"injected operator failure (seed {result.seed})",
                )
            governor = ResourceGovernor(faults=faults).arm()
            result.queries += 1
            try:
                chaotic = _answers(kb, query, governor=governor)
            except StorageError:
                result.clean_errors += 1
            except ReproError as err:
                if spill:
                    result.violations.append(
                        f"{query}: spill fault surfaced as "
                        f"{type(err).__name__}, want StorageError"
                    )
                else:
                    result.clean_errors += 1
            except Exception as err:  # noqa: BLE001 - the contract under test
                result.violations.append(
                    f"{query}: fault leaked an untyped {type(err).__name__}: {err}"
                )
            else:
                # schedule never fired (site unused by this plan): the run
                # must then simply agree with the baseline
                if chaotic != baseline:
                    result.violations.append(
                        f"{query}: unfired schedule changed answers"
                    )
            result.fired += faults.fired_count()
            after = _answers(kb, query)
            if after != baseline:
                result.violations.append(
                    f"{query}: database corrupted — post-fault rerun diverged"
                )
    finally:
        kb.close()


def _run_txn_abort_case(sample, rng: random.Random, result: ChaosCaseResult) -> None:
    """An aborted transaction must leave no observable trace."""
    backend = rng.choice(("memory", "sqlite"))
    kb = _build_kb(
        sample,
        backend=backend,
        spill_threshold=4 if backend == "sqlite" else None,
        result_cache=True,  # rollback must also restore the result cache
    )
    try:
        queries = sample.queries[:2]
        baseline = {query: _answers(kb, query) for query in queries}
        before = _snapshot(kb)
        domain = [f"d{i}" for i in range(8)]
        try:
            with kb.transaction():
                for _ in range(rng.randint(1, 4)):
                    name = rng.choice(sorted(sample.facts))
                    arity = len(sample.facts[name][0]) if sample.facts[name] else 2
                    row = tuple(rng.choice(domain) for _ in range(arity))
                    if rng.random() < 0.5 and sample.facts[name]:
                        kb.retract(name, [rng.choice(sample.facts[name])])
                    else:
                        kb.facts(name, [row])
                if rng.random() < 0.3:
                    kb.rules("chaos_q(X) :- node(X).")
                raise _ChaosAbort(f"chaos abort (seed {result.seed})")
        except _ChaosAbort:
            pass
        result.queries += len(queries)
        result.fired += 1
        if kb.in_transaction:
            result.violations.append("transaction still open after abort")
        if _snapshot(kb) != before:
            result.violations.append("relations changed by an aborted transaction")
        for query in queries:
            if _answers(kb, query) != baseline[query]:
                result.violations.append(
                    f"{query}: answers changed by an aborted transaction"
                )
    finally:
        kb.close()


def chaos_case(seed: int) -> ChaosCaseResult:
    """Run one seeded chaos case; violations are recorded, not raised."""
    rng = random.Random(seed * 2654435761 % (2**31))
    scenario = rng.choice(SCENARIOS)
    result = ChaosCaseResult(seed=seed, scenario=scenario)
    sample = generate_differential_program(seed)
    spills_before = _spill_files()
    if scenario in ("kill_worker", "drop_pipe", "crash_mix"):
        _run_crash_case(sample, rng, result)
    elif scenario in ("inject_error", "spill_error"):
        _run_error_case(sample, rng, result)
    else:
        _run_txn_abort_case(sample, rng, result)
    leaked = _spill_files() - spills_before
    if leaked:
        result.violations.append(f"leaked spill files: {sorted(leaked)}")
    return result


def check_no_leaked_workers(timeout: float = 5.0) -> list[str]:
    """Shut every pool down and report processes that survive it."""
    parallel.shutdown_pools()
    deadline = time.time() + timeout
    alive = [p for p in multiprocessing.active_children() if p.is_alive()]
    while alive and time.time() < deadline:
        time.sleep(0.05)
        alive = [p for p in multiprocessing.active_children() if p.is_alive()]
    return [f"{p.name} (pid {p.pid})" for p in alive]


@dataclass
class ChaosReport:
    """Aggregate of one sweep: per-scenario tallies plus all violations."""

    cases: int = 0
    queries: int = 0
    clean_errors: int = 0
    fired: int = 0
    by_scenario: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def run_sweep(seed: int = 0, count: int = 100, verbose: bool = False) -> ChaosReport:
    report = ChaosReport()
    for index in range(count):
        case = chaos_case(seed + index)
        report.cases += 1
        report.queries += case.queries
        report.clean_errors += case.clean_errors
        report.fired += case.fired
        report.by_scenario[case.scenario] = report.by_scenario.get(case.scenario, 0) + 1
        for violation in case.violations:
            report.violations.append(f"seed {case.seed} [{case.scenario}]: {violation}")
        if verbose:
            status = "ok" if case.ok else "VIOLATION"
            print(f"seed {case.seed}: {case.scenario} "
                  f"({case.queries} queries, {case.fired} faults fired) {status}",
                  flush=True)
    leaked = check_no_leaked_workers()
    if leaked:
        report.violations.append(f"leaked worker processes: {leaked}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.chaos",
        description="seeded chaos sweep: crash/fault schedules over "
                    "differential-oracle programs",
    )
    parser.add_argument("--seed", type=int, default=0, help="first case seed")
    parser.add_argument("--count", type=int, default=100, help="number of cases")
    parser.add_argument("--verbose", action="store_true",
                        help="print one line per case")
    args = parser.parse_args(argv)

    started = time.time()
    report = run_sweep(args.seed, args.count, verbose=args.verbose)
    elapsed = time.time() - started
    print(f"\n{report.cases} cases, {report.queries} queries, "
          f"{report.fired} faults fired, {report.clean_errors} clean typed "
          f"errors in {elapsed:.1f}s")
    for scenario in SCENARIOS:
        if scenario in report.by_scenario:
            print(f"  {scenario:>13}: {report.by_scenario[scenario]} cases")
    if report.violations:
        print(f"\n{len(report.violations)} VIOLATION(S):")
        for violation in report.violations:
            print(f"  {violation}")
        return 1
    print("no violations: every run returned correct answers or a clean "
          "typed error with the database unchanged")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
