"""Metamorphic checks: the execution space really is equivalence-closed.

Section 5 defines the execution space as the closure of a processing
tree under MP (mode flip), PR (step permutation), PS (selection
placement), and EL (join-method relabel).  The checker re-executes a
compiled query under systematic applications of each transform and
asserts the answers never change; a transformed plan that *raises* is
acceptable (an unsafe permutation — the engine refusing is itself the
documented contract), but a plan that silently answers differently is a
violation.

It also checks the cost model's internal consistency on every rule body:
the exhaustive optimizer's chosen order must cost no more than any
enumerated permutation (monotonicity of the minimum), and re-costing the
chosen order must reproduce its estimate (determinism).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from ..datalog.parser import parse_query
from ..engine.interpreter import Interpreter
from ..errors import ExecutionError, PlanError, ReproError
from ..kb import KnowledgeBase
from ..optimizer import OptimizerConfig
from ..optimizer.conjunctive import cost_order, enumerate_orders, exhaustive_order, split_joinable
from ..plans.nodes import JoinNode, UnionNode, plan_nodes
from ..plans.transforms import exchange_label, permute, push_select, set_mode
from .oracle import Case

_EL_METHODS = ("nested_loop", "hash", "merge")


def _replace_node(plan, target, replacement):
    """The plan tree with *target* (by identity) swapped for *replacement*."""
    if plan is target:
        return replacement
    if isinstance(plan, UnionNode):
        return dataclasses.replace(
            plan,
            children=tuple(_replace_node(c, target, replacement) for c in plan.children),
        )
    if isinstance(plan, JoinNode):
        steps = tuple(
            dataclasses.replace(s, child=_replace_node(s.child, target, replacement))
            if s.child is not None
            else s
            for s in plan.steps
        )
        return dataclasses.replace(plan, steps=steps)
    return plan  # FixpointNode: its program is rules, not plan nodes


def _transform_candidates(node: JoinNode) -> Iterator[tuple[str, JoinNode]]:
    n = len(node.steps)
    if n >= 2:
        yield "PR:reverse", permute(node, list(reversed(range(n))))
        yield "PR:rotate", permute(node, list(range(1, n)) + [0])
    for index, step in enumerate(node.steps):
        if step.literal.is_comparison or step.literal.negated:
            continue
        yield f"MP:{index}", set_mode(node, index, not step.pipelined)
        if step.child is None:
            for method in _EL_METHODS:
                if method != step.method:
                    yield f"EL:{index}:{method}", exchange_label(node, index, method)
    for index, step in enumerate(node.steps):
        if step.literal.is_comparison and n >= 2:
            yield f"PS:{index}->end", push_select(node, index, n - 1)
            if index > 0:
                yield f"PS:{index}->front", push_select(node, index, 0)


class MetamorphicChecker:
    """Answer stability under plan transforms + cost-model consistency."""

    def __init__(self, strategy: str = "dp"):
        self.strategy = strategy

    def _knowledge_base(self, case: Case) -> KnowledgeBase:
        kb = KnowledgeBase(OptimizerConfig(strategy=self.strategy, seed=0))
        kb.rules(case.rules)
        for name in sorted(case.facts):
            rows = case.facts[name]
            if rows:
                kb.facts(name, [tuple(row) for row in rows])
        return kb

    def check_plan_transforms(self, case: Case) -> list[str]:
        """Violations: transforms that changed the answer set."""
        kb = self._knowledge_base(case)
        form = parse_query(case.query)
        plan = kb.compile(case.query).plan
        baseline = Interpreter(kb.db, builtins=kb.builtins).run(plan, form).rows
        violations: list[str] = []
        joins = [n for n in plan_nodes(plan) if isinstance(n, JoinNode)]
        for target in joins:
            for label, transformed in _transform_candidates(target):
                try:
                    candidate = _replace_node(plan, target, transformed)
                except PlanError:
                    continue
                try:
                    rows = Interpreter(kb.db, builtins=kb.builtins).run(candidate, form).rows
                except ExecutionError:
                    # an unsafe order must raise, not mis-answer — raising
                    # is the contract, so this is not a violation
                    continue
                if rows != baseline:
                    violations.append(
                        f"{label} on {target.describe()} changed answers: "
                        f"{len(rows)} rows vs {len(baseline)} baseline "
                        f"(query {case.query})"
                    )
        return violations

    def check_cost_consistency(self, case: Case) -> list[str]:
        """Violations of cost-model monotonicity/determinism per rule body."""
        kb = self._knowledge_base(case)
        optimizer = kb.optimizer
        estimator = optimizer._estimator()
        violations: list[str] = []
        for rule in optimizer.program:
            joinable, floating = split_joinable(rule.body)
            if not 2 <= len(joinable) <= 5:
                continue
            try:
                best = exhaustive_order(rule.body, frozenset(), estimator)
                for result in enumerate_orders(rule.body, frozenset(), estimator):
                    if best.est.cost > result.est.cost * (1 + 1e-9) + 1e-9:
                        violations.append(
                            f"exhaustive minimum {best.est.cost:.3f} exceeds "
                            f"order {result.order} at {result.est.cost:.3f} "
                            f"for rule '{rule}'"
                        )
                chosen = tuple(i for i in best.order if i in joinable)
                recost = cost_order(rule.body, chosen, floating, frozenset(), estimator)
                if abs(recost.est.cost - best.est.cost) > 1e-6 * max(1.0, best.est.cost):
                    violations.append(
                        f"re-costing chosen order {chosen} gives "
                        f"{recost.est.cost:.3f} != {best.est.cost:.3f} "
                        f"for rule '{rule}'"
                    )
            except ReproError as exc:
                violations.append(f"cost model raised on rule '{rule}': {exc}")
        return violations

    def check(self, case: Case) -> list[str]:
        return self.check_plan_transforms(case) + self.check_cost_consistency(case)
