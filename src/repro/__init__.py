"""repro — a reproduction of the LDL cost-based query optimizer.

Krishnamurthy & Zaniolo, "Optimization in a Logic Based Language for
Knowledge and Data Intensive Applications", EDBT 1988.

The package implements the full stack the paper assumes: an LDL-flavoured
Horn-clause language with complex terms (:mod:`repro.datalog`), an
in-memory storage substrate with statistics (:mod:`repro.storage`), a
relational execution engine extended with fixpoint operators
(:mod:`repro.engine`), processing trees (:mod:`repro.plans`), the cost
model (:mod:`repro.cost`), and the paper's contribution — the cost-based,
safety-integrated optimizer (:mod:`repro.optimizer`).

Most applications only need :class:`repro.KnowledgeBase`:

>>> from repro import KnowledgeBase
>>> kb = KnowledgeBase()
>>> kb.rules("anc(X,Y) <- par(X,Y). anc(X,Y) <- par(X,Z), anc(Z,Y).")
2
>>> kb.facts("par", [("abe", "homer"), ("homer", "bart")])
2
>>> kb.ask("anc(abe, Y)?").to_python()
[('bart',), ('homer',)]
"""

from .engine.faults import FaultInjector, InjectedFault
from .engine.governor import ResourceGovernor, make_governor
from .errors import (
    DeadlineExceeded,
    ExecutionCancelled,
    ExecutionError,
    IterationBudgetExceeded,
    KnowledgeBaseError,
    MemoryBudgetExceeded,
    OptimizationError,
    ParseError,
    PlanError,
    ReproError,
    ResourceExhausted,
    SchemaError,
    TupleBudgetExceeded,
    UnsafeQueryError,
)
from .kb import KnowledgeBase
from .obs import (
    NULL_TRACER,
    JsonlSink,
    MetricsRegistry,
    NullTracer,
    Span,
    Tracer,
    TraceSinkWarning,
)
from .optimizer.optimizer import OptimizedQuery, Optimizer, OptimizerConfig

__version__ = "1.0.0"

__all__ = [
    "DeadlineExceeded",
    "ExecutionCancelled",
    "ExecutionError",
    "FaultInjector",
    "InjectedFault",
    "IterationBudgetExceeded",
    "JsonlSink",
    "KnowledgeBase",
    "KnowledgeBaseError",
    "MemoryBudgetExceeded",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OptimizationError",
    "OptimizedQuery",
    "Optimizer",
    "OptimizerConfig",
    "ParseError",
    "PlanError",
    "ReproError",
    "ResourceExhausted",
    "ResourceGovernor",
    "SchemaError",
    "Span",
    "TraceSinkWarning",
    "Tracer",
    "TupleBudgetExceeded",
    "UnsafeQueryError",
    "__version__",
    "make_governor",
]
