"""Exception hierarchy for the repro LDL system.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  The hierarchy mirrors the major
subsystems: parsing, the knowledge base (rule/fact consistency), plan
construction, execution, and optimization (including safety).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when LDL source text cannot be parsed.

    Carries the line and column of the offending token when available so
    callers can point users at the problem.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class KnowledgeBaseError(ReproError):
    """Raised for inconsistent rule/fact definitions.

    Examples: redefining a base predicate as derived, arity mismatches
    between rules and facts, or referencing a predicate that is neither
    derived nor backed by a relation.
    """


class SchemaError(ReproError):
    """Raised for malformed relations: arity mismatch, bad column names."""


class PlanError(ReproError):
    """Raised when a processing tree is structurally invalid."""


class ExecutionError(ReproError):
    """Raised when plan execution fails at run time.

    The static safety analysis is conservative, so a plan that passes
    optimization should not raise this; it guards interpreter invariants
    (e.g. an evaluable predicate reached with unbound arguments).
    """


class TransientExecutionError(ExecutionError):
    """An infrastructure failure that a *different* execution tier can
    survive: the answer set is unaffected, only the machinery that was
    computing it died.  The fixpoint engine catches this family and
    degrades down the tier ladder (parallel -> serial batch -> row)
    instead of failing the query (see :mod:`repro.engine.fixpoint`).
    Deterministic errors — wrong plans, unsafe executions, budget
    exhaustion — must NOT derive from this class: re-running them on
    another tier would just fail again, slower.
    """


class ParallelRoundError(TransientExecutionError):
    """A parallel fan-out round lost one or more workers (crash, killed
    process, broken pipe) and in-round retries were not enough.  The
    round descriptor is idempotent, so the serial batch tier can re-run
    it with identical answers.
    """


class StorageError(ExecutionError):
    """The storage backend failed physically (e.g. a SQLite I/O error on
    a spilled relation).  Not transient: every tier reads through the
    same disk, so degradation cannot help — the query fails with this
    clean, typed error instead of a raw ``sqlite3`` exception.
    """


class TransactionError(ReproError):
    """Raised for transaction protocol misuse: opening a transaction
    while one is already active, or committing/rolling back when none
    is open.  Faults *inside* a transaction do not raise this — they
    propagate after the database has been rolled back to the state at
    ``begin``.
    """


class ResourceExhausted(ExecutionError):
    """Raised when the execution governor aborts a query.

    The static safety analysis is conservative by design; plans that slip
    through it (runaway recursion, explosive joins) are stopped at run
    time by :class:`~repro.engine.governor.ResourceGovernor`.  Each
    variant corresponds to one exhausted budget.  ``snapshot`` carries
    the profiler counters at abort time and ``partial`` the governor's
    view of progress (live tuples, iterations, elapsed seconds), so
    callers can report how far the query got before it was stopped.
    When a tracer is active, ``spans`` names the spans still open at
    abort time (root first), so the error points at the phase and
    operator that blew the budget.
    """

    #: short machine-readable tag for the exhausted budget
    kind = "resource"

    def __init__(
        self,
        message: str,
        snapshot: dict | None = None,
        partial: dict | None = None,
        spans: tuple[str, ...] = (),
    ):
        super().__init__(message)
        self.snapshot = dict(snapshot or {})
        self.partial = dict(partial or {})
        self.spans = tuple(spans)


class DeadlineExceeded(ResourceExhausted):
    """The query's wall-clock deadline passed."""

    kind = "deadline"


class TupleBudgetExceeded(ResourceExhausted):
    """The query-wide live-tuple budget was exceeded (possibly mid-join)."""

    kind = "tuples"


class MemoryBudgetExceeded(ResourceExhausted):
    """The query-wide (approximate) memory budget was exceeded."""

    kind = "memory"


class IterationBudgetExceeded(ResourceExhausted):
    """The query-wide fixpoint-iteration budget was exceeded."""

    kind = "iterations"


class ExecutionCancelled(ResourceExhausted):
    """The query was cooperatively cancelled via ``governor.cancel()``.

    Grouped under :class:`ResourceExhausted` so cancellation shares the
    abort plumbing (snapshot, partial progress, CLI exit code).
    """

    kind = "cancelled"


class OptimizationError(ReproError):
    """Raised when the optimizer cannot produce a plan for structural reasons."""


class UnsafeQueryError(OptimizationError):
    """Raised when no safe execution exists for the query form.

    Per Section 8.2 of the paper, unsafe permutations are priced at
    infinite cost; if the minimum-cost solution is still infinite the
    query is reported as unsafe.  ``reasons`` collects the diagnostics
    gathered while searching (which goals could not be made effectively
    computable, which cliques lack a well-founded order).
    """

    def __init__(self, message: str, reasons: list[str] | None = None):
        super().__init__(message)
        self.reasons = list(reasons or [])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.reasons:
            details = "\n  - ".join(self.reasons)
            return f"{base}\n  - {details}"
        return base
