"""The paper's running example rule base (Figure 2-1) as a fixture.

The scanned figure gives rules R1..R5 over derived predicates P1..P5 and
base relations B1..B5, with R21 recursive.  The exact argument lists are
not legible in the copy we reproduce from, so this module fixes a
concrete, faithful rendition with the structure the text describes:

* a non-recursive top predicate (``p1``) defined by two rules (an OR
  node with two AND children, as in Figure 4-1);
* a recursive predicate (``p2``, rule R21) whose clique contracts to a
  CC node;
* further non-recursive helpers so the tree has depth.

The fixture is shared by tests and by ``examples/paper_figures.py``,
which renders the processing graph of Figure 4-1 (including the clique
contraction) from it.
"""

from __future__ import annotations

import random

from ..datalog.parser import parse_program
from ..datalog.rules import Program
from ..storage.catalog import Database

#: Figure 2-1 rendition: p2 is recursive (R21), the rest form an AND/OR tree.
PAPER_RULEBASE = """
% R11, R12: the top OR node — two ways to derive p1
p1(X, Y) <- p2(X, Z), p3(Z, Y).
p1(X, Y) <- b1(X, Z), p4(Z, Y).

% R21 (recursive), R22: the recursive clique {p2}
p2(X, Y) <- b2(X, Z), p2(Z, Y).
p2(X, Y) <- b3(X, Y).

% R31: p3 joins two base relations
p3(X, Y) <- b4(X, Z), b5(Z, Y).

% R41: p4 is a selective view over b4
p4(X, Y) <- b4(X, Y), X != Y.
"""


def paper_program() -> Program:
    """Parse the Figure 2-1 rule base."""
    return parse_program(PAPER_RULEBASE)


def paper_database(seed: int = 0, scale: int = 50) -> Database:
    """A database state for the Figure 2-1 rule base.

    ``b2`` is kept acyclic (it drives the recursion); the other base
    relations are random binary relations over a shared domain.
    """
    rng = random.Random(seed)
    db = Database()
    domain = [f"d{i}" for i in range(scale)]

    db.load("b2", [
        (domain[i], domain[j])
        for i in range(scale)
        for j in (i + 1, i + 2)
        if j < scale and rng.random() < 0.6
    ])
    for name in ("b1", "b3", "b4", "b5"):
        rows = {
            (rng.choice(domain), rng.choice(domain))
            for __ in range(scale * 2)
        }
        db.load(name, sorted(rows))
    return db
