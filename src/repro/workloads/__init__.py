"""Workload generators: random queries, synthetic datasets, paper fixtures."""

from .datasets import (
    balanced_tree,
    bill_of_materials,
    chain,
    random_dag,
    random_graph,
    random_linear_program,
    same_generation_instance,
    scale_reach_instance,
)
from .paper_rulebase import PAPER_RULEBASE, paper_database, paper_program
from .querygen import (
    DIFFERENTIAL_FEATURES,
    RUNAWAY_KINDS,
    SHAPES,
    ConjunctiveWorkload,
    DifferentialProgram,
    generate_batch,
    generate_conjunctive,
    generate_differential_program,
    generate_runaway_program,
)

__all__ = [
    "ConjunctiveWorkload",
    "DIFFERENTIAL_FEATURES",
    "DifferentialProgram",
    "PAPER_RULEBASE",
    "RUNAWAY_KINDS",
    "SHAPES",
    "balanced_tree",
    "bill_of_materials",
    "chain",
    "generate_batch",
    "generate_conjunctive",
    "generate_differential_program",
    "generate_runaway_program",
    "paper_database",
    "paper_program",
    "random_dag",
    "random_graph",
    "random_linear_program",
    "same_generation_instance",
    "scale_reach_instance",
]
