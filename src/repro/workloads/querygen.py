"""Random conjunctive queries and database states ([Vil 87] methodology).

The paper's quality numbers for the quadratic strategy came from
"randomly picking queries and states of the database and then comparing
the results of the quadratic time and exhaustive algorithms".  This
module is that generator: seeded, so every benchmark run is
reproducible.

A generated workload is a rule body (a conjunctive query) over fresh
base predicates plus a :class:`~repro.storage.statistics.DeclaredStatistics`
catalog — exactly what the ordering strategies consume.  Query *shapes*
control the join graph:

* ``chain``  — r1(A0,A1), r2(A1,A2), ... (the ASI-friendly case);
* ``star``   — r1(A0,A1), r2(A0,A2), ... (fan-out from a hub);
* ``cycle``  — a chain whose last literal closes back to A0;
* ``clique`` — every pair of literals shares a variable;
* ``random`` — a random connected join graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..datalog.literals import Literal
from ..datalog.terms import Variable
from ..storage.statistics import DeclaredStatistics

SHAPES = ("chain", "star", "cycle", "clique", "random")


@dataclass(frozen=True, slots=True)
class ConjunctiveWorkload:
    """One sampled query + database state."""

    body: tuple[Literal, ...]
    stats: DeclaredStatistics
    shape: str
    seed: int

    @property
    def size(self) -> int:
        return len(self.body)


def _edge_list(shape: str, n: int, rng: random.Random) -> list[tuple[int, int]]:
    """Variable-sharing structure: which variable indices each literal links."""
    if shape == "chain":
        return [(i, i + 1) for i in range(n)]
    if shape == "star":
        return [(0, i + 1) for i in range(n)]
    if shape == "cycle":
        return [(i, (i + 1) % n) for i in range(n)]
    if shape == "clique":
        out = []
        for i in range(n):
            for j in range(i + 1, n):
                out.append((i, j))
        return out[:n] if n > 2 else out  # keep literal count = n
    if shape == "random":
        # a random spanning tree over n+1 variables, plus extra edges
        edges = []
        for node in range(1, n + 1):
            edges.append((rng.randrange(node), node))
        rng.shuffle(edges)
        return edges[:n]
    raise ValueError(f"unknown shape {shape!r}")


def generate_conjunctive(
    n: int,
    shape: str = "chain",
    seed: int = 0,
    min_card: float = 10.0,
    max_card: float = 100_000.0,
    prefix: str = "r",
) -> ConjunctiveWorkload:
    """Sample an n-literal conjunctive query and a random database state.

    Cardinalities are log-uniform in ``[min_card, max_card]`` and each
    column's distinct count is a random fraction of the cardinality —
    mimicking the wide spread of realistic catalogs so the cost spectrum
    (EXP-6) has room to span orders of magnitude.
    """
    rng = random.Random(seed)
    edges = _edge_list(shape, n, rng)
    variables = [Variable(f"A{i}") for i in range(max(max(e) for e in edges) + 1)]

    body: list[Literal] = []
    stats = DeclaredStatistics()
    import math

    for index, (a, b) in enumerate(edges):
        name = f"{prefix}{index}"
        card = math.exp(rng.uniform(math.log(min_card), math.log(max_card)))
        distincts = [
            max(1.0, card * rng.uniform(0.01, 1.0)),
            max(1.0, card * rng.uniform(0.01, 1.0)),
        ]
        stats.declare(name, card, distincts)
        body.append(Literal(name, (variables[a], variables[b])))
    return ConjunctiveWorkload(tuple(body), stats, shape, seed)


def generate_random_program(
    seed: int = 0,
    layers: int = 2,
    width: int = 2,
    domain_size: int = 12,
    facts_per_relation: int = 30,
):
    """A random layered non-recursive rule base *with data*.

    Returns ``(rules_text, facts, query)``: base relations ``b0..b3``
    hold random binary facts over a small domain; each layer defines
    *width* derived predicates joining two predicates from below (sharing
    a variable), sometimes guarded by a disequality; ``top`` unions two
    rules over the last layer.  Used by the cross-strategy equivalence
    property tests — any optimizer strategy must return the same answers
    on these.
    """
    rng = random.Random(seed)
    domain = [f"d{i}" for i in range(domain_size)]
    facts: dict[str, list[tuple]] = {}
    for index in range(4):
        rows = {
            (rng.choice(domain), rng.choice(domain))
            for __ in range(facts_per_relation)
        }
        facts[f"b{index}"] = sorted(rows)

    available = [f"b{i}" for i in range(4)]
    lines: list[str] = []
    for layer in range(layers):
        created = []
        for index in range(width):
            name = f"d{layer}_{index}"
            left = rng.choice(available)
            right = rng.choice(available)
            guard = ", X != Y" if rng.random() < 0.4 else ""
            lines.append(f"{name}(X, Y) <- {left}(X, Z), {right}(Z, Y){guard}.")
            created.append(name)
        available = available + created
    top_sources = rng.sample(available[-(width * layers):] or available, k=min(2, len(available)))
    for source in top_sources:
        lines.append(f"top(X, Y) <- {source}(X, Y).")
    return "\n".join(lines), facts, "top($X, Y)?"


DIFFERENTIAL_FEATURES = (
    "negation", "comparison", "multiclique", "zeroary", "functor",
)


@dataclass(frozen=True, slots=True)
class DifferentialProgram:
    """One sampled program + data + query set for differential testing.

    ``facts`` maps base relation names to plain-python rows (the loader
    converts them to terms); ``queries`` are parseable query strings with
    constants for bound arguments, so every execution strategy can run
    them without keyword bindings; ``features`` records which optional
    language features this sample exercises.
    """

    rules: str
    facts: dict[str, list[tuple]]
    queries: tuple[str, ...]
    seed: int
    features: frozenset[str]


def generate_differential_program(
    seed: int = 0,
    domain_size: int = 6,
    facts_per_relation: int = 9,
    features: tuple[str, ...] | None = None,
) -> DifferentialProgram:
    """A random stratified, terminating program for the differential oracle.

    Covers the features the conjunctive generator skips: recursive cliques
    (left/right/non-linear transitive closure), *multi-clique* programs (a
    second clique consuming the first), stratified negation over base and
    recursive predicates, arithmetic comparisons, zero-ary predicates
    (both as goals and as body guards), and functor terms (built and
    decomposed in rule heads/bodies, never stored as facts).

    Bodies are emitted in a textually safe order — positive binding
    literals before comparisons and negations — because the tabled SLD
    engine resolves strictly left to right.  When *features* is ``None``
    each optional feature is an independent seeded coin flip, so a sweep
    over many seeds covers every combination.
    """
    rng = random.Random(seed)
    if features is None:
        enabled = frozenset(f for f in DIFFERENTIAL_FEATURES if rng.random() < 0.6)
    else:
        enabled = frozenset(features)
        unknown = enabled - set(DIFFERENTIAL_FEATURES)
        if unknown:
            raise ValueError(f"unknown differential features: {sorted(unknown)}")

    domain = [f"d{i}" for i in range(domain_size)]

    def pairs(count: int) -> list[tuple]:
        rows = {(rng.choice(domain), rng.choice(domain)) for __ in range(count)}
        return sorted(rows)

    def sparse_edges() -> list[tuple]:
        # a chain backbone over the domain (long shortest paths — these
        # are what expose premature negation against a growing table)
        # plus a couple of random shortcuts
        rows = {(domain[i], domain[i + 1]) for i in range(len(domain) - 1)}
        for __ in range(2):
            rows.add((rng.choice(domain), rng.choice(domain)))
        return sorted(rows)

    facts: dict[str, list[tuple]] = {
        "b0": pairs(facts_per_relation),
        "b1": pairs(facts_per_relation),
        "e0": sparse_edges(),
        "node": [(d,) for d in domain],
    }
    lines: list[str] = []
    # binary derived predicates eligible as top/union sources
    sources: list[str] = []

    # recursive clique 0: a transitive-closure flavor (always terminates);
    # textual rule order is part of the sampled space — the tabled SLD
    # engine expands rules in that order, so exit-first and exit-last are
    # different executions
    flavor = rng.choice(("left", "right", "nonlinear"))
    recursive_rule = {
        "left": "p0(X, Y) <- p0(X, Z), e0(Z, Y).",
        "right": "p0(X, Y) <- e0(X, Z), p0(Z, Y).",
        "nonlinear": "p0(X, Y) <- p0(X, Z), p0(Z, Y).",
    }[flavor]
    clique_rules = ["p0(X, Y) <- e0(X, Y).", recursive_rule]
    if rng.random() < 0.5:
        clique_rules.reverse()
    lines.extend(clique_rules)
    sources.append("p0")

    if "multiclique" in enabled:
        facts["e1"] = pairs(facts_per_relation - 2)
        lines.append("p1(X, Y) <- p0(X, Y).")
        lines.append("p1(X, Y) <- p1(X, Z), e1(Z, Y).")
        sources.append("p1")

    # non-recursive join layer over the base relations
    guard = ", X != Y" if rng.random() < 0.5 else ""
    lines.append(f"j0(X, Y) <- b0(X, Z), b1(Z, Y){guard}.")
    sources.append("j0")

    if "comparison" in enabled:
        facts["num"] = sorted(
            {(rng.randrange(0, 9), rng.randrange(0, 9)) for __ in range(facts_per_relation)}
        )
        op = rng.choice(("<", "<=", ">", ">=", "!="))
        lines.append(f"c0(X, Y) <- num(X, Y), X {op} Y.")
        sources.append("c0")

    if "negation" in enabled:
        # over a base relation, and over the recursive stratum below
        lines.append("n0(X, Y) <- b0(X, Y), ~b1(X, Y).")
        anchor = rng.choice(domain)
        lines.append(f"n1(X, Y) <- node(X), node(Y), ~p0({anchor}, Y).")
        sources.append("n0")
        sources.append("n1")

    if "functor" in enabled:
        # build and decompose structs in rules — swapping the fields on
        # the way out so the decomposition actually matters
        lines.append("w0(pack(X, Y)) <- j0(X, Y).")
        lines.append("u0(X, Y) <- w0(pack(Y, X)).")
        sources.append("u0")

    if "zeroary" in enabled:
        lines.append("z0 <- b0(X, Y), X != Y.")
        lines.append("g0(X, Y) <- z0, b1(X, Y).")
        sources.append("g0")

    for source in sorted(rng.sample(sources, k=min(2, len(sources)))):
        lines.append(f"top(X, Y) <- {source}(X, Y).")

    queries = ["top(X, Y)?", f"top({rng.choice(domain)}, Y)?"]
    queries.append(
        f"p0({rng.choice(domain)}, Y)?" if rng.random() < 0.5 else "p0(X, Y)?"
    )
    if "multiclique" in enabled:
        queries.append(f"p1({rng.choice(domain)}, Y)?")
    if "negation" in enabled:
        # query the negation-over-recursion predicate directly: its answers
        # hinge on the recursive stratum being complete when ~p0 is tested
        queries.append("n1(X, Y)?")
    if "zeroary" in enabled:
        queries.append("z0?")

    return DifferentialProgram(
        rules="\n".join(lines),
        facts=facts,
        queries=tuple(queries),
        seed=seed,
        features=enabled,
    )


RUNAWAY_KINDS = ("counter", "blowup", "chain")


def generate_runaway_program(
    kind: str = "counter",
    seed: int = 0,
    fanout: int = 20,
    depth: int = 64,
):
    """An unsafe-ish program + data for governor stress tests.

    These are programs the static safety analysis cannot (or is not asked
    to) reject, whose evaluation grows until a resource budget stops it —
    the :class:`~repro.engine.governor.ResourceGovernor`'s test diet:

    * ``counter`` — value invention: ``n(X+1) <- n(X), X < depth`` counts
      upward; tuple production is linear in ``depth`` but unbounded as
      ``depth`` grows, so a tuple budget below ``depth`` must trip
      *during* the fixpoint.
    * ``blowup`` — an explosive join: ``pair(X, Y) <- item(X), item(Y)``
      over ``fanout`` items produces ``fanout**2`` tuples inside a
      *single* round — the case that exposes guards which only check
      between rounds.
    * ``chain`` — deep linear recursion over a ``depth``-long path:
      cheap per round, ``O(depth**2)`` pairs overall, many rounds — the
      iteration-budget case.

    Returns ``(rules_text, facts, query)`` like
    :func:`generate_random_program`.  *seed* shuffles fact insertion
    order (the results are order-independent; the governor's abort point
    need not be).
    """
    rng = random.Random(seed)
    if kind == "counter":
        rules = f"n(Y) <- n(X), X < {depth}, Y = X + 1."
        facts = {"seed_n": [(0,)]}
        # n/1 needs a base case: seed via an exit rule over a base relation
        rules = f"n(X) <- seed_n(X).\n{rules}"
        return rules, facts, "n(X)?"
    if kind == "blowup":
        items = [(f"i{i}",) for i in range(fanout)]
        rng.shuffle(items)
        rules = "pair(X, Y) <- item(X), item(Y).\npairs(X, Y) <- pair(X, Y)."
        return rules, {"item": items}, "pairs(X, Y)?"
    if kind == "chain":
        edges = [(f"v{i}", f"v{i + 1}") for i in range(depth)]
        rng.shuffle(edges)
        rules = "reach(X, Y) <- edge(X, Y).\nreach(X, Y) <- reach(X, Z), edge(Z, Y)."
        return rules, {"edge": edges}, "reach(X, Y)?"
    raise ValueError(f"unknown runaway kind {kind!r}; expected one of {RUNAWAY_KINDS}")


def generate_batch(
    count: int,
    n: int,
    shapes: tuple[str, ...] = SHAPES,
    seed: int = 0,
    **kwargs,
) -> list[ConjunctiveWorkload]:
    """A batch of workloads cycling through the requested shapes."""
    rng = random.Random(seed)
    out = []
    for index in range(count):
        shape = shapes[index % len(shapes)]
        out.append(generate_conjunctive(n, shape, seed=rng.randrange(2**31), **kwargs))
    return out
