"""Synthetic datasets for the recursive and end-to-end experiments.

Seeded generators for the data shapes the deductive-database literature
evaluates on:

* **trees** for the same-generation query (``up``/``dn``/``flat``);
* **chains and random DAGs** for ancestor/transitive closure;
* **part hierarchies** for bill-of-materials explosion;
* **random graphs** (possibly cyclic) to exercise the counting method's
  acyclicity gate.
"""

from __future__ import annotations

import random

from ..storage.catalog import Database


def chain(db: Database, name: str, length: int, prefix: str = "n") -> list[str]:
    """A simple path ``n0 -> n1 -> ... -> n<length>``; returns node names."""
    nodes = [f"{prefix}{i}" for i in range(length + 1)]
    db.load(name, [(nodes[i], nodes[i + 1]) for i in range(length)])
    return nodes


def balanced_tree(
    db: Database,
    up_name: str = "up",
    fanout: int = 2,
    depth: int = 4,
    prefix: str = "t",
) -> list[list[str]]:
    """A balanced tree as child→parent edges in *up_name*.

    Returns nodes by level (level 0 is the root).  ``fanout**depth``
    leaves; suitable as one half of a same-generation instance.
    """
    levels: list[list[str]] = [[f"{prefix}0_0"]]
    edges: list[tuple[str, str]] = []
    counter = 0
    for level in range(1, depth + 1):
        previous = levels[-1]
        current: list[str] = []
        for parent in previous:
            for __ in range(fanout):
                counter += 1
                child = f"{prefix}{level}_{counter}"
                current.append(child)
                edges.append((child, parent))
        levels.append(current)
    db.load(up_name, edges)
    return levels


def same_generation_instance(
    db: Database,
    fanout: int = 2,
    depth: int = 4,
    prefix: str = "t",
) -> list[list[str]]:
    """The classic sg instance: ``up`` a balanced tree, ``dn`` its
    inverse, ``flat`` the root's self-loop.

    With the paper's rule ``sg(X,Y) <- up(X,X1), sg(Y1,X1), dn(Y1,Y)``
    (exit ``sg(X,Y) <- flat(X,Y)``) two nodes are same-generation iff
    they sit at the same depth.
    """
    levels = balanced_tree(db, "up", fanout, depth, prefix)
    up_rows = [(child.value, parent.value) for child, parent in db.relation("up")]
    db.load("dn", [(parent, child) for child, parent in up_rows])
    root = levels[0][0]
    db.load("flat", [(root, root)])
    return levels


def random_dag(
    db: Database,
    name: str,
    nodes: int,
    edges: int,
    seed: int = 0,
    prefix: str = "v",
) -> list[str]:
    """A random DAG: edges always point from lower to higher index."""
    rng = random.Random(seed)
    names = [f"{prefix}{i}" for i in range(nodes)]
    chosen: set[tuple[str, str]] = set()
    attempts = 0
    while len(chosen) < edges and attempts < edges * 20:
        attempts += 1
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if a == b:
            continue
        if a > b:
            a, b = b, a
        chosen.add((names[a], names[b]))
    db.load(name, sorted(chosen))
    return names


def random_graph(
    db: Database,
    name: str,
    nodes: int,
    edges: int,
    seed: int = 0,
    prefix: str = "v",
) -> list[str]:
    """A random directed graph — cycles allowed (counting's nemesis)."""
    rng = random.Random(seed)
    names = [f"{prefix}{i}" for i in range(nodes)]
    chosen: set[tuple[str, str]] = set()
    attempts = 0
    while len(chosen) < edges and attempts < edges * 20:
        attempts += 1
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if a != b:
            chosen.add((names[a], names[b]))
    db.load(name, sorted(chosen))
    return names


def scale_reach_instance(
    db: Database,
    nodes: int,
    edges: int,
    sources: int = 4,
    seed: int = 0,
) -> list[str]:
    """The parallel tier's scale instance: a dense random digraph plus a
    handful of ``source`` seeds for frontier reachability.

    ``reach(X) <- source(X).  reach(Y) <- reach(X), edge(X, Y).`` over
    this data is the partitioned tier's best case *and* its honest one:
    the big ``edge`` relation is broadcast to the worker pool once and
    cached, each semi-naive round's frontier delta hash-partitions on
    ``X``, and every edge is traversed at most once per run — so total
    tuple work scales with *edges* (set this in the millions), while the
    serial tier must walk the same matches on one core.  Returns the
    chosen source names.
    """
    names = random_graph(db, "edge", nodes=nodes, edges=edges, seed=seed)
    rng = random.Random(seed + 1)
    chosen = sorted(rng.sample(names, min(sources, len(names))))
    db.load("source", [(name,) for name in chosen])
    return chosen


def random_linear_program(seed: int = 0):
    """A random linear-recursive program + acyclic data, for equivalence
    property tests across recursive methods.

    Returns ``(rules_text, facts, source_node)``.  The recursion walks a
    random DAG through one or two base hops per step, optionally guarded
    by a disequality — shapes where magic, supplementary and semi-naive
    must all agree.
    """
    rng = random.Random(seed)
    hops = rng.choice([1, 2])
    guard = rng.random() < 0.5
    if hops == 1:
        body = "e0(X, Z), walk(Z, Y)"
    else:
        body = "e0(X, M), e1(M, Z), walk(Z, Y)"
    rules = [
        "walk(X, Y) <- stop(X, Y).",
        f"walk(X, Y) <- {body}{', X != Y' if guard else ''}.",
    ]
    db = Database()
    names = random_dag(db, "e0", nodes=10, edges=16, seed=seed)
    facts = {"e0": [(a.value, b.value) for a, b in db.relation("e0")]}
    if hops == 2:
        db2 = Database()
        random_dag(db2, "e1", nodes=10, edges=16, seed=seed + 1)
        facts["e1"] = [(a.value, b.value) for a, b in db2.relation("e1")]
    stops = {(rng.choice(names), rng.choice(names)) for __ in range(5)}
    facts["stop"] = sorted(stops)
    return "\n".join(rules), facts, names[0]


def bill_of_materials(
    db: Database,
    assemblies: int = 20,
    depth: int = 4,
    fanout: int = 3,
    seed: int = 0,
) -> list[str]:
    """A part hierarchy for BOM explosion.

    ``component(Parent, Child, Quantity)`` forms a DAG of assemblies over
    shared basic parts; ``basic_part(Part, Weight)`` describes leaves.
    Returns the top-level assembly names.
    """
    rng = random.Random(seed)
    basics = [f"part{i}" for i in range(assemblies * 2)]
    db.load("basic_part", [(p, rng.randint(1, 50)) for p in basics])

    levels: list[list[str]] = [basics]
    counter = 0
    for level in range(1, depth + 1):
        current: list[str] = []
        for __ in range(max(1, assemblies // level)):
            counter += 1
            assembly = f"asm{level}_{counter}"
            current.append(assembly)
            pool = levels[level - 1]
            for child in rng.sample(pool, min(fanout, len(pool))):
                db.load("component", [(assembly, child, rng.randint(1, 4))])
        levels.append(current)
    return levels[-1]
