"""One-way serialization of processing trees to plain dictionaries.

``plan_to_dict`` produces JSON-compatible nested dicts — for tooling,
logging, and plan-diffing in tests.  The mapping is intentionally lossy
(rules and literals become their textual forms); plans are rebuilt by
re-optimizing, never by deserializing.
"""

from __future__ import annotations

import json
import math
from typing import Any

from .nodes import DerivedPlan, FixpointNode, JoinNode, JoinStep, UnionNode


def _cost(value: float) -> float | str:
    if math.isinf(value):
        return "inf"
    return round(value, 3)


def _est(node) -> dict[str, Any]:
    return {"cost": _cost(node.est.cost), "card": _cost(node.est.card)}


def _step_to_dict(step: JoinStep) -> dict[str, Any]:
    out: dict[str, Any] = {
        "literal": str(step.literal),
        "method": step.method,
        "pipelined": step.pipelined,
        "est": _est(step),
    }
    if step.child is not None:
        out["child"] = plan_to_dict(step.child)
    return out


def plan_to_dict(plan) -> dict[str, Any]:
    """Serialize a plan node (UnionNode / FixpointNode / JoinNode)."""
    if isinstance(plan, UnionNode):
        return {
            "node": "or",
            "predicate": str(plan.ref),
            "binding": plan.binding.code,
            "est": _est(plan),
            "children": [plan_to_dict(child) for child in plan.children],
        }
    if isinstance(plan, JoinNode):
        return {
            "node": "and",
            "rule": str(plan.rule),
            "binding": plan.binding.code,
            "est": _est(plan),
            "steps": [_step_to_dict(step) for step in plan.steps],
        }
    if isinstance(plan, FixpointNode):
        return {
            "node": "cc",
            "predicate": str(plan.ref),
            "binding": plan.binding.code,
            "method": plan.method,
            "answer_predicate": plan.answer_predicate,
            "seed_predicate": plan.seed_predicate,
            "est": _est(plan),
            "program": [str(rule) for rule in plan.program],
        }
    raise TypeError(f"not a plan node: {plan!r}")


def plan_to_json(plan: DerivedPlan, indent: int | None = 2) -> str:
    """Serialize a plan to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent, sort_keys=False)
