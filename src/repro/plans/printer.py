"""Pretty-printing (EXPLAIN / EXPLAIN ANALYZE) for processing trees.

Renders the tree the way the paper draws Figure 4-1: AND/OR/CC nodes with
their labels, plus the optimizer's cost/cardinality annotations.  Squares
(materialized) and triangles (pipelined) become ``⊳`` and ``→`` markers
on join steps.

:func:`explain_analyzed` adds the measured side: every executed node is
annotated ``est=<cost-model cardinality> act=<measured tuples>
err=<q-error>``, where the *q-error* is the standard symmetric ratio

    q = max(est / act, act / est)   (both clamped to >= 1)

so ``err=1.0x`` is a perfect estimate and the metric penalizes over- and
under-estimation alike.  A ``top misestimates`` summary after the tree
ranks the worst nodes, which is where cost-model debugging starts.
"""

from __future__ import annotations

import math

from .nodes import DerivedPlan, FixpointNode, JoinNode, UnionNode


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "∞"
    if value >= 1000:
        return f"{value:.3g}"
    return f"{value:.1f}"


def q_error(est_card: float, act_rows: float) -> float:
    """The symmetric estimation error ``max(est/act, act/est)``.

    Both sides are clamped to >= 1 so empty results and sub-row
    estimates do not divide by zero (and a 0-vs-0 node scores a perfect
    1.0).  Infinite estimates score ``inf`` — an "unsafe" plan that ran
    anyway is by definition the worst misestimate.
    """
    est = max(1.0, est_card)
    act = max(1.0, float(act_rows))
    if math.isinf(est):
        return math.inf
    return max(est / act, act / est)


def explain(plan: DerivedPlan, indent: int = 0) -> str:
    """A multi-line textual rendering of *plan*."""
    lines: list[str] = []
    _explain_into(plan, indent, lines)
    return "\n".join(lines)


def explain_analyzed(
    plan: DerivedPlan,
    node_stats: dict[int, dict],
    top_misestimates: int = 3,
) -> str:
    """EXPLAIN ANALYZE: the plan annotated with measured execution stats.

    *node_stats* is :attr:`repro.engine.interpreter.Interpreter.node_stats`
    after a run — per-node call counts (incl. cache hits) and the largest
    observed result size.  Every executed AND/OR/CC node and join step is
    annotated ``est=... act=... err=...``; the worst *top_misestimates*
    q-errors are summarized after the tree.
    """
    lines: list[str] = []
    misses: list[tuple[float, str]] = []
    _explain_into(plan, 0, lines, node_stats, misses)
    worst = [m for m in sorted(misses, key=lambda m: (-m[0], m[1])) if m[0] > 1.0]
    if worst:
        lines.append(f"-- top misestimates (q-error, worst {top_misestimates}):")
        for err, label in worst[:top_misestimates]:
            lines.append(f"--   {_fmt_err(err)} {label}")
    else:
        lines.append("-- top misestimates: none (every executed node within 1.0x)")
    return "\n".join(lines)


def _fmt_err(err: float) -> str:
    return "err=∞" if math.isinf(err) else f"err={err:.1f}x"


def _measured(
    node,
    label: str,
    node_stats: dict[int, dict] | None,
    misses: list | None,
) -> str:
    """The ``est/act/err`` annotation of one node, or ``[not executed]``."""
    if node_stats is None:
        return ""
    stats = node_stats.get(id(node))
    if stats is None:
        return "  [not executed]"
    act = stats["rows"]
    err = q_error(node.est.card, act)
    if misses is not None:
        misses.append((err, f"{label} (est={_fmt(node.est.card)} act={act})"))
    cached = f", {stats['cached_calls']} cached" if stats["cached_calls"] else ""
    # "measured: rows=" is a stable token downstream tooling greps for.
    return (
        f"  [measured: rows={act} est={_fmt(node.est.card)} act={act} "
        f"{_fmt_err(err)} calls={stats['calls']}{cached}]"
    )


def _annotation(est) -> str:
    return f"(cost={_fmt(est.cost)}, card={_fmt(est.card)})"


def _explain_into(
    node,
    indent: int,
    lines: list[str],
    node_stats: dict | None = None,
    misses: list | None = None,
) -> None:
    pad = "  " * indent
    if isinstance(node, UnionNode):
        lines.append(
            f"{pad}OR {node.ref} adorned {node.binding} {_annotation(node.est)}"
            f"{_measured(node, f'OR {node.ref}', node_stats, misses)}"
        )
        for child in node.children:
            _explain_into(child, indent + 1, lines, node_stats, misses)
    elif isinstance(node, JoinNode):
        # ``~pruned=N``: branch-and-bound discarded N order candidates
        # while picking this body (getattr keeps old plans printable).
        pruned_count = getattr(node, "pruned", 0)
        pruned = f" ~pruned={pruned_count}" if pruned_count else ""
        lines.append(
            f"{pad}AND {node.rule.head} / {node.binding}{pruned} {_annotation(node.est)}"
            f"{_measured(node, f'AND {node.rule.head}', node_stats, misses)}"
        )
        for step in node.steps:
            marker = "→" if step.pipelined else "⊳"
            # ``~learned``: this step's cardinality came from the feedback
            # store rather than static catalog guesses (getattr keeps old
            # pickled/constructed plans without the field printable).
            learned = (
                " ~learned"
                if getattr(step, "est_source", "static") == "learned"
                else ""
            )
            lines.append(
                f"{pad}  {marker} {step.literal} [{step.method}]{learned} "
                f"{_annotation(step.est)}"
                f"{_measured(step, f'step {step.literal}', node_stats, misses)}"
            )
            if step.child is not None:
                _explain_into(step.child, indent + 2, lines, node_stats, misses)
    elif isinstance(node, FixpointNode):
        lines.append(
            f"{pad}CC {node.ref} adorned {node.binding} method={node.method} "
            f"{_annotation(node.est)}"
            f"{_measured(node, f'CC {node.ref}', node_stats, misses)}"
        )
        for rule in node.program:
            lines.append(f"{pad}    | {rule}")
    else:  # pragma: no cover - defensive
        lines.append(f"{pad}{node!r}")
