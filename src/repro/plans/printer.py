"""Pretty-printing (EXPLAIN) for processing trees.

Renders the tree the way the paper draws Figure 4-1: AND/OR/CC nodes with
their labels, plus the optimizer's cost/cardinality annotations.  Squares
(materialized) and triangles (pipelined) become ``⊳`` and ``→`` markers
on join steps.
"""

from __future__ import annotations

import math

from .nodes import DerivedPlan, FixpointNode, JoinNode, UnionNode


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "∞"
    if value >= 1000:
        return f"{value:.3g}"
    return f"{value:.1f}"


def explain(plan: DerivedPlan, indent: int = 0) -> str:
    """A multi-line textual rendering of *plan*."""
    lines: list[str] = []
    _explain_into(plan, indent, lines)
    return "\n".join(lines)


def explain_analyzed(plan: DerivedPlan, node_stats: dict[int, dict]) -> str:
    """EXPLAIN ANALYZE: the plan annotated with measured execution stats.

    *node_stats* is :attr:`repro.engine.interpreter.Interpreter.node_stats`
    after a run — per-node call counts (incl. cache hits) and the largest
    observed result size.  Estimated vs measured side by side is the
    quickest way to see where the cost model drifted.
    """
    lines: list[str] = []
    _explain_into(plan, 0, lines, node_stats)
    return "\n".join(lines)


def _measured(node, node_stats: dict[int, dict] | None) -> str:
    if node_stats is None:
        return ""
    stats = node_stats.get(id(node))
    if stats is None:
        return "  [not executed]"
    cached = f", {stats['cached_calls']} cached" if stats["cached_calls"] else ""
    return f"  [measured: rows={stats['rows']}, calls={stats['calls']}{cached}]"


def _annotation(est) -> str:
    return f"(cost={_fmt(est.cost)}, card={_fmt(est.card)})"


def _explain_into(node, indent: int, lines: list[str], node_stats: dict | None = None) -> None:
    pad = "  " * indent
    if isinstance(node, UnionNode):
        lines.append(
            f"{pad}OR {node.ref} adorned {node.binding} {_annotation(node.est)}"
            f"{_measured(node, node_stats)}"
        )
        for child in node.children:
            _explain_into(child, indent + 1, lines, node_stats)
    elif isinstance(node, JoinNode):
        lines.append(
            f"{pad}AND {node.rule.head} / {node.binding} {_annotation(node.est)}"
        )
        for step in node.steps:
            marker = "→" if step.pipelined else "⊳"
            lines.append(
                f"{pad}  {marker} {step.literal} [{step.method}] {_annotation(step.est)}"
                f"{_measured(step, node_stats)}"
            )
            if step.child is not None:
                _explain_into(step.child, indent + 2, lines, node_stats)
    elif isinstance(node, FixpointNode):
        lines.append(
            f"{pad}CC {node.ref} adorned {node.binding} method={node.method} "
            f"{_annotation(node.est)}{_measured(node, node_stats)}"
        )
        for rule in node.program:
            lines.append(f"{pad}    | {rule}")
    else:  # pragma: no cover - defensive
        lines.append(f"{pad}{node!r}")
