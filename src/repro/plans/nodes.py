"""Processing trees (Section 4): the execution model of the optimizer.

A processing tree is the compiled form of a query: AND nodes are joins,
OR nodes are unions, contracted recursive cliques are CC (fixpoint)
nodes, and every node carries the *labels* the execution space ranges
over — the materialized/pipelined mode (MP), the join/recursion method
(EL / the recursive-method part of PA), and the chosen permutation (PR /
the c-permutation part of PA).  Selections (comparisons) are piggybacked
as steps in their chosen position (PS), and projections are implicit in
the bindings-table schemas (PP).

Nodes are immutable; the optimizer annotates them with its estimates at
construction time.  A node for a derived predicate is built *per binding
pattern* — the same predicate queried two ways yields two different
subtrees, which is precisely the paper's per-binding memoization (NR-OPT
step 2).

The interpreter (:mod:`repro.engine.interpreter`) gives these nodes their
operational meaning: every derived-predicate node maps an optional input
relation of bound-argument keys to the set of matching head tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..datalog.adorn import AdornedClique
from ..datalog.bindings import BindingPattern
from ..datalog.literals import Literal, PredicateRef
from ..datalog.rules import Program, Rule
from ..cost.model import Estimate

#: Recursive methods a CC node can be labelled with (Section 7.3).
#: "supplementary" is supplementary magic — same seeding/answer protocol
#: as magic, different rewritten program.
#: "qsqn" is Query-Subquery Nets — top-down, tuple/subquery queues over
#: the adorned rules themselves (no rewrite is shipped).
RECURSIVE_METHODS = ("seminaive", "naive", "magic", "supplementary", "counting", "qsqn")


@dataclass(frozen=True, slots=True)
class JoinStep:
    """One step of an AND node's left-to-right execution.

    * ``literal`` — the body literal this step realizes (a comparison
      step has ``child is None`` and ``method == 'eval'``);
    * ``child`` — the subplan for a derived literal, ``None`` for base
      relations and comparisons;
    * ``method`` — the EL label: ``index``/``hash``/``nested_loop``/
      ``merge`` for base literals, ``eval`` for comparisons,
      ``anti_probe`` for negation, and for derived children the MP label
      ``pipelined``/``materialized``;
    * ``pipelined`` — whether sideways bindings flow into this step (for
      base literals ``index`` implies pipelined probing; a materialized
      base step scans the stored relation);
    * ``est_source`` — where the cardinality estimate came from:
      ``"static"`` (catalog independence guesses) or ``"learned"`` (the
      cardinality feedback store had a usable observation for this
      fragment when the plan was costed).
    """

    literal: Literal
    child: Optional["DerivedPlan"]
    method: str
    pipelined: bool
    est: Estimate = Estimate(0.0, 0.0)
    est_source: str = "static"

    def describe(self) -> str:
        mode = "→" if self.pipelined else "⊳"
        return f"{mode} {self.literal} [{self.method}]"


@dataclass(frozen=True, slots=True)
class JoinNode:
    """An AND node: one rule body in a chosen permutation (PR) with
    method labels (EL) and modes (MP)."""

    rule: Rule
    binding: BindingPattern
    steps: tuple[JoinStep, ...]
    est: Estimate = Estimate(0.0, 0.0)
    #: order candidates branch-and-bound discarded while picking this body
    pruned: int = 0

    @property
    def head(self) -> Literal:
        return self.rule.head

    def describe(self) -> str:
        return f"AND {self.rule.head} / {self.binding}"


@dataclass(frozen=True, slots=True)
class UnionNode:
    """An OR node: the union of the rules defining a derived predicate,
    optimized for one binding pattern."""

    ref: PredicateRef
    binding: BindingPattern
    children: tuple[JoinNode, ...]
    est: Estimate = Estimate(0.0, 0.0)
    #: per-column distinct estimates of the materialized extension
    ndvs: tuple[float, ...] = ()

    def describe(self) -> str:
        return f"OR {self.ref} / {self.binding}"


@dataclass(frozen=True, slots=True)
class FixpointNode:
    """A CC node: a contracted recursive clique (Section 4).

    The node's label is the paper's PA choice — a c-permutation (recorded
    in ``adorned``, which was produced by it) plus a recursive method —
    and the execution program is the corresponding rewrite:

    * ``seminaive`` / ``naive`` — the original clique rules; the whole
      extension is computed and then filtered by the input keys
      (materialized fixpoint);
    * ``magic`` — the magic rewrite, seeded with the input keys
      (pipelined fixpoint, set-oriented);
    * ``counting`` — the counting rewrite, run once per input key (the
      level index identifies a single subquery instance).

    ``program`` already includes the support rules for non-clique derived
    predicates referenced inside the clique.
    """

    ref: PredicateRef
    binding: BindingPattern
    method: str
    program: Program
    answer_predicate: str
    seed_predicate: Optional[str]
    seed_arity: int
    adorned: Optional[AdornedClique] = None
    est: Estimate = Estimate(0.0, 0.0)
    ndvs: tuple[float, ...] = ()
    #: counting only: answers valid at any level (pure-copy down phase)
    answer_any_level: bool = False

    def describe(self) -> str:
        return f"CC {self.ref} / {self.binding} [{self.method}]"


#: Anything that can stand for a derived predicate in a join step.
DerivedPlan = Union[UnionNode, FixpointNode]

#: Any node of a processing tree.
PlanNode = Union[JoinNode, UnionNode, FixpointNode, JoinStep]


def plan_cost(plan: DerivedPlan) -> float:
    """The estimated cost annotation of a plan's root."""
    return plan.est.cost


def plan_nodes(plan: PlanNode) -> list[PlanNode]:
    """All nodes of a processing tree, pre-order."""
    out: list[PlanNode] = [plan]
    if isinstance(plan, UnionNode):
        for child in plan.children:
            out.extend(plan_nodes(child))
    elif isinstance(plan, JoinNode):
        for step in plan.steps:
            out.append(step)
            if step.child is not None:
                out.extend(plan_nodes(step.child))
    return out


def count_nodes(plan: PlanNode) -> int:
    """Number of nodes in the tree (used by complexity benchmarks)."""
    return len(plan_nodes(plan))
