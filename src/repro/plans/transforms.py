"""The equivalence-preserving transformations of Section 5.

The execution space is *defined* as the closure of a plan under these
transformations; the optimizer searches it implicitly (permutations +
local method choice + per-binding subtrees), but the transformations are
also available explicitly — both to demonstrate the space (Figure 4-2)
and to property-test that they preserve results when executed.

Plan-level (operate on :class:`~repro.plans.nodes.JoinNode`):

* **PR** :func:`permute` — reorder the steps of an AND node;
* **EL** :func:`exchange_label` — change a base step's join method;
* **MP** :func:`set_mode` — flip a step between pipelined and
  materialized execution;
* **PS** :func:`push_select` — move a comparison step to another
  position (piggybacking a selection earlier or later).

Program-level (operate on rules — the natural home of FU):

* **FU flatten** :func:`flatten_program` — unfold a non-recursive derived
  predicate into its callers, distributing the enclosing join over the
  union of its rules (Figure 4-2's join-over-union distribution);
* **FU unflatten** :func:`unflatten_program` — the inverse folding: name
  a body segment as a new predicate.

Transformed plans carry zeroed estimates (they were not produced by the
optimizer); execution equivalence is what the tests check.
"""

from __future__ import annotations

from typing import Sequence

from ..cost.model import Estimate
from ..datalog.literals import Literal, PredicateRef, pred_ref
from ..datalog.rules import Program, Rule
from ..datalog.rewrite import rename_apart
from ..datalog.terms import Variable
from ..datalog.unify import unify_sequences
from ..errors import PlanError
from .nodes import JoinNode, JoinStep


def _refresh(steps: Sequence[JoinStep]) -> tuple[JoinStep, ...]:
    return tuple(
        JoinStep(s.literal, s.child, s.method, s.pipelined, Estimate(0.0, 0.0))
        for s in steps
    )


def permute(node: JoinNode, order: Sequence[int]) -> JoinNode:
    """PR: reorder the steps of an AND node.

    The permutation must be a bijection over the step positions.  The
    result may be unsafe (an evaluable step before its bindings) — the
    engine will then raise at execution, which is itself an invariant the
    tests exercise.
    """
    if sorted(order) != list(range(len(node.steps))):
        raise PlanError(f"invalid permutation {order} for {len(node.steps)} steps")
    steps = _refresh([node.steps[i] for i in order])
    return JoinNode(node.rule, node.binding, steps, Estimate(0.0, 0.0))


def exchange_label(node: JoinNode, position: int, method: str) -> JoinNode:
    """EL: relabel the join method of one base-literal step."""
    step = node.steps[position]
    if step.child is not None or step.literal.is_comparison or step.literal.negated:
        raise PlanError("EL applies to base-literal steps")
    if method not in ("nested_loop", "hash", "index", "merge"):
        raise PlanError(f"unknown join method {method!r}")
    new_step = JoinStep(step.literal, None, method, method == "index", Estimate(0.0, 0.0))
    steps = list(node.steps)
    steps[position] = new_step
    return JoinNode(node.rule, node.binding, _refresh(steps), Estimate(0.0, 0.0))


def set_mode(node: JoinNode, position: int, pipelined: bool) -> JoinNode:
    """MP: flip one step between pipelined and materialized execution.

    For base-literal steps this is the index ↔ hash method change (a
    pipelined base access probes an index with sideways bindings; a
    materialized one scans and hash-joins).  Derived steps flip their
    ``pipelined`` flag; the interpreter will evaluate the same child with
    or without sideways keys.
    """
    step = node.steps[position]
    if step.literal.is_comparison or step.literal.negated:
        raise PlanError("MP does not apply to evaluable/negated steps")
    if step.child is None:
        method = "index" if pipelined else "hash"
        new_step = JoinStep(step.literal, None, method, pipelined, Estimate(0.0, 0.0))
    else:
        method = "pipelined" if pipelined else "materialized"
        new_step = JoinStep(step.literal, step.child, method, pipelined, Estimate(0.0, 0.0))
    steps = list(node.steps)
    steps[position] = new_step
    return JoinNode(node.rule, node.binding, _refresh(steps), Estimate(0.0, 0.0))


def push_select(node: JoinNode, source: int, target: int) -> JoinNode:
    """PS: move a comparison step from *source* to *target* position."""
    step = node.steps[source]
    if not step.literal.is_comparison:
        raise PlanError("PS moves comparison steps")
    steps = list(node.steps)
    steps.pop(source)
    steps.insert(target, step)
    return JoinNode(node.rule, node.binding, _refresh(steps), Estimate(0.0, 0.0))


# ---------------------------------------------------------------------------
# FU — flatten / unflatten, at the rule level
# ---------------------------------------------------------------------------


def flatten_rule(rule: Rule, position: int, definitions: Sequence[Rule]) -> list[Rule]:
    """Unfold the derived literal at *position* using its *definitions*.

    Produces one rule per definition: the join over the union becomes a
    union of joins (Figure 4-2).  Definitions that cannot unify with the
    literal are dropped.
    """
    literal = rule.body[position]
    if literal.is_comparison or literal.negated:
        raise PlanError("cannot flatten an evaluable or negated literal")
    out: list[Rule] = []
    for definition in definitions:
        fresh = rename_apart(definition, rule.variables)
        subst = unify_sequences(fresh.head.args, literal.args)
        if subst is None:
            continue
        new_body = rule.body[:position] + fresh.body + rule.body[position + 1:]
        out.append(Rule(rule.head, new_body, rule.label).substitute(subst))
    return out


def flatten_program(program: Program, ref: PredicateRef) -> Program:
    """FU flatten: inline the non-recursive predicate *ref* everywhere.

    The predicate's own rules disappear; every caller gets one copy per
    definition.  Recursive predicates are rejected — flattening through a
    fixpoint is not equivalence-preserving (and the paper's space applies
    FU outside recursive cliques).
    """
    from ..datalog.graph import DependencyGraph

    graph = DependencyGraph(program)
    if graph.is_recursive(ref):
        raise PlanError(f"cannot flatten recursive predicate {ref}")
    definitions = program.rules_for(ref)
    if not definitions:
        raise PlanError(f"{ref} has no rules to flatten")

    new_rules: list[Rule] = []
    for rule in program:
        if rule.head_ref == ref:
            continue
        pending = [rule]
        while pending:
            current = pending.pop()
            position = next(
                (
                    i
                    for i, l in enumerate(current.body)
                    if not l.is_comparison and not l.negated and pred_ref(l) == ref
                ),
                None,
            )
            if position is None:
                new_rules.append(current)
            else:
                pending.extend(flatten_rule(current, position, definitions))
    return Program(new_rules)


def unflatten_program(
    program: Program,
    rule_index: int,
    positions: Sequence[int],
    new_predicate: str,
) -> Program:
    """FU unflatten: fold the body literals at *positions* of one rule
    into a fresh predicate definition.

    The new predicate's arguments are the variables the segment shares
    with the rest of the rule (its interface); the original rule calls it
    in place of the segment.
    """
    rules = list(program.rules)
    if not 0 <= rule_index < len(rules):
        raise PlanError(f"rule index {rule_index} out of range")
    rule = rules[rule_index]
    positions = sorted(set(positions))
    if any(not 0 <= p < len(rule.body) for p in positions):
        raise PlanError("segment positions out of range")
    segment = [rule.body[p] for p in positions]
    rest = [l for i, l in enumerate(rule.body) if i not in positions]

    segment_vars: set[Variable] = set()
    for literal in segment:
        segment_vars |= literal.variables
    outside_vars: set[Variable] = set(rule.head.variables)
    for literal in rest:
        outside_vars |= literal.variables
    interface = sorted(segment_vars & outside_vars, key=lambda v: v.name)

    call = Literal(new_predicate, tuple(interface))
    definition = Rule(call, tuple(segment))
    first = min(positions)
    new_body = rule.body[:first] + (call,) + tuple(
        l for i, l in enumerate(rule.body[first:], start=first) if i not in positions
    )
    rules[rule_index] = Rule(rule.head, new_body, rule.label)
    rules.append(definition)
    return Program(rules)
