"""Processing trees: nodes, transformations, and the EXPLAIN printer."""

from .nodes import (
    DerivedPlan,
    FixpointNode,
    JoinNode,
    JoinStep,
    PlanNode,
    RECURSIVE_METHODS,
    count_nodes,
    plan_cost,
    plan_nodes,
)
from .dot import plan_to_dot
from .printer import explain, explain_analyzed
from .serialize import plan_to_dict, plan_to_json
from .transforms import (
    exchange_label,
    flatten_program,
    flatten_rule,
    permute,
    push_select,
    set_mode,
    unflatten_program,
)

__all__ = [
    "DerivedPlan",
    "FixpointNode",
    "JoinNode",
    "JoinStep",
    "PlanNode",
    "RECURSIVE_METHODS",
    "count_nodes",
    "exchange_label",
    "explain",
    "explain_analyzed",
    "flatten_program",
    "flatten_rule",
    "permute",
    "plan_cost",
    "plan_nodes",
    "plan_to_dict",
    "plan_to_dot",
    "plan_to_json",
    "push_select",
    "set_mode",
    "unflatten_program",
]
