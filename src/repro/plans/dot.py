"""GraphViz DOT rendering of processing trees.

``plan_to_dot`` emits a DOT digraph mirroring the paper's Figure 4-1
conventions: OR nodes as ellipses, AND nodes as plain boxes, CC
(contracted clique) nodes as double octagons, materialized steps as
boxes and pipelined steps as triangles.  Render with any graphviz
install (``dot -Tsvg plan.dot -o plan.svg``); nothing in this module
needs graphviz itself.
"""

from __future__ import annotations

import itertools
import math

from .nodes import DerivedPlan, FixpointNode, JoinNode, UnionNode


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _label(*parts: str) -> str:
    """Escape each dynamic part, then join with DOT newlines."""
    return "\\n".join(_escape(p) for p in parts)


def _cost(value: float) -> str:
    if math.isinf(value):
        return "∞"
    return f"{value:.3g}"


def plan_to_dot(plan: DerivedPlan, name: str = "plan") -> str:
    """Serialize *plan* as a DOT digraph string."""
    counter = itertools.count()
    lines = [f"digraph {name} {{", "  rankdir=TB;", '  node [fontname="Helvetica"];']

    def fresh(kind: str) -> str:
        return f"{kind}{next(counter)}"

    def emit(node) -> str:
        if isinstance(node, UnionNode):
            me = fresh("or_")
            label = _label(
                f"OR {node.ref}", f"adorned {node.binding}", f"cost {_cost(node.est.cost)}"
            )
            lines.append(f'  {me} [shape=ellipse, label="{label}"];')
            for child in node.children:
                lines.append(f"  {me} -> {emit(child)};")
            return me
        if isinstance(node, JoinNode):
            me = fresh("and_")
            label = _label(f"AND {node.rule.head}", f"cost {_cost(node.est.cost)}")
            lines.append(f'  {me} [shape=box, label="{label}"];')
            for position, step in enumerate(node.steps):
                step_id = fresh("step_")
                shape = "triangle" if step.pipelined else "box"
                step_label = _label(str(step.literal), f"[{step.method}]")
                lines.append(f'  {step_id} [shape={shape}, label="{step_label}"];')
                lines.append(f'  {me} -> {step_id} [label="{position + 1}"];')
                if step.child is not None:
                    lines.append(f"  {step_id} -> {emit(step.child)};")
            return me
        if isinstance(node, FixpointNode):
            me = fresh("cc_")
            label = _label(
                f"CC {node.ref}", f"adorned {node.binding}",
                f"method {node.method}", f"cost {_cost(node.est.cost)}",
            )
            lines.append(f'  {me} [shape=doubleoctagon, label="{label}"];')
            return me
        raise TypeError(f"not a plan node: {node!r}")  # pragma: no cover

    emit(plan)
    lines.append("}")
    return "\n".join(lines)
