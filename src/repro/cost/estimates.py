"""The body estimator: costing rule bodies literal by literal.

This is the workhorse the search strategies drive.  Costing a permutation
of a rule body is a left-to-right fold over :class:`StepState`: each
literal contributes a method-dependent cost and transforms the
cardinality, with the SIP bindings implied by everything to its left —
the paper's observation that "the binding implied by the pipelining is
also treated as selections" (Section 7.1).

The same estimator, iterated, prices fixpoints: :func:`estimate_fixpoint`
runs rounds of per-rule estimation with growing derived-relation
estimates until they stabilize, which uniformly costs semi-naive on the
original clique, magic and counting on their rewritten programs — the
"applicable recursive methods" of the OPT algorithm, step 3.iii.

Unsafe steps (an evaluable predicate entered with insufficient bindings)
price at ``inf``, implementing Section 8.2: "this can be done by simply
assigning an extremely high cost to unsafe goals and then let the
standard optimization algorithm do the pruning".
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

from ..datalog.bindings import BindingPattern, binds_after
from ..datalog.literals import Literal
from ..datalog.rules import Program, Rule
from ..datalog.safety import literal_is_ec
from ..datalog.terms import Variable, variables_of
from ..storage.statistics import RelationStats, StatisticsProvider
from .model import (
    CostParams,
    DerivedEstimate,
    Estimate,
    INFINITE_COST,
    StepState,
    clamp_card,
    scaled,
)

#: Resolves a derived literal at a binding to its memoized estimates; the
#: optimizer supplies this (NR-OPT step 2 recursion).  ``None`` means the
#: predicate is not derived after all.
DerivedOracle = Callable[[Literal, BindingPattern], DerivedEstimate | None]

#: Join / access methods available to leaf steps (the EL label set).
LEAF_METHODS = ("index", "hash", "nested_loop", "merge")


def _no_derived(literal: Literal, binding: BindingPattern) -> DerivedEstimate | None:
    return None


class BodyEstimator:
    """Prices one body literal at a time against catalog statistics."""

    def __init__(
        self,
        stats: StatisticsProvider,
        params: CostParams | None = None,
        derived_oracle: DerivedOracle | None = None,
        extra_stats: Mapping[str, RelationStats] | None = None,
        builtins=None,
        feedback=None,
    ):
        self.stats = stats
        self.params = params or CostParams()
        self.derived_oracle = derived_oracle or _no_derived
        #: statistics overlay for predicates invented by rewrites (magic
        #: seeds, counting levels) that have no catalog entry
        self.extra_stats: dict[str, RelationStats] = dict(extra_stats or {})
        #: registry of built-in (infinite) predicates with declared modes
        self.builtins = builtins
        #: learned-selectivity source (duck-typed as
        #: :class:`repro.obs.feedback.FeedbackStore`): observed per-probe
        #: fanouts take precedence over the static independence guesses
        self.feedback = feedback

    # -- statistics access ---------------------------------------------------

    def stats_for(self, name: str, arity: int) -> RelationStats:
        found = self.extra_stats.get(name) or self.stats.stats_for(name)
        if found is not None:
            return found
        params = self.params
        return RelationStats.declared(
            params.default_cardinality, [params.default_distinct] * arity
        )

    # -- selectivities ----------------------------------------------------------

    def _bound_selectivity(
        self, literal: Literal, distincts: Sequence[float], state: StepState
    ) -> tuple[float, tuple[int, ...], dict[Variable, float]]:
        """Selectivity of the bound positions, those positions, and the
        per-variable distinct-count updates the join implies.

        Selectivity per bound position follows the symmetric rule
        ``1/max(seen, new)`` (see :class:`StepState`), which keeps
        cardinality estimates independent of join order — the property
        the Selinger DP relies on.
        """
        selectivity = 1.0
        positions: list[int] = []
        updates: dict[Variable, float] = {}
        for index, arg in enumerate(literal.args):
            arg_vars = variables_of(arg)
            d_new = max(1.0, distincts[index] if index < len(distincts) else 1.0)
            if arg_vars and arg_vars <= state.bound:
                positions.append(index)
                if isinstance(arg, Variable):
                    d_seen = max(1.0, state.ndv_of(arg))
                    selectivity /= max(d_seen, d_new)
                    updates[arg] = min(updates.get(arg, d_new), d_new, d_seen)
                else:
                    selectivity /= d_new
            elif not arg_vars:
                # ground (constant/struct) argument: a point selection
                positions.append(index)
                selectivity /= d_new
            else:
                # free position: the variable(s) will range over this column
                if isinstance(arg, Variable):
                    updates[arg] = min(updates.get(arg, d_new), d_new)
        return selectivity, tuple(positions), updates

    # -- the step function --------------------------------------------------------

    def comparison_step(self, state: StepState, literal: Literal) -> StepState:
        """Cost a comparison; ``=`` may bind variables, others filter."""
        params = self.params
        ok, __ = literal_is_ec(literal, state.bound)
        if not ok:
            return StepState(INFINITE_COST, state.bound, INFINITE_COST)
        new_bound = binds_after(literal, state.bound) - state.bound
        if literal.predicate == "=":
            if new_bound:
                card = state.card  # computes a value per row
            else:
                card = state.card * params.equality_filter_selectivity
        elif literal.predicate == "!=":
            card = state.card * params.disequality_selectivity
        else:
            card = state.card * params.inequality_selectivity
        card = clamp_card(card, params)
        return state.charged(state.card, card, frozenset(new_bound))

    def negation_step(self, state: StepState, literal: Literal) -> StepState:
        """Cost a (fully bound) negated goal: one membership probe per row."""
        params = self.params
        ok, __ = literal_is_ec(literal, state.bound)
        if not ok:
            return StepState(INFINITE_COST, state.bound, INFINITE_COST)
        stats = self.stats_for(literal.predicate, literal.arity)
        probe_cost = state.card * params.probe_weight
        card = clamp_card(state.card * params.negation_selectivity, params)
        return state.charged(probe_cost + stats.cardinality * 0.0, card, frozenset())

    def builtin_step(self, state: StepState, literal: Literal, builtin) -> StepState:
        """Cost a built-in call: infinite unless a declared mode is
        satisfied (Section 8.1's mode-declaration mechanism), else the
        registered per-probe hints scaled by the input cardinality."""
        params = self.params
        if not builtin.is_ec(literal, state.bound):
            return StepState(INFINITE_COST, state.bound, INFINITE_COST)
        cost = scaled(state.card, builtin.per_probe_cost)
        out_card = clamp_card(scaled(state.card, builtin.per_probe_card), params)
        newly = frozenset(literal.variables - state.bound)
        return state.charged(cost, out_card, newly)

    def base_step(
        self,
        state: StepState,
        literal: Literal,
        stats: RelationStats,
        method: str,
    ) -> StepState:
        """Cost joining the current table with a base relation by *method*."""
        params = self.params
        distincts = [stats.distinct(i) for i in range(literal.arity)]
        selectivity, bound_positions, ndv_updates = self._bound_selectivity(
            literal, distincts, state
        )
        per_probe = stats.cardinality * selectivity
        if self.feedback is not None and not math.isinf(per_probe):
            learned = self.feedback.learned_fanout(
                literal, state.bound, method, per_probe
            )
            if learned is not None:
                per_probe = learned
        out_card = clamp_card(scaled(state.card, per_probe), params)

        n = stats.cardinality
        if method == "nested_loop":
            work = state.card * n
        elif method == "hash":
            work = n + state.card * params.probe_weight + out_card
        elif method == "index":
            if not bound_positions:
                work = state.card * n  # probing nothing: degenerate scan
            else:
                work = state.card * (params.probe_weight + per_probe) + out_card
        elif method == "merge":
            work = (
                n * math.log2(n + 2)
                + state.card * math.log2(state.card + 2)
                + out_card
            )
        else:
            raise ValueError(f"unknown join method {method!r}")

        newly = literal.variables - state.bound
        return state.charged(work, out_card, frozenset(newly), ndv_updates)

    def derived_step(
        self,
        state: StepState,
        literal: Literal,
        derived: DerivedEstimate,
        pipelined: bool,
    ) -> StepState:
        """Cost joining with a derived predicate (pipelined or materialized)."""
        params = self.params
        newly = frozenset(literal.variables - state.bound)
        selectivity, __, ndv_updates = self._bound_selectivity(literal, derived.ndvs, state)
        if pipelined:
            # bind-join: re-evaluate the bound subplan per outer row.
            cost = scaled(state.card, derived.per_probe.cost)
            out_card = clamp_card(scaled(state.card, derived.per_probe.card), params)
            return state.charged(cost, out_card, newly, ndv_updates)
        # materialized: compute once, then hash-join on bound positions.
        if derived.materialized.is_infinite:
            return StepState(INFINITE_COST, state.bound, INFINITE_COST)
        per_probe = derived.materialized.card * selectivity
        out_card = clamp_card(scaled(state.card, per_probe), params)
        cost = (
            derived.materialized.cost
            + derived.materialized.card * params.materialize_weight
            + state.card * params.probe_weight
            + out_card
        )
        return state.charged(cost, out_card, newly, ndv_updates)

    def literal_step(
        self,
        state: StepState,
        literal: Literal,
        method: str | None = None,
    ) -> tuple[StepState, str]:
        """Cost one literal, choosing the cheapest method when not forced.

        Returns the new state and the method label used (the EL decision,
        which the paper notes is local for a fixed permutation).
        """
        if state.is_infinite:
            return state, method or "hash"
        if literal.is_comparison:
            return self.comparison_step(state, literal), "eval"
        if literal.negated:
            return self.negation_step(state, literal), "anti_probe"

        if self.builtins is not None:
            builtin = self.builtins.get(literal.predicate)
            if builtin is not None and builtin.arity == literal.arity:
                return self.builtin_step(state, literal, builtin), "builtin"

        if literal.predicate in self.extra_stats:
            # An overlay entry (fixpoint estimation in progress) shadows the
            # derived oracle: the predicate is priced as a growing relation,
            # never by recursive re-optimization.
            stats = self.extra_stats[literal.predicate]
            if method is not None and method in LEAF_METHODS:
                return self.base_step(state, literal, stats, method), method
            best_state = None
            best_method = "hash"
            for candidate in LEAF_METHODS:
                candidate_state = self.base_step(state, literal, stats, candidate)
                if best_state is None or candidate_state.cost < best_state.cost:
                    best_state = candidate_state
                    best_method = candidate
            assert best_state is not None
            return best_state, best_method

        derived = self.derived_oracle(literal, BindingPattern.of_literal(literal, state.bound))
        if derived is not None:
            if method in ("pipelined", "materialized"):
                pipelined = method == "pipelined"
                return self.derived_step(state, literal, derived, pipelined), method
            pipe = self.derived_step(state, literal, derived, True)
            mat = self.derived_step(state, literal, derived, False)
            if pipe.cost <= mat.cost:
                return pipe, "pipelined"
            return mat, "materialized"

        stats = self.stats_for(literal.predicate, literal.arity)
        if method is not None:
            return self.base_step(state, literal, stats, method), method
        best_state: StepState | None = None
        best_method = "hash"
        for candidate in LEAF_METHODS:
            candidate_state = self.base_step(state, literal, stats, candidate)
            if best_state is None or candidate_state.cost < best_state.cost:
                best_state = candidate_state
                best_method = candidate
        assert best_state is not None
        return best_state, best_method

    # -- whole bodies ------------------------------------------------------------

    def body_estimate(
        self,
        body: Sequence[Literal],
        initially_bound: frozenset[Variable] = frozenset(),
        initial_card: float = 1.0,
    ) -> tuple[Estimate, tuple[str, ...]]:
        """Cost *body* in the given order; returns estimate + method labels."""
        state = StepState(card=initial_card, bound=frozenset(initially_bound), cost=0.0)
        methods: list[str] = []
        for literal in body:
            state, method = self.literal_step(state, literal)
            methods.append(method)
        return Estimate(state.cost, state.card), tuple(methods)


def derived_ndvs(card: float, arity: int, params: CostParams) -> tuple[float, ...]:
    """Default per-column distinct estimates for a derived extension."""
    if math.isinf(card):
        return tuple(INFINITE_COST for __ in range(arity))
    return tuple(max(1.0, card * params.derived_distinct_fraction) for __ in range(arity))


def estimate_fixpoint(
    program: Program,
    estimator_factory: Callable[[Mapping[str, RelationStats]], BodyEstimator],
    seed_cards: Mapping[str, tuple[float, int]],
    params: CostParams,
    level_indexed: frozenset[str] = frozenset(),
    cost_cap: float = INFINITE_COST,
) -> tuple[Estimate, dict[str, float]]:
    """Price a fixpoint computation of *program* by iterated estimation.

    ``cost_cap`` is a branch-and-bound cutoff: once the accumulated cost
    reaches it, estimation stops early and returns the partial (>= cap)
    estimate.  Because the per-round cost only ever accumulates, a capped
    candidate can never strictly beat the incumbent that set the cap, so
    the cutoff is choice-preserving for strict ``<`` comparisons.

    ``seed_cards`` maps seed predicate names to ``(cardinality, arity)``.
    Each round re-estimates every rule with the current derived-relation
    estimates (as a statistics overlay) and grows them; the loop stops on
    convergence or after ``params.fixpoint_rounds`` rounds — the rounds
    bound doubles as the recursion-depth surrogate.  The returned cost
    sums the per-round rule costs, mirroring semi-naive work; the
    cardinalities are the estimated final extents.

    Derived cardinalities *saturate*: a fixpoint over a finite database
    cannot exceed the domain product of its columns, so every derived
    predicate is capped at ``D**arity`` where D is the largest distinct
    count among the program's base-relation columns.  This is what keeps
    magic-set estimates honest — a magic set can never outgrow the domain
    of the bound argument, no matter how large the per-level fanout looks.
    Predicates in *level_indexed* (the counting rewrite's ``cnt_``/``ans_``
    relations, whose first column is a bounded iteration index) are capped
    at ``rounds * D**(arity-1)`` instead.

    Genuine unsafety is priced upstream (EC violations yield ``inf`` from
    the body estimator; termination is the safety analysis's job).
    """
    totals: dict[str, float] = {}
    arities: dict[str, int] = {}
    for rule in program:
        totals.setdefault(rule.head.predicate, 0.0)
        arities[rule.head.predicate] = rule.head.arity
    deltas: dict[str, float] = {name: 0.0 for name in totals}
    for name, (card, arity) in seed_cards.items():
        totals[name] = totals.get(name, 0.0) + card
        deltas[name] = deltas.get(name, 0.0) + card
        arities[name] = arity

    derived_names = set(totals)

    # Domain saturation: D = the largest distinct count among the base
    # columns the program touches (plus seeds), bounding every derived
    # predicate at D**arity.
    probe = estimator_factory({})
    domain = 1.0
    for rule in program:
        for literal in rule.body:
            if literal.is_comparison or literal.predicate in derived_names:
                continue
            stats = probe.stats_for(literal.predicate, literal.arity)
            for position in range(literal.arity):
                domain = max(domain, stats.distinct(position))
    caps: dict[str, float] = {}
    for name, arity in arities.items():
        if name in level_indexed and arity >= 1:
            cap = max(1.0, params.fixpoint_rounds) * domain ** max(0, arity - 1)
        else:
            cap = domain ** arity
        caps[name] = min(params.cardinality_cap, max(1.0, cap))

    def capped(name: str, value: float) -> float:
        return min(caps[name], value)

    def overlay_from(cards: Mapping[str, float]) -> dict[str, RelationStats]:
        return {
            name: RelationStats.declared(
                max(cards.get(name, 0.0), 0.0),
                derived_ndvs(max(cards.get(name, 0.0), 1.0), arities[name], params),
            )
            for name in derived_names
        }

    def is_recursive_rule(rule: Rule) -> bool:
        return any(
            not l.is_comparison and l.predicate in derived_names for l in rule.body
        )

    total_cost = 0.0

    # Round 0: exit rules fire against base relations (plus any seeds).
    estimator = estimator_factory(overlay_from(totals))
    for rule in program:
        if is_recursive_rule(rule):
            continue
        estimate, __ = estimator.body_estimate(rule.body)
        if estimate.is_infinite:
            return Estimate.unsafe(), totals
        total_cost += estimate.cost
        head = rule.head.predicate
        totals[head] = capped(head, totals[head] + estimate.card)
        deltas[head] = capped(head, deltas.get(head, 0.0) + estimate.card)
    if total_cost >= cost_cap:
        answer = max((totals[r.head.predicate] for r in program), default=0.0)
        return Estimate(total_cost, answer), totals

    # Rounds 1..R: recursive rules driven by the previous round's deltas,
    # one pass per derived body predicate with *that* predicate priced at
    # its delta and the others at their totals — the semi-naive
    # discipline the engine actually follows.
    for _round in range(max(1, params.fixpoint_rounds)):
        new_deltas: dict[str, float] = {name: 0.0 for name in derived_names}
        round_cost = 0.0
        for rule in program:
            if not is_recursive_rule(rule):
                continue
            body_derived = {
                l.predicate
                for l in rule.body
                if not l.is_comparison and l.predicate in derived_names
            }
            head = rule.head.predicate
            for delta_name in body_derived:
                if deltas.get(delta_name, 0.0) <= 0.0:
                    continue  # nothing new through this literal
                cards = dict(totals)
                cards[delta_name] = deltas[delta_name]
                estimator = estimator_factory(overlay_from(cards))
                estimate, __ = estimator.body_estimate(rule.body)
                if estimate.is_infinite:
                    return Estimate.unsafe(), totals
                round_cost += estimate.cost
                new_deltas[head] += estimate.card
        total_cost += round_cost
        if total_cost >= cost_cap:
            answer = max((totals[r.head.predicate] for r in program), default=0.0)
            return Estimate(total_cost, answer), totals
        converged = True
        for name in derived_names:
            # A predicate derives at most what its domain still allows;
            # once saturated the delta is zero and the loop converges.
            new_deltas[name] = min(new_deltas[name], max(0.0, caps[name] - totals[name]))
            headroom = totals[name] * params.fixpoint_epsilon + params.fixpoint_epsilon
            if new_deltas[name] > headroom:
                converged = False
            totals[name] = capped(name, totals[name] + new_deltas[name])
        deltas = new_deltas
        if converged:
            break

    answer_card = max((totals[r.head.predicate] for r in program), default=0.0)
    return Estimate(total_cost, answer_card), totals
