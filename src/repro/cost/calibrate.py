"""Calibrating the cost model against the engine it predicts.

Section 7.1: the system "is initially intended as an experimental
vehicle ... new ideas will be forthcoming that the design should be
capable of incorporating".  The cost formulae are a black box with
tunable weights (:class:`~repro.cost.model.CostParams`); this module
closes the loop by *measuring* the engine on a seeded probe workload and
searching the weight space for the best rank agreement between estimated
cost and measured work.

Rank agreement (Kendall's τ) is the right target — per Section 6 the
model's job is to order executions, not to predict absolute costs.

Typical use::

    from repro.cost.calibrate import calibrate_cost_params
    result = calibrate_cost_params(seed=0)
    kb = KnowledgeBase(OptimizerConfig(params=result.params))
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, replace

from ..storage.catalog import Database
from .estimates import BodyEstimator
from .model import CostParams, StepState


@dataclass(frozen=True, slots=True)
class CalibrationSample:
    """One probe: a two-way join executed with a forced method."""

    description: str
    estimated: float
    measured: float


@dataclass(frozen=True, slots=True)
class CalibrationResult:
    params: CostParams
    tau_before: float
    tau_after: float
    samples: tuple[CalibrationSample, ...]


def kendall_tau(xs: list[float], ys: list[float]) -> float:
    """Kendall's τ-a on paired samples (no external dependency)."""
    assert len(xs) == len(ys)
    n = len(xs)
    if n < 2:
        return 1.0
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            a = (xs[i] - xs[j]) * (ys[i] - ys[j])
            if a > 0:
                concordant += 1
            elif a < 0:
                discordant += 1
    pairs = n * (n - 1) / 2
    return (concordant - discordant) / pairs


def _probe_workloads(seed: int, count: int):
    """Seeded two-relation join probes with varying sizes and skew."""
    from ..datalog.parser import parse_rule

    rng = random.Random(seed)
    probes = []
    for index in range(count):
        left_card = rng.choice([50, 200, 800])
        fanout = rng.choice([1, 4, 16])
        domain = max(4, left_card // rng.choice([2, 8, 32]))
        db = Database()
        db.load(
            "l", [(f"k{i % domain}", f"v{i}") for i in range(left_card)]
        )
        db.load(
            "r", [(f"v{rng.randrange(left_card)}", f"w{i}") for i in range(left_card * fanout // 4 + 1)]
        )
        rule = parse_rule("out(X, W) <- l(X, V), r(V, W).")
        probes.append((f"probe{index}(card={left_card},fanout={fanout})", db, rule))
    return probes


def _measure(db: Database, rule, method: str) -> float:
    from ..engine.operators import BindingsTable, head_rows, scan_join
    from ..engine.profiler import Profiler

    profiler = Profiler()
    table = BindingsTable.unit()
    for literal in rule.body:
        table = scan_join(table, literal, db.relation(literal.predicate), method, profiler)
    head_rows(table, rule.head, profiler)
    return float(profiler.total_work)


def _estimate(db: Database, rule, method: str, params: CostParams) -> float:
    estimator = BodyEstimator(db, params=params)
    state = StepState(card=1.0, bound=frozenset())
    for literal in rule.body:
        state, __ = estimator.literal_step(state, literal, method=method)
    return state.cost


#: the weight grid the search walks (kept small: ranking, not regression)
_GRID = {
    "probe_weight": (0.5, 1.0, 2.0, 4.0),
    "materialize_weight": (0.5, 1.0, 2.0),
}

METHODS = ("nested_loop", "hash", "merge")


def calibrate_cost_params(
    seed: int = 0,
    probes: int = 8,
    base: CostParams | None = None,
) -> CalibrationResult:
    """Grid-search the cost weights for the best estimate↔measurement
    rank correlation on a seeded probe workload."""
    base = base or CostParams()
    workloads = _probe_workloads(seed, probes)

    measured: list[float] = []
    labels: list[tuple[str, Database, object, str]] = []
    for description, db, rule in workloads:
        for method in METHODS:
            measured.append(_measure(db, rule, method))
            labels.append((f"{description}/{method}", db, rule, method))

    def estimates_for(params: CostParams) -> list[float]:
        return [
            _estimate(db, rule, method, params)
            for __, db, rule, method in labels
        ]

    tau_before = kendall_tau(estimates_for(base), measured)

    best_params = base
    best_tau = tau_before
    for combo in itertools.product(*_GRID.values()):
        candidate = replace(base, **dict(zip(_GRID.keys(), combo)))
        tau = kendall_tau(estimates_for(candidate), measured)
        if tau > best_tau:
            best_tau = tau
            best_params = candidate

    final_estimates = estimates_for(best_params)
    samples = tuple(
        CalibrationSample(label, est, meas)
        for (label, __, ___, ____), est, meas in zip(labels, final_estimates, measured)
    )
    return CalibrationResult(
        params=best_params,
        tau_before=tau_before,
        tau_after=best_tau,
        samples=samples,
    )
