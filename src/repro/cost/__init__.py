"""Cost model: parameters, estimate records, and the body/fixpoint estimators."""

from .calibrate import CalibrationResult, CalibrationSample, calibrate_cost_params, kendall_tau
from .estimates import (
    BodyEstimator,
    DerivedOracle,
    LEAF_METHODS,
    derived_ndvs,
    estimate_fixpoint,
)
from .model import (
    CostParams,
    DerivedEstimate,
    Estimate,
    INFINITE_COST,
    StepState,
    clamp_card,
)

__all__ = [
    "BodyEstimator",
    "CalibrationResult",
    "CalibrationSample",
    "CostParams",
    "calibrate_cost_params",
    "kendall_tau",
    "DerivedEstimate",
    "DerivedOracle",
    "Estimate",
    "INFINITE_COST",
    "LEAF_METHODS",
    "StepState",
    "clamp_card",
    "derived_ndvs",
    "estimate_fixpoint",
]
