"""Cost model scaffolding: parameters and estimate records.

Section 6 of the paper deliberately treats cost formulae as a black box
and only fixes the architectural contract:

* a *single* scalar cost per execution, monotonically increasing in
  operand sizes;
* an **infinite cost for unsafe executions** — "the cost function should
  guarantee an infinite cost if the size approaches infinity";
* per-method cost and result-cardinality functions for every available
  join/union/recursion method;
* the sum over processing-tree nodes as the execution's cost.

:class:`CostParams` gathers every tunable so experiments can perturb the
model (the paper: "even an inexact cost model can achieve this goal
reasonably well" — EXP-7 checks exactly that), and the estimate records
are what the optimizer passes around.  ``float('inf')`` is the unsafe
cost; it propagates naturally through sums and comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

INFINITE_COST = math.inf


@dataclass(frozen=True, slots=True)
class CostParams:
    """Tunable constants of the default cost model."""

    #: selectivity of ordering comparisons (<, <=, >, >=) — System R's 1/3
    inequality_selectivity: float = 1.0 / 3.0
    #: selectivity of ``!=``
    disequality_selectivity: float = 0.9
    #: selectivity of ``=`` used as a filter between two bound sides
    equality_filter_selectivity: float = 0.1
    #: selectivity of a negated goal
    negation_selectivity: float = 0.5
    #: per-column distinct fraction assumed for derived predicates
    derived_distinct_fraction: float = 0.8
    #: rounds of fixpoint estimation (recursion-depth surrogate)
    fixpoint_rounds: int = 12
    #: convergence threshold for fixpoint estimation (relative growth)
    fixpoint_epsilon: float = 0.01
    #: hard cap on any estimated cardinality — beyond it, treat as infinite
    cardinality_cap: float = 1e15
    #: fallback statistics for predicates with no catalog entry
    default_cardinality: float = 1000.0
    default_distinct: float = 100.0
    #: charge for writing a tuple to a temporary (materialization)
    materialize_weight: float = 1.0
    #: charge for one index/hash probe
    probe_weight: float = 1.0
    #: multiplier on the QSQN recursive method's estimate relative to the
    #: supplementary-magic fixpoint it is priced from (both materialize
    #: the same supplement relations; QSQN drives them by subquery/answer
    #: queues instead of semi-naive rounds).  At the default 1.0 the two
    #: tie and the earlier-listed method wins; lower it to prefer QSQN.
    qsqn_weight: float = 1.0


@dataclass(frozen=True, slots=True)
class Estimate:
    """Cost and output cardinality of evaluating something once."""

    cost: float
    card: float

    @property
    def is_infinite(self) -> bool:
        return math.isinf(self.cost) or math.isinf(self.card)

    @classmethod
    def unsafe(cls) -> "Estimate":
        return cls(INFINITE_COST, INFINITE_COST)

    def __add__(self, other: "Estimate") -> "Estimate":
        return Estimate(self.cost + other.cost, self.card + other.card)


@dataclass(frozen=True, slots=True)
class DerivedEstimate:
    """The optimizer's memoized summary of a derived predicate at a binding.

    * ``per_probe`` — cost/card of answering *one* instance of the bound
      arguments (what a pipelined bind-join pays per outer row);
    * ``materialized`` — cost/card of computing the full extension under
      this binding once (what a materialized node pays);
    * ``ndvs`` — per-column distinct-value estimates of the materialized
      extension, for join selectivity above this node.
    """

    per_probe: Estimate
    materialized: Estimate
    ndvs: tuple[float, ...]

    @property
    def is_infinite(self) -> bool:
        return self.per_probe.is_infinite and self.materialized.is_infinite


@dataclass(frozen=True, slots=True)
class StepState:
    """The left-to-right state while costing one rule body.

    ``card`` is the current bindings-table cardinality, ``bound`` the
    variables bound so far, ``cost`` the accumulated cost.  The initial
    state for a head binding has ``card=1`` (one probe instance).

    ``var_ndvs`` maps each bound variable to the estimated number of
    distinct values it ranges over.  Join selectivity on a variable is
    ``1/max(seen, new)`` and the estimate then drops to ``min(seen,
    new)`` — the symmetric System R rule, which makes the cardinality of
    a literal *set* independent of join order (the property Selinger DP
    relies on).  Query-bound variables carry a single value: ndv 1.
    """

    card: float
    bound: frozenset
    cost: float = 0.0
    var_ndvs: Mapping = field(default_factory=dict)

    @property
    def is_infinite(self) -> bool:
        return math.isinf(self.cost) or math.isinf(self.card)

    def ndv_of(self, var) -> float:
        """Distinct-value estimate for a bound variable (1 when unknown —
        head-bound and ``=``-computed variables hold one value per row)."""
        return self.var_ndvs.get(var, 1.0)

    def charged(
        self,
        extra_cost: float,
        new_card: float,
        newly_bound: frozenset,
        ndv_updates: Mapping | None = None,
    ) -> "StepState":
        ndvs = dict(self.var_ndvs)
        for var, value in (ndv_updates or {}).items():
            current = ndvs.get(var)
            ndvs[var] = value if current is None else min(current, value)
        return StepState(
            card=new_card,
            bound=self.bound | newly_bound,
            cost=self.cost + extra_cost,
            var_ndvs=ndvs,
        )


def clamp_card(card: float, params: CostParams) -> float:
    """Saturate a cardinality estimate at the cap.

    The cap stays *finite*: astronomically large estimates make a plan
    lose every comparison, but only the safety analysis (EC violations,
    missing well-founded orders) may price a plan at ``inf`` — size
    explosion in the estimator is a modelling artifact, not unsafety.
    """
    if math.isinf(card):
        return card  # already marked unsafe upstream
    if card > params.cardinality_cap:
        return params.cardinality_cap
    return max(card, 0.0)


def scaled(count: float, factor: float) -> float:
    """``count * factor`` with the convention ``0 * inf == 0``.

    A zero-cardinality input means the work is never performed, no matter
    how expensive a single unit would have been.
    """
    if count == 0.0 or factor == 0.0:
        return 0.0
    return count * factor
