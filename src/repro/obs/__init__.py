"""Observability: query tracing, metrics, and trace-event export.

Three layers, each usable alone:

* :mod:`repro.obs.tracer` — a span-based tracer with stable span ids and
  parent links covering parse → optimize → execute, recording the
  profiler's deterministic tuple counters per span.  Off by default
  (:data:`NULL_TRACER` on every hot path).
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms aggregating across queries, with JSON and
  Prometheus-text exporters.
* :mod:`repro.obs.events` — the versioned JSONL span-event schema, its
  file sink, and a stdlib-only validator
  (``python -m repro.obs.validate``).

The CLI surfaces all three: ``--trace FILE``, ``--metrics FILE``, and
``--analyze`` (per-node EXPLAIN ANALYZE; also ``:analyze`` in the REPL).
"""

from .events import SCHEMA, JsonlSink, span_event, validate_events, validate_trace_file
from .metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from .tracer import (
    COUNTER_FIELDS,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TraceSinkWarning,
)

__all__ = [
    "COUNTER_FIELDS",
    "DEFAULT_BUCKETS",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SCHEMA",
    "Span",
    "Tracer",
    "TraceSinkWarning",
    "span_event",
    "validate_events",
    "validate_trace_file",
]
