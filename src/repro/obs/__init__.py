"""Observability: query tracing, metrics, and trace-event export.

Three layers, each usable alone:

* :mod:`repro.obs.tracer` — a span-based tracer with stable span ids and
  parent links covering parse → optimize → execute, recording the
  profiler's deterministic tuple counters per span.  Off by default
  (:data:`NULL_TRACER` on every hot path).
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms aggregating across queries, with JSON and
  Prometheus-text exporters.
* :mod:`repro.obs.events` — the versioned JSONL span-event schema, its
  file sink, and a stdlib-only validator
  (``python -m repro.obs.validate``).

PR 8 closes the loop with two more:

* :mod:`repro.obs.feedback` — the persistent cardinality feedback store
  (fingerprint → learned selectivity) the cost model consults and
  ``kb.ask`` populates on every query
  (``python -m repro.obs.feedback dump|stats|clear``).
* :mod:`repro.obs.telemetry` — the per-query telemetry ring buffer
  (``kb.telemetry``) exporting ``repro.telemetry/1`` records through the
  same JSONL transport.

The CLI surfaces them all: ``--trace FILE``, ``--metrics FILE``,
``--telemetry FILE``, ``--feedback FILE`` / ``--no-feedback``,
``--reopt-threshold``, and ``--analyze`` (per-node EXPLAIN ANALYZE;
also ``:analyze`` in the REPL).
"""

from .events import (
    SCHEMA,
    SPAN_KINDS,
    JsonlSink,
    span_event,
    validate_events,
    validate_trace_file,
)
from .feedback import FEEDBACK_SCHEMA, FeedbackEntry, FeedbackStore, PlanObservation
from .metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from .telemetry import TELEMETRY_SCHEMA, TelemetryLog, validate_telemetry_event
from .tracer import (
    COUNTER_FIELDS,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TraceSinkWarning,
)

__all__ = [
    "COUNTER_FIELDS",
    "DEFAULT_BUCKETS",
    "FEEDBACK_SCHEMA",
    "FeedbackEntry",
    "FeedbackStore",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PlanObservation",
    "SCHEMA",
    "SPAN_KINDS",
    "Span",
    "TELEMETRY_SCHEMA",
    "TelemetryLog",
    "Tracer",
    "TraceSinkWarning",
    "span_event",
    "validate_events",
    "validate_telemetry_event",
    "validate_trace_file",
]
