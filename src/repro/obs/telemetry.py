"""The query telemetry log: a ring buffer of per-query outcomes.

``kb.telemetry`` records one :data:`TELEMETRY_SCHEMA` event per answered
query — wall time, the execution tier that actually served it
(``row`` / ``batch`` / ``parallel`` / ``cache`` / ``view``), governor
denials, result-cache hit/miss, worst observed q-error, and whether the
feedback loop triggered a re-optimization.  The newest *capacity*
records are kept in memory for ``kb.telemetry.slow_queries()``-style
introspection; an optional sink (any callable, typically
:class:`~repro.obs.events.JsonlSink`) receives every record as it is
appended, so telemetry shares the trace pipeline's JSONL transport and
validator (``python -m repro.obs.validate`` accepts mixed
``repro.trace/1`` / ``repro.telemetry/1`` files).

Sink failures follow the tracer's discipline: the sink is dropped with a
:class:`~repro.obs.tracer.TraceSinkWarning` and the query proceeds —
telemetry must never take a query down with it.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Callable, Iterable

from .tracer import TraceSinkWarning

#: In-band schema identifier for telemetry records.
TELEMETRY_SCHEMA = "repro.telemetry/1"

#: Execution tiers a query record may report.
TIERS = frozenset({"row", "batch", "parallel", "cache", "view"})

#: Fields every telemetry record carries (the validator checks these).
_CEIL = 1e300


def telemetry_record(
    *,
    seq: int,
    goal: str,
    adornment: str,
    wall_ms: float,
    tier: str,
    cache: str,
    rows: int,
    worst_qerror: float,
    denials: int,
    reopt: bool,
    status: str = "ok",
) -> dict:
    """Build one schema-conformant telemetry event."""
    return {
        "schema": TELEMETRY_SCHEMA,
        "type": "query",
        "seq": seq,
        "goal": goal,
        "adornment": adornment,
        "wall_ms": round(min(wall_ms, _CEIL), 3),
        "tier": tier,
        "cache": cache,  # "hit" | "miss" | "off"
        "rows": rows,
        "worst_qerror": round(min(worst_qerror, _CEIL), 3),
        "denials": denials,
        "reopt": reopt,
        "status": status,  # "ok" | "denied" | "error"
    }


class TelemetryLog:
    """Ring-buffer recorder for per-query telemetry.

    *capacity* bounds the in-memory buffer (oldest records drop first);
    *sink* is an optional callable receiving every record dict.
    """

    def __init__(
        self,
        capacity: int = 256,
        sink: Callable[[dict], None] | None = None,
    ):
        self.capacity = capacity
        self._buffer: deque[dict] = deque(maxlen=max(1, capacity))
        self._sink = sink
        self._seq = 0
        self.records_total = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def events(self) -> list[dict]:
        """The buffered records, oldest first."""
        return list(self._buffer)

    @property
    def last(self) -> dict | None:
        return self._buffer[-1] if self._buffer else None

    def record(self, **fields) -> dict:
        """Append one query record (fields as in :func:`telemetry_record`)."""
        self._seq += 1
        event = telemetry_record(seq=self._seq, **fields)
        self._buffer.append(event)
        self.records_total += 1
        sink = self._sink
        if sink is not None:
            try:
                sink(event)
            except Exception as err:
                self._sink = None
                warnings.warn(
                    f"telemetry sink failed and was dropped: {err}",
                    TraceSinkWarning,
                    stacklevel=2,
                )
        return event

    def slow_queries(self, top: int = 5) -> list[dict]:
        """The *top* buffered records by wall time, slowest first."""
        ranked = sorted(
            self._buffer, key=lambda e: (-e["wall_ms"], e["seq"])
        )
        return ranked[:top]

    def worst_estimated(self, top: int = 5) -> list[dict]:
        """The *top* buffered records by worst q-error."""
        ranked = sorted(
            self._buffer, key=lambda e: (-e["worst_qerror"], e["seq"])
        )
        return ranked[:top]

    def by_tier(self) -> dict[str, int]:
        """Buffered record counts per execution tier."""
        out: dict[str, int] = {}
        for event in self._buffer:
            out[event["tier"]] = out.get(event["tier"], 0) + 1
        return dict(sorted(out.items()))

    def close(self) -> None:
        """Close the sink if it exposes ``close()`` (JsonlSink does)."""
        sink = self._sink
        self._sink = None
        close = getattr(sink, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TelemetryLog({len(self._buffer)}/{self.capacity} buffered, "
            f"{self.records_total} total)"
        )


def validate_telemetry_event(event: object) -> list[str]:
    """Schema-check one ``repro.telemetry/1`` record; returns problems."""
    problems: list[str] = []
    if not isinstance(event, dict):
        return ["telemetry event is not an object"]
    if event.get("type") != "query":
        problems.append(f"unknown telemetry event type {event.get('type')!r}")
    required: dict[str, type | tuple[type, ...]] = {
        "seq": int,
        "goal": str,
        "adornment": str,
        "wall_ms": (int, float),
        "tier": str,
        "cache": str,
        "rows": int,
        "worst_qerror": (int, float),
        "denials": int,
        "reopt": bool,
        "status": str,
    }
    for field, kind in required.items():
        if field not in event:
            problems.append(f"telemetry event missing field {field!r}")
        elif not isinstance(event[field], kind) or (
            kind is int and isinstance(event[field], bool)
        ):
            problems.append(
                f"telemetry field {field!r} has type "
                f"{type(event[field]).__name__}"
            )
    tier = event.get("tier")
    if isinstance(tier, str) and tier not in TIERS:
        problems.append(f"unknown telemetry tier {tier!r}")
    cache = event.get("cache")
    if isinstance(cache, str) and cache not in {"hit", "miss", "off"}:
        problems.append(f"unknown telemetry cache state {cache!r}")
    status = event.get("status")
    if isinstance(status, str) and status not in {"ok", "denied", "error"}:
        problems.append(f"unknown telemetry status {status!r}")
    return problems
