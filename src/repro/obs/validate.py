"""Command-line trace validation: ``python -m repro.obs.validate FILE...``.

Exit status 0 when every event in every file conforms to its in-band
schema — ``repro.trace/1`` span events (kind registry and the shaped
names ``partition:<i>``, ``parallel_retry``, ``degrade:<from>-><to>``,
``spill-stream:<pred>``, ``qsqn:<adorned-pred>`` and
``optimize:enumerate:<pred>`` included) or ``repro.telemetry/1`` query
records, which may be interleaved in one file — and 1 otherwise
(violations are printed one per line).  CI runs this over the traces
and telemetry produced from the ``examples/`` smoke queries.
"""

from __future__ import annotations

import sys

from .events import validate_trace_file


def main(argv: list[str] | None = None) -> int:
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.validate TRACE.jsonl [...]", file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        try:
            errors = validate_trace_file(path)
        except OSError as err:
            print(f"{path}: {err}", file=sys.stderr)
            failures += 1
            continue
        if errors:
            failures += 1
            for problem in errors:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    raise SystemExit(main())
