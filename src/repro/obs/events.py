"""Trace-event export: a versioned JSONL schema for span-close events.

One event is emitted per span close (children close before parents, so a
stream consumer can reconstruct the tree with a single pass and a dict).
The schema is versioned in-band — every event carries
``"schema": "repro.trace/1"`` — so downstream tooling can reject traces
it does not understand instead of mis-parsing them.

Event shape (version 1)::

    {
      "schema": "repro.trace/1",
      "type": "span",
      "id": 7, "parent": 3,          # parent null for roots
      "name": "join:anc:par",
      "kind": "operator",
      "depth": 4,
      "attrs": {"method": "index"},
      "counters": {...},              # inclusive profiler deltas
      "self_counters": {...},         # exclusive (sums to query totals)
      "wall_ms": 0.124,               # wall clock; excluded from tests
      "status": "ok"                  # or "error:<ExceptionType>"
    }

:func:`validate_events` checks a stream against this schema with stdlib
only (no jsonschema dependency) and is what the CI smoke step runs over
the traces produced from ``examples/``.  ``python -m repro.obs.validate
FILE`` wraps it for the command line.  Streams may interleave
``repro.telemetry/1`` query records (see :mod:`repro.obs.telemetry`)
with trace spans — the validator dispatches on the in-band schema field.
"""

from __future__ import annotations

import json
import re
from typing import IO, Iterable

from .telemetry import TELEMETRY_SCHEMA, validate_telemetry_event
from .tracer import COUNTER_FIELDS, Span

#: The current trace-event schema identifier (bump on breaking change).
SCHEMA = "repro.trace/1"

#: Every span kind the engine emits.  ``partition``, ``recovery`` and
#: ``warning`` arrived with the parallel tier (PR 6/7); a kind outside
#: this set is a validator error so renames cannot slip past CI.
SPAN_KINDS = frozenset({
    "span", "query", "phase", "node", "operator", "rule", "round",
    "fixpoint", "sld", "optimizer", "order", "cperm",
    "partition", "recovery", "warning", "qsqn",
})

#: Span names with a fixed shape, and the kind each shape must carry:
#: ``partition:<i>`` (per-worker spans), ``parallel_retry`` (round
#: recovery), ``degrade:<from>-><to>`` (tier-degradation warnings),
#: ``spill-stream:<pred>`` (out-of-core streaming scans),
#: ``qsqn:<adorned-pred>`` (query-subquery net evaluations) and
#: ``optimize:enumerate:<pred>`` (c-permutation enumeration).
_NAME_SHAPES: tuple[tuple[str, re.Pattern, str], ...] = (
    ("partition:", re.compile(r"^partition:\d+$"), "partition"),
    ("parallel_retry", re.compile(r"^parallel_retry$"), "recovery"),
    ("degrade:", re.compile(r"^degrade:[\w.$]+->[\w.$]+$"), "warning"),
    ("spill-stream:", re.compile(r"^spill-stream:[\w.$]+$"), "operator"),
    ("qsqn:", re.compile(r"^qsqn:[\w.$]+$"), "qsqn"),
    ("optimize:enumerate:", re.compile(r"^optimize:enumerate:[\w.$]+$"), "cperm"),
)


def _check_span_shape(name: str, kind: str) -> list[str]:
    """Kind-registry and shaped-name checks for one span."""
    problems: list[str] = []
    if kind not in SPAN_KINDS:
        problems.append(f"unknown span kind {kind!r}")
    for prefix, pattern, expected_kind in _NAME_SHAPES:
        if name == prefix or name.startswith(prefix):
            if not pattern.fullmatch(name):
                problems.append(f"malformed span name {name!r}")
            elif kind != expected_kind:
                problems.append(
                    f"span name {name!r} must have kind {expected_kind!r}, "
                    f"got {kind!r}"
                )
            break
    return problems


def span_event(span: Span) -> dict:
    """The version-1 event for one closed span."""
    return {
        "schema": SCHEMA,
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "kind": span.kind,
        "depth": span.depth,
        "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
        "counters": span.counters,
        "self_counters": span.self_counters,
        "wall_ms": round(span.wall_seconds * 1000.0, 6),
        "status": span.status,
    }


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class JsonlSink:
    """Writes one JSON line per event to a file (or file-like object).

    The file is opened lazily on first event and closed via
    :meth:`close` (the tracer's :meth:`~repro.obs.tracer.Tracer.close`
    forwards to it).  Any I/O error propagates to the tracer, which
    degrades to a warning — never a query failure.
    """

    def __init__(self, target: str | IO[str]):
        self._target = target
        self._file: IO[str] | None = target if hasattr(target, "write") else None
        self.events_written = 0

    def __call__(self, event: dict) -> None:
        if self._file is None:
            self._file = open(self._target, "w", encoding="utf-8")
        self._file.write(json.dumps(event, sort_keys=True) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if hasattr(self._target, "write"):
            return  # caller owns the file object
        if self._file is not None:
            self._file.close()
            self._file = None


#: field name -> required type(s) for a version-1 span event
_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "type": str,
    "id": int,
    "name": str,
    "kind": str,
    "depth": int,
    "attrs": dict,
    "counters": dict,
    "self_counters": dict,
    "wall_ms": (int, float),
    "status": str,
}


def validate_event(event: dict) -> list[str]:
    """Schema violations of one event (empty list = valid).

    Dispatches on the in-band ``schema`` field: ``repro.trace/1`` span
    events are checked here, ``repro.telemetry/1`` query records are
    handed to :func:`~repro.obs.telemetry.validate_telemetry_event`.
    """
    errors: list[str] = []
    if not isinstance(event, dict):
        return [f"event is not an object: {event!r}"]
    if event.get("schema") == TELEMETRY_SCHEMA:
        return validate_telemetry_event(event)
    if event.get("schema") != SCHEMA:
        errors.append(
            f"unknown schema {event.get('schema')!r} "
            f"(expected {SCHEMA!r} or {TELEMETRY_SCHEMA!r})"
        )
    for name, types in _REQUIRED.items():
        if name not in event:
            errors.append(f"missing field {name!r}")
        elif not isinstance(event[name], types):
            errors.append(f"field {name!r} has type {type(event[name]).__name__}")
    parent = event.get("parent", "missing")
    if parent == "missing":
        errors.append("missing field 'parent'")
    elif parent is not None and not isinstance(parent, int):
        errors.append("field 'parent' must be an int or null")
    for side in ("counters", "self_counters"):
        block = event.get(side)
        if isinstance(block, dict):
            for key in COUNTER_FIELDS:
                if not isinstance(block.get(key), int):
                    errors.append(f"{side}[{key!r}] must be an int")
    if isinstance(event.get("name"), str) and isinstance(event.get("kind"), str):
        errors.extend(_check_span_shape(event["name"], event["kind"]))
    return errors


def validate_events(lines: Iterable[str]) -> list[str]:
    """Schema violations over a JSONL stream, prefixed with line numbers.

    Also checks the stream invariant that a parent id always refers to a
    span *not yet closed* at emission time (children close first), i.e.
    the parent must not already have appeared.
    """
    errors: list[str] = []
    closed: set[int] = set()
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as err:
            errors.append(f"line {number}: not valid JSON ({err})")
            continue
        for problem in validate_event(event):
            errors.append(f"line {number}: {problem}")
        if isinstance(event, dict) and event.get("schema") != TELEMETRY_SCHEMA:
            parent = event.get("parent")
            if isinstance(parent, int) and parent in closed:
                errors.append(
                    f"line {number}: parent {parent} closed before its child"
                )
            if isinstance(event.get("id"), int):
                closed.add(event["id"])
    return errors


def validate_trace_file(path: str) -> list[str]:
    """Validate a JSONL trace file; returns the violations found."""
    with open(path, encoding="utf-8") as handle:
        return validate_events(handle)
