"""The cardinality feedback store: closing the est/act loop.

PR 3 gave the system per-node ``est``/``act``/q-error annotations; this
module makes the numbers *actionable*.  Every executed plan is harvested
into a :class:`FeedbackStore` — a persistent (JSONL) + in-memory map from
**plan-fragment fingerprints** to learned cardinality evidence:

* ``step|<canonical literal>|<adornment>|<method>`` — a base-relation
  join step; the learned value is the observed *per-input-row fanout*
  (output rows / input rows), which transfers across join orders with
  the same adornment.  Every observation is recorded twice: under the
  executed method and under the method-wildcard ``*`` (cardinality does
  not depend on the join method, so the estimator can consult the
  wildcard while costing a method it has never executed).
* ``or|<pred/arity>|<adornment>|*`` / ``cc|<pred/arity>|<adornment>|<m>``
  — a derived-predicate node; the learned value is the observed output
  cardinality.

Literals are canonicalized by renaming variables positionally
(``par(V0, bart)`` no matter what the rule called them), so the same
fragment learned in one rule informs every rule that joins the same
shape.

Learning is an **exponential moving average** with observation counts
and **staleness decay**: lookups blend the learned value toward the
static estimate as the entry ages (measured in store *ticks* — one tick
per harvested query, never wall time, so runs stay deterministic):

    weight  = 0.5 ** (age_ticks / staleness_half_life)
    blended = weight * learned + (1 - weight) * static

An entry older than ~4.3 half-lives (``weight < min_weight``) stops
applying entirely and the estimator falls back to its static guess.

The store feeds three consumers:

* :class:`~repro.cost.estimates.BodyEstimator` consults
  :meth:`FeedbackStore.learned_fanout` before trusting catalog
  selectivities;
* the optimizer marks steps whose estimate came from feedback
  (``JoinStep.est_source == "learned"``) and adjusts OR/CC node output
  cardinalities via :meth:`FeedbackStore.learned_node_card`;
* :class:`~repro.kb.KnowledgeBase` harvests every executed plan through
  :meth:`FeedbackStore.observe_plan` and re-optimizes (evicting the plan
  cache entry) when the observed worst q-error crosses its threshold.

Feedback changes *plans*, never *answers* — the differential oracle's
``kb-feedback`` strategy pins that contract.

``python -m repro.obs.feedback dump|stats|clear FILE`` inspects or
resets a persisted store.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable

from ..datalog.bindings import BindingPattern, binds_after, head_bound_vars
from ..datalog.terms import Struct, Variable

#: In-band schema identifier for persisted entries (bump on breaking change).
FEEDBACK_SCHEMA = "repro.feedback/1"

#: Join methods whose steps are harvested and looked up (base relations).
_BASE_METHODS = frozenset({"index", "hash", "nested_loop", "merge"})

#: Floor for learned fanouts/cardinalities: a fragment observed empty
#: still prices as *very* selective, never as free work.
_VALUE_FLOOR = 1e-3

#: Ceiling applied before JSON serialization (JSON has no Infinity).
_VALUE_CEIL = 1e300


# ------------------------------------------------------------ fingerprints


def _canon_term(term, names: dict) -> str:
    if isinstance(term, Variable):
        return names.setdefault(term, f"V{len(names)}")
    if isinstance(term, Struct):
        inner = ",".join(_canon_term(a, names) for a in term.args)
        return f"{term.functor}({inner})"
    return str(term)


def canonical_literal(literal) -> str:
    """*literal* with variables renamed positionally (``V0, V1, ...``).

    Constants and ground structs are kept verbatim — they carry
    selectivity information — while variable names are erased so the
    same join shape fingerprints identically across rules.
    """
    names: dict = {}
    args = ",".join(_canon_term(arg, names) for arg in literal.args)
    prefix = "~" if literal.negated else ""
    return f"{prefix}{literal.predicate}({args})"


def step_fingerprint(literal, adornment: str, method: str) -> str:
    """Fingerprint of one base join step: canonical literal + adornment +
    join method (``method="*"`` is the method-agnostic aggregate)."""
    return f"step|{canonical_literal(literal)}|{adornment}|{method}"


def node_fingerprint(kind: str, ref, binding: str, method: str | None) -> str:
    """Fingerprint of an OR/CC node (``kind`` in ``{"or", "cc"}``)."""
    return f"{kind}|{ref}|{binding}|{method or '*'}"


# ------------------------------------------------------------------ entries


@dataclass
class FeedbackEntry:
    """One learned fragment: fingerprint -> evidence -> value."""

    fingerprint: str
    kind: str  # "step" | "or" | "cc"
    predicate: str
    method: str
    #: the learned value: per-input-row fanout for steps, output
    #: cardinality for or/cc nodes (EMA over observations)
    value: float
    #: most recent static estimate / measured actual (evidence)
    est: float
    act: float
    observations: int
    last_tick: int
    max_qerror: float

    def to_json(self) -> dict:
        return {
            "schema": FEEDBACK_SCHEMA,
            "type": "entry",
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "predicate": self.predicate,
            "method": self.method,
            "value": min(self.value, _VALUE_CEIL),
            "est": min(self.est, _VALUE_CEIL),
            "act": min(self.act, _VALUE_CEIL),
            "observations": self.observations,
            "last_tick": self.last_tick,
            "max_qerror": min(self.max_qerror, _VALUE_CEIL),
        }

    @classmethod
    def from_json(cls, data: dict) -> "FeedbackEntry":
        return cls(
            fingerprint=data["fingerprint"],
            kind=data["kind"],
            predicate=data.get("predicate", ""),
            method=data.get("method", "*"),
            value=float(data["value"]),
            est=float(data.get("est", 0.0)),
            act=float(data.get("act", 0.0)),
            observations=int(data["observations"]),
            last_tick=int(data["last_tick"]),
            max_qerror=float(data.get("max_qerror", 1.0)),
        )


@dataclass(frozen=True)
class PlanObservation:
    """What one harvested execution contributed."""

    worst_qerror: float
    worst_label: str
    observed: int  # entries updated

    @property
    def clean(self) -> bool:
        return self.worst_qerror <= 1.0


# -------------------------------------------------------------------- store


class FeedbackStore:
    """Persistent (JSONL) + in-memory learned-cardinality store.

    *path* — when given, the store loads existing entries on
    construction and :meth:`flush` rewrites the file atomically
    (temp file + rename); when ``None`` the store is in-memory only.

    *alpha* — EMA weight of the newest observation.
    *staleness_half_life* — ticks after which a learned value has
    decayed halfway back to the static estimate.
    *min_weight* — staleness weight below which an entry stops applying.
    *min_observations* — observations required before an entry applies.
    *max_entries* — LRU bound (evicts the oldest ``last_tick``).
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        alpha: float = 0.5,
        staleness_half_life: int = 256,
        min_weight: float = 0.05,
        min_observations: int = 1,
        max_entries: int = 4096,
    ):
        self.path = Path(path) if path is not None else None
        self.alpha = alpha
        self.staleness_half_life = max(1, staleness_half_life)
        self.min_weight = min_weight
        self.min_observations = max(1, min_observations)
        self.max_entries = max_entries
        #: logical clock: one tick per harvested query (never wall time)
        self.tick = 0
        self._entries: dict[str, FeedbackEntry] = {}
        self.load_errors: list[str] = []
        if self.path is not None and self.path.exists():
            self._load(self.path)

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> FeedbackEntry | None:
        return self._entries.get(fingerprint)

    def entries(self) -> list[FeedbackEntry]:
        """All entries, stable order (sorted by fingerprint)."""
        return [self._entries[k] for k in sorted(self._entries)]

    def clear(self) -> None:
        self._entries.clear()
        self.tick = 0

    def invalidate(self, predicates: "set[str] | frozenset[str]") -> int:
        """Drop every entry learned for one of *predicates*; returns how
        many were dropped.

        The knowledge base calls this when a retraction touches a
        relation (directly or through a derived predicate's dependency
        footprint): the rows the selectivities were measured against are
        gone, and waiting out EMA drift + staleness decay would keep
        feeding the optimizer evidence about data that no longer exists.
        Insertions are *not* routed here — a learned value stays a lower
        bound there, and decay handles the drift.
        """
        stale = [
            fingerprint
            for fingerprint, entry in self._entries.items()
            if entry.predicate in predicates
        ]
        for fingerprint in stale:
            del self._entries[fingerprint]
        return len(stale)

    # -- learning ------------------------------------------------------------

    def staleness_weight(self, entry: FeedbackEntry) -> float:
        """How much of the learned value still applies (1.0 = fresh)."""
        age = max(0, self.tick - entry.last_tick)
        return 0.5 ** (age / self.staleness_half_life)

    def _usable(self, fingerprint: str) -> FeedbackEntry | None:
        entry = self._entries.get(fingerprint)
        if entry is None or entry.observations < self.min_observations:
            return None
        if self.staleness_weight(entry) < self.min_weight:
            return None
        return entry

    def _blend(self, entry: FeedbackEntry, static: float) -> float:
        weight = self.staleness_weight(entry)
        if math.isinf(static):
            # never resurrect an unsafe estimate with finite evidence
            return static
        return max(_VALUE_FLOOR, weight * entry.value + (1.0 - weight) * static)

    def learned_fanout(
        self, literal, bound_vars: frozenset, method: str, static: float
    ) -> float | None:
        """The learned per-input-row fanout of joining *literal* under the
        adornment implied by *bound_vars*, blended toward *static* by
        staleness — or ``None`` when nothing (fresh enough) is known.

        The exact ``(literal, adornment, method)`` fingerprint wins;
        the method wildcard is the fallback.
        """
        adorn = BindingPattern.of_literal(literal, bound_vars).code
        canon = canonical_literal(literal)
        for key in (f"step|{canon}|{adorn}|{method}", f"step|{canon}|{adorn}|*"):
            entry = self._usable(key)
            if entry is not None:
                return self._blend(entry, static)
        return None

    def has_fanout(self, literal, bound_vars: frozenset, method: str) -> bool:
        """Would :meth:`learned_fanout` hit?  (The optimizer's
        learned-vs-guessed plan marking asks this.)"""
        adorn = BindingPattern.of_literal(literal, bound_vars).code
        canon = canonical_literal(literal)
        return (
            self._usable(f"step|{canon}|{adorn}|{method}") is not None
            or self._usable(f"step|{canon}|{adorn}|*") is not None
        )

    def learned_node_card(
        self, kind: str, ref, binding: str, method: str | None, static: float
    ) -> float | None:
        """Learned output cardinality of an OR/CC node, blended toward
        *static* — or ``None``."""
        if math.isinf(static):
            return None
        for key in (
            node_fingerprint(kind, ref, binding, method),
            node_fingerprint(kind, ref, binding, None),
        ):
            entry = self._usable(key)
            if entry is not None:
                return self._blend(entry, static)
        return None

    # -- harvesting ----------------------------------------------------------

    def record(
        self,
        fingerprint: str,
        *,
        kind: str,
        predicate: str,
        method: str,
        observed: float,
        est: float,
        act: float,
    ) -> FeedbackEntry:
        """Fold one observation into the EMA for *fingerprint*."""
        from ..plans.printer import q_error

        observed = max(_VALUE_FLOOR, min(observed, _VALUE_CEIL))
        q = min(q_error(est, act), _VALUE_CEIL)
        entry = self._entries.get(fingerprint)
        if entry is None:
            if len(self._entries) >= self.max_entries:
                oldest = min(self._entries, key=lambda k: self._entries[k].last_tick)
                del self._entries[oldest]
            entry = FeedbackEntry(
                fingerprint=fingerprint, kind=kind, predicate=predicate,
                method=method, value=observed, est=est, act=act,
                observations=1, last_tick=self.tick, max_qerror=q,
            )
            self._entries[fingerprint] = entry
            return entry
        entry.value = self.alpha * observed + (1.0 - self.alpha) * entry.value
        entry.observations += 1
        entry.last_tick = self.tick
        entry.est = est
        entry.act = act
        entry.max_qerror = max(entry.max_qerror, q)
        return entry

    def observe_plan(self, plan, node_stats: dict[int, dict]) -> PlanObservation:
        """Harvest one executed plan: fold every measured node into the
        store and report the worst q-error seen.

        *plan* is the compiled :class:`~repro.plans.nodes.UnionNode`
        root; *node_stats* is the interpreter's per-node measurement map
        (always populated, tracer or not — this is the always-on
        collector's whole data source).
        """
        from ..plans.nodes import FixpointNode, JoinNode, UnionNode
        from ..plans.printer import q_error

        self.tick += 1
        worst = [1.0, ""]
        counted = [0]
        # Memoized subplans are shared between steps; harvest each once.
        visited: set[int] = set()

        def note_q(est_card: float, act: float, label: str) -> None:
            q = q_error(est_card, act)
            if q > worst[0]:
                worst[0] = q
                worst[1] = label

        def visit(node) -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            if isinstance(node, UnionNode):
                stats = node_stats.get(id(node))
                if stats is not None and node.ref.name != "__query__":
                    act = stats["rows"]
                    note_q(node.est.card, act, f"OR {node.ref}")
                    if not node.est.is_infinite:
                        self.record(
                            node_fingerprint("or", node.ref, node.binding.code, None),
                            kind="or", predicate=node.ref.name, method="*",
                            observed=float(act), est=node.est.card, act=float(act),
                        )
                        counted[0] += 1
                for child in node.children:
                    visit_join(child)
            elif isinstance(node, FixpointNode):
                stats = node_stats.get(id(node))
                if stats is not None:
                    act = stats["rows"]
                    note_q(node.est.card, act, f"CC {node.ref}")
                    if not node.est.is_infinite:
                        for method in (node.method, None):
                            self.record(
                                node_fingerprint(
                                    "cc", node.ref, node.binding.code, method
                                ),
                                kind="cc", predicate=node.ref.name,
                                method=method or "*",
                                observed=float(act), est=node.est.card,
                                act=float(act),
                            )
                        counted[0] += 1

        def visit_join(join) -> None:
            stats = node_stats.get(id(join))
            prev_rows = float(stats.get("in_rows", 1)) if stats else 1.0
            bound = head_bound_vars(join.rule.head, join.binding)
            for step in join.steps:
                step_stats = node_stats.get(id(step))
                if step_stats is not None:
                    act = step_stats["rows"]
                    note_q(step.est.card, act, f"step {step.literal}")
                    if (
                        step.child is None
                        and step.method in _BASE_METHODS
                        and not step.literal.is_comparison
                        and not step.literal.negated
                    ):
                        adorn = BindingPattern.of_literal(step.literal, bound).code
                        fanout = float(act) / max(1.0, prev_rows)
                        for method in (step.method, "*"):
                            self.record(
                                step_fingerprint(step.literal, adorn, method),
                                kind="step",
                                predicate=step.literal.predicate,
                                method=method,
                                observed=fanout,
                                est=step.est.card,
                                act=float(act),
                            )
                        counted[0] += 1
                    prev_rows = float(act)
                if step.child is not None:
                    visit(step.child)
                bound = binds_after(step.literal, bound)

        visit(plan)
        return PlanObservation(
            worst_qerror=worst[0], worst_label=worst[1], observed=counted[0]
        )

    # -- persistence ---------------------------------------------------------

    def flush(self) -> None:
        """Atomically rewrite the JSONL file (no-op for in-memory stores)."""
        if self.path is None:
            return
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            self._dump(handle)
        os.replace(tmp, self.path)

    def _dump(self, handle: IO[str]) -> None:
        meta = {"schema": FEEDBACK_SCHEMA, "type": "meta", "tick": self.tick}
        handle.write(json.dumps(meta, sort_keys=True) + "\n")
        for entry in self.entries():
            handle.write(json.dumps(entry.to_json(), sort_keys=True) + "\n")

    def _load(self, path: Path) -> None:
        with open(path, encoding="utf-8") as handle:
            self.load_lines(handle)

    def load_lines(self, lines: Iterable[str]) -> None:
        """Merge persisted entries (malformed lines are collected into
        :attr:`load_errors`, never raised — feedback is advisory)."""
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as err:
                self.load_errors.append(f"line {number}: not valid JSON ({err})")
                continue
            if not isinstance(data, dict) or data.get("schema") != FEEDBACK_SCHEMA:
                self.load_errors.append(
                    f"line {number}: unknown schema {data.get('schema')!r}"
                    if isinstance(data, dict)
                    else f"line {number}: not an object"
                )
                continue
            if data.get("type") == "meta":
                self.tick = max(self.tick, int(data.get("tick", 0)))
                continue
            try:
                entry = FeedbackEntry.from_json(data)
            except (KeyError, TypeError, ValueError) as err:
                self.load_errors.append(f"line {number}: bad entry ({err})")
                continue
            self._entries[entry.fingerprint] = entry

    # -- reporting -----------------------------------------------------------

    def worst_misestimates(self, top: int = 10) -> list[FeedbackEntry]:
        """Entries ranked by worst observed q-error (method-specific
        entries only, so the wildcard twin does not double-report)."""
        ranked = [e for e in self.entries() if e.method != "*" or e.kind == "or"]
        ranked.sort(key=lambda e: (-e.max_qerror, e.fingerprint))
        return ranked[:top]

    def stats(self) -> dict:
        """Summary counters for the CLI / telemetry gauges."""
        by_kind: dict[str, int] = {}
        for entry in self._entries.values():
            by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
        worst = max(
            (e.max_qerror for e in self._entries.values()), default=1.0
        )
        return {
            "entries": len(self._entries),
            "tick": self.tick,
            "by_kind": dict(sorted(by_kind.items())),
            "worst_qerror": worst,
            "load_errors": len(self.load_errors),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = str(self.path) if self.path else "memory"
        return f"FeedbackStore({len(self._entries)} entries, tick {self.tick}, {where})"


# ---------------------------------------------------------------------- CLI


def _fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:.3g}"
    return f"{value:.2f}"


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.feedback dump|stats|clear FILE``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.feedback",
        description="inspect or reset a persisted cardinality feedback store",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    dump = sub.add_parser("dump", help="top-N worst misestimates with fingerprints")
    dump.add_argument("file", type=Path)
    dump.add_argument("--top", type=int, default=10, metavar="N")
    stats = sub.add_parser("stats", help="entry counts and store summary")
    stats.add_argument("file", type=Path)
    clear = sub.add_parser("clear", help="reset the store file to empty")
    clear.add_argument("file", type=Path)
    args = parser.parse_args(argv)

    if args.command == "clear":
        store = FeedbackStore()
        store.path = args.file
        store.flush()
        print(f"{args.file}: cleared")
        return 0

    if not args.file.exists():
        print(f"{args.file}: no such file")
        return 1
    store = FeedbackStore(args.file)
    for problem in store.load_errors:
        print(f"{args.file}: {problem}")

    if args.command == "stats":
        summary = store.stats()
        print(f"entries:      {summary['entries']}")
        print(f"tick:         {summary['tick']}")
        for kind, count in summary["by_kind"].items():
            print(f"  {kind:<5} {count}")
        print(f"worst q-error: {_fmt(summary['worst_qerror'])}x")
        return 0

    # dump
    worst = store.worst_misestimates(args.top)
    if not worst:
        print("no entries")
        return 0
    print(f"-- top {len(worst)} misestimates (q-error, est vs act, learned value):")
    for entry in worst:
        print(
            f"{_fmt(entry.max_qerror)}x  est={_fmt(entry.est)} act={_fmt(entry.act)} "
            f"value={_fmt(entry.value)} obs={entry.observations} "
            f"tick={entry.last_tick}  {entry.fingerprint}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # `dump | head` closing the pipe is fine
        raise SystemExit(0)
