"""Span-based query tracing: the structured half of "measured cost".

The profiler (:mod:`repro.engine.profiler`) answers *how much* work a
query did; it cannot answer *where*.  The tracer adds the where: every
phase of the pipeline — parse, safety, optimize (per strategy run, per
clique adornment), execute (per plan node, per fixpoint round, per
operator/kernel invocation, per SLD call) — opens a :class:`Span`, and
each span records the delta of the profiler's deterministic tuple
counters between open and close.  Per-span *self* counters (inclusive
minus children) therefore sum to the query-global profiler totals, which
is what turns the estimate-vs-actual experiment (EXP-7) into a per-node
diagnostic instead of a single number.

Determinism is a design requirement, not an accident: span ids are
sequential per tracer, parent links come from a stack, and names are
derived from the same compile-time labels the profiler's per-kernel
timings use — so the same program and seed produce the identical span
tree whether rules run compiled or interpreted
(``tests/test_tracing.py`` pins this).

Overhead discipline matches the governor's: tracing is **off by
default** — every instrumented call site holds a module-singleton
:data:`NULL_TRACER` whose :meth:`~NullTracer.span` returns a shared
no-op context manager, so the traced-off hot path pays one attribute
lookup and two trivial calls per *operator* invocation (never per
tuple).  The benchmark A/B gate in ``benchmarks/run_bench.py`` holds
this under 3%.

Span close events can be exported to a *sink* (one event per close; see
:mod:`repro.obs.events` for the JSONL schema).  A failing sink **never**
fails the query: the first write error degrades to a
:class:`TraceSinkWarning` and the sink is dropped, while in-memory
spans keep accumulating.  The ``trace-drop`` fault action in
:mod:`repro.engine.faults` exists to prove that path deterministically.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable

#: The profiler fields every span snapshots (deterministic counters only;
#: wall-clock is recorded separately and never participates in tests).
COUNTER_FIELDS = ("examined", "produced", "probes", "materialized", "iterations")


class TraceSinkWarning(RuntimeWarning):
    """A trace sink failed; tracing continues without export."""


@dataclass
class Span:
    """One closed span of a traced run.

    ``counters`` are *inclusive* (everything that happened while the
    span was open, children included); ``self_counters`` are exclusive
    (inclusive minus the children's inclusive), so summing
    ``self_counters`` over a whole trace reproduces the query-global
    profiler totals.
    """

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    depth: int
    attrs: dict[str, object] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    self_counters: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    status: str = "ok"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span(#{self.span_id} {self.name!r} parent={self.parent_id} "
            f"self={self.self_counters})"
        )


class _OpenSpan:
    """The context manager guarding one open span (internal)."""

    __slots__ = (
        "tracer", "span_id", "parent_id", "name", "kind", "depth", "attrs",
        "start_counts", "start_wall", "child_counts",
    )

    def __init__(self, tracer: "Tracer", name: str, kind: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.kind = kind
        self.attrs = attrs

    def __enter__(self) -> "_OpenSpan":
        self.tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer._close(self, exc_type)
        return False

    def note(self, **attrs: object) -> None:
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)


class _NullSpan:
    """The shared no-op context manager the :class:`NullTracer` hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def note(self, **attrs: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The no-op tracer held by every instrumented call site by default.

    All methods are trivial; ``span()`` returns one shared context
    manager, so the traced-off cost of an instrumented site is a couple
    of attribute lookups — never an allocation.
    """

    __slots__ = ()

    enabled = False
    profiler = None
    spans: tuple = ()

    def span(self, name: str, kind: str = "span", **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def attach(self, profiler) -> None:
        pass

    def open_stack(self) -> tuple[str, ...]:
        return ()

    def inject_sink_failure(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


#: The module singleton every call site defaults to.
NULL_TRACER = NullTracer()


class Tracer:
    """Records a tree of :class:`Span` objects over a profiled run.

    Parameters
    ----------
    profiler:
        The :class:`~repro.engine.profiler.Profiler` whose counters are
        snapshotted at span boundaries.  Usually attached lazily by the
        entry point (``KnowledgeBase.ask`` / ``FixpointEngine.evaluate``)
        via :meth:`attach`.
    sink:
        Optional callable invoked with one event dict per span close
        (see :func:`repro.obs.events.span_event`).  A raising sink is
        dropped with a :class:`TraceSinkWarning`; the query proceeds.
    clock:
        Wall-clock source for the (test-exempt) ``wall_seconds`` field.
    """

    enabled = True

    def __init__(
        self,
        profiler=None,
        sink: Callable[[dict], None] | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.profiler = profiler
        self.sink = sink
        self.clock = clock
        #: closed spans, in close order (children before parents)
        self.spans: list[Span] = []
        self._stack: list[_OpenSpan] = []
        self._next_id = 1
        self._fail_next_emit = False

    # --------------------------------------------------------------- public

    def span(self, name: str, kind: str = "span", **attrs: object) -> _OpenSpan:
        """A context manager opening a child span of the innermost open one."""
        return _OpenSpan(self, name, kind, attrs)

    def attach(self, profiler) -> None:
        """Bind the profiler whose counters spans snapshot.

        Only takes effect between span trees (no open spans): entry
        points call this unconditionally, and the guard keeps a nested
        engine from swapping the profiler mid-query.
        """
        if not self._stack:
            self.profiler = profiler

    def open_stack(self) -> tuple[str, ...]:
        """Names of the currently open spans, root first.

        This is what a :class:`~repro.errors.ResourceExhausted` abort
        carries, so the error names the operator that blew the budget.
        """
        return tuple(handle.name for handle in self._stack)

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def tree(self, span: Span | None = None) -> list:
        """The span forest as nested ``(name, [children...])`` pairs —
        the shape the determinism tests compare (no ids, no wall time)."""
        tops = self.roots() if span is None else self.children_of(span)
        return [
            (s.name, self.tree(s))
            for s in sorted(tops, key=lambda s: s.span_id)
        ]

    def total_self_counters(self) -> dict[str, int]:
        """Sum of every span's exclusive counters.

        For a complete trace (all spans closed, one root covering the
        run) this equals the profiler's global counter deltas.
        """
        totals = dict.fromkeys(COUNTER_FIELDS, 0)
        for span in self.spans:
            for key, value in span.self_counters.items():
                totals[key] += value
        return totals

    def inject_sink_failure(self) -> None:
        """Arm a one-shot sink failure (the ``trace-drop`` fault action)."""
        self._fail_next_emit = True

    def close(self) -> None:
        """Close the sink, if it has one to close (e.g. a JSONL file)."""
        closer = getattr(self.sink, "close", None)
        if closer is not None:
            closer()

    # ------------------------------------------------------------- internals

    def _snapshot(self) -> tuple[int, ...]:
        p = self.profiler
        if p is None:
            return (0, 0, 0, 0, 0)
        return (p.examined, p.produced, p.probes, p.materialized, p.iterations)

    def _open(self, handle: _OpenSpan) -> None:
        handle.span_id = self._next_id
        self._next_id += 1
        handle.parent_id = self._stack[-1].span_id if self._stack else None
        handle.depth = len(self._stack)
        handle.start_counts = self._snapshot()
        handle.start_wall = self.clock()
        handle.child_counts = (0, 0, 0, 0, 0)
        self._stack.append(handle)

    def _close(self, handle: _OpenSpan, exc_type) -> None:
        # Pop through any spans abandoned by an exception unwinding past
        # their __exit__ order (defensive; with-blocks keep this aligned).
        while self._stack and self._stack[-1] is not handle:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        end = self._snapshot()
        inclusive = tuple(e - s for e, s in zip(end, handle.start_counts))
        exclusive = tuple(i - c for i, c in zip(inclusive, handle.child_counts))
        if self._stack:
            parent = self._stack[-1]
            parent.child_counts = tuple(
                c + i for c, i in zip(parent.child_counts, inclusive)
            )
        span = Span(
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            name=handle.name,
            kind=handle.kind,
            depth=handle.depth,
            attrs=handle.attrs,
            counters=dict(zip(COUNTER_FIELDS, inclusive)),
            self_counters=dict(zip(COUNTER_FIELDS, exclusive)),
            wall_seconds=self.clock() - handle.start_wall,
            status="ok" if exc_type is None else f"error:{exc_type.__name__}",
        )
        self.spans.append(span)
        self._emit(span)

    def _emit(self, span: Span) -> None:
        if self.sink is None:
            return
        from .events import span_event

        try:
            if self._fail_next_emit:
                self._fail_next_emit = False
                raise OSError("injected trace sink failure")
            self.sink(span_event(span))
        except Exception as err:  # a broken sink must never fail the query
            self.sink = None
            warnings.warn(
                f"trace sink failed ({err}); tracing continues without export",
                TraceSinkWarning,
                stacklevel=3,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer({len(self.spans)} closed, {len(self._stack)} open)"
