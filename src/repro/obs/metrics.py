"""A small metrics registry: counters, gauges, fixed-bucket histograms.

Where the tracer describes *one* query in depth, the registry aggregates
*across* queries — the numbers an operator of the ROADMAP's
production-scale deployment would put on a dashboard: plan-cache hit
rate, governor grants and denials (by exhausted budget), optimizer
deadline degradations, kernel compiles, fixpoint rounds.

Design constraints, in order:

* **Determinism** — histograms use fixed bucket boundaries declared at
  first observation, never adapted to the data, so two identical runs
  serialize byte-identically (tests and the CI smoke step diff these).
* **Near-zero overhead** — a counter bump is one dict operation; every
  hook site takes ``metrics=None`` and skips the bump entirely when no
  registry is attached, so the bench A/B gate sees nothing.
* **No dependencies** — exporters emit plain JSON
  (:meth:`MetricsRegistry.to_json`) and the Prometheus text exposition
  format (:meth:`MetricsRegistry.to_prometheus_text`) with stdlib only.

Label sets are plain keyword arguments; a labelled series is keyed by
``(name, sorted(label items))``:

>>> m = MetricsRegistry()
>>> m.inc("queries_total")
>>> m.inc("governor_denials_total", kind="deadline")
>>> m.counter_value("queries_total")
1
>>> m.observe("fixpoint_rounds", 3)
>>> print(m.to_prometheus_text().splitlines()[1])
repro_fixpoint_rounds_bucket{le="1"} 0
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Default histogram boundaries (upper bounds, inclusive).  Fixed and
#: coarse on purpose: rounds/cardinalities span orders of magnitude and
#: determinism beats resolution here.
DEFAULT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 1000, 10_000)

#: Prometheus metric-name prefix for everything this system exports.
PROM_PREFIX = "repro_"

LabelKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, object]) -> LabelKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


@dataclass
class Histogram:
    """Cumulative fixed-bucket histogram (Prometheus semantics)."""

    buckets: tuple[int, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    observations: int = 0

    def __post_init__(self):
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # +inf bucket last

    def observe(self, value: float) -> None:
        self.total += value
        self.observations += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        out, running = [], 0
        for count in self.counts:
            running += count
            out.append(running)
        return out


class MetricsRegistry:
    """Counters, gauges, and histograms under stable, sorted export order."""

    def __init__(self):
        self._counters: dict[LabelKey, int] = {}
        self._gauges: dict[LabelKey, float] = {}
        self._histograms: dict[LabelKey, Histogram] = {}

    # ------------------------------------------------------------ recording

    def inc(self, name: str, value: int = 1, **labels: object) -> None:
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        self._gauges[_key(name, labels)] = value

    def observe(
        self, name: str, value: float,
        buckets: tuple[int, ...] = DEFAULT_BUCKETS, **labels: object,
    ) -> None:
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(buckets=buckets)
        histogram.observe(value)

    # -------------------------------------------------------------- reading

    def counter_value(self, name: str, **labels: object) -> int:
        return self._counters.get(_key(name, labels), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter across every label set (e.g. all
        ``parallel_degradations{reason=...}`` regardless of reason)."""
        return sum(
            value for (series, _labels), value in self._counters.items()
            if series == name
        )

    def gauge_value(self, name: str, **labels: object) -> float | None:
        return self._gauges.get(_key(name, labels))

    def histogram_for(self, name: str, **labels: object) -> Histogram | None:
        return self._histograms.get(_key(name, labels))

    def snapshot(self) -> dict:
        """Every series as plain data, deterministically ordered."""

        def series(key: LabelKey) -> dict:
            name, labels = key
            return {"name": name, "labels": dict(labels)}

        return {
            "counters": [
                {**series(key), "value": value}
                for key, value in sorted(self._counters.items())
            ],
            "gauges": [
                {**series(key), "value": value}
                for key, value in sorted(self._gauges.items())
            ],
            "histograms": [
                {
                    **series(key),
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.observations,
                }
                for key, h in sorted(self._histograms.items())
            ],
        }

    # ------------------------------------------------------------ exporters

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus_text(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []

        def label_str(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
            parts = [f'{k}="{v}"' for k, v in labels]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        typed: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {PROM_PREFIX}{name} {kind}")

        for (name, labels), value in sorted(self._counters.items()):
            type_line(name, "counter")
            lines.append(f"{PROM_PREFIX}{name}{label_str(labels)} {value}")
        for (name, labels), value in sorted(self._gauges.items()):
            type_line(name, "gauge")
            lines.append(f"{PROM_PREFIX}{name}{label_str(labels)} {value}")
        for (name, labels), histogram in sorted(self._histograms.items()):
            type_line(name, "histogram")
            cumulative = histogram.cumulative()
            bounds = [str(b) for b in histogram.buckets] + ["+Inf"]
            for bound, count in zip(bounds, cumulative):
                le = 'le="%s"' % bound
                lines.append(
                    f"{PROM_PREFIX}{name}_bucket{label_str(labels, le)} {count}"
                )
            lines.append(f"{PROM_PREFIX}{name}_sum{label_str(labels)} {histogram.total}")
            lines.append(f"{PROM_PREFIX}{name}_count{label_str(labels)} {histogram.observations}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )
