"""Database statistics for cost estimation.

Section 6 of the paper: "A relational system uses knowledge of storage
structures, information about database statistics and various estimates to
predict the cost of execution schemes" and for LDL "the complexities of
data and operations emphasize the need for new database statistics".

We keep the classical relational statistics — cardinality and per-column
number of distinct values (the System R staples) plus numeric min/max —
and add the two the Horn-clause setting needs:

* **fanout** per column pair: average number of tuples matching an
  equality probe on a column (drives recursion-depth and magic-set size
  estimates);
* **acyclicity** of binary relations viewed as graphs: the applicability
  condition for the counting method and a safety input (counting on
  cyclic data does not terminate).

Statistics may be *collected* from data (:func:`collect_statistics`) or
*declared* (synthetic catalogs used by the optimizer benchmarks, matching
the paper's experiment design of "randomly picking queries and states of
the database").  Consumers depend only on the
:class:`StatisticsProvider` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol

from ..datalog.terms import Constant
from .relation import Relation


@dataclass(frozen=True, slots=True)
class ColumnStats:
    """Statistics for one column of a relation."""

    distinct: int
    minimum: float | None = None
    maximum: float | None = None

    @classmethod
    def trivial(cls) -> "ColumnStats":
        return cls(distinct=1)


@dataclass(frozen=True, slots=True)
class RelationStats:
    """Statistics for one relation.

    ``acyclic`` is three-valued: True/False when known (declared or
    computed for binary relations), ``None`` when unknown — the optimizer
    treats unknown as cyclic for safety.
    """

    cardinality: float
    columns: tuple[ColumnStats, ...]
    acyclic: bool | None = None

    @property
    def arity(self) -> int:
        return len(self.columns)

    def distinct(self, position: int) -> float:
        if not self.columns:
            return 1.0
        return max(1.0, float(self.columns[position].distinct))

    def fanout(self, position: int) -> float:
        """Average tuples per distinct value of the column: |R| / ndv."""
        if self.cardinality <= 0:
            return 0.0
        return self.cardinality / self.distinct(position)

    @classmethod
    def declared(
        cls,
        cardinality: float,
        distincts: Iterable[float],
        acyclic: bool | None = None,
    ) -> "RelationStats":
        """Build synthetic statistics from declared numbers."""
        columns = tuple(ColumnStats(distinct=int(max(1, d))) for d in distincts)
        return cls(cardinality=float(cardinality), columns=columns, acyclic=acyclic)


class StatisticsProvider(Protocol):
    """Anything that can answer "what are the statistics of predicate X"."""

    def stats_for(self, name: str) -> RelationStats | None:
        """Statistics for the relation backing *name*, or None if unknown."""
        ...  # pragma: no cover - protocol


def _is_acyclic_binary(relation: Relation) -> bool:
    """Kahn's algorithm over the relation viewed as an edge set."""
    successors: dict[object, list[object]] = {}
    indegree: dict[object, int] = {}
    for row in relation:
        a, b = row
        successors.setdefault(a, []).append(b)
        indegree[b] = indegree.get(b, 0) + 1
        indegree.setdefault(a, indegree.get(a, 0))
    queue = [node for node, degree in indegree.items() if degree == 0]
    visited = 0
    while queue:
        node = queue.pop()
        visited += 1
        for succ in successors.get(node, ()):  # pragma: no branch
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    return visited == len(indegree)


def collect_statistics(relation: Relation, check_acyclic: bool = True) -> RelationStats:
    """Compute actual statistics from the data in *relation*.

    Acyclicity is only computed for binary relations (the graph view);
    other arities get ``None``.
    """
    cardinality = float(len(relation))
    columns: list[ColumnStats] = []
    for position in range(relation.arity):
        values = {row[position] for row in relation}
        numbers = [
            v.value for v in values
            if isinstance(v, Constant) and isinstance(v.value, (int, float)) and not isinstance(v.value, bool)
        ]
        columns.append(
            ColumnStats(
                distinct=max(1, len(values)) if cardinality else 0,
                minimum=float(min(numbers)) if numbers else None,
                maximum=float(max(numbers)) if numbers else None,
            )
        )
    acyclic: bool | None = None
    if check_acyclic and relation.arity == 2:
        acyclic = _is_acyclic_binary(relation)
    return RelationStats(cardinality=cardinality, columns=tuple(columns), acyclic=acyclic)


class DeclaredStatistics:
    """A :class:`StatisticsProvider` over declared (synthetic) statistics.

    Used by the optimizer benchmarks to sample "states of the database"
    without materializing data, mirroring [Vil 87]'s methodology.
    """

    def __init__(self, stats: Mapping[str, RelationStats] | None = None):
        self._stats: dict[str, RelationStats] = dict(stats or {})

    def declare(
        self,
        name: str,
        cardinality: float,
        distincts: Iterable[float],
        acyclic: bool | None = None,
    ) -> None:
        self._stats[name] = RelationStats.declared(cardinality, distincts, acyclic)

    def stats_for(self, name: str) -> RelationStats | None:
        return self._stats.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._stats
