"""The storage substrate: relations, indexes, catalog and statistics."""

from .catalog import Database
from .index import HashIndex
from .loader import dump_facts_text, load_facts_file, load_facts_text, load_tsv, load_tsv_file
from .relation import DerivedRelation, Relation, Row, SortedOrderCache, relation_from_rows
from .statistics import (
    ColumnStats,
    DeclaredStatistics,
    RelationStats,
    StatisticsProvider,
    collect_statistics,
)

__all__ = [
    "ColumnStats",
    "Database",
    "DeclaredStatistics",
    "DerivedRelation",
    "HashIndex",
    "Relation",
    "RelationStats",
    "Row",
    "SortedOrderCache",
    "StatisticsProvider",
    "collect_statistics",
    "dump_facts_text",
    "load_facts_file",
    "load_facts_text",
    "load_tsv",
    "load_tsv_file",
    "relation_from_rows",
]
