"""Loading facts into the database from LDL text or delimited files.

Facts written in rule syntax (``up(a, b).``) are the native interchange
format; :func:`load_facts_text` parses them with the full term grammar, so
complex terms (``assembly(bike, wheel(front)).``) round-trip.  A minimal
TSV path is provided for bulk numeric/string data.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from ..datalog.parser import parse_program
from ..datalog.terms import Constant
from ..errors import KnowledgeBaseError
from .catalog import Database


def load_facts_text(db: Database, source: str) -> int:
    """Parse ``pred(args).`` fact statements and insert them into *db*.

    Every statement must be a ground fact (no body, no variables);
    anything else raises :class:`KnowledgeBaseError`.  Returns the number
    of newly inserted tuples.
    """
    program = parse_program(source)
    added = 0
    for rule in program:
        if not rule.is_fact:
            raise KnowledgeBaseError(f"not a fact: {rule}")
        if rule.head.variables:
            raise KnowledgeBaseError(f"fact contains variables: {rule}")
        if db.insert(rule.head.predicate, rule.head.args):
            added += 1
    return added


def load_facts_file(db: Database, path: str | Path) -> int:
    """Load an LDL fact file from disk."""
    return load_facts_text(db, Path(path).read_text())


def _parse_field(text: str) -> Constant:
    """TSV field -> constant: int, then float, then string."""
    try:
        return Constant(int(text))
    except ValueError:
        pass
    try:
        return Constant(float(text))
    except ValueError:
        pass
    return Constant(text)


def load_tsv(db: Database, name: str, lines: Iterable[str], delimiter: str = "\t") -> int:
    """Load delimited rows (one tuple per line) into relation *name*."""
    added = 0
    for line in lines:
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        row = tuple(_parse_field(field) for field in line.split(delimiter))
        if db.insert(name, row):
            added += 1
    return added


def load_tsv_file(db: Database, name: str, path: str | Path, delimiter: str = "\t") -> int:
    """Load a delimited file from disk into relation *name*."""
    with open(path) as handle:
        return load_tsv(db, name, handle, delimiter)


def dump_facts_text(db: Database, names: Iterable[str] | None = None) -> str:
    """Serialize relations back to LDL fact syntax (sorted, stable)."""
    names = sorted(names if names is not None else db.names)
    lines: list[str] = []
    for name in names:
        relation = db.relation(name)
        rendered = sorted(
            f"{name}({', '.join(str(field) for field in row)})." for row in relation
        )
        lines.extend(rendered)
    return "\n".join(lines) + ("\n" if lines else "")
