"""Hash indexes over relation columns.

The only index kind the execution model needs: an equality hash index on a
subset of column positions.  It backs the index-nested-loop join method
(one of the EL "exchange label" choices, Section 5) and magic-set seed
lookups.  Ground terms are immutable and hashable, so the index is a plain
dict from key tuples to row sets.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..datalog.terms import Term

Row = tuple[Term, ...]


class HashIndex:
    """An equality index on ``positions`` of a relation's tuples."""

    def __init__(self, positions: Sequence[int]):
        self.positions = tuple(positions)
        self._buckets: dict[tuple[Term, ...], set[Row]] = {}

    def key_of(self, row: Row) -> tuple[Term, ...]:
        return tuple(row[p] for p in self.positions)

    def add(self, row: Row) -> None:
        self._buckets.setdefault(self.key_of(row), set()).add(row)

    def remove(self, row: Row) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(row)
            if not bucket:
                del self._buckets[key]

    def get(self, key: Sequence[Term]) -> frozenset[Row]:
        """All rows whose indexed columns equal *key*."""
        return frozenset(self._buckets.get(tuple(key), frozenset()))

    _EMPTY_BUCKET: frozenset[Row] = frozenset()

    def get_bucket(self, key: tuple[Term, ...]) -> "frozenset[Row] | set[Row]":
        """The internal bucket for *key* — no defensive copy.

        Hot-path variant of :meth:`get`: callers must not mutate the
        returned set and must not hold it across inserts.
        """
        return self._buckets.get(key, self._EMPTY_BUCKET)

    def __contains__(self, key: Sequence[Term]) -> bool:
        return tuple(key) in self._buckets

    def keys(self) -> Iterator[tuple[Term, ...]]:
        return iter(self._buckets)

    def clear(self) -> None:
        self._buckets.clear()

    @property
    def distinct_keys(self) -> int:
        return len(self._buckets)

    def bucket_sizes(self) -> list[int]:
        """Bucket cardinalities (used by statistics collection for fanout)."""
        return [len(bucket) for bucket in self._buckets.values()]

    def __repr__(self) -> str:
        return f"HashIndex(positions={self.positions}, keys={len(self._buckets)})"
