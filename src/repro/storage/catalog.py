"""The fact base: a catalog of named relations with statistics.

Section 2: "The knowledge base consists of a rule base and a database
(also known as fact base)."  :class:`Database` is that fact base — the
relations the ``Bi`` base predicates scan — plus the statistics interface
the cost model consumes.  Statistics are collected lazily from the data
and cached; loading new facts invalidates the cache.  Declared overrides
let benchmarks pin statistics independently of the stored data.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..datalog.terms import Term
from ..errors import SchemaError
from .backend import StorageBackend, make_backend
from .relation import Relation
from .statistics import RelationStats, collect_statistics


class Database:
    """A mutable catalog of relations, with cached statistics.

    The physical representation of each relation is the *backend*'s
    business (:mod:`repro.storage.backend`): ``"memory"`` (default) keeps
    every relation a resident :class:`Relation`; ``"sqlite"`` spills any
    relation that grows past *spill_threshold* tuples to a temporary
    on-disk columnar store.  ``spill_threshold=None`` disables both
    spilling and resident-tuple accounting — the pre-backend behaviour.
    """

    def __init__(
        self,
        backend: "str | StorageBackend" = "memory",
        spill_threshold: int | None = None,
    ) -> None:
        self.backend = make_backend(backend)
        self.spill_threshold = spill_threshold
        self._relations: dict[str, Relation] = {}
        self._stats_cache: dict[str, RelationStats] = {}
        self._stats_overrides: dict[str, RelationStats] = {}

    # -- schema ------------------------------------------------------------

    def create(self, name: str, arity: int, columns: Sequence[str] | None = None) -> Relation:
        """Create an empty relation; error if the name is taken."""
        if name in self._relations:
            raise SchemaError(f"relation {name!r} already exists")
        relation = self.backend.create_relation(name, arity, columns)
        self._relations[name] = relation
        return relation

    def add_relation(self, relation: Relation) -> Relation:
        """Register an existing relation object under its own name."""
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation
        return relation

    def drop(self, name: str) -> None:
        self._relations.pop(name, None)
        self._stats_cache.pop(name, None)
        self._stats_overrides.pop(name, None)

    # -- access ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def get(self, name: str) -> Relation | None:
        return self._relations.get(name)

    @property
    def names(self) -> frozenset[str]:
        return frozenset(self._relations)

    def version_vector(self) -> tuple[tuple[str, int], ...]:
        """Sorted ``(name, version)`` pairs over every relation.

        Any insert, retract, or clear anywhere in the fact base changes
        the vector (relations bump their version on every mutation, and
        creating a relation adds an entry), so it is a sound freshness
        key for cross-query result caching.
        """
        return tuple(
            (name, self._relations[name].version)
            for name in sorted(self._relations)
        )

    # -- loading -----------------------------------------------------------

    def insert(self, name: str, row: Sequence[Term]) -> bool:
        """Insert one ground-term tuple, creating the relation on demand."""
        relation = self._relations.get(name)
        if relation is None:
            relation = self.create(name, len(row))
        self._stats_cache.pop(name, None)
        added = relation.insert(row)
        if added:
            self._maybe_spill(name)
        return added

    def load(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-load plain-value rows, creating the relation on demand."""
        rows = list(rows)
        relation = self._relations.get(name)
        if relation is None:
            if not rows:
                raise SchemaError(f"cannot infer arity of new relation {name!r} from no rows")
            relation = self.create(name, len(rows[0]))
        self._stats_cache.pop(name, None)
        added = relation.load(rows)
        if added:
            self._maybe_spill(name)
        return added

    def _maybe_spill(self, name: str) -> None:
        """Let the backend migrate a grown relation to its cold tier."""
        if self.spill_threshold is None:
            return
        relation = self._relations[name]
        migrated = self.backend.maybe_spill(relation, self.spill_threshold)
        if migrated is not relation:
            self._relations[name] = migrated

    def resident_tuples(self) -> int:
        """Tuples the backend holds in process memory across the whole
        fact base (spilled tuples count zero) — what the engine charges
        against the governor's memory budget when a spill threshold is
        configured."""
        backend = self.backend
        return sum(
            backend.resident_tuples(relation)
            for relation in self._relations.values()
        )

    def retract(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Remove plain-value tuples from *name*; returns how many existed."""
        relation = self.relation(name)
        removed = 0
        for row in rows:
            if relation.remove_values(tuple(row)):
                removed += 1
        if removed:
            self._stats_cache.pop(name, None)
        return removed

    # -- statistics ----------------------------------------------------------

    def declare_stats(self, name: str, stats: RelationStats) -> None:
        """Pin statistics for *name*, overriding collection from data."""
        self._stats_overrides[name] = stats

    def stats_for(self, name: str) -> RelationStats | None:
        """Statistics for *name*: declared override, else collected+cached."""
        override = self._stats_overrides.get(name)
        if override is not None:
            return override
        cached = self._stats_cache.get(name)
        if cached is not None:
            return cached
        relation = self._relations.get(name)
        if relation is None:
            return None
        stats = collect_statistics(relation)
        self._stats_cache[name] = stats
        return stats

    def invalidate_stats(self, name: str | None = None) -> None:
        """Drop cached statistics (all of them when *name* is None)."""
        if name is None:
            self._stats_cache.clear()
        else:
            self._stats_cache.pop(name, None)

    def __repr__(self) -> str:
        parts = ", ".join(f"{r.name}({len(r)})" for r in self._relations.values())
        return f"Database[{parts}]"
