"""The fact base: a catalog of named relations with statistics.

Section 2: "The knowledge base consists of a rule base and a database
(also known as fact base)."  :class:`Database` is that fact base — the
relations the ``Bi`` base predicates scan — plus the statistics interface
the cost model consumes.  Statistics are collected lazily from the data
and cached; loading new facts invalidates the cache.  Declared overrides
let benchmarks pin statistics independently of the stored data.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from ..datalog.terms import Term, term_from_python
from ..errors import SchemaError, TransactionError
from .backend import StorageBackend, make_backend
from .relation import Relation
from .statistics import RelationStats, collect_statistics


class _Txn:
    """Bookkeeping for one open transaction.

    Memory relations get an *undo log* — reversed on rollback via the
    same insert/remove methods, so indexes stay consistent — plus a
    version snapshot per touched relation so the database's version
    vector is byte-identical after a rollback.  Spilled relations use
    SQLite's own BEGIN/ROLLBACK through their ``txn_*`` hooks.  Spill
    migration is deferred to commit so a relation's physical class never
    changes inside a transaction.
    """

    __slots__ = (
        "undo", "versions", "spilled", "created", "dropped",
        "pending_spill", "stats_cache", "stats_overrides",
    )

    def __init__(self, db: "Database"):
        self.undo: list[tuple[object, str, tuple]] = []
        self.versions: dict[int, tuple[Relation, int]] = {}
        self.spilled: dict[int, tuple[object, tuple]] = {}
        self.created: list[str] = []
        self.dropped: dict[str, object] = {}
        self.pending_spill: set[str] = set()
        self.stats_cache = dict(db._stats_cache)
        self.stats_overrides = dict(db._stats_overrides)


class Database:
    """A mutable catalog of relations, with cached statistics.

    The physical representation of each relation is the *backend*'s
    business (:mod:`repro.storage.backend`): ``"memory"`` (default) keeps
    every relation a resident :class:`Relation`; ``"sqlite"`` spills any
    relation that grows past *spill_threshold* tuples to a temporary
    on-disk columnar store.  ``spill_threshold=None`` disables both
    spilling and resident-tuple accounting — the pre-backend behaviour.
    """

    def __init__(
        self,
        backend: "str | StorageBackend" = "memory",
        spill_threshold: int | None = None,
    ) -> None:
        self.backend = make_backend(backend)
        self.spill_threshold = spill_threshold
        self._relations: dict[str, Relation] = {}
        self._stats_cache: dict[str, RelationStats] = {}
        self._stats_overrides: dict[str, RelationStats] = {}
        self._txn: _Txn | None = None

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (spilled temp files).  An open
        transaction is rolled back first, so close never persists a
        half-applied group.  Idempotent."""
        if self._txn is not None:
            self.rollback_transaction()
        self.backend.close()

    # -- transactions --------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def begin_transaction(self) -> None:
        """Open a transaction: all inserts/retracts through this Database
        until commit/rollback apply atomically.  No nesting."""
        if self._txn is not None:
            raise TransactionError("transaction already open on this Database")
        self._txn = _Txn(self)

    def commit_transaction(self) -> None:
        """Make the group durable: flush spilled-relation SQL transactions
        and run the spill migrations deferred during the transaction."""
        txn = self._txn
        if txn is None:
            raise TransactionError("no open transaction to commit")
        self._txn = None
        for relation, _snapshot in txn.spilled.values():
            relation.txn_commit()
        for name in sorted(txn.pending_spill):
            if name in self._relations:
                self._maybe_spill(name)

    def rollback_transaction(self) -> None:
        """Restore the fact base to its state at ``begin_transaction`` —
        rows, versions, schema, and statistics caches all included."""
        txn = self._txn
        if txn is None:
            raise TransactionError("no open transaction to roll back")
        self._txn = None
        # Memory relations: replay the undo log in reverse through the
        # normal mutators (keeps hash indexes consistent), then pin the
        # version back and drop version-keyed caches that could otherwise
        # collide when the restored version is re-reached later.
        for relation, op, row in reversed(txn.undo):
            if op == "insert":
                relation.remove(row)
            else:
                relation.insert(row)
        for relation, version in txn.versions.values():
            relation.txn_restore(version)
        # Spilled relations: real SQL ROLLBACK plus bookkeeping restore.
        for relation, snapshot in txn.spilled.values():
            relation.txn_rollback(snapshot)
        for name in txn.created:
            self._relations.pop(name, None)
        for name, relation in txn.dropped.items():
            self._relations[name] = relation
        self._stats_cache = dict(txn.stats_cache)
        self._stats_overrides = dict(txn.stats_overrides)

    @contextmanager
    def transaction(self):
        """``with db.transaction():`` — commit on normal exit, roll back
        (restoring the database byte-identically) on any exception."""
        self.begin_transaction()
        try:
            yield self
        except BaseException:
            self.rollback_transaction()
            raise
        else:
            self.commit_transaction()

    def _txn_touch(self, relation) -> bool:
        """Record first contact with *relation* inside the open
        transaction.  Returns True when mutations must be undo-logged
        (memory relation); False when SQLite's rollback covers them."""
        txn = self._txn
        key = id(relation)
        if isinstance(relation, Relation):
            if key not in txn.versions:
                txn.versions[key] = (relation, relation._version)
            return True
        if key not in txn.spilled:
            txn.spilled[key] = (relation, relation.txn_begin())
        return False

    # -- schema ------------------------------------------------------------

    def create(self, name: str, arity: int, columns: Sequence[str] | None = None) -> Relation:
        """Create an empty relation; error if the name is taken."""
        if name in self._relations:
            raise SchemaError(f"relation {name!r} already exists")
        relation = self.backend.create_relation(name, arity, columns)
        self._relations[name] = relation
        if self._txn is not None:
            self._txn.created.append(name)
        return relation

    def add_relation(self, relation: Relation) -> Relation:
        """Register an existing relation object under its own name."""
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation
        return relation

    def drop(self, name: str) -> None:
        dropped = self._relations.pop(name, None)
        self._stats_cache.pop(name, None)
        self._stats_overrides.pop(name, None)
        if self._txn is not None and dropped is not None and name not in self._txn.created:
            self._txn.dropped.setdefault(name, dropped)

    # -- access ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def get(self, name: str) -> Relation | None:
        return self._relations.get(name)

    @property
    def names(self) -> frozenset[str]:
        return frozenset(self._relations)

    def version_vector(self) -> tuple[tuple[str, int], ...]:
        """Sorted ``(name, version)`` pairs over every relation.

        Any insert, retract, or clear anywhere in the fact base changes
        the vector (relations bump their version on every mutation, and
        creating a relation adds an entry), so it is a sound freshness
        key for cross-query result caching.
        """
        return tuple(
            (name, self._relations[name].version)
            for name in sorted(self._relations)
        )

    # -- loading -----------------------------------------------------------

    def insert(self, name: str, row: Sequence[Term]) -> bool:
        """Insert one ground-term tuple, creating the relation on demand."""
        relation = self._relations.get(name)
        if relation is None:
            relation = self.create(name, len(row))
        txn = self._txn
        if txn is None:
            added = relation.insert(row)
            if added:
                # Duplicate inserts are complete no-ops: cached statistics
                # (like the relation version) only move when data does.
                self._stats_cache.pop(name, None)
                self._maybe_spill(name)
            return added
        log_undo = self._txn_touch(relation)
        added = relation.insert(row)
        if added:
            self._stats_cache.pop(name, None)
            if log_undo:
                txn.undo.append((relation, "insert", tuple(row)))
            txn.pending_spill.add(name)
        return added

    def load(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-load plain-value rows, creating the relation on demand."""
        rows = list(rows)
        relation = self._relations.get(name)
        if relation is None:
            if not rows:
                raise SchemaError(f"cannot infer arity of new relation {name!r} from no rows")
            relation = self.create(name, len(rows[0]))
        txn = self._txn
        if txn is None:
            added = relation.load(rows)
            if added:
                self._stats_cache.pop(name, None)
                self._maybe_spill(name)
            return added
        log_undo = self._txn_touch(relation)
        added = 0
        for row in rows:
            term_row = tuple(term_from_python(v) for v in row)
            if relation.insert(term_row):
                added += 1
                if log_undo:
                    txn.undo.append((relation, "insert", term_row))
        if added:
            self._stats_cache.pop(name, None)
            txn.pending_spill.add(name)
        return added

    def _maybe_spill(self, name: str) -> None:
        """Let the backend migrate a grown relation to its cold tier."""
        if self.spill_threshold is None:
            return
        relation = self._relations[name]
        migrated = self.backend.maybe_spill(relation, self.spill_threshold)
        if migrated is not relation:
            self._relations[name] = migrated

    def resident_tuples(self) -> int:
        """Tuples the backend holds in process memory across the whole
        fact base (spilled tuples count zero) — what the engine charges
        against the governor's memory budget when a spill threshold is
        configured."""
        backend = self.backend
        return sum(
            backend.resident_tuples(relation)
            for relation in self._relations.values()
        )

    def retract(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Remove plain-value tuples from *name*; returns how many existed."""
        relation = self.relation(name)
        txn = self._txn
        log_undo = self._txn_touch(relation) if txn is not None else False
        removed = 0
        for row in rows:
            term_row = tuple(term_from_python(v) for v in row)
            if relation.remove(term_row):
                removed += 1
                if log_undo:
                    txn.undo.append((relation, "remove", term_row))
        if removed:
            self._stats_cache.pop(name, None)
        return removed

    # -- statistics ----------------------------------------------------------

    def declare_stats(self, name: str, stats: RelationStats) -> None:
        """Pin statistics for *name*, overriding collection from data."""
        self._stats_overrides[name] = stats

    def stats_for(self, name: str) -> RelationStats | None:
        """Statistics for *name*: declared override, else collected+cached."""
        override = self._stats_overrides.get(name)
        if override is not None:
            return override
        cached = self._stats_cache.get(name)
        if cached is not None:
            return cached
        relation = self._relations.get(name)
        if relation is None:
            return None
        stats = collect_statistics(relation)
        self._stats_cache[name] = stats
        return stats

    def invalidate_stats(self, name: str | None = None) -> None:
        """Drop cached statistics (all of them when *name* is None)."""
        if name is None:
            self._stats_cache.clear()
        else:
            self._stats_cache.pop(name, None)

    def __repr__(self) -> str:
        parts = ", ".join(f"{r.name}({len(r)})" for r in self._relations.values())
        return f"Database[{parts}]"
