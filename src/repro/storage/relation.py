"""In-memory relations over ground terms.

A :class:`Relation` is the storage unit of the fact base: a named set of
fixed-arity tuples whose fields are *ground terms* — atomic
:class:`~repro.datalog.terms.Constant` values or complex ground
:class:`~repro.datalog.terms.Struct` terms (LDL stores hierarchies and
lists directly in relations).

Tuples are deduplicated (set semantics, as required by fixpoint
evaluation).  Relations maintain any number of hash indexes over column
subsets; indexes are kept in sync on insert and are what the
index-nested-loop join and the magic-set seeds use.

The class intentionally exposes *physical* operations only (scan, indexed
lookup, insert); algebraic operations live in :mod:`repro.engine`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from ..datalog.terms import Term, is_ground, term_from_python
from ..errors import SchemaError
from .index import HashIndex

#: A stored tuple: ground terms, one per column.
Row = tuple[Term, ...]

#: Maps a row to a sortable key for the merge join's order cache; supplied
#: by the engine so storage stays free of term-ordering policy.
SortKeyFn = Callable[[Row], tuple]


class SortedOrderCache:
    """Cached ``(sort_key, row)`` orders per key-position tuple.

    Merge joins repeatedly sort a relation's extension on the same bound
    positions; an unchanged relation can hand back the previous sort.  The
    cache is validated against the owner's ``_version`` counter, which
    every insert/remove/clear bumps — stale orders are silently rebuilt.
    """

    def __init__(self) -> None:
        self._orders: dict[tuple[int, ...], tuple[int, list[tuple[tuple, Row]]]] = {}

    def lookup(
        self,
        positions: tuple[int, ...],
        version: int,
        rows: Iterable[Row],
        key_fn: SortKeyFn,
    ) -> tuple[list[tuple[tuple, Row]], bool]:
        """Return ``(sorted_keyed_rows, was_cached)`` for *positions*."""
        hit = self._orders.get(positions)
        if hit is not None and hit[0] == version:
            return hit[1], True
        keyed = sorted(((key_fn(row), row) for row in rows), key=lambda pair: pair[0])
        self._orders[positions] = (version, keyed)
        return keyed, False


class Relation:
    """A named, fixed-arity, duplicate-free set of ground-term tuples."""

    def __init__(
        self,
        name: str,
        arity: int,
        columns: Sequence[str] | None = None,
    ):
        if arity < 0:
            raise SchemaError(f"relation {name!r}: arity must be >= 0, got {arity}")
        if columns is not None and len(columns) != arity:
            raise SchemaError(
                f"relation {name!r}: {len(columns)} column names for arity {arity}"
            )
        self.name = name
        self.arity = arity
        self.columns = tuple(columns) if columns is not None else tuple(f"c{i}" for i in range(arity))
        self._rows: set[Row] = set()
        self._indexes: dict[tuple[int, ...], HashIndex] = {}
        self._version = 0
        self._sorted = SortedOrderCache()
        self._batch = None  # BatchStore, built lazily by batch_store()

    # -- loading ---------------------------------------------------------------

    def _check_row(self, row: Sequence[Term]) -> Row:
        if len(row) != self.arity:
            raise SchemaError(
                f"relation {self.name!r}: tuple of arity {len(row)} into arity {self.arity}"
            )
        out = tuple(row)
        for field in out:
            if not is_ground(field):
                raise SchemaError(
                    f"relation {self.name!r}: non-ground field {field} in {out}"
                )
        return out

    def insert(self, row: Sequence[Term]) -> bool:
        """Insert one tuple of ground terms; returns True if it was new."""
        checked = self._check_row(row)
        if checked in self._rows:
            return False
        self._rows.add(checked)
        self._version += 1
        for index in self._indexes.values():
            index.add(checked)
        if self._batch is not None:
            self._batch.append(checked)
        return True

    def insert_values(self, values: Sequence[object]) -> bool:
        """Insert a tuple of plain Python values (lifted into terms).

        >>> r = Relation("up", 2)
        >>> r.insert_values(("a", "b"))
        True
        """
        return self.insert(tuple(term_from_python(v) for v in values))

    def load(self, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-insert plain-value rows; returns the number actually added."""
        added = 0
        for row in rows:
            if self.insert_values(tuple(row)):
                added += 1
        return added

    def remove(self, row: Sequence[Term]) -> bool:
        """Remove one tuple; returns True if it was present."""
        checked = tuple(row)
        if checked not in self._rows:
            return False
        self._rows.discard(checked)
        self._version += 1
        for index in self._indexes.values():
            index.remove(checked)
        # The columnar mirror is append-only; drop it and let the next
        # batch join rebuild from the surviving rows.
        self._batch = None
        return True

    def remove_values(self, values: Sequence[object]) -> bool:
        """Remove a tuple given as plain Python values."""
        return self.remove(tuple(term_from_python(v) for v in values))

    def clear(self) -> None:
        self._rows.clear()
        self._version += 1
        for index in self._indexes.values():
            index.clear()
        self._batch = None

    def txn_restore(self, version: int) -> None:
        """Rewind the version counter after a transaction rollback.

        The undo log replays through :meth:`insert`/:meth:`remove`, so
        rows and hash indexes are already back to their pre-transaction
        state — but every replayed mutation bumped ``_version``.  Restoring
        the old counter keeps the result-cache version vector stable, and
        therefore the derived caches keyed on it must be dropped: a
        :class:`SortedOrderCache` or columnar mirror built *inside* the
        aborted transaction would otherwise validate against the reused
        version number while describing discarded rows.
        """
        self._version = version
        self._batch = None
        self._sorted = SortedOrderCache()

    # -- access ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: Sequence[Term]) -> bool:
        return tuple(row) in self._rows

    @property
    def rows(self) -> frozenset[Row]:
        return frozenset(self._rows)

    @property
    def version(self) -> int:
        """Monotone change counter: bumped by every insert/remove/clear.

        The cross-query result cache keys on the database's version
        vector, so retracts must advance this exactly as inserts do.
        """
        return self._version

    # -- indexing ----------------------------------------------------------------

    def ensure_index(self, positions: Sequence[int]) -> HashIndex:
        """Create (or return) a hash index on the given column positions."""
        key = tuple(positions)
        for position in key:
            if not 0 <= position < self.arity:
                raise SchemaError(
                    f"relation {self.name!r}: index position {position} out of range"
                )
        index = self._indexes.get(key)
        if index is None:
            index = HashIndex(key)
            for row in self._rows:
                index.add(row)
            self._indexes[key] = index
        return index

    def index_on(self, positions: Sequence[int]) -> HashIndex | None:
        """An existing index on exactly these positions, if any."""
        return self._indexes.get(tuple(positions))

    def sorted_by(
        self, positions: Sequence[int], key_fn: SortKeyFn
    ) -> tuple[list[tuple[tuple, Row]], bool]:
        """The extension sorted on *positions*, with a per-positions cache.

        Returns ``(keyed_rows, was_cached)``; *key_fn* maps a row to its
        sort key over the positions and must be consistent across calls
        for a given positions tuple.
        """
        return self._sorted.lookup(tuple(positions), self._version, self._rows, key_fn)

    def lookup(self, positions: Sequence[int], key: Sequence[Term]) -> Iterator[Row]:
        """Tuples whose *positions* columns equal *key* (index-accelerated).

        Falls back to a scan when no index exists; callers that care
        should :meth:`ensure_index` first.
        """
        index = self._indexes.get(tuple(positions))
        if index is not None:
            yield from index.get(tuple(key))
            return
        wanted = tuple(key)
        for row in self._rows:
            if tuple(row[p] for p in positions) == wanted:
                yield row

    def batch_store(self, interner) -> "BatchStore":
        """The columnar id-encoded mirror of this relation (lazy, then
        maintained incrementally by :meth:`insert`)."""
        store = self._batch
        if store is None or store.interner is not interner:
            from .columnar import BatchStore

            store = BatchStore(interner, self.arity)
            store.extend(self._rows)
            self._batch = store
        return store

    # -- misc --------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "Relation":
        """A deep-enough copy (rows are immutable; indexes are rebuilt lazily)."""
        out = Relation(name or self.name, self.arity, self.columns)
        out._rows = set(self._rows)
        return out

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, {len(self._rows)} tuples)"


class DerivedRelation:
    """An index-maintaining extension for derived predicates.

    The fixpoint workspace traditionally holds a plain ``set[Row]`` per
    derived predicate, which forces every hash/index join against a
    partial result to rebuild its buckets from scratch each round.  This
    class keeps the set semantics (``add`` returns newness, exactly what
    semi-naive needs) while maintaining persistent :class:`HashIndex`es
    and a :class:`SortedOrderCache` incrementally as deltas arrive.

    Rows are assumed ground and of consistent arity — the engine derives
    them from already-checked data, so no per-insert validation is done.
    """

    __slots__ = (
        "name", "_rows", "_indexes", "_sorted", "_version",
        "_frozen", "_frozen_version", "_batch",
    )

    def __init__(self, name: str = "", rows: Iterable[Row] = ()):
        self.name = name
        self._rows: set[Row] = set(tuple(r) for r in rows)
        self._indexes: dict[tuple[int, ...], HashIndex] = {}
        self._sorted = SortedOrderCache()
        self._version = 0
        self._frozen: frozenset[Row] | None = None
        self._frozen_version = -1
        self._batch = None  # BatchStore, built lazily by batch_store()

    # -- set-like surface (what the fixpoint workspace uses) -------------------

    def add(self, row: Row) -> bool:
        """Insert one tuple; returns True if it was new (delta membership)."""
        if row in self._rows:
            return False
        self._rows.add(row)
        self._version += 1
        for index in self._indexes.values():
            index.add(row)
        if self._batch is not None:
            self._batch.append(row)
        return True

    def discard(self, row: Row) -> bool:
        """Remove one tuple; returns True if it was present.

        Invalidates exactly what :meth:`add` maintains: the version
        counter (which the sorted-order cache and the result cache key
        on), every persistent index, and the columnar mirror.
        """
        if row not in self._rows:
            return False
        self._rows.discard(row)
        self._version += 1
        for index in self._indexes.values():
            index.remove(row)
        self._batch = None
        return True

    def update(self, rows: Iterable[Row]) -> int:
        """Insert many tuples; returns how many were new."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> frozenset[Row]:
        """The extension as a frozenset (cached until the next insert)."""
        if self._frozen is None or self._frozen_version != self._version:
            self._frozen = frozenset(self._rows)
            self._frozen_version = self._version
        return self._frozen

    @property
    def version(self) -> int:
        """Monotone change counter (see :attr:`Relation.version`)."""
        return self._version

    # -- physical access (what the join kernels use) ---------------------------

    def ensure_index(self, positions: Sequence[int]) -> HashIndex:
        """Create (or return) a persistent hash index on *positions*.

        Unlike a per-call hash build, the index survives across fixpoint
        rounds and is extended tuple-by-tuple as deltas are inserted.
        """
        key = tuple(positions)
        index = self._indexes.get(key)
        if index is None:
            index = HashIndex(key)
            for row in self._rows:
                index.add(row)
            self._indexes[key] = index
        return index

    def sorted_by(
        self, positions: Sequence[int], key_fn: SortKeyFn
    ) -> tuple[list[tuple[tuple, Row]], bool]:
        """The extension sorted on *positions* (see :meth:`Relation.sorted_by`)."""
        return self._sorted.lookup(tuple(positions), self._version, self._rows, key_fn)

    def batch_store(self, interner) -> "BatchStore":
        """Columnar mirror, maintained incrementally by :meth:`add`."""
        store = self._batch
        if store is None or store.interner is not interner:
            from .columnar import BatchStore

            store = BatchStore(interner)
            store.extend(self._rows)
            self._batch = store
        return store

    def __repr__(self) -> str:
        return f"DerivedRelation({self.name!r}, {len(self._rows)} tuples, {len(self._indexes)} indexes)"


def relation_from_rows(name: str, rows: Iterable[Sequence[object]], arity: int | None = None) -> Relation:
    """Build a relation from plain-value rows, inferring arity if needed."""
    rows = [tuple(r) for r in rows]
    if arity is None:
        if not rows:
            raise SchemaError(f"relation {name!r}: cannot infer arity from no rows")
        arity = len(rows[0])
    relation = Relation(name, arity)
    relation.load(rows)
    return relation
