"""Columnar id-encoded mirrors of relation extensions.

A :class:`BatchStore` holds a relation's tuples as parallel columns of
interned term ids (:mod:`repro.datalog.intern`) plus hash buckets over
column subsets mapping a key to the *row indices* holding it.  The batch
join kernels (:mod:`repro.engine.batch`) probe those buckets and gather
output columns with list comprehensions — the whole point is that every
per-row operation in the join loop works on small ints, not term objects.

Stores are maintained *incrementally*: :class:`~repro.storage.relation`
appends each newly inserted row to the live store (and to every bucket
map already built), so a semi-naive workspace never re-encodes its
accumulated extension between rounds.  Removal does not try to be clever:
the owner drops its store on ``remove``/``clear`` and the next batch join
rebuilds from the surviving rows — retract is rare, joins are hot.
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.intern import TermInterner
from ..datalog.terms import Term

Row = tuple[Term, ...]


class BatchStore:
    """Interned columns + row-index buckets for one extension."""

    __slots__ = ("interner", "columns", "length", "_buckets", "par_key", "__weakref__")

    def __init__(self, interner: TermInterner, arity: int | None = None):
        self.interner = interner
        #: One list of ids per column; None until the first row fixes arity.
        self.columns: list[list[int]] | None = (
            [[] for _ in range(arity)] if arity is not None else None
        )
        self.length = 0
        #: positions tuple -> {key: [row indices]}.  A key is the bare id
        #: for single-position buckets, a tuple of ids otherwise (and the
        #: empty tuple for the zero-position "all rows" bucket).
        self._buckets: dict[tuple[int, ...], dict[object, list[int]]] = {}
        #: Broadcast identity for the parallel tier: stores are append-only,
        #: so (par_key, length) names an exact column prefix a worker may
        #: cache.  Assigned on first broadcast by repro.engine.parallel.
        self.par_key: int | None = None

    def append(self, row: Row) -> None:
        """Encode and append one tuple, updating every built bucket map."""
        columns = self.columns
        if columns is None:
            columns = self.columns = [[] for _ in row]
        id_of = self.interner.id_of
        ids = [id_of(t) for t in row]
        for column, ident in zip(columns, ids):
            column.append(ident)
        index = self.length
        self.length = index + 1
        for positions, buckets in self._buckets.items():
            if len(positions) == 1:
                key: object = ids[positions[0]]
            else:
                key = tuple(ids[p] for p in positions)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [index]
            else:
                bucket.append(index)

    def extend(self, rows: Iterable[Row]) -> None:
        for row in rows:
            self.append(row)

    def buckets_for(self, positions: tuple[int, ...]) -> dict[object, list[int]]:
        """Row-index buckets keyed on *positions* (built lazily, then
        maintained by :meth:`append`)."""
        buckets = self._buckets.get(positions)
        if buckets is not None:
            return buckets
        buckets = {}
        if self.length:
            if len(positions) == 1:
                keys: Iterable[object] = self.columns[positions[0]]
            elif positions:
                keys = zip(*(self.columns[p] for p in positions))
            else:
                keys = ((),) * self.length
            for index, key in enumerate(keys):
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [index]
                else:
                    bucket.append(index)
        self._buckets[positions] = buckets
        return buckets

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        width = len(self.columns) if self.columns is not None else "?"
        return f"BatchStore({self.length} rows, width {width}, {len(self._buckets)} bucket maps)"


def store_from_rows(
    rows: Iterable[Row], interner: TermInterner, arity: int | None = None
) -> BatchStore:
    """One-shot encode of an iterable extension (per-call, not cached)."""
    store = BatchStore(interner, arity)
    store.extend(rows)
    return store
