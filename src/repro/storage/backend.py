"""Pluggable storage backends: in-memory relations vs disk-backed columns.

The fact base defaults to :class:`~repro.storage.relation.Relation` — a
Python set of term tuples, plus indexes and a columnar mirror, all
resident.  That caps the engine at RAM.  This module makes the physical
representation pluggable behind the :class:`StorageBackend` protocol and
adds the out-of-core implementation the roadmap's data-scale goal needs:

* :class:`MemoryBackend` — the status quo, now explicit.  Every relation
  stays a :class:`Relation`; ``resident_tuples`` counts all of them.
* :class:`SqliteBackend` — relations start in memory and **spill** to a
  temporary SQLite database once they cross the spill threshold.  A
  spilled relation stores one INTEGER column of interned term ids
  (:mod:`repro.datalog.intern`) per field — the on-disk twin of
  :class:`~repro.storage.columnar.BatchStore` — so the batch tier's
  probe/gather becomes a SQL join over ids and a full scan becomes a
  chunked id stream, decoded back to terms only at the head.

Spilling is per-relation and one-way (facts bases grow; a spilled
relation stays spilled), and it preserves the whole logical surface:
set semantics with newness on insert, retract, version counters for the
result cache, iteration, :meth:`~SpilledRelation.lookup` for the SLD
engine.  The row tier sees a spilled relation as a plain iterable (it
type-checks for ``Relation``/``DerivedRelation`` before using persistent
indexes), so every strategy stays correct — but the *batch* tier is the
one that stays out-of-core, which is why the engine forces batch
execution for rules over spilled extensions.

Memory-budget accounting: when a spill threshold is configured, the
:class:`~repro.storage.catalog.Database` reports its **resident** tuple
count (tuples held in Python memory; spilled tuples count zero) and the
engine charges it against the governor's ``max_memory_bytes`` once per
query.  That is what makes the acceptance scenario deterministic: the
same over-RAM workload aborts with ``MemoryBudgetExceeded`` on the
memory backend and completes on the SQLite backend, under the governor's
coarse bytes-per-tuple model rather than allocator noise.
"""

from __future__ import annotations

import atexit
import os
import sqlite3
import tempfile
import weakref
from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from ..datalog.intern import INTERNER, TermInterner
from ..datalog.terms import Term, term_from_python
from ..errors import SchemaError, StorageError
from .relation import Relation, Row, SortKeyFn

#: Rows per executemany slab when loading / migrating into SQLite.
_WRITE_CHUNK = 8192

#: Rows per fetchmany slab when scanning or joining.
_READ_CHUNK = 8192

#: Every live spilled relation, so the atexit hook (and tests) can close
#: stragglers whose owning Database was never explicitly closed.
_LIVE_SPILLS: "weakref.WeakSet[SpilledRelation]" = weakref.WeakSet()


def _dispose_spill(conn: sqlite3.Connection, path: str) -> None:
    """Close the connection and delete the backing temp file.  Shared by
    :meth:`SpilledRelation.close`, garbage collection, and the atexit
    sweep — every exit path deletes the file, none may raise."""
    try:
        conn.close()
    except Exception:  # pragma: no cover - interpreter-teardown noise
        pass
    try:
        os.unlink(path)
    except OSError:
        pass


def close_all_spills() -> None:
    """Close every live spilled relation (the atexit path; also handy in
    tests asserting no temp files survive)."""
    for relation in list(_LIVE_SPILLS):
        relation.close()


atexit.register(close_all_spills)


@runtime_checkable
class StorageBackend(Protocol):
    """How the fact base physically stores one relation.

    ``create_relation`` builds the hot (in-memory) representation;
    ``maybe_spill`` gets every relation after a bulk mutation and may
    migrate it to a colder representation; ``resident_tuples`` prices
    what the relation keeps in process memory for the governor's
    deterministic memory model.
    """

    name: str

    def create_relation(
        self, name: str, arity: int, columns: Sequence[str] | None = None
    ): ...

    def maybe_spill(self, relation, threshold: int | None): ...

    def resident_tuples(self, relation) -> int: ...

    def close(self) -> None: ...


class MemoryBackend:
    """Everything stays a :class:`Relation`; spilling never happens."""

    name = "memory"

    def create_relation(
        self, name: str, arity: int, columns: Sequence[str] | None = None
    ) -> Relation:
        return Relation(name, arity, columns)

    def maybe_spill(self, relation, threshold: int | None):
        return relation

    def resident_tuples(self, relation) -> int:
        return len(relation)

    def close(self) -> None:
        """Nothing to release: memory relations die with their Database."""


class SqliteBackend:
    """Relations spill to temp-file SQLite once they cross the threshold."""

    name = "sqlite"

    def __init__(self, interner: TermInterner = INTERNER):
        self.interner = interner
        self._spilled: list[SpilledRelation] = []

    def create_relation(
        self, name: str, arity: int, columns: Sequence[str] | None = None
    ) -> Relation:
        # Hot relations are identical to the memory backend's; only size
        # moves them to disk (maybe_spill).
        return Relation(name, arity, columns)

    def maybe_spill(self, relation, threshold: int | None):
        if (
            threshold is None
            or not isinstance(relation, Relation)
            or relation.arity == 0  # nothing to spill; stays a set of ()
            or len(relation) < threshold
        ):
            return relation
        spilled = SpilledRelation.from_relation(relation, self.interner)
        self._spilled.append(spilled)
        return spilled

    def resident_tuples(self, relation) -> int:
        if isinstance(relation, SpilledRelation):
            return 0
        return len(relation)

    def close(self) -> None:
        """Close every relation this backend spilled and delete their
        temp database files.  Idempotent; called from
        :meth:`~repro.storage.catalog.Database.close` and the module's
        atexit sweep."""
        for relation in self._spilled:
            relation.close()
        self._spilled.clear()


def make_backend(backend: "str | StorageBackend") -> StorageBackend:
    """Resolve a backend spec (``"memory"``/``"sqlite"`` or an instance)."""
    if isinstance(backend, str):
        if backend == "memory":
            return MemoryBackend()
        if backend == "sqlite":
            return SqliteBackend()
        raise SchemaError(f"unknown storage backend {backend!r}")
    return backend


class _SqlIndex:
    """Adapter giving a spilled relation the index surface the SLD
    engine's base-literal resolver expects (``get(key) -> rows``)."""

    __slots__ = ("_relation", "_positions")

    def __init__(self, relation: "SpilledRelation", positions: tuple[int, ...]):
        self._relation = relation
        self._positions = positions

    def get(self, key: tuple[Term, ...]) -> list[Row]:
        return list(self._relation.lookup(self._positions, key))

    def get_bucket(self, key: tuple[Term, ...]) -> list[Row]:
        return self.get(key)


class SpilledRelation:
    """A relation whose extension lives in a temporary SQLite database.

    One INTEGER column of interned ids per field, a unique index over the
    full width for set semantics, and on-demand single-position indexes
    for joins.  Logically interchangeable with :class:`Relation`; the
    batch tier reaches the disk directly through :meth:`batch_store`
    (a :class:`SpilledStore`), everything else decodes through the
    interner on the way out.
    """

    spilled = True

    def __init__(
        self,
        name: str,
        arity: int,
        columns: Sequence[str] | None = None,
        interner: TermInterner = INTERNER,
    ):
        if arity < 1:
            raise SchemaError(f"relation {name!r}: cannot spill arity {arity}")
        if columns is not None and len(columns) != arity:
            raise SchemaError(
                f"relation {name!r}: {len(columns)} column names for arity {arity}"
            )
        self.name = name
        self.arity = arity
        self.columns = (
            tuple(columns) if columns is not None else tuple(f"c{i}" for i in range(arity))
        )
        self.interner = interner
        # A *named* temp file (not sqlite3.connect("")): the path is known
        # so close()/atexit can delete it deterministically, and tests can
        # assert nothing survives a spill + close cycle.
        fd, path = tempfile.mkstemp(prefix="repro-spill-", suffix=".db")
        os.close(fd)
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA synchronous = OFF")
        # MEMORY (not OFF): ROLLBACK is undefined without a journal, and
        # Database.transaction() needs a real rollback path on disk.
        self._conn.execute("PRAGMA journal_mode = MEMORY")
        cols = ", ".join(f"c{i} INTEGER" for i in range(arity))
        self._conn.execute(f"CREATE TABLE t ({cols})")
        allcols = ", ".join(f"c{i}" for i in range(arity))
        self._conn.execute(f"CREATE UNIQUE INDEX uq ON t ({allcols})")
        self._count = 0
        self._version = 0
        self._sql_indexes: set[tuple[int, ...]] = set()
        self._insert_sql = (
            f"INSERT OR IGNORE INTO t ({allcols}) VALUES "
            f"({', '.join('?' * arity)})"
        )
        self._store: SpilledStore | None = None
        self.closed = False
        self._finalizer = weakref.finalize(self, _dispose_spill, self._conn, path)
        _LIVE_SPILLS.add(self)

    @classmethod
    def from_relation(
        cls, relation: Relation, interner: TermInterner = INTERNER
    ) -> "SpilledRelation":
        """Migrate a hot relation to disk, carrying its version forward
        (the result cache's version vector must keep advancing, never
        reset, across the migration)."""
        out = cls(relation.name, relation.arity, relation.columns, interner)
        encode = interner.encode_row
        cursor = out._conn.cursor()
        batch: list[tuple[int, ...]] = []
        for row in relation:
            batch.append(encode(row))
            if len(batch) >= _WRITE_CHUNK:
                cursor.executemany(out._insert_sql, batch)
                batch.clear()
        if batch:
            cursor.executemany(out._insert_sql, batch)
        out._conn.commit()
        out._count = len(relation)
        out._version = relation.version + 1  # the migration is a change
        return out

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Close the connection and delete the backing temp file.
        Idempotent; also runs via GC and the atexit sweep."""
        self.closed = True
        self._store = None
        self._finalizer()

    # -- transactions ----------------------------------------------------------

    def txn_begin(self) -> tuple[int, int, set[tuple[int, ...]]]:
        """Commit pending autocommit work so a later ROLLBACK undoes only
        the transaction's writes, and snapshot the Python-side bookkeeping
        SQL cannot restore."""
        try:
            self._conn.commit()
        except sqlite3.Error as err:
            raise StorageError(f"relation {self.name!r}: begin failed: {err}") from err
        return (self._count, self._version, set(self._sql_indexes))

    def txn_rollback(self, snapshot: tuple[int, int, set[tuple[int, ...]]]) -> None:
        """Undo every write since :meth:`txn_begin` and restore counters.
        Index DDL also rolls back, so the recorded index set is restored
        from the snapshot too."""
        try:
            self._conn.rollback()
        except sqlite3.Error as err:
            raise StorageError(f"relation {self.name!r}: rollback failed: {err}") from err
        self._count, self._version, self._sql_indexes = (
            snapshot[0],
            snapshot[1],
            set(snapshot[2]),
        )
        self._store = None

    def txn_commit(self) -> None:
        try:
            self._conn.commit()
        except sqlite3.Error as err:
            raise StorageError(f"relation {self.name!r}: commit failed: {err}") from err

    # -- loading (mirrors Relation) -----------------------------------------

    def _encode_checked(self, row: Sequence[Term]) -> tuple[int, ...]:
        if len(row) != self.arity:
            raise SchemaError(
                f"relation {self.name!r}: tuple of arity {len(row)} into arity {self.arity}"
            )
        try:
            return self.interner.encode_row(tuple(row))
        except ValueError as err:  # non-ground term
            raise SchemaError(f"relation {self.name!r}: {err}") from None

    def insert(self, row: Sequence[Term]) -> bool:
        ids = self._encode_checked(row)
        try:
            cursor = self._conn.execute(self._insert_sql, ids)
        except sqlite3.Error as err:
            raise StorageError(f"relation {self.name!r}: insert failed: {err}") from err
        if cursor.rowcount != 1:
            return False
        self._count += 1
        self._version += 1
        self._store = None
        return True

    def insert_values(self, values: Sequence[object]) -> bool:
        return self.insert(tuple(term_from_python(v) for v in values))

    def load(self, rows: Iterable[Sequence[object]]) -> int:
        added = 0
        for row in rows:
            if self.insert_values(tuple(row)):
                added += 1
        return added

    def remove(self, row: Sequence[Term]) -> bool:
        ids = self._encode_checked(row)
        where = " AND ".join(f"c{i} = ?" for i in range(self.arity))
        try:
            cursor = self._conn.execute(f"DELETE FROM t WHERE {where}", ids)
        except sqlite3.Error as err:
            raise StorageError(f"relation {self.name!r}: retract failed: {err}") from err
        if cursor.rowcount != 1:
            return False
        self._count -= 1
        self._version += 1
        self._store = None
        return True

    def remove_values(self, values: Sequence[object]) -> bool:
        return self.remove(tuple(term_from_python(v) for v in values))

    def clear(self) -> None:
        try:
            self._conn.execute("DELETE FROM t")
        except sqlite3.Error as err:
            raise StorageError(f"relation {self.name!r}: clear failed: {err}") from err
        self._count = 0
        self._version += 1
        self._store = None

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __contains__(self, row: Sequence[Term]) -> bool:
        row = tuple(row)
        if len(row) != self.arity:
            return False
        try:
            ids = self.interner.encode_row(row)
        except ValueError:
            return False
        where = " AND ".join(f"c{i} = ?" for i in range(self.arity))
        try:
            cursor = self._conn.execute(f"SELECT 1 FROM t WHERE {where} LIMIT 1", ids)
            return cursor.fetchone() is not None
        except sqlite3.Error as err:
            raise StorageError(f"relation {self.name!r}: read failed: {err}") from err

    def __iter__(self) -> Iterator[Row]:
        """Stream-decode the extension; never materializes the whole set."""
        terms = self.interner.terms
        try:
            cursor = self._conn.execute("SELECT * FROM t")
            while True:
                block = cursor.fetchmany(_READ_CHUNK)
                if not block:
                    return
                for ids in block:
                    yield tuple(terms[i] for i in ids)
        except sqlite3.Error as err:
            raise StorageError(f"relation {self.name!r}: scan failed: {err}") from err

    @property
    def rows(self) -> frozenset[Row]:
        """The extension as a frozenset — the row-tier compatibility path;
        it materializes, so hot loops at data scale must stay on the batch
        tier (the engine forces that for spilled extensions)."""
        return frozenset(self)

    @property
    def version(self) -> int:
        return self._version

    # -- physical access ------------------------------------------------------

    def ensure_sql_index(self, positions: tuple[int, ...]) -> None:
        if positions in self._sql_indexes or not positions:
            return
        name = "ix_" + "_".join(map(str, positions))
        cols = ", ".join(f"c{p}" for p in positions)
        self._conn.execute(f"CREATE INDEX IF NOT EXISTS {name} ON t ({cols})")
        self._sql_indexes.add(positions)

    def lookup(self, positions: Sequence[int], key: Sequence[Term]) -> Iterator[Row]:
        positions = tuple(positions)
        self.ensure_sql_index(positions)
        try:
            ids = [self.interner.id_of(term) for term in key]
        except ValueError:
            return  # non-ground key matches nothing
        where = " AND ".join(f"c{p} = ?" for p in positions) or "1"
        terms = self.interner.terms
        try:
            cursor = self._conn.execute(f"SELECT * FROM t WHERE {where}", ids)
            while True:
                block = cursor.fetchmany(_READ_CHUNK)
                if not block:
                    return
                for row_ids in block:
                    yield tuple(terms[i] for i in row_ids)
        except sqlite3.Error as err:
            raise StorageError(f"relation {self.name!r}: lookup failed: {err}") from err

    def ensure_index(self, positions: Sequence[int]) -> _SqlIndex:
        positions = tuple(positions)
        for position in positions:
            if not 0 <= position < self.arity:
                raise SchemaError(
                    f"relation {self.name!r}: index position {position} out of range"
                )
        self.ensure_sql_index(positions)
        return _SqlIndex(self, positions)

    def index_on(self, positions: Sequence[int]) -> _SqlIndex | None:
        positions = tuple(positions)
        if positions in self._sql_indexes:
            return _SqlIndex(self, positions)
        return None

    def sorted_by(
        self, positions: Sequence[int], key_fn: SortKeyFn
    ) -> tuple[list[tuple[tuple, Row]], bool]:
        """Merge-join compatibility: materialize and sort (never cached —
        a spilled relation is too big to want this path; the batch tier
        is the intended one)."""
        keyed = sorted(((key_fn(row), row) for row in self), key=lambda pair: pair[0])
        return keyed, False

    def batch_store(self, interner) -> "SpilledStore":
        store = self._store
        if store is None or store.interner is not interner:
            store = SpilledStore(self, interner)
            self._store = store
        return store

    def __repr__(self) -> str:
        return f"SpilledRelation({self.name!r}, arity={self.arity}, {self._count} tuples on disk)"


class SpilledStore:
    """The disk-side analogue of :class:`~repro.storage.columnar.BatchStore`.

    Deliberately *not* a ``BatchStore`` subclass: the batch join kernel
    dispatches on the type (``isinstance(store, BatchStore)``) and routes
    non-BatchStore extensions through :func:`spilled_batch_join`, which
    turns the probe pass into a SQL join and the full scan into a chunked
    id stream.
    """

    __slots__ = ("relation", "interner", "name")

    def __init__(self, relation: SpilledRelation, interner: TermInterner):
        self.relation = relation
        self.interner = interner
        self.name = relation.name

    @property
    def length(self) -> int:
        return len(self.relation)

    def __len__(self) -> int:
        return len(self.relation)

    def scan_chunks(
        self, positions: tuple[int, ...], chunk_rows: int = _READ_CHUNK
    ) -> Iterator[tuple[list[list[int]], int]]:
        """Yield ``(columns, length)`` id chunks of the *positions*
        projection, in storage order — the streaming driver for the batch
        tier's out-of-core scans."""
        select = ", ".join(f"c{p}" for p in positions) or "1"
        width = len(positions)
        try:
            cursor = self.relation._conn.execute(f"SELECT {select} FROM t")
            while True:
                block = cursor.fetchmany(chunk_rows)
                if not block:
                    return
                if width:
                    yield [list(column) for column in zip(*block)], len(block)
                else:
                    yield [], len(block)
        except sqlite3.Error as err:
            raise StorageError(f"relation {self.name!r}: scan failed: {err}") from err


def spilled_batch_join(
    step, columns: list[list[int]], length: int, store: SpilledStore, profiler, governor
) -> tuple[list[list[int]], int]:
    """One batch-join step whose extension side lives on disk.

    The in-memory kernel's bucket probe becomes a SQL join: ship the
    input key column(s) into a temp probe table, join against the spilled
    id columns (indexed on demand on the bound positions), and gather the
    matches back as selection vectors.  Tuple counters are identical to
    the in-memory kernel — ``probes`` per input row, ``examined`` and
    ``produced`` per match — and the governor is ticked per fetch slab,
    so budget totals match serial exactly (tick *granularity* is the
    disk tier's documented deviation, as in the parallel tier).

    The ``spill:<relation>`` checkpoint at entry is the fault-injection
    site for simulated disk failures (chaos harness); a real
    ``sqlite3.Error`` anywhere in the join surfaces as a typed
    :class:`~repro.errors.StorageError` instead of a raw driver
    exception.
    """
    if governor is not None:
        governor.checkpoint(f"spill:{store.name}")
    try:
        return _spilled_batch_join(step, columns, length, store, profiler, governor)
    except sqlite3.Error as err:
        raise StorageError(f"relation {store.name!r}: batch join failed: {err}") from err


def _spilled_batch_join(
    step, columns: list[list[int]], length: int, store: SpilledStore, profiler, governor
) -> tuple[list[list[int]], int]:
    relation = store.relation
    conn = relation._conn

    if not columns and not step.bound_positions:
        # Unit-input full scan.  The in-memory kernel aliases the store's
        # columns; here they must be read back, chunk by chunk.
        matches = store.length
        profiler.bump_probes(1)
        profiler.bump_examined(matches)
        profiler.bump_produced(matches)
        if matches == 0:
            return [], 0
        out_columns: list[list[int]] = [[] for __ in step.free_out]
        for chunk_columns, chunk_length in store.scan_chunks(step.free_out):
            if governor is not None:
                governor.tick(chunk_length)
            for out_column, chunk_column in zip(out_columns, chunk_columns):
                out_column.extend(chunk_column)
        return out_columns, matches

    profiler.bump_probes(length)
    relation.ensure_sql_index(step.bound_positions)
    free_select = ", ".join(f"s.c{p}" for p in step.free_out)

    conditions: list[str] = []
    params: list[int] = []
    probe_slots: list[int] = []
    for position, slot, const in zip(
        step.bound_positions, step.key_slots, step.key_const_ids
    ):
        if slot is None:
            conditions.append(f"s.c{position} = ?")
            params.append(const)
        else:
            conditions.append(f"s.c{position} = p.k{len(probe_slots)}")
            probe_slots.append(slot)

    left: list[int] = []
    free_columns: list[list[int]] = [[] for __ in step.free_out]

    if not probe_slots:
        # Constant-only (or empty) key: every input row matches the same
        # extension rows, so fetch them once and replicate.
        where = " AND ".join(c.replace("s.", "") for c in conditions) or "1"
        select = ", ".join(f"c{p}" for p in step.free_out) or "1"
        cursor = conn.execute(f"SELECT {select} FROM t WHERE {where}", params)
        matched_free: list[list[int]] = [[] for __ in step.free_out]
        per_row = 0
        while True:
            block = cursor.fetchmany(_READ_CHUNK)
            if not block:
                break
            per_row += len(block)
            if step.free_out:
                for column, values in zip(matched_free, zip(*block)):
                    column.extend(values)
        matches = length * per_row
        if governor is not None and matches:
            charged = 0
            while charged < matches:
                slab = min(matches - charged, _READ_CHUNK)
                governor.tick(slab)
                charged += slab
        profiler.bump_examined(matches)
        profiler.bump_produced(matches)
        if matches == 0:
            return [], 0
        left = [i for i in range(length) for __ in range(per_row)]
        free_columns = [column * length for column in matched_free]
    else:
        probe_cols = ", ".join(f"k{i}" for i in range(len(probe_slots)))
        conn.execute("DROP TABLE IF EXISTS temp.probe")
        conn.execute(f"CREATE TEMP TABLE probe (idx INTEGER, {probe_cols})")
        insert = (
            f"INSERT INTO probe (idx, {probe_cols}) VALUES "
            f"({', '.join('?' * (len(probe_slots) + 1))})"
        )
        key_columns = [columns[slot] for slot in probe_slots]
        batch = []
        for i, key in enumerate(zip(*key_columns)):
            batch.append((i, *key))
            if len(batch) >= _WRITE_CHUNK:
                conn.executemany(insert, batch)
                batch.clear()
        if batch:
            conn.executemany(insert, batch)
        select = f"p.idx{', ' + free_select if free_select else ''}"
        on = " AND ".join(conditions)
        cursor = conn.execute(f"SELECT {select} FROM probe p JOIN t s ON {on}", params)
        while True:
            block = cursor.fetchmany(_READ_CHUNK)
            if not block:
                break
            if governor is not None:
                governor.tick(len(block))
            rotated = list(zip(*block))
            left.extend(rotated[0])
            for column, values in zip(free_columns, rotated[1:]):
                column.extend(values)
        conn.execute("DROP TABLE IF EXISTS temp.probe")
        matches = len(left)
        profiler.bump_examined(matches)
        profiler.bump_produced(matches)
        if matches == 0:
            return [], 0

    out_columns = [[column[i] for i in left] for column in columns]
    out_columns.extend(free_columns)
    return out_columns, matches
