"""Command-line interface: load LDL files, run queries, explain plans.

Batch:

.. code-block:: console

    $ python -m repro family.ldl -q "anc(abe, Y)?"
    $ python -m repro family.ldl -q "anc($X, Y)?" -b X=abe --explain

Interactive (a tiny REPL):

.. code-block:: console

    $ python -m repro family.ldl -i
    ldl> gp(X, Z) <- par(X, Y), par(Y, Z).
    ldl> gp(abe, Z)?
    (bart)
    ldl> :explain gp(abe, Z)?
    ...
    ldl> :quit

Statements ending in ``.`` add rules/facts; ``?`` runs a query.  REPL
commands: ``:explain <query>?``, ``:json <query>?``, ``:relations``,
``:materialize``, ``:views``, ``:quit``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, Sequence

from . import KnowledgeBase, OptimizerConfig
from .engine.governor import make_governor
from .errors import ParseError, ReproError, ResourceExhausted, UnsafeQueryError
from .obs import NULL_TRACER, JsonlSink, Tracer
from .plans.serialize import plan_to_json

#: Exit codes (documented in docs/api.md): scripts can tell *why* a query
#: failed without parsing stderr.  2 is argparse's own usage-error code.
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_PARSE = 3
EXIT_UNSAFE = 4
EXIT_RESOURCE = 5


def _exit_code_for(err: ReproError) -> int:
    if isinstance(err, ResourceExhausted):
        return EXIT_RESOURCE
    if isinstance(err, UnsafeQueryError):
        return EXIT_UNSAFE
    if isinstance(err, ParseError):
        return EXIT_PARSE
    return EXIT_ERROR


def _parse_binding(text: str) -> tuple[str, object]:
    name, eq, raw = text.partition("=")
    if not eq:
        raise argparse.ArgumentTypeError(f"binding must look like NAME=value: {text!r}")
    value: object = raw
    try:
        value = int(raw)
    except ValueError:
        try:
            value = float(raw)
        except ValueError:
            pass
    return name, value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LDL knowledge-base shell (EDBT 1988 optimizer reproduction)",
    )
    parser.add_argument("files", nargs="*", type=Path, help="LDL rule/fact files to load")
    parser.add_argument("-q", "--query", action="append", default=[],
                        help="query form to run (repeatable)")
    parser.add_argument("-b", "--bind", action="append", default=[], type=_parse_binding,
                        metavar="NAME=VALUE", help="value for a $-bound query variable")
    parser.add_argument("--explain", action="store_true",
                        help="print the optimized plan instead of answers")
    parser.add_argument("--analyze", action="store_true",
                        help="EXPLAIN ANALYZE: run the query, print the plan "
                             "annotated est/act/q-error per node")
    parser.add_argument("--json", action="store_true",
                        help="print the plan as JSON instead of answers")
    parser.add_argument("--trace", type=Path, default=None, metavar="FILE",
                        help="write the span trace as JSONL events to FILE "
                             "(schema repro.trace/1; validate with "
                             "python -m repro.obs.validate)")
    parser.add_argument("--metrics", type=Path, default=None, metavar="FILE",
                        help="write aggregated metrics to FILE on exit "
                             "(.json -> JSON, anything else -> Prometheus text)")
    parser.add_argument("--strategy", default="dp",
                        choices=("exhaustive", "dp", "kbz", "annealing", "textual"),
                        help="join-ordering strategy (default: dp)")
    parser.add_argument("--search", default="bb", choices=("bb", "full"),
                        help="plan-search mode: 'bb' prunes with memoized "
                             "branch-and-bound (cost-identical plans, fewer "
                             "costings), 'full' is the un-pruned baseline "
                             "(default: bb)")
    parser.add_argument("--recursive-method", default=None, metavar="METHOD",
                        choices=("seminaive", "naive", "magic",
                                 "supplementary", "counting", "qsqn"),
                        help="restrict recursive cliques to one method "
                             "(e.g. 'qsqn' forces query-subquery nets on "
                             "bound recursive queries; default: let the "
                             "cost model choose)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="wall-clock deadline per query (exit code 5 on expiry)")
    parser.add_argument("--max-tuples", type=int, default=None, metavar="N",
                        help="query-wide live-tuple budget (exit code 5 on expiry)")
    parser.add_argument("--max-memory", type=int, default=None, metavar="BYTES",
                        help="approximate query-wide memory budget in bytes")
    parser.add_argument("--no-batch", action="store_true",
                        help="disable the columnar batch execution tier "
                             "(row kernels only; see docs/performance.md)")
    parser.add_argument("--no-parallel", action="store_true",
                        help="disable the partitioned-parallel execution tier "
                             "(serial batch/row tiers only)")
    parser.add_argument("--parallel-workers", type=int, default=None, metavar="N",
                        help="worker-pool size for the parallel tier "
                             "(default: up to 4, capped at available cores)")
    parser.add_argument("--parallel-retries", type=int, default=None, metavar="N",
                        help="parallel-round retries after a worker failure "
                             "before degrading to the serial batch tier "
                             "(default: 2; 0 degrades immediately)")
    parser.add_argument("--backend", default="memory",
                        choices=("memory", "sqlite"),
                        help="storage backend: memory (default) keeps all "
                             "relations resident; sqlite spills large ones "
                             "to disk (see --spill-threshold)")
    parser.add_argument("--spill-threshold", type=int, default=None, metavar="ROWS",
                        help="tuples above which a relation spills to the "
                             "sqlite backend (also enables resident-tuple "
                             "accounting against --max-memory)")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="disable the cross-query result cache")
    parser.add_argument("--materialize", action="store_true",
                        help="materialize every derived predicate after "
                             "loading and keep the extensions incrementally "
                             "maintained under fact updates (counting/DRed; "
                             "see docs/performance.md)")
    parser.add_argument("--feedback", type=Path, default=None, metavar="FILE",
                        help="persist the cardinality feedback store to FILE "
                             "as JSONL (schema repro.feedback/1; inspect with "
                             "python -m repro.obs.feedback); default is an "
                             "in-memory store")
    parser.add_argument("--no-feedback", action="store_true",
                        help="disable the cardinality feedback loop entirely "
                             "(static estimates only, no re-optimization)")
    parser.add_argument("--reopt-threshold", type=float, default=None,
                        metavar="Q",
                        help="observed worst q-error at which a cached plan "
                             "is evicted and re-optimized with learned "
                             "cardinalities (default: 16.0)")
    parser.add_argument("--telemetry", type=Path, default=None, metavar="FILE",
                        help="stream per-query telemetry records to FILE as "
                             "JSONL (schema repro.telemetry/1; validate with "
                             "python -m repro.obs.validate)")
    parser.add_argument("-i", "--interactive", action="store_true",
                        help="drop into a REPL after loading files")
    return parser


def _query_governor(args):
    """A fresh governor per query when any resource flag was given (each
    query gets the full budget), else None for the engine defaults."""
    if args.timeout is None and args.max_tuples is None and args.max_memory is None:
        return None
    return make_governor(
        deadline_seconds=args.timeout,
        max_tuples=args.max_tuples,
        max_memory_bytes=args.max_memory,
    )


def load_files(kb: KnowledgeBase, files: Sequence[Path], out: IO[str]) -> None:
    for path in files:
        added = kb.rules(path.read_text())
        print(f"loaded {path}: {added} rules, "
              f"{sum(len(kb.db.relation(n)) for n in kb.db.names)} facts total", file=out)


def run_query(
    kb: KnowledgeBase, query: str, bindings: dict, args, out: IO[str],
    tracer=NULL_TRACER,
) -> None:
    if args.explain:
        print(kb.explain(query), file=out)
        return
    if args.json:
        print(plan_to_json(kb.compile(query).plan), file=out)
        return
    if getattr(args, "analyze", False):
        print(kb.analyze(query, tracer=tracer, **bindings), file=out)
        return
    governor = _query_governor(args)
    answers = kb.ask(query, governor=governor, tracer=tracer, **bindings)
    if not answers.variables:
        print("true." if len(answers) else "false.", file=out)
        return
    header = ", ".join(v.name for v in answers.variables)
    print(f"-- {header} ({len(answers)} rows)", file=out)
    for row in answers.to_python():
        print("  " + ", ".join(repr(v) if isinstance(v, str) else str(v) for v in row), file=out)


def _materialize(kb: KnowledgeBase, out: IO[str]) -> None:
    views = kb.materialize()
    names = views.predicates()
    total = sum(len(views.rows(name)) for name in names)
    print(f"materialized {len(names)} views ({total} tuples)", file=out)


def _print_views(kb: KnowledgeBase, out: IO[str]) -> None:
    views = kb.materialized_views
    if views is None:
        print("no materialized views (use --materialize or :materialize)", file=out)
        return
    for name in views.predicates():
        print(f"  {name}: {len(views.rows(name))} tuples "
              f"[{views.maintenance_mode(name)}]", file=out)


def repl(kb: KnowledgeBase, args, stdin: IO[str], out: IO[str], tracer=NULL_TRACER) -> None:
    print("ldl> ", end="", file=out, flush=True)
    buffer = ""
    for line in stdin:
        buffer += line
        stripped = buffer.strip()
        if not stripped:
            print("ldl> ", end="", file=out, flush=True)
            buffer = ""
            continue
        if stripped in (":quit", ":q"):
            return
        if stripped == ":relations":
            for name in sorted(kb.db.names):
                print(f"  {name}/{kb.db.relation(name).arity}: "
                      f"{len(kb.db.relation(name))} tuples", file=out)
            buffer = ""
            print("ldl> ", end="", file=out, flush=True)
            continue
        handled = False
        try:
            if stripped == ":materialize":
                _materialize(kb, out)
                handled = True
            elif stripped == ":views":
                _print_views(kb, out)
                handled = True
            elif stripped.startswith(":explain "):
                print(kb.explain(stripped[len(":explain "):].strip()), file=out)
                handled = True
            elif stripped.startswith(":analyze "):
                print(kb.analyze(stripped[len(":analyze "):].strip(), tracer=tracer), file=out)
                handled = True
            elif stripped.startswith(":json "):
                print(plan_to_json(kb.compile(stripped[len(":json "):].strip()).plan), file=out)
                handled = True
            elif stripped.endswith("?"):
                run_query(kb, stripped, {}, args, out, tracer=tracer)
                handled = True
            elif stripped.endswith("."):
                added = kb.rules(stripped)
                print(f"ok ({added} rules)", file=out)
                handled = True
        except ReproError as err:
            print(f"error: {err}", file=out)
            handled = True
        if handled:
            buffer = ""
            print("ldl> ", end="", file=out, flush=True)
        # otherwise: keep buffering (multi-line statement)


def main(argv: Sequence[str] | None = None, stdin: IO[str] | None = None, stdout: IO[str] | None = None) -> int:
    out = stdout or sys.stdout
    args = build_parser().parse_args(argv)
    if args.no_feedback:
        feedback = False
    elif args.feedback is not None:
        feedback = str(args.feedback)
    else:
        feedback = True
    telemetry_sink = JsonlSink(str(args.telemetry)) if args.telemetry is not None else None
    kb_kwargs = {}
    if args.reopt_threshold is not None:
        kb_kwargs["reopt_qerror_threshold"] = args.reopt_threshold
    config_kwargs = {}
    if args.recursive_method is not None:
        # restricting to a bound-only method (e.g. qsqn) still executes
        # all-free recursive queries: the optimizer falls back to a
        # materialized semi-naive node (with a diagnostic) when no
        # candidate method is applicable
        config_kwargs["recursive_methods"] = (args.recursive_method,)
    kb = KnowledgeBase(
        OptimizerConfig(
            strategy=args.strategy, search=args.search, **config_kwargs
        ),
        batch=not args.no_batch,
        parallel=not args.no_parallel,
        parallel_workers=args.parallel_workers,
        parallel_retries=args.parallel_retries,
        backend=args.backend,
        spill_threshold=args.spill_threshold,
        result_cache=not args.no_result_cache,
        feedback=feedback,
        telemetry_sink=telemetry_sink,
        **kb_kwargs,
    )
    try:
        load_files(kb, args.files, out)
    except OSError as err:
        print(f"error: {err}", file=out)
        return EXIT_ERROR
    except ReproError as err:
        print(f"error: {err}", file=out)
        return _exit_code_for(err)
    if args.materialize:
        try:
            _materialize(kb, out)
        except ReproError as err:
            print(f"error: {err}", file=out)
            return _exit_code_for(err)

    tracer = NULL_TRACER
    if args.trace is not None:
        tracer = Tracer(sink=JsonlSink(args.trace))

    bindings = dict(args.bind)
    status = EXIT_OK
    try:
        for query in args.query:
            try:
                run_query(kb, query, bindings, args, out, tracer=tracer)
            except ReproError as err:
                print(f"error: {err}", file=out)
                if status == EXIT_OK:
                    # first failure wins: one bad query must not be masked
                    # by a later, differently-failing one
                    status = _exit_code_for(err)
        if args.interactive:
            repl(kb, args, stdin or sys.stdin, out, tracer=tracer)
    finally:
        tracer.close()
        kb.close()  # flushes the feedback store, closes the telemetry sink
        if args.metrics is not None:
            if args.metrics.suffix == ".json":
                args.metrics.write_text(kb.metrics.to_json() + "\n")
            else:
                args.metrics.write_text(kb.metrics.to_prometheus_text())
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
