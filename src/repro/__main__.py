"""``python -m repro`` — the command-line shell."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
