"""The knowledge-base facade: the public face of the LDL system.

Section 2: "The knowledge base consists of a rule base and a database".
:class:`KnowledgeBase` bundles the two with the optimizer and the
interpreter, exposing the workflow a user of the paper's system would
have:

>>> kb = KnowledgeBase()
>>> kb.rules('''
...     anc(X, Y) <- par(X, Y).
...     anc(X, Y) <- par(X, Z), anc(Z, Y).
... ''')
2
>>> kb.facts("par", [("abe", "homer"), ("homer", "bart")])
2
>>> sorted(kb.ask("anc(abe, Y)?").to_python())
[('bart',), ('homer',)]

Query *forms* are compiled once and cached — ``anc($X, Y)?`` is optimized
a single time and can then be executed for many values of ``$X``
(Section 2: optimization is query-form specific).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, Sequence

from .datalog.bindings import QueryForm
from .datalog.parser import parse_program, parse_query
from .datalog.rules import Program, Rule
from .engine.interpreter import Interpreter, QueryAnswers
from .engine.profiler import Profiler
from .errors import KnowledgeBaseError, ResourceExhausted, TransactionError
from .obs.feedback import FeedbackStore
from .obs.metrics import MetricsRegistry
from .obs.telemetry import TelemetryLog
from .obs.tracer import NULL_TRACER
from .optimizer.optimizer import OptimizedQuery, Optimizer, OptimizerConfig
from .plans.printer import explain
from .storage.catalog import Database
from .storage.loader import load_facts_text

#: q-error histogram buckets: powers of two, since q >= 1 by definition
#: and misestimates compound multiplicatively.
QERROR_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)

#: stand-in for an infinite q-error in the histogram (sums must be finite)
_QERROR_CEIL = 1e300


class _KbTxn:
    """Knowledge-base side of one open transaction: snapshots of what the
    Database's own rollback cannot see (the rule list, the materialized
    ViewSet reference, and the cross-query result cache — whose entries
    added at intermediate version vectors would go stale-but-reachable if
    versions were restored under them), plus deferred view maintenance so
    invalidation fires exactly once at commit."""

    __slots__ = (
        "rules", "views", "result_cache", "view_ops",
        "touched", "retracted", "rules_changed", "full_invalidate",
    )

    def __init__(self, kb: "KnowledgeBase"):
        self.rules = list(kb._rules)
        self.views = kb._views
        self.result_cache = (
            dict(kb._result_cache) if kb._result_cache is not None else None
        )
        self.view_ops: list[tuple[str, str, list]] = []
        #: base relations actually mutated inside the transaction (no-op
        #: writes never land here) — drives the footprint-scoped
        #: invalidation at commit
        self.touched: set[str] = set()
        #: the subset of `touched` that saw retractions — only these
        #: invalidate learned feedback (see KnowledgeBase.retract)
        self.retracted: set[str] = set()
        self.rules_changed = False
        self.full_invalidate = False


class KnowledgeBase:
    """Rules + facts + optimizer + engine, with per-query-form caching.

    *batch* / *batch_min_rows* control the columnar batch execution tier
    (:mod:`repro.engine.batch`); ``batch=False`` is the row-tier escape
    hatch mirroring the engine's ``compile=False``.  *parallel* /
    *parallel_min_rows* / *parallel_workers* control the partitioned
    worker-pool tier above it (:mod:`repro.engine.parallel`), and
    *backend* / *spill_threshold* pick the storage backend — with
    ``backend="sqlite"`` relations larger than the threshold spill to
    disk and stream through the batch kernels
    (:mod:`repro.storage.backend`).

    *result_cache* enables the cross-query result cache: a repeat of an
    identical query (same goal, same adornment, same ``$``-bindings)
    against an unchanged fact base is served from the cache without
    touching the engine.  Freshness is keyed on the versions of the
    relations in the query's *dependency footprint* (the base relations
    it can transitively read), so a write invalidates exactly the
    cached queries that could observe it — writes to unrelated
    relations leave entries hot.  Queries run with an explicit profiler,
    governor, or tracer bypass the cache — those arguments signal that
    the caller wants a measured / governed / traced *execution*, and a
    hit would observably change what they record.

    *feedback* controls the cardinality feedback loop
    (:mod:`repro.obs.feedback`): ``True`` (default) keeps an in-memory
    store, a path string persists it as JSONL across restarts, a
    :class:`~repro.obs.feedback.FeedbackStore` instance is used as-is,
    and ``False`` disables the loop entirely.  Every executed plan is
    harvested from the interpreter's always-on per-node counters (no
    tracer needed); learned selectivities feed the next optimization,
    and when a plan's observed worst q-error reaches
    *reopt_qerror_threshold* its plan-cache entry is evicted so the next
    ask re-plans with the evidence (at most once per cached form between
    invalidations — no ping-pong).  Feedback changes plans, never
    answers.

    Every query also lands one record in :attr:`telemetry` — a
    :class:`~repro.obs.telemetry.TelemetryLog` ring buffer (wall time,
    tier taken, cache hit/miss, governor denials, worst q-error) whose
    *telemetry_sink* can stream ``repro.telemetry/1`` JSONL.
    """

    def __init__(
        self,
        config: OptimizerConfig | None = None,
        *,
        batch: bool = True,
        batch_min_rows: int = 32,
        parallel: bool = True,
        parallel_min_rows: int | None = None,
        parallel_workers: int | None = None,
        parallel_retries: int | None = None,
        backend: str = "memory",
        spill_threshold: int | None = None,
        result_cache: bool = True,
        result_cache_size: int = 256,
        feedback: "bool | str | FeedbackStore" = True,
        reopt_qerror_threshold: float = 16.0,
        telemetry_capacity: int = 256,
        telemetry_sink=None,
    ):
        from .datalog.builtins import default_builtins

        self.db = Database(backend=backend, spill_threshold=spill_threshold)
        self.config = config or OptimizerConfig()
        self.builtins = default_builtins()
        self.batch = batch
        self.batch_min_rows = batch_min_rows
        self.parallel = parallel
        self.parallel_min_rows = parallel_min_rows
        self.parallel_workers = parallel_workers
        self.parallel_retries = parallel_retries
        self._rules: list[Rule] = []
        self._optimizer: Optimizer | None = None
        self._compiled: dict[tuple[str, str], OptimizedQuery] = {}
        #: per-predicate dependency footprints ("name/arity" -> base
        #: relation names transitively read) and the graph they were
        #: computed from; both live until the rule base changes
        self._footprints: dict[str, frozenset[str]] = {}
        self._footprint_graph = None
        self._views = None  # ViewSet, when materialize() has been called
        self._result_cache: "dict[tuple, QueryAnswers] | None" = (
            {} if result_cache else None
        )
        self._result_cache_size = result_cache_size
        self._txn: _KbTxn | None = None
        #: cross-query observability aggregates (plan-cache hit rate,
        #: governor denials, kernel compiles, ...); exportable via
        #: ``metrics.to_json()`` / ``metrics.to_prometheus_text()``
        self.metrics = MetricsRegistry()
        #: the cardinality feedback store, or None when feedback=False
        if feedback is True:
            self.feedback: FeedbackStore | None = FeedbackStore()
        elif feedback is False or feedback is None:
            self.feedback = None
        elif isinstance(feedback, FeedbackStore):
            self.feedback = feedback
        else:
            self.feedback = FeedbackStore(feedback)
        self.reopt_qerror_threshold = reopt_qerror_threshold
        #: per-query telemetry ring buffer (see module docstring)
        self.telemetry = TelemetryLog(telemetry_capacity, sink=telemetry_sink)
        #: plan-cache keys whose entry was already evicted for q-error
        #: since the last invalidation — re-opt fires once per form, not
        #: on every execution of the (possibly still misestimated) replan
        self._reopt_fired: set[tuple[str, str]] = set()

    # ----------------------------------------------------------- transactions

    @contextmanager
    def transaction(self):
        """Atomic update group: ``with kb.transaction(): ...``.

        Every :meth:`facts` / :meth:`retract` / :meth:`rules` /
        :meth:`facts_text` inside the block applies atomically — commit
        on normal exit; on any exception the fact base, rule base, result
        cache, and version vector are restored byte-identically to the
        state at entry, then the exception propagates.  Plan/result-cache
        invalidation and materialized-view maintenance fire exactly once,
        at commit.  Mid-transaction queries see the transaction's own
        writes (except through materialized views, whose maintenance is
        deferred to commit).  No nesting.
        """
        if self._txn is not None:
            raise TransactionError("transaction already open on this KnowledgeBase")
        txn = _KbTxn(self)
        self.db.begin_transaction()
        self._txn = txn
        try:
            yield self
        except BaseException:
            self._txn = None
            self.db.rollback_transaction()
            self._rules = txn.rules
            self._views = txn.views
            if txn.result_cache is not None and self._result_cache is not None:
                self._result_cache.clear()
                self._result_cache.update(txn.result_cache)
            # Compiled plans and the optimizer may reflect in-transaction
            # rules/stats; drop them (they rebuild lazily and cheaply).
            self._optimizer = None
            self._compiled.clear()
            self._reopt_fired.clear()
            self.metrics.inc("transactions_total", outcome="rollback")
            raise
        else:
            self._txn = None
            self.db.commit_transaction()
            if txn.full_invalidate or txn.rules_changed:
                self._invalidate()
            elif txn.touched:
                self._data_invalidate(txn.touched)
                if txn.retracted:
                    self._feedback_forget(txn.retracted)
            if self._views is not None:
                for op, predicate, rows in txn.view_ops:
                    if op == "insert":
                        self._views.insert(predicate, rows)
                    else:
                        self._views.delete(predicate, rows)
            self.metrics.inc("transactions_total", outcome="commit")

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def close(self) -> None:
        """Release storage resources (rolls back any open transaction,
        deletes spilled temp files), flush the feedback store, and close
        the telemetry sink.  Idempotent."""
        self._txn = None
        if self.feedback is not None:
            self.feedback.flush()
        self.telemetry.close()
        self.db.close()

    # ----------------------------------------------------------- loading

    def rules(self, source: str) -> int:
        """Add rules written in LDL syntax; ground facts go to the database.

        Returns the number of rules added (facts not counted).
        """
        program = parse_program(source)
        added = 0
        for rule in program:
            if rule.is_fact and not rule.head.variables:
                self.db.insert(rule.head.predicate, rule.head.args)
                continue
            self._check_rule(rule)
            self._rules.append(rule)
            added += 1
        if self._txn is not None:
            self._txn.rules_changed = True
        self._invalidate()
        return added

    def rule(self, rule: Rule) -> None:
        """Add one programmatically built rule."""
        self._check_rule(rule)
        self._rules.append(rule)
        if self._txn is not None:
            self._txn.rules_changed = True
        self._invalidate()

    def facts(self, predicate: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-load plain-value tuples for a base predicate.

        Materialized views (see :meth:`materialize`) are maintained
        incrementally from the newly inserted tuples.
        """
        from .datalog.terms import term_from_python

        if any(r.head.predicate == predicate for r in self._rules):
            raise KnowledgeBaseError(
                f"{predicate!r} is a derived predicate; facts must go to base predicates"
            )
        lifted = [tuple(term_from_python(v) for v in row) for row in rows]
        relation = self.db.get(predicate)
        fresh = [
            row for row in lifted
            if relation is None or row not in relation
        ]
        added = 0
        for row in lifted:
            if self.db.insert(predicate, row):
                added += 1
        txn = self._txn
        if txn is not None:
            # Deferred to commit: invalidation fires once, and view
            # maintenance never has to be undone on rollback.
            if added:
                txn.touched.add(predicate)
            if fresh:
                txn.view_ops.append(("insert", predicate, fresh))
            return added
        if added:
            # A no-op insert (every row already present) leaves versions,
            # plans, and caches exactly as they were.
            self._data_invalidate({predicate})
        if self._views is not None and fresh:
            self._views.insert(predicate, fresh)
        return added

    def retract(self, predicate: str, rows: Iterable[Sequence[object]]) -> int:
        """Remove facts from a base predicate; compiled plans are
        invalidated and materialized views maintained by DRed."""
        from .datalog.terms import term_from_python

        lifted = [tuple(term_from_python(v) for v in row) for row in rows]
        relation = self.db.get(predicate)
        present = [row for row in lifted if relation is not None and row in relation]
        removed = self.db.retract(predicate, [tuple(f for f in row) for row in present])
        txn = self._txn
        if txn is not None:
            if removed:
                txn.touched.add(predicate)
                txn.retracted.add(predicate)
                if present:
                    txn.view_ops.append(("delete", predicate, present))
            return removed
        if removed:
            self._data_invalidate({predicate})
            # Retraction can strand learned selectivities arbitrarily far
            # from reality (the rows they were measured against are gone),
            # so the affected feedback entries are dropped; insertions
            # instead rely on the store's EMA drift + staleness decay —
            # see docs/performance.md for the contract.
            self._feedback_forget({predicate})
            if self._views is not None and present:
                self._views.delete(predicate, present)
        return removed

    # ----------------------------------------------------------- views

    def materialize(self):
        """Materialize every derived predicate and keep the extensions
        incrementally consistent under :meth:`facts` / :meth:`retract`.

        Returns the :class:`~repro.engine.maintenance.ViewSet`.  Only
        negation- and aggregation-free programs are supported.
        """
        from .engine.maintenance import ViewSet

        views = ViewSet(self.db, self.program, builtins=self.builtins)
        views.materialize()
        self._views = views
        return views

    @property
    def materialized_views(self):
        """The live :class:`~repro.engine.maintenance.ViewSet`, or ``None``
        when no views are materialized (rule changes reset it)."""
        return self._views

    def view_rows(self, predicate: str):
        """Current materialized extension of *predicate* (plain values)."""
        if self._views is None:
            raise KnowledgeBaseError("no materialized views; call materialize() first")
        from .datalog.terms import Constant

        return {
            tuple(f.value if isinstance(f, Constant) else f for f in row)
            for row in self._views.rows(predicate)
        }

    def facts_text(self, source: str) -> int:
        """Load facts written in LDL syntax (supports complex terms)."""
        added = load_facts_text(self.db, source)
        if self._txn is not None:
            if added:
                self._txn.full_invalidate = True  # bypasses view maintenance
            return added
        if added:
            # The loader doesn't report per-row deltas, so views cannot be
            # maintained incrementally here — full invalidation; but a
            # load that inserted nothing new changes nothing.
            self._invalidate()
        return added

    def register_builtin(self, builtin) -> None:
        """Register a user-defined built-in predicate (see
        :mod:`repro.datalog.builtins`)."""
        self.builtins.register(builtin)
        self._invalidate()

    def _check_rule(self, rule: Rule) -> None:
        if rule.head.predicate in self.db.names:
            raise KnowledgeBaseError(
                f"{rule.head.predicate!r} already holds facts; cannot also be derived"
            )
        if rule.head.predicate in self.builtins:
            raise KnowledgeBaseError(
                f"{rule.head.predicate!r} is a built-in predicate; it cannot be redefined"
            )

    def _invalidate(self, keep_views: bool = False) -> None:
        """Full invalidation, for rule/builtin changes: the dependency
        graph itself moved, so footprints, plans, and cached results are
        all void (see :meth:`_data_invalidate` for the surgical
        data-write path)."""
        self._optimizer = None
        self._compiled.clear()
        self._reopt_fired.clear()
        self._footprints.clear()
        self._footprint_graph = None
        if self._result_cache is not None:
            # The footprint-versioned key already fences data changes;
            # this clear covers rule/builtin changes, which the key cannot
            # see, and keeps the cache from accumulating dead entries.
            self._result_cache.clear()
        if not keep_views:
            self._views = None

    # ------------------------------------------------ footprints + eviction

    def _dependency_footprint(self, predicate: str, arity: int) -> frozenset[str]:
        """The base relations a query against *predicate* can read,
        computed once per predicate from the rule dependency graph and
        cached until the rule base changes.

        For a derived predicate this is every non-derived predicate
        transitively reachable through rule bodies (built-ins excluded —
        they hold no stored rows); for a base or unknown predicate it is
        the predicate itself.
        """
        from .datalog.literals import PredicateRef

        cache_key = f"{predicate}/{arity}"
        hit = self._footprints.get(cache_key)
        if hit is not None:
            return hit
        if self._footprint_graph is None:
            from .datalog.graph import DependencyGraph

            self._footprint_graph = DependencyGraph(self.program)
        program = self.program
        derived = {ref.name for ref in program.derived_predicates}
        if predicate not in derived:
            footprint = frozenset((predicate,))
        else:
            reachable = self._footprint_graph.reachable_from(
                PredicateRef(predicate, arity)
            )
            footprint = frozenset(
                ref.name
                for ref in reachable
                if ref.name not in derived and ref.name not in self.builtins
            )
        self._footprints[cache_key] = footprint
        return footprint

    def _form_footprint(self, form: QueryForm) -> frozenset[str]:
        return self._dependency_footprint(form.predicate, form.goal.arity)

    def _data_invalidate(self, touched: set[str]) -> None:
        """Surgical invalidation after a data write to *touched* base
        relations: only compiled plans and cached results whose footprint
        intersects the mutated relations are evicted; queries over
        disjoint data keep their plans, cached answers, and re-opt state.

        (Result-cache entries are version-fenced by their key, so evicting
        them here is memory hygiene, not correctness — a bumped version
        already makes the old entry unreachable.)
        """
        if not touched:
            return
        # Statistics feeding cost models changed; the optimizer rebuilds
        # lazily (cheap — the expensive per-form work is in _compiled,
        # which is evicted selectively below).
        self._optimizer = None
        stale = [
            key for key, compiled in self._compiled.items()
            if self._form_footprint(compiled.query) & touched
        ]
        for key in stale:
            del self._compiled[key]
            # The write may fix (or worsen) the very misestimate that
            # fired re-optimization; re-arm the once-per-form latch for
            # the forms whose data actually moved.
            self._reopt_fired.discard(key)
        if self._result_cache is not None:
            dead = [
                key for key in self._result_cache
                if any(name in touched for name, __ in key[3])
            ]
            for key in dead:
                del self._result_cache[key]

    def _feedback_forget(self, touched: set[str]) -> None:
        """Drop learned cardinalities invalidated by a retraction: every
        entry recorded for a touched relation or for a derived predicate
        whose footprint reads one."""
        if self.feedback is None or not touched:
            return
        scope = set(touched)
        for ref in self.program.derived_predicates:
            if self._dependency_footprint(ref.name, ref.arity) & touched:
                scope.add(ref.name)
        dropped = self.feedback.invalidate(scope)
        if dropped:
            self.metrics.inc("feedback_invalidated_total", dropped)
            self.metrics.set_gauge("feedback_entries", float(len(self.feedback)))

    # ----------------------------------------------------------- compiling

    @property
    def program(self) -> Program:
        return Program(self._rules)

    @property
    def optimizer(self) -> Optimizer:
        if self._optimizer is None:
            self._optimizer = Optimizer(
                self.program, self.db, self.config,
                builtins=self.builtins, feedback=self.feedback,
            )
        return self._optimizer

    def compile(
        self, query: str | QueryForm, governor=None, tracer=NULL_TRACER
    ) -> OptimizedQuery:
        """Optimize a query form (cached per form + adornment).

        *governor* bounds the search itself: on deadline expiry the
        optimizer degrades its strategy instead of aborting (see
        :meth:`Optimizer.optimize`).  Governed compilations are not
        cached — a degraded plan must not shadow the full one.

        *tracer* records parse / safety / optimize phase spans.
        """
        if isinstance(query, str):
            with tracer.span("parse", kind="phase"):
                form = parse_query(query)
        else:
            form = query
        with tracer.span("safety", kind="phase"):
            # First use builds the dependency graph and runs the
            # stratification check; later uses are a cache lookup.
            optimizer = self.optimizer
        if governor is not None:
            return optimizer.optimize(
                form, governor=governor, tracer=tracer, metrics=self.metrics
            )
        key = (str(form.goal), form.adornment.code)
        hit = self._compiled.get(key)
        if hit is not None:
            self.metrics.inc("plan_cache_hits_total")
            return hit
        self.metrics.inc("plan_cache_misses_total")
        compiled = optimizer.optimize(form, tracer=tracer, metrics=self.metrics)
        self._compiled[key] = compiled
        return compiled

    def explain(self, query: str | QueryForm) -> str:
        """The optimizer's chosen processing tree, pretty-printed."""
        return explain(self.compile(query).plan)

    def analyze(
        self, query: str | QueryForm, tracer=NULL_TRACER, **bindings: object
    ) -> str:
        """EXPLAIN ANALYZE: execute the query and render the plan with
        ``est=<estimated card> act=<measured tuples> err=<q-error>`` on
        every executed node, plus a top-misestimates summary.

        *tracer* additionally records the full span tree of the run
        (phases, plan nodes, operators, fixpoint rounds).
        """
        from .plans.printer import explain_analyzed

        profiler = Profiler()
        tracer.attach(profiler)
        started = time.perf_counter()
        before = self._tier_counters()
        with tracer.span("query", kind="query") as root:
            compiled = self.compile(query, tracer=tracer)
            root.note(goal=str(compiled.query.goal))
            interpreter = Interpreter(
                self.db, profiler=profiler, builtins=self.builtins,
                batch=self.batch, batch_min_rows=self.batch_min_rows,
                parallel=self.parallel, parallel_min_rows=self.parallel_min_rows,
                parallel_workers=self.parallel_workers,
                parallel_retries=self.parallel_retries,
                tracer=tracer, metrics=self.metrics,
            )
            answers = interpreter.run(compiled.plan, compiled.query, **bindings)
        self.metrics.inc("queries_total")
        worst, reopt = self._harvest(compiled, interpreter.node_stats)
        self._telemetry_note(
            compiled.query, started, before,
            tier=self._tier_taken(before), cache="off",
            rows=len(answers), worst=worst, reopt=reopt,
        )
        body = explain_analyzed(compiled.plan, interpreter.node_stats)
        summary = (
            f"-- answers: {len(answers)} | work: {profiler.total_work} tuples "
            f"(examined {profiler.examined}, produced {profiler.produced}, "
            f"iterations {profiler.iterations})"
        )
        return f"{body}\n{summary}"

    # ----------------------------------------------------------- running

    def ask(
        self,
        query: str | QueryForm,
        profiler: Profiler | None = None,
        governor=None,
        tracer=NULL_TRACER,
        **bindings: object,
    ) -> QueryAnswers:
        """Compile (cached) and execute a query.

        Bound variables (``$X``) take their values from keyword
        arguments: ``kb.ask("sg($X, Y)?", X="joe")``.  When the goal
        predicate is materialized (see :meth:`materialize`), the answer
        is served from the incrementally maintained view.

        *governor* (a :class:`~repro.engine.governor.ResourceGovernor`,
        or ``False`` to disable all limits) spans the whole execution:
        deadline, live-tuple/memory budgets, cancellation, fault
        injection.  The default builds one from the engine's standard
        guards.

        *tracer* (a :class:`~repro.obs.tracer.Tracer`) records the whole
        pipeline as one span tree rooted at ``query``: parse, safety,
        optimize phases, every plan node, operator, and fixpoint round.
        """
        self.metrics.inc("queries_total")
        cacheable = (
            self._result_cache is not None
            and profiler is None
            and governor is None
            and not tracer.enabled
        )
        profiler = profiler or Profiler()
        # Attach before opening the root span: attach only takes effect
        # between span trees, so counter deltas cover the whole query.
        tracer.attach(profiler)
        started = time.perf_counter()
        before = self._tier_counters()
        with tracer.span("query", kind="query") as root:
            if isinstance(query, str):
                with tracer.span("parse", kind="phase"):
                    form = parse_query(query)
            else:
                form = query
            root.note(goal=str(form.goal))
            if self._views is not None and form.predicate in self._views:
                # View-backed answers participate in the result cache too,
                # and tier attribution follows where the rows came from
                # *this* query: "cache" only on an actual hit, "view" when
                # the (possibly just partially invalidated) cache missed
                # and the maintained extension was filtered.
                cache_key = self._result_cache_key(form, bindings) if cacheable else None
                if cache_key is not None:
                    hit = self._result_cache.get(cache_key)
                    if hit is not None:
                        self.metrics.inc("result_cache_hits_total")
                        self._telemetry_note(
                            form, started, before, tier="cache", cache="hit",
                            rows=len(hit), worst=1.0, reopt=False,
                        )
                        return hit
                    self.metrics.inc("result_cache_misses_total")
                answers = self._answer_from_view(form, profiler, bindings)
                if cache_key is not None:
                    cache = self._result_cache
                    while len(cache) >= self._result_cache_size:
                        cache.pop(next(iter(cache)))  # FIFO bound
                    cache[cache_key] = answers
                self._telemetry_note(
                    form, started, before, tier="view",
                    cache="miss" if cache_key is not None else "off",
                    rows=len(answers), worst=1.0, reopt=False,
                )
                return answers
            compiled = self.compile(form, tracer=tracer)
            cache_key = self._result_cache_key(form, bindings) if cacheable else None
            if cache_key is not None:
                hit = self._result_cache.get(cache_key)
                if hit is not None:
                    self.metrics.inc("result_cache_hits_total")
                    # A warm serving workload is all hits: without this
                    # record the telemetry log would show an idle system.
                    self._telemetry_note(
                        form, started, before, tier="cache", cache="hit",
                        rows=len(hit), worst=1.0, reopt=False,
                    )
                    return hit
                self.metrics.inc("result_cache_misses_total")
            interpreter = Interpreter(
                self.db, profiler=profiler, builtins=self.builtins,
                batch=self.batch, batch_min_rows=self.batch_min_rows,
                parallel=self.parallel, parallel_min_rows=self.parallel_min_rows,
                parallel_workers=self.parallel_workers,
                parallel_retries=self.parallel_retries,
                governor=governor, tracer=tracer, metrics=self.metrics,
            )
            try:
                answers = interpreter.run(compiled.plan, compiled.query, **bindings)
            except ResourceExhausted:
                self._telemetry_note(
                    form, started, before, tier=self._tier_taken(before),
                    cache="off", rows=0, worst=1.0, reopt=False,
                    status="denied",
                )
                raise
            except Exception:
                self._telemetry_note(
                    form, started, before, tier=self._tier_taken(before),
                    cache="off", rows=0, worst=1.0, reopt=False,
                    status="error",
                )
                raise
            # Always-on collector: the interpreter's node_stats exist with
            # or without a tracer, so every successful ask feeds the
            # feedback store (and may evict a misestimated cached plan).
            worst, reopt = self._harvest(compiled, interpreter.node_stats)
            if cache_key is not None:
                cache = self._result_cache
                while len(cache) >= self._result_cache_size:
                    cache.pop(next(iter(cache)))  # FIFO bound
                cache[cache_key] = answers
            self._telemetry_note(
                form, started, before, tier=self._tier_taken(before),
                cache="miss" if cache_key is not None else "off",
                rows=len(answers), worst=worst, reopt=reopt,
            )
            return answers

    # ------------------------------------------------- feedback + telemetry

    def _tier_counters(self) -> tuple[int, int, int]:
        """Snapshot of the tier/denial counters before a query."""
        metrics = self.metrics
        return (
            metrics.counter_total("parallel_rules_total"),
            metrics.counter_total("batch_rules_total"),
            metrics.counter_total("governor_denials_total"),
        )

    def _tier_taken(self, before: tuple[int, int, int]) -> str:
        """Which execution tier this query actually used, inferred from
        per-query counter deltas (works with the tracer off)."""
        parallel0, batch0, __ = before
        if self.metrics.counter_total("parallel_rules_total") > parallel0:
            return "parallel"
        if self.metrics.counter_total("batch_rules_total") > batch0:
            return "batch"
        return "row"

    def _harvest(self, compiled: OptimizedQuery, node_stats: dict) -> tuple[float, bool]:
        """Feed one executed plan into the feedback store; returns the
        observed worst q-error and whether re-optimization was triggered
        (the plan-cache entry evicted and the optimizer's memo dropped so
        the next compile sees the learned cardinalities)."""
        if self.feedback is None:
            return 1.0, False
        observation = self.feedback.observe_plan(compiled.plan, node_stats)
        self.feedback.flush()
        worst = observation.worst_qerror
        self.metrics.observe(
            "qerror", min(worst, _QERROR_CEIL), buckets=QERROR_BUCKETS
        )
        self.metrics.set_gauge("feedback_entries", float(len(self.feedback)))
        form = compiled.query
        key = (str(form.goal), form.adornment.code)
        if (
            worst >= self.reopt_qerror_threshold
            and key in self._compiled
            and key not in self._reopt_fired
        ):
            del self._compiled[key]
            # The optimizer memoizes per-(predicate, binding) subplans, so
            # evicting only the kb-level entry would hand back the same
            # tree; a fresh Optimizer re-costs with the learned values.
            self._optimizer = None
            self._reopt_fired.add(key)
            self.metrics.inc("reopt_total", reason="qerror")
            return worst, True
        return worst, False

    def _telemetry_note(
        self,
        form: QueryForm,
        started: float,
        before: tuple[int, int, int],
        *,
        tier: str,
        cache: str,
        rows: int,
        worst: float,
        reopt: bool,
        status: str = "ok",
    ) -> None:
        denials = self.metrics.counter_total("governor_denials_total") - before[2]
        self.telemetry.record(
            goal=str(form.goal),
            adornment=form.adornment.code,
            wall_ms=(time.perf_counter() - started) * 1000.0,
            tier=tier,
            cache=cache,
            rows=rows,
            worst_qerror=worst,
            denials=int(denials),
            reopt=reopt,
            status=status,
        )

    def _result_cache_key(self, form: QueryForm, bindings: dict) -> tuple | None:
        """(goal text, adornment, $-bindings, footprint version vector) —
        or None when a binding value cannot be lifted into a hashable term.

        Freshness is fenced per dependency footprint, not globally: the
        key carries ``(name, version)`` only for the base relations this
        form can actually read (``-1`` for a relation not created yet —
        its later creation must miss), so a write to an unrelated
        relation leaves the entry hot.
        """
        from .datalog.terms import term_from_python

        try:
            lifted = tuple(
                (name, term_from_python(bindings[name])) for name in sorted(bindings)
            )
        except TypeError:
            return None
        versions = tuple(
            (
                name,
                relation.version if (relation := self.db.get(name)) is not None else -1,
            )
            for name in sorted(self._form_footprint(form))
        )
        return (
            str(form.goal),
            form.adornment.code,
            lifted,
            versions,
        )

    def _answer_from_view(self, form: QueryForm, profiler: Profiler, bindings: dict) -> QueryAnswers:
        """Answer a query form by filtering a materialized extension."""
        from .datalog.terms import term_from_python
        from .datalog.unify import Substitution, apply, match
        from .errors import ExecutionError

        missing = {v.name for v in form.bound_vars} - set(bindings)
        if missing:
            raise ExecutionError(f"missing values for bound variables: {sorted(missing)}")
        base: Substitution = {
            v: term_from_python(bindings[v.name]) for v in form.bound_vars
        }
        patterns = [apply(arg, base) for arg in form.goal.args]
        out_vars = form.output_vars
        rows = set()
        for stored in self._views.rows(form.predicate):
            profiler.bump_examined()
            subst: Substitution | None = dict(base)
            for pattern, value in zip(patterns, stored):
                subst = match(pattern, value, subst)
                if subst is None:
                    break
            if subst is not None:
                rows.add(tuple(subst[v] for v in out_vars))
        profiler.bump_produced(len(rows))
        return QueryAnswers(out_vars, frozenset(rows), profiler)

    # ----------------------------------------------------------- persistence

    def save(self, directory: str) -> None:
        """Persist the knowledge base to *directory* (created if needed):
        ``rules.ldl`` holds the rule base, ``facts.ldl`` the fact base —
        both in LDL syntax, so they are diffable and hand-editable."""
        from pathlib import Path

        from .storage.loader import dump_facts_text

        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        (path / "rules.ldl").write_text(
            "\n".join(str(rule) for rule in self._rules) + "\n" if self._rules else ""
        )
        (path / "facts.ldl").write_text(dump_facts_text(self.db))

    @classmethod
    def load(cls, directory: str, config: OptimizerConfig | None = None) -> "KnowledgeBase":
        """Reload a knowledge base written by :meth:`save`."""
        from pathlib import Path

        path = Path(directory)
        kb = cls(config)
        rules_file = path / "rules.ldl"
        facts_file = path / "facts.ldl"
        if facts_file.exists():
            kb.facts_text(facts_file.read_text())
        if rules_file.exists():
            kb.rules(rules_file.read_text())
        return kb

    def __repr__(self) -> str:
        return (
            f"KnowledgeBase({len(self._rules)} rules, "
            f"{len(self.db.names)} relations, {len(self._compiled)} compiled forms)"
        )
