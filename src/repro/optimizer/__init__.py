"""The cost-based optimizer: search strategies, NR-OPT and OPT."""

from .annealing import AnnealingResult, AnnealingSchedule, anneal, annealing_order
from .conjunctive import (
    CostedStep,
    OrderResult,
    cost_order,
    dp_order,
    enumerate_orders,
    exhaustive_order,
    split_joinable,
)
from .kbz import kbz_order
from .optimizer import STRATEGIES, OptimizedQuery, Optimizer, OptimizerConfig

__all__ = [
    "AnnealingResult",
    "AnnealingSchedule",
    "CostedStep",
    "OptimizedQuery",
    "Optimizer",
    "OptimizerConfig",
    "OrderResult",
    "STRATEGIES",
    "anneal",
    "annealing_order",
    "cost_order",
    "dp_order",
    "enumerate_orders",
    "exhaustive_order",
    "kbz_order",
    "split_joinable",
]
