"""Common subexpression elimination (the paper's Section 9).

"Common subexpression elimination [GM 82] ... is one of the optimization
aspects not covered in this paper.  A simple technique using a
hill-climbing method is easy to superimpose on the proposed strategy."

This module is that superimposition:

* :func:`find_common_segments` — detect body segments (pairs or larger
  sets of positive literals) that occur, up to variable renaming, in two
  or more rule bodies;
* :func:`factor_segment` — fold every occurrence into a call to a fresh
  derived predicate (one shared definition), after which NR-OPT's
  per-binding memoization computes the shared join once;
* :func:`eliminate_common_subexpressions` — the hill-climbing loop:
  repeatedly apply the candidate factoring that most improves the
  optimizer's estimate for a given query form, stop when none does.

The paper also sketches a more speculative flavour — for goals
``P(a,b,X)`` and ``P(a,Y,c)``, "computing P(a,Y,X) once and restricting
the result for each of the cases may be more efficient".  The building
block for that is the *least general generalization* of two literals;
:func:`anti_unify` implements it and the tests exercise the paper's own
example, though the optimizer does not apply it automatically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..datalog.bindings import QueryForm
from ..datalog.literals import Literal
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Struct, Term, Variable, variables_of
from ..storage.statistics import StatisticsProvider

#: Fresh-predicate name prefix for factored segments.
CSE_PREFIX = "cse"


# ---------------------------------------------------------------------------
# canonical forms
# ---------------------------------------------------------------------------


def _canonical_segment(literals: Sequence[Literal]) -> tuple:
    """A renaming-invariant key for a multiset of positive literals.

    Literals are sorted by (predicate, arity); variables are numbered in
    first-occurrence order over the sorted sequence.  Two segments get
    the same key iff they are equal up to a variable renaming.
    """
    ordered = sorted(literals, key=lambda l: (l.predicate, l.arity, str(l)))
    mapping: dict[Variable, int] = {}

    def canon(term: Term):
        if isinstance(term, Variable):
            if term not in mapping:
                mapping[term] = len(mapping)
            return ("v", mapping[term])
        if isinstance(term, Constant):
            return ("c", term.value)
        assert isinstance(term, Struct)
        return ("s", term.functor, tuple(canon(a) for a in term.args))

    return tuple(
        (literal.predicate, tuple(canon(arg) for arg in literal.args))
        for literal in ordered
    )


@dataclass(frozen=True, slots=True)
class SegmentOccurrence:
    """One occurrence of a candidate segment inside a rule body."""

    rule_index: int
    positions: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class CommonSegment:
    """A segment occurring in at least two places."""

    key: tuple
    representative: tuple[Literal, ...]
    occurrences: tuple[SegmentOccurrence, ...]

    @property
    def size(self) -> int:
        return len(self.representative)


def find_common_segments(
    program: Program,
    segment_size: int = 2,
    min_occurrences: int = 2,
) -> list[CommonSegment]:
    """All size-*segment_size* positive-literal segments occurring at
    least *min_occurrences* times across the program's rule bodies."""
    buckets: dict[tuple, list[tuple[SegmentOccurrence, tuple[Literal, ...]]]] = {}
    for rule_index, rule in enumerate(program.rules):
        positive = [
            (position, literal)
            for position, literal in enumerate(rule.body)
            if not literal.is_comparison and not literal.negated
        ]
        for combo in itertools.combinations(positive, segment_size):
            positions = tuple(p for p, __ in combo)
            literals = tuple(l for __, l in combo)
            # segments must be connected (share a variable) to be worth
            # factoring — a cross product helps nobody.
            shared = set(literals[0].variables)
            connected = True
            for literal in literals[1:]:
                if not shared & literal.variables:
                    connected = False
                    break
                shared |= literal.variables
            if not connected:
                continue
            key = _canonical_segment(literals)
            buckets.setdefault(key, []).append(
                (SegmentOccurrence(rule_index, positions), literals)
            )
    out = []
    for key, occurrences in buckets.items():
        if len(occurrences) >= min_occurrences:
            out.append(
                CommonSegment(
                    key=key,
                    representative=occurrences[0][1],
                    occurrences=tuple(o for o, __ in occurrences),
                )
            )
    out.sort(key=lambda s: (-len(s.occurrences), str(s.key)))
    return out


# ---------------------------------------------------------------------------
# factoring
# ---------------------------------------------------------------------------


def _segment_variable_order(literals: Sequence[Literal]) -> list[Variable]:
    """Variables of a segment in canonical (sorted, first-occurrence) order."""
    ordered = sorted(literals, key=lambda l: (l.predicate, l.arity, str(l)))
    out: list[Variable] = []
    for literal in ordered:
        for arg in literal.args:
            for var in sorted(variables_of(arg), key=lambda v: v.name):
                if var not in out:
                    out.append(var)
    return out


def factor_segment(program: Program, segment: CommonSegment, name: str) -> Program:
    """Fold every occurrence of *segment* into a call to predicate *name*.

    One definition rule is added (using the first occurrence's variable
    names); every occurrence is replaced by a call whose arguments are
    that occurrence's own variables in canonical order, so all callers
    share the definition exactly.
    """
    interface = _segment_variable_order(segment.representative)
    definition = Rule(
        Literal(name, tuple(interface)), tuple(segment.representative), label="cse"
    )

    rules = list(program.rules)
    for occurrence in segment.occurrences:
        rule = rules[occurrence.rule_index]
        occurrence_literals = tuple(rule.body[p] for p in occurrence.positions)
        if _canonical_segment(occurrence_literals) != segment.key:
            continue  # the rule was already rewritten by an earlier fold
        call_args = tuple(_segment_variable_order(occurrence_literals))
        call = Literal(name, call_args)
        first = min(occurrence.positions)
        body = []
        for position, literal in enumerate(rule.body):
            if position == first:
                body.append(call)
            elif position in occurrence.positions:
                continue
            else:
                body.append(literal)
        rules[occurrence.rule_index] = Rule(rule.head, tuple(body), rule.label)
    return Program(rules + [definition])


# ---------------------------------------------------------------------------
# the hill-climbing loop
# ---------------------------------------------------------------------------


def eliminate_common_subexpressions(
    program: Program,
    stats: StatisticsProvider,
    query: QueryForm,
    max_rounds: int = 4,
    segment_size: int = 2,
    config=None,
) -> tuple[Program, list[str]]:
    """Hill-climb over candidate factorings, keeping those that improve
    the optimizer's estimate for *query*.

    Returns the (possibly rewritten) program and a log of accepted
    factorings.  The original program is returned unchanged when no
    candidate helps — CSE never degrades the estimate.
    """
    from .optimizer import Optimizer, OptimizerConfig

    def estimate(candidate: Program) -> float:
        try:
            optimizer = Optimizer(candidate, stats, config or OptimizerConfig())
            return optimizer.optimize(query).est.cost
        except Exception:
            return float("inf")

    current = program
    current_cost = estimate(program)
    accepted: list[str] = []
    counter = 0

    for _round in range(max_rounds):
        candidates = find_common_segments(current, segment_size=segment_size)
        best_program = None
        best_cost = current_cost
        best_label = ""
        for segment in candidates[:12]:  # bound the neighborhood per round
            counter += 1
            name = f"{CSE_PREFIX}{counter}"
            candidate = factor_segment(current, segment, name)
            cost = estimate(candidate)
            if cost < best_cost:
                best_program = candidate
                best_cost = cost
                rep = ", ".join(str(l) for l in segment.representative)
                best_label = f"factored [{rep}] as {name} ({len(segment.occurrences)} occurrences)"
        if best_program is None:
            break
        current = best_program
        current_cost = best_cost
        accepted.append(best_label)
    return current, accepted


# ---------------------------------------------------------------------------
# anti-unification (the paper's speculative example)
# ---------------------------------------------------------------------------

_gen_counter = itertools.count()


def anti_unify(left: Term, right: Term, table: dict | None = None) -> Term:
    """The least general generalization of two terms.

    ``anti_unify(P(a,b,X), P(a,Y,c))`` on argument tuples yields
    ``P(a, V1, V2)`` — the paper's "compute P(a,Y,X) once" candidate.
    Identical subterms stay; mismatches become shared fresh variables
    (the same mismatch pair always maps to the same variable).
    """
    table = table if table is not None else {}
    if left == right:
        return left
    if (
        isinstance(left, Struct)
        and isinstance(right, Struct)
        and left.functor == right.functor
        and left.arity == right.arity
    ):
        return Struct(
            left.functor,
            tuple(anti_unify(a, b, table) for a, b in zip(left.args, right.args)),
        )
    key = (left, right)
    if key not in table:
        table[key] = Variable(f"_G{next(_gen_counter)}")
    return table[key]


def anti_unify_literals(left: Literal, right: Literal) -> Literal | None:
    """LGG of two positive literals over the same predicate, or None."""
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    if left.is_comparison or left.negated or right.negated:
        return None
    table: dict = {}
    args = tuple(anti_unify(a, b, table) for a, b in zip(left.args, right.args))
    return Literal(left.predicate, args)
