"""The LDL optimizer: NR-OPT (Figure 7-1) and OPT (Figure 7-2).

The :class:`Optimizer` compiles a *query form* against a rule base and a
statistics catalog into a minimum-cost processing tree:

* **AND nodes** (step 1 of both algorithms) — each rule body is ordered
  by a pluggable search strategy (exhaustive, Selinger DP, KBZ quadratic,
  simulated annealing; Section 7.1's three generic strategies plus the
  textual/Prolog baseline), with join methods (EL) decided locally and
  comparisons placed at their earliest effectively computable position;
* **OR nodes** (step 2) — one subtree per rule, *memoized per binding
  pattern*: "this algorithm guarantees that each subtree is optimized
  exactly ONCE for each binding";
* **CC nodes** (step 3, recursive cliques) — c-permutations are
  enumerated (or annealed, for large cliques), each adorned per Section
  7.3; non-clique literals are optimized recursively for their
  adornments; each applicable recursive method (semi-naive, naive, magic
  sets, generalized counting) is costed and the minimum survives.

Safety (Section 8) is integrated, not bolted on: a permutation whose
evaluable goals cannot be made effectively computable prices at ``inf``;
a recursive method without a termination certificate (finiteness for the
materialized fixpoint, a well-founded order for the pipelined ones)
prices at ``inf``; and if the best plan overall is still infinite the
query is reported unsafe with the diagnostics gathered along the way —
"if the cost of the end-solution produced by the optimizer is not less
than this extreme value, a proper message must inform the user".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from ..cost.estimates import BodyEstimator, LEAF_METHODS, derived_ndvs, estimate_fixpoint
from ..cost.model import CostParams, DerivedEstimate, Estimate, INFINITE_COST
from ..datalog.adorn import AdornedClique, CPermutation, adorn_clique, enumerate_cpermutations
from ..datalog.bindings import BindingPattern, QueryForm, binds_after, head_bound_vars
from ..datalog.counting import counting_applicable, counting_rewrite
from ..datalog.graph import Clique, DependencyGraph
from ..datalog.literals import Literal, PredicateRef, pred_ref
from ..datalog.magic import magic_rewrite, supplementary_magic_rewrite
from ..datalog.rules import Program, Rule
from ..datalog.safety import ec_check, exists_safe_order, well_founded_order
from ..errors import OptimizationError, UnsafeQueryError
from ..obs.tracer import NULL_TRACER
from ..plans.nodes import FixpointNode, JoinNode, JoinStep, UnionNode
from ..storage.statistics import RelationStats, StatisticsProvider
from .annealing import AnnealingSchedule, annealing_order
from .conjunctive import OrderResult, cost_order, dp_order, exhaustive_order, split_joinable
from .kbz import kbz_order

#: Names of the available ordering strategies.
STRATEGIES = ("exhaustive", "dp", "kbz", "annealing", "textual")

#: Names of the available search modes: ``bb`` prunes with memoized
#: branch-and-bound (cost-identical plans, far fewer costings), ``full``
#: keeps the legacy un-pruned enumeration (the A/B baseline).
SEARCH_MODES = ("bb", "full")


@dataclass(frozen=True, slots=True)
class OptimizerConfig:
    """Knobs of the search (Section 7: "capable of using multiple
    strategies interchangeably ... the choice of strategies may be made
    per rule")."""

    strategy: str = "dp"
    #: plan-search mode: ``bb`` (default) prunes join-order DP with
    #: branch-and-bound, memoizes costed prefixes across c-permutations,
    #: and caps fixpoint estimation at the incumbent cost; ``full`` is
    #: the legacy exhaustive enumeration.  Both return cost-identical
    #: plans — ``bb`` just finds them with far fewer costings.
    search: str = "bb"
    #: switch to this strategy when a body has more joinable literals
    #: than ``large_body_threshold`` (None disables the switch)
    large_body_strategy: str | None = "kbz"
    large_body_threshold: int = 9
    params: CostParams = field(default_factory=CostParams)
    #: recursive methods the CC search may label a clique with
    recursive_methods: tuple[str, ...] = (
        "seminaive", "magic", "supplementary", "counting", "qsqn"
    )
    #: c-permutation budget before switching to annealing
    max_cpermutations: int = 512
    #: force every base join step to one method (used by baselines)
    force_method: str | None = None
    seed: int = 0
    annealing: AnnealingSchedule = field(default_factory=AnnealingSchedule)
    #: wall-clock budget for the whole search; once it expires the
    #: exhaustive/DP strategies degrade to ``deadline_fallback`` and the
    #: c-permutation enumeration is truncated (never an abort: the
    #: optimizer always returns *a* plan, just a cheaper-to-find one)
    deadline_seconds: float | None = None
    deadline_fallback: str = "kbz"


@dataclass(frozen=True, slots=True)
class OptimizedQuery:
    """The compiled form of one query form."""

    query: QueryForm
    plan: UnionNode
    est: Estimate
    diagnostics: tuple[str, ...] = ()

    @property
    def safe(self) -> bool:
        return not self.est.is_infinite


@dataclass(frozen=True, slots=True)
class _MemoEntry:
    """Per (predicate, binding) optimization result — NR-OPT step 2's
    "record the cost, cardinality, graph, etc., indexed by the binding"."""

    plan: UnionNode | FixpointNode
    est: Estimate
    ndvs: tuple[float, ...]


class Optimizer:
    """Cost-based compiler for query forms over a program + catalog."""

    def __init__(
        self,
        program: Program,
        stats: StatisticsProvider,
        config: OptimizerConfig | None = None,
        builtins=None,
        feedback=None,
    ):
        from ..datalog.builtins import builtin_oracle, default_builtins

        self.program = program
        self.stats = stats
        self.config = config or OptimizerConfig()
        self.builtins = default_builtins() if builtins is None else builtins
        #: cardinality feedback store (duck-typed
        #: :class:`repro.obs.feedback.FeedbackStore`); ``None`` keeps
        #: every estimate static
        self.feedback = feedback
        self._ec_oracle = builtin_oracle(self.builtins)
        if self.config.strategy not in STRATEGIES:
            raise OptimizationError(f"unknown strategy {self.config.strategy!r}")
        if self.config.search not in SEARCH_MODES:
            raise OptimizationError(f"unknown search mode {self.config.search!r}")
        self.graph = DependencyGraph(program)
        self.graph.check_stratified()
        if self.config.deadline_fallback not in STRATEGIES:
            raise OptimizationError(
                f"unknown deadline fallback {self.config.deadline_fallback!r}"
            )
        self._memo: dict[tuple[str, str], _MemoEntry] = {}
        self._seminaive_cache: dict[frozenset[PredicateRef], Estimate] = {}
        self._diagnostics: list[str] = []
        self._rng = random.Random(self.config.seed)
        #: the governor of the optimize() call in flight (None between calls)
        self._governor = None
        #: tracer/metrics of the optimize() call in flight
        self._tracer = NULL_TRACER
        self._metrics = None
        #: counters exposed to the complexity benchmarks
        self.counters: dict[str, int] = {
            "and_optimizations": 0,
            "or_optimizations": 0,
            "cc_optimizations": 0,
            "order_evaluations": 0,
            "cpermutations": 0,
            "deadline_downgrades": 0,
            # partial/full plan candidates actually costed vs avoided by
            # branch-and-bound, dedup, prefix memos, and capped fixpoints
            "plans_costed": 0,
            "plans_pruned": 0,
        }

    # ------------------------------------------------------------------ API

    def optimize(
        self, query: QueryForm, governor=None, tracer=None, metrics=None
    ) -> OptimizedQuery:
        """Compile *query* to a minimum-cost processing tree.

        Raises :class:`UnsafeQueryError` when no safe execution exists in
        the searched space (Section 8.2).

        *governor* is an optional
        :class:`~repro.engine.governor.ResourceGovernor` whose deadline the
        search respects *gracefully*: on expiry, exhaustive/DP body
        ordering degrades to ``config.deadline_fallback`` and the
        c-permutation enumeration is truncated, with a diagnostic recorded
        on the returned plan.  When None and ``config.deadline_seconds``
        is set, a deadline-only governor is built internally.
        """
        from ..engine.governor import make_governor

        if governor is None and self.config.deadline_seconds is not None:
            governor = make_governor(
                deadline_seconds=self.config.deadline_seconds,
                max_tuples=None,
                max_iterations=None,
            )
        self._governor = governor
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics
        if governor is not None:
            governor.arm()
        try:
            with self._tracer.span(
                f"optimize:{self.config.strategy}", kind="phase"
            ) as span:
                span.note(query=str(query.goal), adornment=query.adornment.code)
                return self._optimize(query)
        finally:
            self._governor = None
            self._tracer = NULL_TRACER
            self._metrics = None

    def _optimize(self, query: QueryForm) -> OptimizedQuery:
        self._diagnostics = []
        ref = pred_ref(query.goal)
        if (
            ref not in self.program.predicates
            and self.stats.stats_for(ref.name) is None
            and ref.name not in self.builtins
        ):
            raise OptimizationError(f"unknown predicate {ref} in query {query}")

        wrapper = Rule(
            Literal("__query__", query.goal.args),
            (query.goal,),
            label="query wrapper",
        )
        join = self._optimize_and(wrapper, query.adornment)
        plan = UnionNode(
            ref=PredicateRef("__query__", query.goal.arity),
            binding=query.adornment,
            children=(join,),
            est=join.est,
            ndvs=derived_ndvs(join.est.card, query.goal.arity, self.config.params),
        )
        if plan.est.is_infinite:
            raise UnsafeQueryError(
                f"query form {query} has no safe execution in the searched space",
                reasons=self._diagnostics or ["every permutation priced at infinite cost"],
            )
        return OptimizedQuery(query, plan, plan.est, tuple(self._diagnostics))

    # ------------------------------------------------------- derived oracle

    def _oracle(self, literal: Literal, binding: BindingPattern) -> DerivedEstimate | None:
        """Estimates for a derived literal at a binding (NR-OPT recursion)."""
        ref = pred_ref(literal)
        if not self.program.is_derived(ref):
            return None
        bound_entry = self._optimize_ref(ref, binding)
        if binding.is_all_free:
            free_entry = bound_entry
        else:
            free_entry = self._optimize_ref(ref, BindingPattern.all_free(ref.arity))
        return DerivedEstimate(
            per_probe=bound_entry.est,
            materialized=free_entry.est,
            ndvs=free_entry.ndvs,
        )

    def _estimator(self, extra_stats: Mapping[str, RelationStats] | None = None) -> BodyEstimator:
        return BodyEstimator(
            self.stats,
            params=self.config.params,
            derived_oracle=self._oracle,
            extra_stats=extra_stats,
            builtins=self.builtins,
            feedback=self.feedback,
        )

    # --------------------------------------------------------- OR subtrees

    def _downgrade_for_aggregates(self, ref: PredicateRef, binding: BindingPattern) -> BindingPattern:
        """Aggregate head positions cannot receive sideways bindings (the
        value exists only after grouping), so they are planned free; the
        parent join filters on the aggregate value afterwards."""
        positions: set[int] = set()
        for rule in self.program.rules_for(ref):
            positions.update(rule.aggregate_positions)
        if not positions:
            return binding
        code = "".join(
            "f" if index in positions else c for index, c in enumerate(binding.code)
        )
        return BindingPattern(code)

    def _optimize_ref(self, ref: PredicateRef, binding: BindingPattern) -> _MemoEntry:
        """Step 2 (OR node) with per-binding memoization; recursive
        predicates divert to the CC optimization (step 3)."""
        binding = self._downgrade_for_aggregates(ref, binding)
        key = (str(ref), binding.code)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        if self.graph.is_recursive(ref):
            entry = self._optimize_cc(ref, binding)
        else:
            entry = self._optimize_or(ref, binding)
        self._memo[key] = entry
        return entry

    def _optimize_or(self, ref: PredicateRef, binding: BindingPattern) -> _MemoEntry:
        self.counters["or_optimizations"] += 1
        children = []
        total = Estimate(0.0, 0.0)
        for rule in self.program.rules_for(ref):
            join = self._optimize_and(rule, binding)
            children.append(join)
            total = total + join.est
        if self.feedback is not None and not total.is_infinite:
            learned = self.feedback.learned_node_card(
                "or", ref, binding.code, None, total.card
            )
            if learned is not None and learned != total.card:
                self._diagnostics.append(
                    f"feedback: {ref}{binding} output cardinality learned "
                    f"{learned:.1f} (static {total.card:.1f})"
                )
                total = Estimate(total.cost, learned)
        ndvs = derived_ndvs(total.card, ref.arity, self.config.params)
        node = UnionNode(ref=ref, binding=binding, children=tuple(children), est=total, ndvs=ndvs)
        return _MemoEntry(plan=node, est=total, ndvs=ndvs)

    # --------------------------------------------------------- AND subtrees

    def _strategy_for(self, body: Sequence[Literal]) -> str:
        joinable, __ = split_joinable(body)
        config = self.config
        if (
            config.strategy in ("exhaustive", "dp")
            and self._governor is not None
            and self._governor.deadline_exceeded()
        ):
            # Graceful degradation: the expensive search ran out of time,
            # so remaining bodies are ordered by the cheap fallback.
            self.counters["deadline_downgrades"] += 1
            if self._metrics is not None:
                self._metrics.inc("optimizer_degradations_total", kind="order")
            self._diagnostics.append(
                f"optimizer deadline exceeded: downgraded {config.strategy} "
                f"to {config.deadline_fallback} for a {len(joinable)}-literal body"
            )
            return config.deadline_fallback
        if (
            config.large_body_strategy is not None
            and config.strategy in ("exhaustive", "dp")
            and len(joinable) > config.large_body_threshold
        ):
            return config.large_body_strategy
        return config.strategy

    def _order_body(
        self,
        body: Sequence[Literal],
        initially_bound: frozenset,
        estimator: BodyEstimator,
    ) -> OrderResult:
        if self._governor is not None:
            # Never raises on the deadline: the optimizer degrades instead
            # of aborting.  Fault plans can still target optimizer:order.
            self._governor.soft_checkpoint("optimizer:order")
        strategy = self._strategy_for(body)
        with self._tracer.span(f"optimize:order:{strategy}", kind="optimizer") as span:
            if strategy == "exhaustive":
                result = exhaustive_order(body, initially_bound, estimator)
            elif strategy == "dp":
                result = dp_order(
                    body, initially_bound, estimator,
                    prune=self.config.search == "bb",
                )
            elif strategy == "kbz":
                result = kbz_order(body, initially_bound, estimator)
            elif strategy == "annealing":
                result = annealing_order(
                    body, initially_bound, estimator,
                    rng=random.Random(self._rng.randrange(2**30)),
                    schedule=self.config.annealing,
                )
            elif strategy == "textual":
                joinable, floating = split_joinable(body)
                result = cost_order(body, tuple(joinable), floating, initially_bound, estimator)
            else:  # pragma: no cover - guarded in __init__
                raise OptimizationError(f"unknown strategy {strategy!r}")
            span.note(
                evaluations=result.evaluations,
                literals=len(body),
                pruned=result.pruned,
            )
        self.counters["order_evaluations"] += max(1, result.evaluations)
        self._charge_search(max(1, result.evaluations), result.pruned)
        return result

    def _charge_search(self, costed: int, pruned: int) -> None:
        """Account plan candidates costed vs avoided (counters + metrics)."""
        if costed:
            self.counters["plans_costed"] += costed
            if self._metrics is not None:
                self._metrics.inc("optimizer_plans_costed_total", costed)
        if pruned:
            self.counters["plans_pruned"] += pruned
            if self._metrics is not None:
                self._metrics.inc("optimizer_plans_pruned_total", pruned)

    def _optimize_and(self, rule: Rule, head_binding: BindingPattern) -> JoinNode:
        """Step 1: order one rule body under the head's binding pattern."""
        self.counters["and_optimizations"] += 1
        initially_bound = head_bound_vars(rule.head, head_binding)
        estimator = self._estimator()
        if self.config.force_method is not None:
            estimator = _ForcedMethodEstimator(estimator, self.config.force_method)
        result = self._order_body(rule.body, initially_bound, estimator)
        if result.est.is_infinite:
            report = ec_check(
                [rule.body[s.index] for s in result.steps], initially_bound, self._ec_oracle
            )
            for failure in report.failures:
                self._diagnostics.append(f"rule '{rule}': {failure}")
        steps = self._build_steps(rule, result, initially_bound)
        return JoinNode(
            rule=rule, binding=head_binding, steps=steps, est=result.est,
            pruned=result.pruned,
        )

    def _build_steps(
        self,
        rule: Rule,
        result: OrderResult,
        initially_bound: frozenset,
    ) -> tuple[JoinStep, ...]:
        """Materialize the chosen ordering as plan steps with children."""
        steps: list[JoinStep] = []
        bound = frozenset(initially_bound)
        running_cost = 0.0
        for costed in result.steps:
            literal = rule.body[costed.index]
            est = Estimate(costed.cost_delta, costed.card_after)
            running_cost += costed.cost_delta
            child = None
            method = costed.method
            pipelined = True
            if literal.is_comparison:
                method = "eval"
            elif literal.negated:
                ref = pred_ref(literal)
                if self.program.is_derived(ref):
                    child = self._optimize_ref(ref, BindingPattern.all_free(ref.arity)).plan
                method = "anti_probe"
            else:
                ref = pred_ref(literal)
                if self.program.is_derived(ref):
                    if method == "materialized":
                        child = self._optimize_ref(ref, BindingPattern.all_free(ref.arity)).plan
                        pipelined = False
                    else:
                        binding = BindingPattern.of_literal(literal, bound)
                        child = self._optimize_ref(ref, binding).plan
                        method = "pipelined"
                else:
                    pipelined = method in ("index", "builtin")
            est_source = "static"
            if (
                self.feedback is not None
                and child is None
                and method in LEAF_METHODS
                and self.feedback.has_fanout(literal, bound, method)
            ):
                est_source = "learned"
            steps.append(JoinStep(
                literal=literal, child=child, method=method,
                pipelined=pipelined, est=est, est_source=est_source,
            ))
            bound = binds_after(literal, bound)
        return tuple(steps)

    # ----------------------------------------------------------- CC nodes

    def _applicable_cliques(self) -> list[Clique]:
        return self.graph.recursive_cliques()

    def _support_program(self, clique: Clique) -> list[Rule]:
        """Rules for non-clique predicates the clique (transitively) uses."""
        needed: set[PredicateRef] = set()
        for ref in clique.predicates:
            needed |= set(self.graph.reachable_from(ref))
        needed -= set(clique.predicates)
        return [r for r in self.program if r.head_ref in needed]

    def _reordered_clique_rules(self, clique: Clique) -> list[Rule] | None:
        """Clique rules with bodies in a greedily safe order, or None."""
        out = []
        for rule in clique.rules:
            order, reasons = exists_safe_order(rule.body, frozenset(), self._ec_oracle)
            if order is None:
                self._diagnostics.extend(f"rule '{rule}': {r}" for r in reasons)
                return None
            out.append(rule.with_body([rule.body[i] for i in order]))
        return out

    def _seminaive_estimate(self, clique: Clique) -> Estimate:
        """Cost of materializing the clique's full extension (cached)."""
        cached = self._seminaive_cache.get(clique.predicates)
        if cached is not None:
            return cached
        from ..datalog.safety import _has_value_invention

        if _has_value_invention([r for r in clique.recursive_rules]):
            estimate = Estimate.unsafe()
            self._diagnostics.append(
                f"{clique}: materialized fixpoint is unsafe (rules invent values)"
            )
        else:
            rules = self._reordered_clique_rules(clique)
            if rules is None:
                estimate = Estimate.unsafe()
            else:
                estimate, __ = estimate_fixpoint(
                    Program(rules),
                    lambda overlay: self._estimator(extra_stats=overlay),
                    seed_cards={},
                    params=self.config.params,
                )
        self._seminaive_cache[clique.predicates] = estimate
        return estimate

    def _cpermutations(self, clique: Clique, ref: PredicateRef, binding: BindingPattern):
        """The c-permutation candidates: exhaustive up to the budget,
        then a seeded random sample (the stochastic strategy)."""
        import math as _math

        # The greedy most-bound-first SIP first: it chooses per *replica*
        # (the paper's replication is per rule x binding pattern), which
        # the uniform cross-product enumeration below cannot express.
        yield CPermutation.greedy_sip()
        space = 1
        for rule in clique.rules:
            space *= max(1, _math.factorial(len(rule.body)))
        if space <= self.config.max_cpermutations:
            yield from enumerate_cpermutations(clique, ref, binding)
            return
        yield CPermutation.identity()
        import zlib

        stable = zlib.crc32(f"{ref}:{binding.code}".encode())
        rng = random.Random(self.config.seed ^ stable)
        for __ in range(self.config.max_cpermutations - 1):
            defaults = {}
            for index, rule in enumerate(clique.rules):
                perm = list(range(len(rule.body)))
                rng.shuffle(perm)
                defaults[index] = tuple(perm)
            yield CPermutation(defaults=defaults)

    def _optimize_cc(self, ref: PredicateRef, binding: BindingPattern) -> _MemoEntry:
        """Step 3: choose c-permutation + recursive method for a clique."""
        with self._tracer.span(f"optimize:cc:{ref.name}", kind="optimizer") as span:
            span.note(binding=binding.code)
            entry = self._optimize_cc_inner(ref, binding)
            span.note(method=entry.plan.method, cost=entry.est.cost)
            return entry

    def _optimize_cc_inner(self, ref: PredicateRef, binding: BindingPattern) -> _MemoEntry:
        self.counters["cc_optimizations"] += 1
        clique = self.graph.clique_of(ref)
        assert clique is not None
        params = self.config.params
        support = self._support_program(clique)

        seminaive_est = self._seminaive_estimate(clique)
        best_node: FixpointNode | None = None
        best_est = Estimate.unsafe()

        # The materialized (semi-naive) execution is binding-independent:
        # compute everything, filter by the subquery keys.
        if "seminaive" in self.config.recursive_methods and not seminaive_est.is_infinite:
            selectivity = 1.0
            ndvs = derived_ndvs(seminaive_est.card, ref.arity, params)
            for position in binding.bound_positions:
                selectivity /= max(1.0, ndvs[position])
            probe_est = Estimate(
                seminaive_est.cost + params.probe_weight,
                max(1.0, seminaive_est.card * selectivity),
            )
            rules = self._reordered_clique_rules(clique) or list(clique.rules)
            best_node = FixpointNode(
                ref=ref,
                binding=binding,
                method="seminaive",
                program=Program(rules + support),
                answer_predicate=ref.name,
                seed_predicate=None,
                seed_arity=0,
                est=probe_est,
                ndvs=ndvs,
            )
            best_est = probe_est
        if "naive" in self.config.recursive_methods and not seminaive_est.is_infinite:
            # naive re-derivation: same result, roughly rounds× the work
            naive_est = Estimate(
                seminaive_est.cost * params.fixpoint_rounds, seminaive_est.card
            )
            if naive_est.cost < best_est.cost:
                rules = self._reordered_clique_rules(clique) or list(clique.rules)
                best_node = FixpointNode(
                    ref=ref, binding=binding, method="naive",
                    program=Program(rules + support),
                    answer_predicate=ref.name, seed_predicate=None, seed_arity=0,
                    est=naive_est,
                    ndvs=derived_ndvs(naive_est.card, ref.arity, params),
                )
                best_est = naive_est

        bound_methods = [
            m
            for m in self.config.recursive_methods
            if m in ("magic", "supplementary", "counting", "qsqn")
        ]
        if binding.bound_count > 0 and bound_methods:
            seen_adorned: set[str] = set()
            governor = self._governor
            candidates = 0
            pruned_duplicates = 0
            bb = self.config.search == "bb"
            # Structural sharing across c-permutations of the same clique:
            # whole-body estimates are memoized by (literal sequence,
            # frontier, derived-overlay cards), so two cperms that agree
            # on a rule's prefix pay for it once; per-replica EC verdicts
            # are memoized the same way.  Under search="full" the cache
            # only *counts* body costings (no reuse) so plans_costed stays
            # comparable across the two modes.
            body_cache = _BodyEstimateCache(reuse=bb)
            ec_memo: dict[tuple, bool] = {} if bb else None
            with self._tracer.span(
                f"optimize:enumerate:{ref.name}", kind="cperm"
            ) as espan:
                for cperm in self._cpermutations(clique, ref, binding):
                    if governor is not None:
                        governor.soft_checkpoint("optimizer:cperm")
                        # Always cost at least the greedy-SIP candidate so an
                        # expired deadline still yields a bound-method plan.
                        if candidates >= 1 and governor.deadline_exceeded():
                            self.counters["deadline_downgrades"] += 1
                            if self._metrics is not None:
                                self._metrics.inc(
                                    "optimizer_degradations_total", kind="cperm"
                                )
                            self._diagnostics.append(
                                f"optimizer deadline exceeded: c-permutation "
                                f"search for {ref}{binding} truncated after "
                                f"{candidates} candidates"
                            )
                            break
                    candidates += 1
                    self.counters["cpermutations"] += 1
                    adorned = adorn_clique(
                        clique, ref, binding, cperm,
                        derived_predicates=self.program.derived_predicates,
                    )
                    signature = str(adorned)
                    if signature in seen_adorned:
                        pruned_duplicates += 1
                        if bb:
                            self._charge_search(0, 1)
                        continue
                    seen_adorned.add(signature)
                    with self._tracer.span(
                        f"optimize:adorn:{ref.name}", kind="optimizer"
                    ) as aspan:
                        candidate = self._cost_adorned(
                            adorned, support, bound_methods,
                            cost_cap=best_est.cost if bb else INFINITE_COST,
                            ec_memo=ec_memo,
                            body_cache=body_cache,
                        )
                        aspan.note(safe=candidate is not None)
                    if candidate is not None and candidate.est.cost < best_est.cost:
                        best_node = candidate
                        best_est = candidate.est
                self._charge_search(body_cache.misses, body_cache.hits)
                espan.note(
                    candidates=candidates,
                    distinct=len(seen_adorned),
                    pruned_duplicates=pruned_duplicates,
                    prefix_memo_hits=body_cache.hits,
                )

        if best_node is None:
            self._diagnostics.append(
                f"{clique}: no safe recursive method for binding {binding} of {ref}"
            )
            rules = list(clique.rules)
            best_node = FixpointNode(
                ref=ref, binding=binding, method="seminaive",
                program=Program(rules + support),
                answer_predicate=ref.name, seed_predicate=None, seed_arity=0,
                est=Estimate.unsafe(),
                ndvs=derived_ndvs(INFINITE_COST, ref.arity, params),
            )
        elif self.feedback is not None and not best_node.est.is_infinite:
            learned = self.feedback.learned_node_card(
                "cc", ref, binding.code, best_node.method, best_node.est.card
            )
            if learned is not None and learned != best_node.est.card:
                self._diagnostics.append(
                    f"feedback: {ref}{binding} ({best_node.method}) output "
                    f"cardinality learned {learned:.1f} "
                    f"(static {best_node.est.card:.1f})"
                )
                best_node = replace(
                    best_node,
                    est=Estimate(best_node.est.cost, learned),
                    ndvs=derived_ndvs(learned, ref.arity, params),
                )
        return _MemoEntry(plan=best_node, est=best_node.est, ndvs=best_node.ndvs)

    def _cost_adorned(
        self,
        adorned: AdornedClique,
        support: list[Rule],
        methods: Sequence[str],
        cost_cap: float = INFINITE_COST,
        ec_memo: dict | None = None,
        body_cache: "_BodyEstimateCache | None" = None,
    ) -> FixpointNode | None:
        """Price one adorned program under each applicable bound method.

        ``cost_cap`` carries the incumbent cost across c-permutations:
        fixpoint estimation stops once it cannot beat the cap (the cap is
        choice-preserving — see :func:`estimate_fixpoint`).  ``ec_memo``
        shares EC verdicts for identical (rule, head adornment) replicas
        across c-permutations; ``body_cache`` shares whole-body estimates
        for shared order prefixes.
        """
        params = self.config.params

        # Safety of the pipelined fixpoint: EC of every adorned body in
        # its permutation order, and a well-founded iteration order.
        # Different c-permutations replicate many (rule, adornment) pairs
        # verbatim, so the verdict is memoized on that signature.
        for adorned_rule in adorned.rules:
            ec_key = (str(adorned_rule.rule), adorned_rule.head_adornment.code)
            if ec_memo is not None and ec_key in ec_memo:
                if not ec_memo[ec_key]:
                    return None
                continue
            bound0 = head_bound_vars(adorned_rule.rule.head, adorned_rule.head_adornment)
            report = ec_check(adorned_rule.rule.body, bound0, self._ec_oracle)
            if ec_memo is not None:
                ec_memo[ec_key] = report.ok
            if not report.ok:
                self._diagnostics.extend(
                    f"adorned rule '{adorned_rule.rule}': {f}" for f in report.failures
                )
                return None
        wf = well_founded_order(adorned)
        if not wf.ok:
            self._diagnostics.append(f"{adorned.query_predicate}: {wf.argument}")
            return None

        # Optimize external (non-clique derived) goals for their adornments
        # — OPT step 3.1.ii — so the oracle has memoized estimates ready.
        for literal, pattern in adorned.external_goals:
            self._optimize_ref(pred_ref(literal), pattern)

        if body_cache is not None:
            factory = lambda overlay: _CachingEstimator(  # noqa: E731
                self._estimator(extra_stats=overlay), body_cache
            )
        else:
            factory = lambda overlay: self._estimator(extra_stats=overlay)  # noqa: E731

        has_aggregate = any(ar.rule.is_aggregate for ar in adorned.rules)
        best: FixpointNode | None = None
        for method in methods:
            cap = min(cost_cap, best.est.cost if best is not None else INFINITE_COST)
            level_indexed: frozenset[str] = frozenset()
            est_scale = 1.0
            if method == "magic":
                rewritten = magic_rewrite(adorned)
                seed_cards = {rewritten.seed_predicate: (1.0, rewritten.seed_arity)}
            elif method in ("supplementary", "qsqn"):
                if method == "qsqn" and has_aggregate:
                    continue  # QSQN evaluates tuple-at-a-time; no aggregate path
                rewritten = supplementary_magic_rewrite(adorned)
                seed_cards = {rewritten.seed_predicate: (1.0, rewritten.seed_arity)}
                if method == "qsqn":
                    # QSQN materializes the same supplement relations as the
                    # supplementary-magic fixpoint, driven by queues instead
                    # of rounds; its price is that estimate scaled by
                    # params.qsqn_weight.  When the weight shrinks the
                    # estimate, the cap must grow by the inverse so a capped
                    # run can never be an underestimate of a winning plan.
                    est_scale = max(params.qsqn_weight, 0.0)
                    if est_scale <= 0.0:
                        cap = INFINITE_COST
                    elif est_scale < 1.0 and not math.isinf(cap):
                        cap = cap / est_scale
            else:
                if not counting_applicable(adorned):
                    continue
                if not self._counting_data_safe(adorned):
                    continue
                rewritten = counting_rewrite(adorned)
                seed_cards = {rewritten.seed_predicate: (1.0, rewritten.seed_arity + 1)}
                level_indexed = rewritten.level_predicates
            est, __ = estimate_fixpoint(
                rewritten.program,
                factory,
                seed_cards=seed_cards,
                params=params,
                level_indexed=level_indexed,
                cost_cap=cap if self.config.search == "bb" else INFINITE_COST,
            )
            if body_cache is None:
                # direct callers without a shared cache: one candidate costed
                self._charge_search(1, 0)
            if est_scale != 1.0:
                est = Estimate(est.cost * est_scale, est.card)
            if est.is_infinite:
                continue
            if not math.isinf(cost_cap) and est.cost >= cost_cap:
                # Capped (or merely dominated) candidate: the incumbent from
                # an earlier c-permutation already beats it.
                self._charge_search(0, 1)
                continue
            if method == "qsqn":
                # The QSQN engine drives the *adorned* rules directly (it
                # builds its own supplement stores); the rewritten program
                # was only priced, not shipped.
                node = FixpointNode(
                    ref=adorned.query_ref,
                    binding=adorned.query_adornment,
                    method=method,
                    program=Program(
                        [ar.rule for ar in adorned.rules]
                    ).extend(support),
                    answer_predicate=adorned.query_predicate,
                    seed_predicate=None,
                    seed_arity=adorned.query_adornment.bound_count,
                    adorned=adorned,
                    est=est,
                    ndvs=derived_ndvs(est.card, adorned.query_ref.arity, params),
                )
            else:
                node = FixpointNode(
                    ref=adorned.query_ref,
                    binding=adorned.query_adornment,
                    method=method,
                    program=rewritten.program.extend(support),
                    answer_predicate=rewritten.answer_predicate,
                    seed_predicate=rewritten.seed_predicate,
                    seed_arity=rewritten.seed_arity,
                    adorned=adorned,
                    est=est,
                    ndvs=derived_ndvs(est.card, adorned.query_ref.arity, params),
                    answer_any_level=getattr(rewritten, "answer_any_level", False),
                )
            if best is None or node.est.cost < best.est.cost:
                best = node
        return best

    def _counting_data_safe(self, adorned: AdornedClique) -> bool:
        """Counting terminates only over acyclic data: every base relation
        in a recursive rule's pre-recursive prefix must be declared or
        measured acyclic (condition 3 in :mod:`repro.datalog.counting`)."""
        from ..datalog.bindings import split_adorned_name

        for adorned_rule in adorned.rules:
            if not adorned_rule.is_recursive:
                continue
            for literal in adorned_rule.rule.body:
                if literal.is_comparison:
                    continue
                base_name, pattern = split_adorned_name(literal.predicate)
                if pattern is not None:
                    break  # reached the recursive literal: prefix ends
                stats = self.stats.stats_for(literal.predicate)
                if stats is None or stats.acyclic is not True:
                    return False
        return True


class _BodyEstimateCache:
    """Whole-body estimate memo shared across c-permutations of a clique.

    C-permutations of the same clique replicate most rule bodies verbatim
    (only the permuted prefix differs), so their rewritten programs share
    rule bodies — and :func:`estimate_fixpoint` re-prices each body once
    per round.  The memo key is the literal sequence, the frontier
    (initially bound variables + initial cardinality), and the derived
    overlay cards the body can see; hits are "plans pruned" (costings
    avoided), misses are "plans costed".  ``reuse=False`` degrades the
    cache to a pure counter (every call is a miss) — the search="full"
    baseline, where plans_costed then measures the legacy enumerator's
    work in the same unit."""

    __slots__ = ("entries", "hits", "misses", "reuse")

    def __init__(self, reuse: bool = True) -> None:
        self.entries: dict = {}
        self.hits = 0
        self.misses = 0
        self.reuse = reuse


class _CachingEstimator:
    """Wrap a :class:`BodyEstimator`, memoizing ``body_estimate`` calls
    into a shared :class:`_BodyEstimateCache` (see its docstring for the
    key).  Estimation inside one ``optimize()`` call is deterministic —
    derived-goal estimates are memoized per binding and feedback is a
    static snapshot — so equal keys always reprice identically."""

    def __init__(self, inner: BodyEstimator, cache: _BodyEstimateCache):
        self._inner = inner
        self._cache = cache
        self.params = inner.params
        self.stats = inner.stats

    def stats_for(self, name: str, arity: int):
        return self._inner.stats_for(name, arity)

    def literal_step(self, state, literal, method=None):
        return self._inner.literal_step(state, literal, method)

    def body_estimate(self, body, initially_bound=frozenset(), initial_card=1.0):
        if not self._cache.reuse:
            self._cache.misses += 1
            return self._inner.body_estimate(body, initially_bound, initial_card)
        overlay = tuple(
            sorted(
                (name, stats.cardinality)
                for name, stats in self._inner.extra_stats.items()
            )
        )
        key = (
            tuple(str(literal) for literal in body),
            frozenset(str(v) for v in initially_bound),
            initial_card,
            overlay,
        )
        cached = self._cache.entries.get(key)
        if cached is not None:
            self._cache.hits += 1
            return cached
        self._cache.misses += 1
        result = self._inner.body_estimate(body, initially_bound, initial_card)
        self._cache.entries[key] = result
        return result


class _ForcedMethodEstimator:
    """Estimator wrapper that pins every base join step to one method.

    Used by the Prolog-style baseline (textual order + nested loops) in
    the end-to-end experiment.
    """

    def __init__(self, inner: BodyEstimator, method: str):
        self._inner = inner
        self._method = method
        self.params = inner.params
        self.stats = inner.stats

    def stats_for(self, name: str, arity: int):
        return self._inner.stats_for(name, arity)

    def literal_step(self, state, literal, method=None):
        if literal.is_comparison or literal.negated:
            return self._inner.literal_step(state, literal, method)
        if self._inner.derived_oracle(literal, BindingPattern.of_literal(literal, state.bound)):
            return self._inner.literal_step(state, literal, method)
        return self._inner.literal_step(state, literal, self._method)

    def body_estimate(self, body, initially_bound=frozenset(), initial_card=1.0):
        return self._inner.body_estimate(body, initially_bound, initial_card)
