"""Simulated annealing over join orders and c-permutations (Section 7.1/7.3).

The paper characterizes its stochastic strategy entirely by the *neighbor
relation*:

* conjunctive queries — "define a neighbor to be any permutation that
  differs in exactly two places"; the closure of that relation is the
  whole permutation space;
* recursive cliques — a neighbor of a c-permutation changes exactly one
  of the per-rule permutations, by interchanging exactly two literals.

:func:`anneal` is the shared walker: given any state space expressed as
(initial state, neighbor sampler, cost function) it runs a classical
geometric-cooling annealing schedule and reports the best state seen and
the number of cost evaluations spent — the quantity EXP-2 compares
against exhaustive enumeration.  Unsafe states (infinite cost) are
handled by a large finite surrogate so the walk can escape them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from ..cost.estimates import BodyEstimator
from ..datalog.literals import Literal
from ..datalog.terms import Variable
from .conjunctive import OrderResult, cost_order, split_joinable

State = TypeVar("State")

#: Finite surrogate for infinite cost inside acceptance probabilities.
_UNSAFE_SURROGATE = 1e30


@dataclass(frozen=True, slots=True)
class AnnealingSchedule:
    """Cooling parameters; the defaults follow common practice [IW 87]."""

    initial_temperature: float | None = None  #: None: derived from initial cost
    cooling: float = 0.9
    steps_per_temperature: int = 16
    minimum_temperature_fraction: float = 1e-4
    max_evaluations: int = 2000


@dataclass(frozen=True, slots=True)
class AnnealingResult:
    state: object
    cost: float
    evaluations: int


def anneal(
    initial: State,
    neighbor: Callable[[State, random.Random], State],
    cost_of: Callable[[State], float],
    rng: random.Random,
    schedule: AnnealingSchedule | None = None,
) -> AnnealingResult:
    """Generic simulated annealing: random walk under the neighbor relation."""
    schedule = schedule or AnnealingSchedule()

    def finite(cost: float) -> float:
        return _UNSAFE_SURROGATE if math.isinf(cost) else cost

    current = initial
    current_cost = cost_of(current)
    evaluations = 1
    best, best_cost = current, current_cost

    temperature = schedule.initial_temperature
    if temperature is None:
        temperature = max(finite(current_cost) * 0.5, 1.0)
    floor = temperature * schedule.minimum_temperature_fraction

    while temperature > floor and evaluations < schedule.max_evaluations:
        for __ in range(schedule.steps_per_temperature):
            if evaluations >= schedule.max_evaluations:
                break
            candidate = neighbor(current, rng)
            candidate_cost = cost_of(candidate)
            evaluations += 1
            delta = finite(candidate_cost) - finite(current_cost)
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current, current_cost = candidate, candidate_cost
            if finite(candidate_cost) < finite(best_cost):
                best, best_cost = candidate, candidate_cost
        temperature *= schedule.cooling
    return AnnealingResult(best, best_cost, evaluations)


def _swap_two(perm: tuple[int, ...], rng: random.Random) -> tuple[int, ...]:
    """The paper's neighbor: interchange two positions."""
    if len(perm) < 2:
        return perm
    i, j = rng.sample(range(len(perm)), 2)
    out = list(perm)
    out[i], out[j] = out[j], out[i]
    return tuple(out)


def annealing_order(
    body: Sequence[Literal],
    initially_bound: frozenset[Variable],
    estimator: BodyEstimator,
    rng: random.Random | None = None,
    schedule: AnnealingSchedule | None = None,
) -> OrderResult:
    """Simulated-annealing join ordering with the swap-two neighborhood."""
    rng = rng or random.Random(0)
    joinable, floating = split_joinable(body)
    if len(joinable) <= 1:
        return cost_order(body, tuple(joinable), floating, initially_bound, estimator)

    cache: dict[tuple[int, ...], OrderResult] = {}

    def cost_of(perm: tuple[int, ...]) -> float:
        result = cache.get(perm)
        if result is None:
            result = cost_order(body, perm, floating, initially_bound, estimator)
            cache[perm] = result
        return result.est.cost

    initial = tuple(joinable)
    outcome = anneal(initial, _swap_two, cost_of, rng, schedule)
    best = cache[outcome.state]  # type: ignore[index]
    return OrderResult(best.steps, best.est, outcome.evaluations)
