"""Join-order search for conjunctive queries (Section 7.1).

"An important lesson learnt from the implementation of relational
database systems is that the execution space of a conjunctive query can
be viewed as the orderings of joins" — so the unit of search here is a
permutation of the *joinable* body literals (positive, non-evaluable).
Comparisons and negated goals float: each is applied at the earliest
position where it is effectively computable, which loses no optimality
(they only shrink intermediate results under a monotone cost model) and
realizes the PS part of the execution space for free, exactly as the
paper folds preselection into the join choice.

Two enumeration strategies live here:

* :func:`exhaustive_order` — all n! permutations (the reference the other
  strategies are measured against; the paper: "because of its complete
  nature, supplies the basis for assessing the soundness of the overall
  approach");
* :func:`dp_order` — the [Sel 79] dynamic program over the 2^n subsets,
  "reducing the n! permutations to 2^n choices" (Section 7.2).

Both delegate per-step costing to :class:`~repro.cost.estimates.BodyEstimator`,
so the EL (method) decision stays local to a fixed permutation, as the
paper observes.  Unsafe permutations cost ``inf`` and lose automatically
(Section 8.2); :func:`enumerate_orders` exposes the full cost spectrum
for the EXP-6 benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..cost.estimates import BodyEstimator
from ..cost.model import Estimate, StepState
from ..datalog.literals import Literal
from ..datalog.safety import literal_is_ec
from ..datalog.terms import Variable


@dataclass(frozen=True, slots=True)
class CostedStep:
    """One literal placed in the chosen order, with its local decisions."""

    index: int          #: position of the literal in the original body
    method: str         #: EL label chosen for this step
    cost_delta: float   #: cost added by this step
    card_after: float   #: bindings-table cardinality after this step


@dataclass(frozen=True, slots=True)
class OrderResult:
    """A fully costed body ordering."""

    steps: tuple[CostedStep, ...]
    est: Estimate
    evaluations: int = 0  #: permutations costed to find this result

    @property
    def order(self) -> tuple[int, ...]:
        return tuple(s.index for s in self.steps)

    @property
    def is_safe(self) -> bool:
        return not self.est.is_infinite


def split_joinable(body: Sequence[Literal]) -> tuple[list[int], list[int]]:
    """Partition body positions into joinable and floating literals."""
    joinable: list[int] = []
    floating: list[int] = []
    for index, literal in enumerate(body):
        if literal.is_comparison or literal.negated:
            floating.append(index)
        else:
            joinable.append(index)
    return joinable, floating


def cost_order(
    body: Sequence[Literal],
    joinable_perm: Sequence[int],
    floating: Sequence[int],
    initially_bound: frozenset[Variable],
    estimator: BodyEstimator,
) -> OrderResult:
    """Cost one permutation of the joinable literals.

    Floating literals are flushed greedily as soon as they become EC;
    leftovers are force-applied at the end (pricing the order unsafe).
    """
    state = StepState(card=1.0, bound=frozenset(initially_bound), cost=0.0)
    steps: list[CostedStep] = []
    pending = list(floating)

    def flush(current: StepState) -> StepState:
        progressed = True
        while progressed and pending:
            progressed = False
            for position in list(pending):
                literal = body[position]
                ok, __ = literal_is_ec(literal, current.bound)
                if not ok:
                    continue
                before = current.cost
                current, method = estimator.literal_step(current, literal)
                steps.append(
                    CostedStep(position, method, current.cost - before, current.card)
                )
                pending.remove(position)
                progressed = True
        return current

    state = flush(state)
    for position in joinable_perm:
        before = state.cost
        state, method = estimator.literal_step(state, body[position])
        steps.append(CostedStep(position, method, state.cost - before, state.card))
        state = flush(state)

    for position in pending:  # never became EC: unsafe order
        before = state.cost
        state, method = estimator.literal_step(state, body[position])
        steps.append(CostedStep(position, method, state.cost - before, state.card))

    return OrderResult(tuple(steps), Estimate(state.cost, state.card))


def enumerate_orders(
    body: Sequence[Literal],
    initially_bound: frozenset[Variable],
    estimator: BodyEstimator,
) -> Iterator[OrderResult]:
    """Yield every joinable permutation, costed — the PR execution space.

    This is the raw material of the EXP-6 cost-spectrum experiment and of
    the quality baselines (EXP-1/EXP-2).
    """
    joinable, floating = split_joinable(body)
    for perm in itertools.permutations(joinable):
        yield cost_order(body, perm, floating, initially_bound, estimator)


def exhaustive_order(
    body: Sequence[Literal],
    initially_bound: frozenset[Variable],
    estimator: BodyEstimator,
) -> OrderResult:
    """Full enumeration; optimal over {MP, PR, PS, PP, EL}."""
    best: OrderResult | None = None
    evaluations = 0
    for result in enumerate_orders(body, initially_bound, estimator):
        evaluations += 1
        if best is None or result.est.cost < best.est.cost:
            best = result
    assert best is not None, "a body always has at least the empty permutation"
    return OrderResult(best.steps, best.est, evaluations)


def dp_order(
    body: Sequence[Literal],
    initially_bound: frozenset[Variable],
    estimator: BodyEstimator,
) -> OrderResult:
    """Selinger dynamic programming over subsets of joinable literals.

    Exact for this cost model: the (cost, card, bound) state after a
    subset is order-independent — cardinality is a product of
    selectivities determined by the subset, and floating literals flush
    deterministically from the bound-variable set.
    """
    joinable, floating = split_joinable(body)
    if not joinable:
        return cost_order(body, (), floating, initially_bound, estimator)

    @dataclass
    class _Partial:
        order: tuple[int, ...]
        result: OrderResult

    table: dict[frozenset[int], _Partial] = {}
    evaluations = 0

    for position in joinable:
        result = cost_order(body, (position,), floating, initially_bound, estimator)
        table[frozenset((position,))] = _Partial((position,), result)
        evaluations += 1

    for size in range(2, len(joinable) + 1):
        next_table: dict[frozenset[int], _Partial] = {}
        for subset, partial in table.items():
            if len(subset) != size - 1:
                continue
            for position in joinable:
                if position in subset:
                    continue
                order = partial.order + (position,)
                result = cost_order(body, order, floating, initially_bound, estimator)
                evaluations += 1
                key = subset | {position}
                incumbent = next_table.get(key)
                if incumbent is None or result.est.cost < incumbent.result.est.cost:
                    next_table[key] = _Partial(order, result)
        table.update(next_table)

    full = table[frozenset(joinable)]
    return OrderResult(full.result.steps, full.result.est, evaluations)
