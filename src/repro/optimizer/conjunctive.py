"""Join-order search for conjunctive queries (Section 7.1).

"An important lesson learnt from the implementation of relational
database systems is that the execution space of a conjunctive query can
be viewed as the orderings of joins" — so the unit of search here is a
permutation of the *joinable* body literals (positive, non-evaluable).
Comparisons and negated goals float: each is applied at the earliest
position where it is effectively computable, which loses no optimality
(they only shrink intermediate results under a monotone cost model) and
realizes the PS part of the execution space for free, exactly as the
paper folds preselection into the join choice.

Two enumeration strategies live here:

* :func:`exhaustive_order` — all n! permutations (the reference the other
  strategies are measured against; the paper: "because of its complete
  nature, supplies the basis for assessing the soundness of the overall
  approach");
* :func:`dp_order` — the [Sel 79] dynamic program over the 2^n subsets,
  "reducing the n! permutations to 2^n choices" (Section 7.2), with
  branch-and-bound pruning against an incumbent found by a greedy
  connected-first probe.  Admissible completion bounds come from the same
  :class:`~repro.cost.estimates.BodyEstimator` statistics (see
  :class:`_CompletionBounds`), so pruning never changes the chosen cost:
  on every body the pruned search returns a plan cost-identical to
  :func:`exhaustive_order`.

Both delegate per-step costing to :class:`~repro.cost.estimates.BodyEstimator`,
so the EL (method) decision stays local to a fixed permutation, as the
paper observes.  Unsafe permutations cost ``inf`` and lose automatically
(Section 8.2); :func:`enumerate_orders` exposes the full cost spectrum
for the EXP-6 benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..cost.estimates import BodyEstimator, _no_derived
from ..cost.model import Estimate, INFINITE_COST, StepState
from ..datalog.literals import Literal
from ..datalog.safety import literal_is_ec
from ..datalog.terms import Variable


@dataclass(frozen=True, slots=True)
class CostedStep:
    """One literal placed in the chosen order, with its local decisions."""

    index: int          #: position of the literal in the original body
    method: str         #: EL label chosen for this step
    cost_delta: float   #: cost added by this step
    card_after: float   #: bindings-table cardinality after this step


@dataclass(frozen=True, slots=True)
class OrderResult:
    """A fully costed body ordering."""

    steps: tuple[CostedStep, ...]
    est: Estimate
    evaluations: int = 0  #: partial/full orders costed to find this result
    pruned: int = 0  #: partial orders discarded by branch-and-bound

    @property
    def order(self) -> tuple[int, ...]:
        return tuple(s.index for s in self.steps)

    @property
    def is_safe(self) -> bool:
        return not self.est.is_infinite


def split_joinable(body: Sequence[Literal]) -> tuple[list[int], list[int]]:
    """Partition body positions into joinable and floating literals."""
    joinable: list[int] = []
    floating: list[int] = []
    for index, literal in enumerate(body):
        if literal.is_comparison or literal.negated:
            floating.append(index)
        else:
            joinable.append(index)
    return joinable, floating


def cost_order(
    body: Sequence[Literal],
    joinable_perm: Sequence[int],
    floating: Sequence[int],
    initially_bound: frozenset[Variable],
    estimator: BodyEstimator,
) -> OrderResult:
    """Cost one permutation of the joinable literals.

    Floating literals are flushed greedily as soon as they become EC;
    leftovers are force-applied at the end (pricing the order unsafe).
    """
    state = StepState(card=1.0, bound=frozenset(initially_bound), cost=0.0)
    steps: list[CostedStep] = []
    pending = list(floating)

    def flush(current: StepState) -> StepState:
        progressed = True
        while progressed and pending:
            progressed = False
            for position in list(pending):
                literal = body[position]
                ok, __ = literal_is_ec(literal, current.bound)
                if not ok:
                    continue
                before = current.cost
                current, method = estimator.literal_step(current, literal)
                steps.append(
                    CostedStep(position, method, current.cost - before, current.card)
                )
                pending.remove(position)
                progressed = True
        return current

    state = flush(state)
    for position in joinable_perm:
        before = state.cost
        state, method = estimator.literal_step(state, body[position])
        steps.append(CostedStep(position, method, state.cost - before, state.card))
        state = flush(state)

    for position in pending:  # never became EC: unsafe order
        before = state.cost
        state, method = estimator.literal_step(state, body[position])
        steps.append(CostedStep(position, method, state.cost - before, state.card))

    return OrderResult(tuple(steps), Estimate(state.cost, state.card))


def enumerate_orders(
    body: Sequence[Literal],
    initially_bound: frozenset[Variable],
    estimator: BodyEstimator,
) -> Iterator[OrderResult]:
    """Yield every joinable permutation, costed — the PR execution space.

    This is the raw material of the EXP-6 cost-spectrum experiment and of
    the quality baselines (EXP-1/EXP-2).
    """
    joinable, floating = split_joinable(body)
    for perm in itertools.permutations(joinable):
        yield cost_order(body, perm, floating, initially_bound, estimator)


def exhaustive_order(
    body: Sequence[Literal],
    initially_bound: frozenset[Variable],
    estimator: BodyEstimator,
) -> OrderResult:
    """Full enumeration; optimal over {MP, PR, PS, PP, EL}."""
    best: OrderResult | None = None
    evaluations = 0
    for result in enumerate_orders(body, initially_bound, estimator):
        evaluations += 1
        if best is None or result.est.cost < best.est.cost:
            best = result
    assert best is not None, "a body always has at least the empty permutation"
    return OrderResult(best.steps, best.est, evaluations)


class _CompletionBounds:
    """Admissible lower bounds on the cost of completing a partial order.

    The remaining literals must each still be placed; under the estimator's
    cost formulas every placement of a literal with input cardinality ``c``
    charges at least ``c * w`` where ``w = min(n, probe_weight, 1)`` for a
    base relation of ``n`` tuples (the cheapest of the nested/hash/index/
    merge formulas), ``probe_weight`` for a negated goal, and ``1`` for a
    comparison.  The input cardinality at any future placement is at least
    the current cardinality times the product of every remaining literal's
    *maximum possible shrink factor*: ``n / D**arity`` for a base literal
    (``D`` is the largest distinct count over the body's columns, an upper
    bound on every join divisor under the symmetric ``1/max(seen, new)``
    rule) and the declared filter selectivities for comparisons/negation.

    The bound is only claimed when every step is priced from catalog (or
    overlay) statistics with static selectivities: a derived oracle,
    learned feedback fanouts, or builtin hints can price a step below the
    statistics floor, so their presence disables the bound (``lower()``
    returns 0.0 and pruning falls back to the accumulated prefix cost,
    which is always admissible — step deltas are non-negative).
    """

    def __init__(self, body: Sequence[Literal], estimator: BodyEstimator) -> None:
        self.shrink: dict[int, float] = {}
        self.weight: dict[int, float] = {}
        self.enabled = (
            getattr(estimator, "feedback", None) is None
            and getattr(estimator, "derived_oracle", None) is _no_derived
        )
        builtins = getattr(estimator, "builtins", None)
        if self.enabled and builtins is not None:
            for literal in body:
                if literal.is_comparison:
                    continue
                builtin = builtins.get(literal.predicate)
                if builtin is not None and builtin.arity == literal.arity:
                    self.enabled = False
                    break
        if not self.enabled:
            return
        params = estimator.params
        domain = 1.0
        positive = []
        for index, literal in enumerate(body):
            if literal.is_comparison or literal.negated:
                continue
            stats = estimator.stats_for(literal.predicate, literal.arity)
            positive.append((index, literal, stats))
            for position in range(literal.arity):
                domain = max(domain, stats.distinct(position))
        for index, literal, stats in positive:
            floor = stats.cardinality / (domain ** literal.arity)
            self.shrink[index] = min(1.0, floor)
            self.weight[index] = min(stats.cardinality, params.probe_weight, 1.0)
        for index, literal in enumerate(body):
            if literal.negated:
                self.shrink[index] = params.negation_selectivity
                self.weight[index] = params.probe_weight
            elif literal.is_comparison:
                if literal.predicate == "=":
                    self.shrink[index] = params.equality_filter_selectivity
                elif literal.predicate == "!=":
                    self.shrink[index] = params.disequality_selectivity
                else:
                    self.shrink[index] = params.inequality_selectivity
                self.weight[index] = 1.0

    def lower(self, state: StepState, remaining: Sequence[int]) -> float:
        """A cost every completion of *state* must still pay (0 when the
        bound cannot be claimed)."""
        if not self.enabled or not remaining or state.is_infinite:
            return 0.0
        card_floor = state.card
        total_weight = 0.0
        for position in remaining:
            card_floor *= self.shrink.get(position, 0.0)
            total_weight += self.weight.get(position, 0.0)
        return card_floor * total_weight


def _connected(literal: Literal, bound: frozenset) -> bool:
    """A literal extends the current frontier without a cross product when
    it shares a bound variable or carries only ground arguments."""
    return not literal.variables or bool(literal.variables & bound)


def dp_order(
    body: Sequence[Literal],
    initially_bound: frozenset[Variable],
    estimator: BodyEstimator,
    *,
    prune: bool = True,
) -> OrderResult:
    """Selinger dynamic programming over subsets of joinable literals,
    with branch-and-bound pruning against a greedy incumbent.

    Exact for this cost model: the (card, bound, ndv) state after a
    subset is order-independent — cardinality is a product of
    selectivities determined by the subset, and floating literals flush
    deterministically from the bound-variable set — so keeping the
    min-cost entry per subset is a lossless memo.  The table is keyed by
    the literal subset; the bound-variable frontier is a function of the
    subset and is recorded on the entry's state.  Each extension costs
    one incremental ``literal_step`` (plus float flushes) instead of
    re-costing the whole prefix, and cross products are *deferred*:
    connected extensions are explored first and seed the greedy
    incumbent, but disconnected ones are never eliminated (a cross
    product with a tiny relation can be strictly optimal).

    Branch-and-bound (``prune=True``) discards a partial order when its
    accumulated cost plus an admissible completion bound
    (:class:`_CompletionBounds`) already reaches the incumbent; since the
    bound never exceeds the true completion cost, the returned plan is
    cost-identical to :func:`exhaustive_order` on every body.
    """
    joinable, floating = split_joinable(body)
    if not joinable:
        return cost_order(body, (), floating, initially_bound, estimator)

    evaluations = 0
    pruned = 0
    bounds = _CompletionBounds(body, estimator)

    def flush(
        state: StepState, pending: tuple[int, ...], steps: list[CostedStep]
    ) -> tuple[StepState, tuple[int, ...]]:
        remaining = list(pending)
        progressed = True
        while progressed and remaining:
            progressed = False
            for position in list(remaining):
                literal = body[position]
                ok, __ = literal_is_ec(literal, state.bound)
                if not ok:
                    continue
                before = state.cost
                state, method = estimator.literal_step(state, literal)
                steps.append(
                    CostedStep(position, method, state.cost - before, state.card)
                )
                remaining.remove(position)
                progressed = True
        return state, tuple(remaining)

    def extend(
        entry: tuple[StepState, tuple[int, ...], tuple[CostedStep, ...]],
        position: int,
    ) -> tuple[StepState, tuple[int, ...], tuple[CostedStep, ...]]:
        nonlocal evaluations
        evaluations += 1
        state, pending, steps = entry
        out_steps = list(steps)
        before = state.cost
        state, method = estimator.literal_step(state, body[position])
        out_steps.append(CostedStep(position, method, state.cost - before, state.card))
        state, pending = flush(state, pending, out_steps)
        return state, pending, tuple(out_steps)

    def finalize(
        entry: tuple[StepState, tuple[int, ...], tuple[CostedStep, ...]],
    ) -> OrderResult:
        state, pending, steps = entry
        out_steps = list(steps)
        for position in pending:  # never became EC: unsafe order
            before = state.cost
            state, method = estimator.literal_step(state, body[position])
            out_steps.append(
                CostedStep(position, method, state.cost - before, state.card)
            )
        return OrderResult(tuple(out_steps), Estimate(state.cost, state.card))

    root_steps: list[CostedStep] = []
    root_state, root_pending = flush(
        StepState(card=1.0, bound=frozenset(initially_bound), cost=0.0),
        tuple(floating),
        root_steps,
    )
    root = (root_state, root_pending, tuple(root_steps))

    # Greedy incumbent: cheapest next step, connected extensions first —
    # the cross-product-deferring probe whose full cost seeds the bound.
    entry = root
    remaining = list(joinable)
    while remaining:
        best_key = None
        best_position = None
        best_child = None
        for position in remaining:
            child = extend(entry, position)
            key = (not _connected(body[position], entry[0].bound), child[0].cost)
            if best_key is None or key < best_key:
                best_key, best_position, best_child = key, position, child
        remaining.remove(best_position)
        entry = best_child
    best = finalize(entry)
    incumbent_cost = best.est.cost

    # Subset DP, one layer per order length; entries carry the state
    # (with its bound-variable frontier), unflushed floats, and steps.
    table: dict[frozenset[int], tuple] = {frozenset(): root}
    for __ in range(len(joinable)):
        next_table: dict[frozenset[int], tuple] = {}
        for subset, entry in table.items():
            state = entry[0]
            candidates = sorted(
                (p for p in joinable if p not in subset),
                key=lambda p: (not _connected(body[p], state.bound), p),
            )
            for position in candidates:
                child = extend(entry, position)
                child_state = child[0]
                if prune and incumbent_cost < INFINITE_COST:
                    left = [
                        p for p in joinable if p not in subset and p != position
                    ] + list(child[1])
                    if child_state.cost + bounds.lower(child_state, left) >= incumbent_cost:
                        pruned += 1
                        continue
                key = subset | {position}
                current = next_table.get(key)
                if current is not None and current[0].cost <= child_state.cost:
                    continue
                next_table[key] = child
        table = next_table

    full = table.get(frozenset(joinable))
    if full is not None:
        candidate = finalize(full)
        if candidate.est.cost < best.est.cost:
            best = candidate
    return OrderResult(best.steps, best.est, evaluations, pruned)
