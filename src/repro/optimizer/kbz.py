"""The quadratic join-ordering algorithm of [KBZ 86] (Section 7.1).

"In [KBZ 86], we presented a quadratic time algorithm that computes the
optimal ordering of conjunctive queries when the query is acyclic and the
cost function satisfies a linearity property called the Adjacent Sequence
Interchange (ASI) property.  Further, this algorithm was extended to
include cyclic queries and other cost models."

Implementation (the classical IK/KBZ scheme):

1. build the *join graph* over the joinable literals (an edge where two
   literals share an unbound variable), with edge selectivities from
   catalog statistics;
2. if the graph is cyclic, reduce it to a maximum-selectivity spanning
   tree (i.e. keep the most selective edges — the standard cyclic
   extension); if it is disconnected, connect components with
   cross-product edges of selectivity 1;
3. for every choice of root: orient the tree, give each non-root node
   the ASI measures ``T = s · |R|`` and ``C = T``, and linearize
   bottom-up by *rank* ``(T − 1)/C`` with chain normalization (merging a
   parent with the head of its chain whenever their ranks invert) — this
   is optimal for the ASI cost function on the rooted tree;
4. cost each root's linearization with the system's real estimator and
   return the best — so the quadratic strategy plugs into the same
   cost-model black box as the other strategies, and the quality numbers
   of EXP-1 compare like with like (exactly [Vil 87]'s methodology).

Complexity: O(n²) per root and n roots gives O(n³) worst case here; the
classical presentation shares work across roots for O(n²) total, a
refinement that does not change the chosen orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..cost.estimates import BodyEstimator
from ..datalog.literals import Literal
from ..datalog.terms import Variable, variables_of
from .conjunctive import OrderResult, cost_order, split_joinable


@dataclass
class _Node:
    """A (possibly compound) chain element with ASI measures."""

    positions: tuple[int, ...]
    t: float
    c: float

    @property
    def rank(self) -> float:
        if self.c <= 0:
            return 0.0
        return (self.t - 1.0) / self.c

    def merge(self, other: "_Node") -> "_Node":
        """Compound node: self followed by other (ASI composition)."""
        return _Node(
            positions=self.positions + other.positions,
            t=self.t * other.t,
            c=self.c + self.t * other.c,
        )


def _edge_selectivity(
    left: Literal, right: Literal, estimator: BodyEstimator, bound: frozenset[Variable]
) -> float:
    """Join selectivity between two literals: 1/max(ndv) per shared var."""
    shared = (left.variables & right.variables) - bound
    if not shared:
        return 1.0
    left_stats = estimator.stats_for(left.predicate, left.arity)
    right_stats = estimator.stats_for(right.predicate, right.arity)

    def ndv_of(literal: Literal, stats, var: Variable) -> float:
        best = 1.0
        for position, arg in enumerate(literal.args):
            if var in variables_of(arg):
                best = max(best, stats.distinct(position))
        return best

    selectivity = 1.0
    for var in shared:
        selectivity /= max(ndv_of(left, left_stats, var), ndv_of(right, right_stats, var))
    return selectivity


def _base_cardinality(
    literal: Literal, estimator: BodyEstimator, bound: frozenset[Variable]
) -> float:
    """|R| reduced by the initially bound argument positions."""
    stats = estimator.stats_for(literal.predicate, literal.arity)
    card = stats.cardinality
    for position, arg in enumerate(literal.args):
        if variables_of(arg) and variables_of(arg) <= bound:
            card /= max(1.0, stats.distinct(position))
    return max(card, 1.0)


def _spanning_tree(
    n: int, edges: dict[tuple[int, int], float]
) -> dict[int, list[int]]:
    """Keep the most selective edges forming a spanning forest (Kruskal),
    then connect remaining components with selectivity-1 edges."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    adjacency: dict[int, list[int]] = {i: [] for i in range(n)}
    for (a, b), __ in sorted(edges.items(), key=lambda item: item[1]):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
            adjacency[a].append(b)
            adjacency[b].append(a)
    # connect leftover components (cross products)
    for node in range(1, n):
        if find(node) != find(0):
            parent[find(node)] = find(0)
            adjacency[0].append(node)
            adjacency[node].append(0)
    return adjacency


def _linearize(
    root: int,
    adjacency: dict[int, list[int]],
    t_values: dict[tuple[int, int], float],
) -> list[int]:
    """Rank-based linearization of the tree rooted at *root*.

    ``t_values[(parent, child)]`` is the child's T measure under that
    orientation.  Returns node order, root first.
    """

    def chain_of(node: int, parent: int | None) -> list[_Node]:
        children = [c for c in adjacency[node] if c != parent]
        merged: list[_Node] = []
        for child in children:
            t = t_values[(node, child)]
            child_chain = chain_of(child, node)
            head = _Node((child,), t, max(t, 1e-12))
            # normalization: absorb the child's chain heads while ranks invert
            chain = [head] + child_chain
            normalized: list[_Node] = []
            for element in chain:
                normalized.append(element)
                while len(normalized) >= 2 and normalized[-2].rank > normalized[-1].rank:
                    tail = normalized.pop()
                    normalized[-1] = normalized[-1].merge(tail)
            merged = _merge_chains(merged, normalized)
        return merged

    order: list[int] = [root]
    for element in chain_of(root, None):
        order.extend(element.positions)
    return order


def _merge_chains(left: list[_Node], right: list[_Node]) -> list[_Node]:
    """Merge two rank-sorted chains by ascending rank (stable)."""
    out: list[_Node] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i].rank <= right[j].rank:
            out.append(left[i])
            i += 1
        else:
            out.append(right[j])
            j += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return out


def kbz_order(
    body: Sequence[Literal],
    initially_bound: frozenset[Variable],
    estimator: BodyEstimator,
) -> OrderResult:
    """The KBZ quadratic strategy: rank-ordered spanning-tree linearization.

    Falls back gracefully for degenerate inputs (0 or 1 joinable
    literals).  The returned :class:`OrderResult` counts one evaluation
    per candidate root, making strategy-efficiency comparisons (EXP-1,
    EXP-3) straightforward.
    """
    joinable, floating = split_joinable(body)
    if len(joinable) <= 1:
        return cost_order(body, tuple(joinable), floating, initially_bound, estimator)

    literals = [body[i] for i in joinable]
    n = len(literals)
    bound = frozenset(initially_bound)

    edges: dict[tuple[int, int], float] = {}
    for i in range(n):
        for j in range(i + 1, n):
            shared = (literals[i].variables & literals[j].variables) - bound
            if shared:
                edges[(i, j)] = _edge_selectivity(literals[i], literals[j], estimator, bound)

    adjacency = _spanning_tree(n, edges)

    def edge_sel(a: int, b: int) -> float:
        return edges.get((min(a, b), max(a, b)), 1.0)

    cards = [_base_cardinality(literal, estimator, bound) for literal in literals]

    best: OrderResult | None = None
    best_perm: tuple[int, ...] = tuple(joinable)
    evaluations = 0
    for root in range(n):
        t_values: dict[tuple[int, int], float] = {}
        stack = [(root, None)]
        while stack:
            node, parent = stack.pop()
            for child in adjacency[node]:
                if child == parent:
                    continue
                t_values[(node, child)] = max(edge_sel(node, child) * cards[child], 1e-12)
                stack.append((child, node))
        local_order = _linearize(root, adjacency, t_values)
        permutation = tuple(joinable[i] for i in local_order)
        result = cost_order(body, permutation, floating, initially_bound, estimator)
        evaluations += 1
        if best is None or result.est.cost < best.est.cost:
            best = result
            best_perm = permutation
    assert best is not None

    # The "other cost models" extension ([KBZ 86] as evaluated by
    # [Vil 87]): the rank linearization is exact only for ASI cost
    # functions, so finish with a bounded adjacent-transposition descent
    # under the real cost model.  O(n) evaluations per sweep, at most
    # n sweeps — the overall budget stays quadratic.
    improved = True
    sweeps = 0
    while improved and sweeps < n:
        improved = False
        sweeps += 1
        for i in range(len(best_perm) - 1):
            candidate = list(best_perm)
            candidate[i], candidate[i + 1] = candidate[i + 1], candidate[i]
            result = cost_order(body, tuple(candidate), floating, initially_bound, estimator)
            evaluations += 1
            if result.est.cost < best.est.cost:
                best = result
                best_perm = tuple(candidate)
                improved = True
    return OrderResult(best.steps, best.est, evaluations)
