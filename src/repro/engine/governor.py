"""Execution governor: deadlines, query-wide budgets, cooperative cancellation.

The paper prices unsafe executions at infinite cost (Section 8), but the
static analysis is conservative by design — plans that slip through it
(runaway recursion, explosive joins, slow optimizer searches) must be
stopped at run time.  LDL++, the production descendant of the paper's
system, grew exactly these limits; this module is our version.

One :class:`ResourceGovernor` spans the *whole* execution of one query —
every clique, every operator, every fixpoint node — not just a single
fixpoint.  It enforces four budgets:

* ``deadline_seconds`` — wall-clock deadline, measured from :meth:`arm`;
* ``max_tuples`` — an upper bound on *live* tuples: retained results of
  earlier operators (:meth:`retain`) + the current fixpoint's workspace
  (:meth:`settle` / :meth:`checkpoint_round`) + the in-flight
  intermediate rows of the operator currently executing (:meth:`tick`);
* ``max_memory_bytes`` — the same live set priced at ``bytes_per_tuple``
  each (a deliberately coarse, deterministic model: tuples are
  uniform-ish in this engine and tests must not depend on allocator
  behaviour);
* ``max_iterations`` — cumulative fixpoint rounds across all cliques.

Enforcement is *cooperative*: hot loops call :meth:`tick`, which is a
counter decrement plus an occasional clock check (every
``tick_interval`` calls), so a single explosive join round aborts
mid-join instead of blowing past the budget unobserved.  Coarser sites
(operator entry, fixpoint round boundaries) call :meth:`checkpoint`,
which additionally consults the :class:`~repro.engine.faults.FaultInjector`
when one is attached — that is how every guard path here is testable
deterministically.

Exhausted budgets raise the matching
:class:`~repro.errors.ResourceExhausted` variant carrying the profiler
snapshot and the governor's partial-progress view at abort time.
"""

from __future__ import annotations

import time
from typing import Callable

from ..errors import (
    DeadlineExceeded,
    ExecutionCancelled,
    IterationBudgetExceeded,
    MemoryBudgetExceeded,
    TupleBudgetExceeded,
)

#: A monotonic clock; injectable for tests and clock-skew fault injection.
Clock = Callable[[], float]

#: Defaults mirror the pre-governor per-fixpoint guards, now query-wide.
DEFAULT_MAX_TUPLES = 5_000_000
DEFAULT_MAX_ITERATIONS = 100_000

#: Coarse per-tuple memory price (bytes).  A row is a tuple of interned
#: Constants; ~100 bytes of unique payload per live tuple is the right
#: order of magnitude, and determinism matters more than precision here.
DEFAULT_BYTES_PER_TUPLE = 112


class ResourceGovernor:
    """Cooperative, query-wide resource enforcement.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock budget for the whole query (None = unlimited).
    max_tuples:
        Upper bound on live tuples (retained + workspace + in-flight).
    max_memory_bytes:
        Upper bound on ``live_tuples * bytes_per_tuple``.
    max_iterations:
        Cumulative fixpoint-round budget across all cliques.
    tick_interval:
        How many :meth:`tick` calls between clock/cancellation checks.
    clock:
        Monotonic time source (injectable; see :mod:`repro.engine.faults`).
    faults:
        Optional :class:`~repro.engine.faults.FaultInjector` consulted at
        every :meth:`checkpoint` site.
    profiler:
        Profiler whose counters are snapshotted into abort errors.
    """

    __slots__ = (
        "deadline_seconds",
        "max_tuples",
        "max_memory_bytes",
        "max_iterations",
        "bytes_per_tuple",
        "tick_interval",
        "clock",
        "faults",
        "profiler",
        "tracer",
        "metrics",
        "_armed",
        "_started_at",
        "_skew",
        "_retained",
        "_region_live",
        "_inflight",
        "_iterations",
        "_countdown",
        "_cancel_reason",
        "_resident_charged",
    )

    def __init__(
        self,
        deadline_seconds: float | None = None,
        max_tuples: int | None = DEFAULT_MAX_TUPLES,
        max_memory_bytes: int | None = None,
        max_iterations: int | None = DEFAULT_MAX_ITERATIONS,
        bytes_per_tuple: int = DEFAULT_BYTES_PER_TUPLE,
        tick_interval: int = 1024,
        clock: Clock = time.monotonic,
        faults=None,
        profiler=None,
        tracer=None,
        metrics=None,
    ):
        self.deadline_seconds = deadline_seconds
        self.max_tuples = max_tuples
        self.max_memory_bytes = max_memory_bytes
        self.max_iterations = max_iterations
        self.bytes_per_tuple = bytes_per_tuple
        self.tick_interval = max(1, tick_interval)
        self.clock = clock
        self.faults = faults
        self.profiler = profiler
        self.tracer = tracer
        self.metrics = metrics
        self._armed = False
        self._started_at = 0.0
        self._skew = 0.0
        self._retained = 0      # tuples retained by completed/cached operators
        self._region_live = 0   # the current fixpoint's workspace size
        self._inflight = 0      # intermediate rows of the operator running now
        self._iterations = 0
        self._countdown = self.tick_interval
        self._cancel_reason: str | None = None
        self._resident_charged = False

    # ------------------------------------------------------------ clock

    def arm(self) -> "ResourceGovernor":
        """Start the query clock (idempotent; first caller wins)."""
        if not self._armed:
            self._armed = True
            self._started_at = self.clock()
            if self.metrics is not None:
                self.metrics.inc("governor_grants_total")
        return self

    def now(self) -> float:
        """Current time, including any injected clock skew."""
        return self.clock() + self._skew

    @property
    def elapsed(self) -> float:
        """Seconds since :meth:`arm` (0.0 before arming)."""
        if not self._armed:
            return 0.0
        return self.now() - self._started_at

    def remaining(self) -> float | None:
        """Seconds left before the deadline, or None when unlimited."""
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - self.elapsed

    def round_deadline(self, grace: float = 0.0) -> float | None:
        """Absolute wall-clock cutoff (``time.time()`` scale) for one
        parallel fan-out round, or None when no deadline is configured.

        Workers self-abort on the plain cutoff; the parent's barrier
        waits *grace* seconds longer before declaring a silent worker
        wedged — so the cutoff kills genuinely stuck processes, never
        legitimately slow rounds that are about to self-abort.
        """
        remaining = self.remaining()
        if remaining is None:
            return None
        return time.time() + max(0.0, remaining) + grace

    def deadline_exceeded(self) -> bool:
        """Non-raising deadline probe (the optimizer's graceful-degrade
        path asks this instead of :meth:`checkpoint`)."""
        return (
            self.deadline_seconds is not None
            and self._armed
            and self.elapsed > self.deadline_seconds
        )

    def skew(self, seconds: float) -> None:
        """Shift the governor's clock (fault injection: clock skew)."""
        self._skew += seconds

    # ----------------------------------------------------- cancellation

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cooperative cancellation; the next tick/checkpoint in
        any hot loop raises :class:`~repro.errors.ExecutionCancelled`."""
        self._cancel_reason = reason or "cancelled"

    @property
    def cancelled(self) -> bool:
        return self._cancel_reason is not None

    def check_cancelled(self) -> None:
        """Raise immediately if cancellation was requested."""
        if self._cancel_reason is not None:
            self._raise(
                ExecutionCancelled, f"execution cancelled: {self._cancel_reason}"
            )

    # ------------------------------------------------------- accounting

    @property
    def live_tuples(self) -> int:
        """The governor's current live-tuple estimate."""
        return self._retained + self._region_live + self._inflight

    def approx_memory_bytes(self) -> int:
        return self.live_tuples * self.bytes_per_tuple

    @property
    def iterations(self) -> int:
        return self._iterations

    def tick(self, produced: int = 0) -> None:
        """The hot-loop check: charge *produced* intermediate tuples and
        occasionally (every ``tick_interval`` tuples/calls) check the
        clock and the cancellation flag.  Kept deliberately branch-light:
        hot loops call this only when the allowance from :meth:`grant`
        is used up, so the per-tuple cost is a local comparison."""
        if produced:
            self._inflight += produced
            live = self._retained + self._region_live + self._inflight
            if self.max_tuples is not None and live > self.max_tuples:
                self._raise_tuples(live)
            if (
                self.max_memory_bytes is not None
                and live * self.bytes_per_tuple > self.max_memory_bytes
            ):
                self._raise_memory(live)
        self._countdown -= produced or 1
        if self._countdown <= 0:
            self._countdown = self.tick_interval
            self._slow_tick()

    def grant(self) -> int:
        """Tuples the caller may emit before its next :meth:`tick`: the
        distance to the nearest budget edge, capped at ``tick_interval``.

        The contract: emitting strictly fewer than ``grant()`` tuples
        cannot cross ``max_tuples`` or ``max_memory_bytes``, so hot loops
        track ``len(out) >= check_at`` locally — one integer comparison
        per tuple — and only pay a governor call when the allowance is
        spent.  Enforcement stays exact."""
        allowance = self.tick_interval
        live = self._retained + self._region_live + self._inflight
        if self.max_tuples is not None:
            allowance = min(allowance, self.max_tuples - live + 1)
        if self.max_memory_bytes is not None:
            allowance = min(
                allowance,
                self.max_memory_bytes // self.bytes_per_tuple - live + 1,
            )
        return allowance if allowance > 1 else 1

    def _slow_tick(self) -> None:
        if self.faults is not None:
            self.faults.on_checkpoint("tick", self)
        if self._cancel_reason is not None:
            self.check_cancelled()
        if self.deadline_exceeded():
            self._raise_deadline()

    def settle(self, region_live: int) -> None:
        """Fold the operator's in-flight rows into the region count —
        called after each rule evaluation, when intermediate tables have
        been released and their output absorbed into the workspace."""
        self._region_live = region_live
        self._inflight = 0

    def checkpoint_round(self, region_live: int, iterations: int = 1) -> None:
        """Fixpoint round boundary: refresh the region's live count
        (workspace **including** the round's delta), charge *iterations*
        rounds, and run a full checkpoint."""
        self._region_live = region_live
        self._inflight = 0
        self._iterations += iterations
        if self.max_iterations is not None and self._iterations > self.max_iterations:
            self._raise(
                IterationBudgetExceeded,
                f"fixpoint exceeded {self.max_iterations} iterations — "
                "runaway recursion (unsafe execution)",
            )
        live = self.live_tuples
        if self.max_tuples is not None and live > self.max_tuples:
            self._raise_tuples(live)
        if (
            self.max_memory_bytes is not None
            and live * self.bytes_per_tuple > self.max_memory_bytes
        ):
            self._raise_memory(live)
        self.checkpoint("fixpoint:round")

    def end_region(self) -> None:
        """A fixpoint evaluation finished and its workspace was released
        (or handed to the caller, who accounts for it via :meth:`retain`)."""
        self._region_live = 0
        self._inflight = 0

    def retain(self, tuples: int) -> None:
        """Charge *tuples* as retained for the rest of the query — cached
        extensions, memoized subtree results, materialized views."""
        self._retained += tuples
        live = self.live_tuples
        if self.max_tuples is not None and live > self.max_tuples:
            self._raise_tuples(live)
        if (
            self.max_memory_bytes is not None
            and live * self.bytes_per_tuple > self.max_memory_bytes
        ):
            self._raise_memory(live)

    def charge_resident(self, tuples: int) -> None:
        """Charge the fact base's *resident* tuples (tuples the storage
        backend keeps in process memory; spilled tuples count zero) —
        once per query, no matter how many engines share this governor.

        This is what prices the in-memory backend out of an over-RAM
        workload under ``max_memory_bytes`` while the spilling backend,
        whose residents stay under the threshold, completes it (see
        :mod:`repro.storage.backend`).  Only active when the database has
        a spill threshold configured, so the default accounting — which
        never charged base facts — is unchanged.
        """
        if self._resident_charged:
            return
        self._resident_charged = True
        if tuples:
            self.retain(tuples)

    # ------------------------------------------------------ checkpoints

    def checkpoint(self, site: str) -> None:
        """Coarse-grained check at a named site (operator entry, round
        boundary, SLD call): fires fault-injection rules, then checks
        cancellation and the deadline.  Raises on violation."""
        if self.faults is not None:
            self.faults.on_checkpoint(site, self)
        if self._cancel_reason is not None:
            self.check_cancelled()
        if self.deadline_exceeded():
            self._raise_deadline()

    def soft_checkpoint(self, site: str) -> None:
        """Like :meth:`checkpoint` but never raises on the deadline —
        the optimizer degrades gracefully instead of aborting."""
        if self.faults is not None:
            self.faults.on_checkpoint(site, self)
        if self._cancel_reason is not None:
            self.check_cancelled()

    # -------------------------------------------------- injected aborts

    def exhaust(self, kind: str) -> None:
        """Force the *kind* budget's abort path (fault injection)."""
        if kind == "tuples":
            self._raise_tuples(self.live_tuples)
        if kind == "memory":
            self._raise_memory(self.live_tuples)
        if kind == "deadline":
            self._raise_deadline()
        if kind == "iterations":
            self._raise(
                IterationBudgetExceeded,
                f"fixpoint exceeded {self.max_iterations} iterations (injected)",
            )
        raise ValueError(f"unknown budget kind {kind!r}")

    # ------------------------------------------------------ abort paths

    def _partial(self) -> dict:
        return {
            "live_tuples": self.live_tuples,
            "iterations": self._iterations,
            "elapsed_seconds": round(self.elapsed, 6),
            "cancelled": self._cancel_reason,
        }

    def _raise(self, cls, message: str) -> None:
        snapshot = self.profiler.snapshot() if self.profiler is not None else {}
        spans = self.tracer.open_stack() if self.tracer is not None else ()
        if self.metrics is not None:
            self.metrics.inc("governor_denials_total", kind=cls.kind)
        raise cls(message, snapshot=snapshot, partial=self._partial(), spans=spans)

    def _raise_tuples(self, live: int) -> None:
        self._raise(
            TupleBudgetExceeded,
            f"execution exceeded {self.max_tuples} live tuples "
            f"(observed {live}) — runaway recursion or explosive join "
            "(unsafe execution)",
        )

    def _raise_memory(self, live: int) -> None:
        self._raise(
            MemoryBudgetExceeded,
            f"execution exceeded {self.max_memory_bytes} bytes "
            f"(~{live * self.bytes_per_tuple} bytes across {live} live tuples "
            f"at {self.bytes_per_tuple} B/tuple)",
        )

    def _raise_deadline(self) -> None:
        self._raise(
            DeadlineExceeded,
            f"execution exceeded its {self.deadline_seconds}s deadline "
            f"(elapsed {self.elapsed:.3f}s)",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        budgets = []
        if self.deadline_seconds is not None:
            budgets.append(f"deadline={self.deadline_seconds}s")
        if self.max_tuples is not None:
            budgets.append(f"max_tuples={self.max_tuples}")
        if self.max_memory_bytes is not None:
            budgets.append(f"max_memory={self.max_memory_bytes}B")
        if self.max_iterations is not None:
            budgets.append(f"max_iterations={self.max_iterations}")
        state = f"live={self.live_tuples}, iterations={self._iterations}"
        return f"ResourceGovernor({', '.join(budgets) or 'unlimited'}; {state})"


def make_governor(
    deadline_seconds: float | None = None,
    max_tuples: int | None = DEFAULT_MAX_TUPLES,
    max_memory_bytes: int | None = None,
    max_iterations: int | None = DEFAULT_MAX_ITERATIONS,
    **kwargs,
) -> ResourceGovernor | None:
    """A governor for the given limits, or None when every limit is off
    (the ungoverned fast path: hot loops skip ticks entirely)."""
    if (
        deadline_seconds is None
        and max_tuples is None
        and max_memory_bytes is None
        and max_iterations is None
        and not kwargs.get("faults")
    ):
        return None
    return ResourceGovernor(
        deadline_seconds=deadline_seconds,
        max_tuples=max_tuples,
        max_memory_bytes=max_memory_bytes,
        max_iterations=max_iterations,
        **kwargs,
    )
