"""Work counters for measured execution cost.

The paper's cost formulae are estimates over an abstract "single cost"
combining CPU, I/O, etc. (Section 6).  Our measured analogue is tuple
traffic: how many stored/intermediate tuples each operator examined and
produced.  Tuple counts are what the estimates predict, so estimate vs.
measurement comparisons (EXP-7) are apples to apples, and they are
deterministic — no wall-clock noise in tests.

Alongside the deterministic counters the profiler also keeps *wall-clock*
aggregates: total seconds spent in profiled regions and a per-kernel
timing breakdown (``timings``), fed by the compiled execution kernels.
Timings are for benchmarks and EXPLAIN-style inspection only; tests
assert on tuple counts, never on seconds.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Profiler:
    """Accumulates operator work counters during execution."""

    examined: int = 0   #: tuples read from an operand (scan/probe results)
    produced: int = 0   #: tuples emitted by operators
    probes: int = 0     #: index/hash lookups performed
    materialized: int = 0  #: tuples written to temporary relations
    iterations: int = 0    #: fixpoint iterations executed
    wall_seconds: float = 0.0  #: total seconds spent inside timed regions
    by_label: dict[str, int] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)  #: seconds per kernel label

    def bump_examined(self, count: int = 1) -> None:
        self.examined += count

    def bump_produced(self, count: int = 1) -> None:
        self.produced += count

    def bump_probes(self, count: int = 1) -> None:
        self.probes += count

    def bump_materialized(self, count: int = 1) -> None:
        self.materialized += count

    def bump_iterations(self, count: int = 1) -> None:
        self.iterations += count

    def charge(self, label: str, count: int = 1) -> None:
        """Attribute work to a named operator/phase (for explain output)."""
        self.by_label[label] = self.by_label.get(label, 0) + count

    def add_time(self, label: str, seconds: float) -> None:
        """Attribute wall-clock time to a named kernel/phase."""
        self.wall_seconds += seconds
        self.timings[label] = self.timings.get(label, 0.0) + seconds

    @contextmanager
    def time_block(self, label: str):
        """Context manager timing a region and charging it to *label*.

        >>> p = Profiler()
        >>> with p.time_block("join:anc"):
        ...     pass
        >>> "join:anc" in p.timings
        True
        """
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add_time(label, time.perf_counter() - start)

    @property
    def total_work(self) -> int:
        """The single-number measured cost: tuples touched end to end."""
        return self.examined + self.produced + self.materialized

    def snapshot(self) -> dict:
        """Every counter, the per-label work breakdown, and wall time.

        This dict is what :class:`~repro.errors.ResourceExhausted`
        carries at abort time, so ``by_label`` and ``wall_seconds`` must
        be included — dropping them loses the per-operator breakdown the
        docs promise.
        """
        return {
            "examined": self.examined,
            "produced": self.produced,
            "probes": self.probes,
            "materialized": self.materialized,
            "iterations": self.iterations,
            "total_work": self.total_work,
            "wall_seconds": self.wall_seconds,
            "by_label": dict(sorted(self.by_label.items())),
        }

    def timing_snapshot(self) -> dict[str, float]:
        """Wall-clock aggregates: total seconds plus the per-kernel split."""
        return {"wall_seconds": self.wall_seconds, **dict(sorted(self.timings.items()))}

    def __repr__(self) -> str:
        # Deterministic counters only: wall time and labels would make
        # reprs differ between identical runs.
        parts = ", ".join(
            f"{k}={v}" for k, v in self.snapshot().items()
            if k not in ("wall_seconds", "by_label")
        )
        return f"Profiler({parts})"
