"""Work counters for measured execution cost.

The paper's cost formulae are estimates over an abstract "single cost"
combining CPU, I/O, etc. (Section 6).  Our measured analogue is tuple
traffic: how many stored/intermediate tuples each operator examined and
produced.  Tuple counts are what the estimates predict, so estimate vs.
measurement comparisons (EXP-7) are apples to apples, and they are
deterministic — no wall-clock noise in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Profiler:
    """Accumulates operator work counters during execution."""

    examined: int = 0   #: tuples read from an operand (scan/probe results)
    produced: int = 0   #: tuples emitted by operators
    probes: int = 0     #: index/hash lookups performed
    materialized: int = 0  #: tuples written to temporary relations
    iterations: int = 0    #: fixpoint iterations executed
    by_label: dict[str, int] = field(default_factory=dict)

    def bump_examined(self, count: int = 1) -> None:
        self.examined += count

    def bump_produced(self, count: int = 1) -> None:
        self.produced += count

    def bump_probes(self, count: int = 1) -> None:
        self.probes += count

    def bump_materialized(self, count: int = 1) -> None:
        self.materialized += count

    def bump_iterations(self, count: int = 1) -> None:
        self.iterations += count

    def charge(self, label: str, count: int = 1) -> None:
        """Attribute work to a named operator/phase (for explain output)."""
        self.by_label[label] = self.by_label.get(label, 0) + count

    @property
    def total_work(self) -> int:
        """The single-number measured cost: tuples touched end to end."""
        return self.examined + self.produced + self.materialized

    def snapshot(self) -> dict[str, int]:
        return {
            "examined": self.examined,
            "produced": self.produced,
            "probes": self.probes,
            "materialized": self.materialized,
            "iterations": self.iterations,
            "total_work": self.total_work,
        }

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"Profiler({parts})"
