"""The execution engine: operators, fixpoints, and the plan interpreter."""

from .evaluable import compare_terms, eval_term, solve_comparison, term_sort_key
from .fixpoint import EvaluationResult, FixpointEngine, evaluate_program
from .interpreter import Interpreter, QueryAnswers
from .kernels import CompiledRule, JoinKernel, KernelCache, compile_rule
from .operators import (
    BindingsTable,
    JOIN_METHODS,
    Row,
    apply_comparison,
    head_rows,
    negation_filter,
    scan_join,
    union_tables,
)
from .maintenance import ViewSet
from .profiler import Profiler
from .topdown import TopDownEngine

__all__ = [
    "BindingsTable",
    "CompiledRule",
    "EvaluationResult",
    "FixpointEngine",
    "Interpreter",
    "JOIN_METHODS",
    "JoinKernel",
    "KernelCache",
    "Profiler",
    "QueryAnswers",
    "Row",
    "TopDownEngine",
    "ViewSet",
    "apply_comparison",
    "compare_terms",
    "compile_rule",
    "eval_term",
    "evaluate_program",
    "head_rows",
    "negation_filter",
    "scan_join",
    "solve_comparison",
    "term_sort_key",
    "union_tables",
]
