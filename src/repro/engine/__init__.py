"""The execution engine: operators, fixpoints, and the plan interpreter."""

from .evaluable import compare_terms, eval_term, solve_comparison, term_sort_key
from .faults import FaultInjector, FaultRule, InjectedFault
from .fixpoint import EvaluationResult, FixpointEngine, evaluate_program
from .governor import ResourceGovernor, make_governor
from .interpreter import Interpreter, QueryAnswers
from .kernels import CompiledRule, JoinKernel, KernelCache, compile_rule
from .operators import (
    BindingsTable,
    JOIN_METHODS,
    Row,
    apply_comparison,
    head_rows,
    negation_filter,
    scan_join,
    union_tables,
)
from .maintenance import ViewSet
from .profiler import Profiler
from .topdown import TopDownEngine

__all__ = [
    "BindingsTable",
    "CompiledRule",
    "EvaluationResult",
    "FaultInjector",
    "FaultRule",
    "FixpointEngine",
    "InjectedFault",
    "Interpreter",
    "JOIN_METHODS",
    "JoinKernel",
    "KernelCache",
    "Profiler",
    "QueryAnswers",
    "ResourceGovernor",
    "Row",
    "TopDownEngine",
    "ViewSet",
    "apply_comparison",
    "compare_terms",
    "compile_rule",
    "eval_term",
    "evaluate_program",
    "head_rows",
    "make_governor",
    "negation_filter",
    "scan_join",
    "solve_comparison",
    "term_sort_key",
    "union_tables",
]
