"""Execution of optimized processing trees (Section 4's semantics).

The interpreter gives each plan node the operational meaning the paper
assigns it: execution "proceeds bottom-up left to right", materialized
subtrees are computed completely before their ancestor starts, pipelined
subtrees are evaluated lazily "using the binding from the result of the
subquery to the left" — realized here by passing a relation of
bound-argument *keys* down into the subtree, which is exactly what a
derived predicate node (OR or CC) accepts:

    execute(node, keys) -> all head tuples matching some key
    execute(node, None) -> the full extension (materialized)

CC nodes dispatch on their recursive-method label: ``seminaive``/``naive``
compute the clique's full extension and filter; ``magic`` seeds the magic
program with the whole key set (set-oriented sideways passing);
``counting`` runs once per key, since the level index identifies a single
subquery instance.

Results are cached per (node, key-set), so repeated probes of a memoized
subtree — the run-time mirror of NR-OPT's per-binding memoization — are
free after the first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..datalog.bindings import QueryForm
from ..datalog.literals import Literal
from ..datalog.terms import Constant, Term, Variable, term_from_python
from ..datalog.unify import Substitution, apply, match
from ..errors import ExecutionError
from ..obs.tracer import NULL_TRACER
from ..plans.nodes import FixpointNode, JoinNode, UnionNode
from ..storage.catalog import Database
from .fixpoint import FixpointEngine
from .governor import ResourceGovernor, make_governor
from .operators import (
    BindingsTable,
    Row,
    aggregate_rows,
    apply_comparison,
    head_rows,
    negation_filter,
    scan_join,
    )
from .profiler import Profiler

Keys = frozenset[Row] | None


@dataclass(frozen=True, slots=True)
class QueryAnswers:
    """The result set of one executed query form instance."""

    variables: tuple[Variable, ...]
    rows: frozenset[Row]
    profiler: Profiler

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(sorted(self.rows, key=lambda r: tuple(str(f) for f in r)))

    def to_python(self) -> list[tuple]:
        """Rows as plain Python values (Constant payloads unwrapped)."""
        out = []
        for row in self:
            out.append(tuple(f.value if isinstance(f, Constant) else f for f in row))
        return out

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as ``{variable_name: value}`` dicts, in sorted row order."""
        names = [v.name for v in self.variables]
        return [dict(zip(names, row)) for row in self.to_python()]

    def first(self) -> tuple | None:
        """The first row as plain values, or ``None`` when empty."""
        rows = self.to_python()
        return rows[0] if rows else None

    def __repr__(self) -> str:
        header = ", ".join(v.name for v in self.variables)
        return f"QueryAnswers[{header}]({len(self.rows)} rows)"


class Interpreter:
    """Executes processing trees against a database."""

    def __init__(
        self,
        db: Database,
        profiler: Profiler | None = None,
        max_iterations: int = 100_000,
        max_tuples: int = 5_000_000,
        builtins=None,
        compile: bool = True,
        batch: bool = True,
        batch_min_rows: int = 32,
        parallel: bool = True,
        parallel_min_rows: int | None = None,
        parallel_workers: int | None = None,
        parallel_retries: int | None = None,
        deadline_seconds: float | None = None,
        max_memory_bytes: int | None = None,
        governor: "ResourceGovernor | None | bool" = None,
        tracer=NULL_TRACER,
        metrics=None,
    ):
        self.db = db
        self.profiler = profiler or Profiler()
        self.max_iterations = max_iterations
        self.max_tuples = max_tuples
        if governor is False:
            # The ungoverned escape hatch (overhead A/B): no guards at all.
            self.governor: ResourceGovernor | None = None
        elif governor is not None:
            self.governor = governor
            if governor.profiler is None:
                governor.profiler = self.profiler
        else:
            self.governor = make_governor(
                deadline_seconds=deadline_seconds,
                max_tuples=max_tuples,
                max_memory_bytes=max_memory_bytes,
                max_iterations=max_iterations,
                profiler=self.profiler,
            )
        self.tracer = tracer
        self.metrics = metrics
        if self.governor is not None:
            if tracer.enabled and self.governor.tracer is None:
                self.governor.tracer = tracer
            if metrics is not None and self.governor.metrics is None:
                self.governor.metrics = metrics
        self.builtins = builtins
        #: Lower fixpoint rules into execution kernels (False = the
        #: uncompiled reference path, kept for A/B measurement).
        self.compile = compile
        #: Columnar batch tier for fixpoints (see repro.engine.batch);
        #: batch=False is the row-tier escape hatch.
        self.batch = batch
        self.batch_min_rows = batch_min_rows
        #: Partitioned-parallel tier knobs (see repro.engine.parallel);
        #: parallel=False is the serial escape hatch.
        self.parallel = parallel
        self.parallel_min_rows = parallel_min_rows
        self.parallel_workers = parallel_workers
        self.parallel_retries = parallel_retries
        self._cache: dict[tuple[int, Keys], frozenset[Row]] = {}
        #: per-plan-node measured execution stats (id(node) -> counters),
        #: consumed by EXPLAIN ANALYZE
        self.node_stats: dict[int, dict[str, int]] = {}

    # ------------------------------------------------------------- queries

    def run(self, plan_root: UnionNode, query: QueryForm, **bindings: object) -> QueryAnswers:
        """Execute an optimized query form with values for its $-variables.

        *bindings* maps bound-variable names to plain Python values.
        """
        missing = {v.name for v in query.bound_vars} - set(bindings)
        if missing:
            raise ExecutionError(f"missing values for bound variables: {sorted(missing)}")
        extra = set(bindings) - {v.name for v in query.bound_vars}
        if extra:
            raise ExecutionError(f"values supplied for unknown variables: {sorted(extra)}")

        schema = tuple(sorted(query.bound_vars, key=lambda v: v.name))
        row = tuple(term_from_python(bindings[v.name]) for v in schema)
        table = BindingsTable.from_rows(schema, [row]) if schema else BindingsTable.unit()

        if self.governor is not None:
            self.governor.arm()
        self.tracer.attach(self.profiler)
        wrapper = plan_root.children[0]
        with self.tracer.span(f"execute:{query.predicate}", kind="phase"):
            final = self._run_steps(wrapper, table)
        # The synthetic __query__ wrapper never goes through execute(),
        # so record its stats here: EXPLAIN ANALYZE annotates every node.
        self._record(wrapper, len(final.rows))
        self._record(plan_root, len(final.rows))
        out_vars = query.output_vars
        projected = final.project(out_vars) if out_vars else final.project(())
        if not out_vars:
            # boolean query: empty schema, zero or one row
            return QueryAnswers((), projected.rows, self.profiler)
        return QueryAnswers(out_vars, projected.rows, self.profiler)

    # --------------------------------------------------------------- nodes

    def execute(self, node: UnionNode | FixpointNode, keys: Keys) -> frozenset[Row]:
        """All head tuples of *node* matching *keys* (all of them if None)."""
        cache_key = (id(node), keys)
        hit = self._cache.get(cache_key)
        if hit is not None:
            self._record(node, len(hit), cached=True)
            return hit
        tag = "or" if isinstance(node, UnionNode) else "cc"
        with self.tracer.span(f"{tag}:{node.ref.name}", kind="node") as span:
            if isinstance(node, UnionNode):
                result = self._execute_union(node, keys)
            else:
                span.note(method=node.method)
                result = self._execute_fixpoint(node, keys)
            span.note(rows=len(result))
        self._cache[cache_key] = result
        if self.governor is not None:
            # Cached extensions stay live for the rest of the query, so
            # they count against the query-wide tuple/memory budgets.
            self.governor.retain(len(result))
        self._record(node, len(result))
        return result

    def _record(self, node, rows: int, cached: bool = False) -> None:
        stats = self.node_stats.setdefault(
            id(node), {"calls": 0, "cached_calls": 0, "rows": 0}
        )
        stats["calls"] += 1
        if cached:
            stats["cached_calls"] += 1
        else:
            stats["rows"] = max(stats["rows"], rows)

    def _execute_union(self, node: UnionNode, keys: Keys) -> frozenset[Row]:
        out: set[Row] = set()
        for child in node.children:
            with self.tracer.span(f"and:{child.rule.head.predicate}", kind="node"):
                rows = self._execute_join(child, keys)
            self._record(child, len(rows))
            out |= rows
        return frozenset(out)

    def _execute_join(self, node: JoinNode, keys: Keys) -> frozenset[Row]:
        head = node.rule.head
        if keys is None:
            table = BindingsTable.unit()
        else:
            patterns = [head.args[i] for i in node.binding.bound_positions]
            schema: list[Variable] = []
            for pattern in patterns:
                for var in _pattern_vars(pattern):
                    if var not in schema:
                        schema.append(var)
            rows: set[Row] = set()
            for key in keys:
                subst: Substitution | None = {}
                for pattern, value in zip(patterns, key):
                    subst = match(pattern, value, subst)
                    if subst is None:
                        break
                if subst is None:
                    continue
                rows.add(tuple(subst[v] for v in schema))
            table = BindingsTable.from_rows(tuple(schema), rows)
        final = self._run_steps(node, table)
        if node.rule.is_aggregate:
            return frozenset(aggregate_rows(final, head, self.profiler, governor=self.governor))
        return frozenset(head_rows(final, head, self.profiler, governor=self.governor))

    def _run_steps(self, node: JoinNode, table: BindingsTable) -> BindingsTable:
        governor = self.governor
        tracer = self.tracer
        head_name = node.rule.head.predicate
        # Remember the join's input width: the feedback store divides each
        # step's output rows by its predecessor's to learn per-row fanouts.
        node_stats = self.node_stats.setdefault(
            id(node), {"calls": 0, "cached_calls": 0, "rows": 0}
        )
        node_stats["in_rows"] = max(node_stats.get("in_rows", 0), len(table.rows))
        for step in node.steps:
            if not table.rows:
                return table
            with tracer.span(
                f"{_step_kind(step)}:{head_name}:{step.literal.predicate}",
                kind="operator",
            ) as span:
                span.note(method=step.method)
                table = self._apply_step(step, table)
            if governor is not None:
                governor.settle(len(table.rows))
            stats = self.node_stats.setdefault(
                id(step), {"calls": 0, "cached_calls": 0, "rows": 0}
            )
            stats["calls"] += 1
            stats["rows"] = max(stats["rows"], len(table))
        return table

    def _apply_step(self, step, table: BindingsTable) -> BindingsTable:
        literal = step.literal
        governor = self.governor
        if literal.is_comparison:
            return apply_comparison(table, literal, self.profiler, governor=governor)
        if literal.negated:
            extension = self._step_extension(step, literal, None)
            return negation_filter(
                table, literal.positive(), extension, self.profiler, governor=governor
            )
        if step.child is not None:
            if step.pipelined:
                keys = self._probe_keys(table, literal, step.child.binding.bound_positions)
                extension = self.execute(step.child, keys)
            else:
                extension = self.execute(step.child, None)
            return scan_join(
                table, literal, extension, "hash", self.profiler, governor=governor
            )
        if self.builtins is not None and literal.predicate in self.builtins:
            builtin = self.builtins.get(literal.predicate)
            if builtin is not None and builtin.arity == literal.arity:
                from .operators import builtin_join

                return builtin_join(
                    table, literal, builtin, self.profiler, governor=governor
                )
        relation = self.db.relation(literal.predicate)
        method = step.method if step.method in ("nested_loop", "hash", "index", "merge") else "hash"
        return scan_join(
            table, literal, relation, method, self.profiler, governor=governor
        )

    def _step_extension(self, step, literal: Literal, keys: Keys) -> Iterable[Row]:
        """Extension of a (possibly derived) literal for a negation check."""
        if step.child is not None:
            return self.execute(step.child, keys)
        return self.db.relation(literal.predicate).rows

    def _probe_keys(
        self, table: BindingsTable, literal: Literal, bound_positions: Sequence[int]
    ) -> frozenset[Row]:
        """Distinct bound-argument values flowing sideways into a child."""
        keys: set[Row] = set()
        for subst in table.substitutions():
            key = tuple(apply(literal.args[i], subst) for i in bound_positions)
            keys.add(key)
        return frozenset(keys)

    # ------------------------------------------------------------ fixpoints

    def _fixpoint_engine(self) -> FixpointEngine:
        return FixpointEngine(
            self.db,
            profiler=self.profiler,
            max_iterations=self.max_iterations,
            max_tuples=self.max_tuples,
            builtins=self.builtins,
            compile=self.compile,
            batch=self.batch,
            batch_min_rows=self.batch_min_rows,
            parallel=self.parallel,
            parallel_min_rows=self.parallel_min_rows,
            parallel_workers=self.parallel_workers,
            parallel_retries=self.parallel_retries,
            # Share the query-wide governor; an explicitly ungoverned
            # interpreter keeps its fixpoints ungoverned too (rather than
            # letting FixpointEngine build its own default).
            governor=self.governor if self.governor is not None else False,
            tracer=self.tracer,
            metrics=self.metrics,
        )

    def _execute_fixpoint(self, node: FixpointNode, keys: Keys) -> frozenset[Row]:
        bound_positions = node.binding.bound_positions
        if node.method in ("seminaive", "naive"):
            # Materialized fixpoint: full extension (cached), then filter.
            full = self._cache.get((id(node), None))
            if full is None:
                result = self._fixpoint_engine().evaluate(
                    node.program, naive=(node.method == "naive")
                )
                full = result.rows(node.answer_predicate)
                self._cache[(id(node), None)] = full
            if keys is None:
                return full
            return frozenset(
                row for row in full
                if tuple(row[i] for i in bound_positions) in keys
            )

        if keys is None:
            raise ExecutionError(
                f"{node.method} fixpoint for {node.ref} requires sideways bindings"
            )

        if node.method in ("magic", "supplementary"):
            seeds = {node.seed_predicate: set(keys)}
            result = self._fixpoint_engine().evaluate(node.program, seeds=seeds)
            answers = result.rows(node.answer_predicate)
            return frozenset(
                row for row in answers
                if tuple(row[i] for i in bound_positions) in keys
            )

        if node.method == "counting":
            free_positions = [i for i in range(node.ref.arity) if i not in bound_positions]
            out: set[Row] = set()
            zero = Constant(0)
            # One engine for all keys: each evaluate() builds a fresh
            # workspace, while the rule kernels compiled for the first key
            # are reused for every subsequent one.
            engine = self._fixpoint_engine()
            for key in keys:
                seeds = {node.seed_predicate: {(zero,) + key}}
                result = engine.evaluate(node.program, seeds=seeds)
                for row in result.rows(node.answer_predicate):
                    if not node.answer_any_level and row[0] != zero:
                        continue
                    full_row: list[Term] = [zero] * node.ref.arity
                    for position, value in zip(bound_positions, key):
                        full_row[position] = value
                    for position, value in zip(free_positions, row[1:]):
                        full_row[position] = value
                    out.add(tuple(full_row))
            return frozenset(out)

        if node.method == "qsqn":
            from ..datalog.rules import Program
            from .qsqn import QSQNEngine

            if node.adorned is None:
                raise ExecutionError(
                    f"qsqn fixpoint for {node.ref} carries no adorned clique"
                )
            adorned_predicates = node.adorned.adorned_predicates
            support = Program(
                [r for r in node.program if r.head.predicate not in adorned_predicates]
            )
            engine = QSQNEngine(
                self.db,
                builtins=self.builtins,
                governor=self.governor,
                profiler=self.profiler,
                tracer=self.tracer,
                metrics=self.metrics,
                support_engine=self._fixpoint_engine(),
            )
            answers = engine.solve(node.adorned, support, keys)
            return frozenset(
                row for row in answers
                if tuple(row[i] for i in bound_positions) in keys
            )

        raise ExecutionError(f"unknown recursive method {node.method!r}")


def _step_kind(step) -> str:
    """Span-name prefix for a JoinStep — mirrors the kernel label kinds."""
    literal = step.literal
    if literal.is_comparison:
        return "compare"
    if literal.negated:
        return "negation"
    if step.method == "builtin":
        return "builtin"
    return "join"


def _pattern_vars(term: Term) -> list[Variable]:
    out: list[Variable] = []
    stack = [term]
    while stack:
        t = stack.pop(0)
        if isinstance(t, Variable):
            if t not in out:
                out.append(t)
        elif hasattr(t, "args"):
            stack = list(t.args) + stack  # type: ignore[union-attr]
    return out
