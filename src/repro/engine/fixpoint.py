"""Naive and semi-naive fixpoint evaluation of Horn-clause programs.

This is the engine's reference evaluator: bottom-up, stratum by stratum
(SCCs of the dependency graph in *follows* order, Section 2), with the
classical delta-driven *semi-naive* iteration inside each recursive clique
and plain *naive* re-evaluation available for comparison (it is one of the
recursive methods the OPT algorithm may cost, and the ablation benchmark
measures the difference).

Rule bodies are executed left to right over :class:`BindingsTable`
pipelines.  By default each body is first reordered by the greedy
effective-computability order (:func:`repro.datalog.safety.exists_safe_order`)
so evaluable predicates run only once their arguments are bound; the
optimizer hands over bodies already in its chosen order, in which case
reordering is disabled and the order is *trusted* — an unsafe order then
raises :class:`~repro.errors.ExecutionError`, which is exactly the
run-time behaviour the compile-time safety analysis exists to preclude.

Termination guards are enforced by a
:class:`~repro.engine.governor.ResourceGovernor` (built from
``max_iterations``/``max_tuples`` when none is supplied): live tuples —
workspace *plus* the current round's delta *plus* the in-flight
intermediate rows of the join being executed — are charged cooperatively
inside the hot loops, so an explosive join round aborts mid-join with
:class:`~repro.errors.ResourceExhausted` instead of blowing past the
budget unobserved.  That abort is the run-time manifestation of the
paper's "infinite cost".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from ..datalog.graph import DependencyGraph
from ..datalog.literals import Literal, PredicateRef, pred_ref
from ..datalog.rules import Program, Rule
from ..datalog.safety import exists_safe_order
from ..errors import ExecutionError, ParallelRoundError, TransientExecutionError
from ..obs.tracer import NULL_TRACER
from ..storage.catalog import Database
from ..storage.relation import DerivedRelation
from .governor import ResourceGovernor, make_governor
from .kernels import KernelCache
from .operators import (
    BindingsTable,
    Row,
    aggregate_rows,
    apply_comparison,
    head_rows,
    negation_filter,
    scan_join,
)
from .profiler import Profiler

#: Chooses the join method for a body literal; default is hash everywhere.
MethodChooser = Callable[[Literal], str]


def _default_method(literal: Literal) -> str:
    # Index joins keep a persistent index on base relations, which matters
    # across the many rounds of a fixpoint; derived extensions fall back to
    # per-call hash builds inside scan_join.
    return "index"


@dataclass
class EvaluationResult:
    """The outcome of a fixpoint evaluation."""

    relations: dict[str, frozenset[Row]]
    iterations: int
    profiler: Profiler

    def rows(self, predicate: str) -> frozenset[Row]:
        return self.relations.get(predicate, frozenset())

    def __getitem__(self, predicate: str) -> frozenset[Row]:
        return self.rows(predicate)


class FixpointEngine:
    """Bottom-up evaluator for a program over a database.

    Parameters
    ----------
    db:
        The fact base; base predicates scan its relations.
    profiler:
        Work counters; a fresh one is created if omitted.
    max_iterations / max_tuples:
        Termination guards; used to build a default governor when no
        *governor* is passed.  ``None`` disables the respective budget.
    governor:
        A :class:`~repro.engine.governor.ResourceGovernor` shared across
        the whole query (deadlines, query-wide budgets, cancellation,
        fault injection).  ``None`` builds one from the guards above;
        ``False`` disables governance entirely (the ungoverned escape
        hatch kept for overhead A/B measurement — no guards at all).
    method_chooser:
        Join method per literal (EL label); defaults to hash joins.
    reorder_bodies:
        When True (default) bodies are reordered by the greedy EC order
        before execution; when False the given order is trusted.
    compile:
        When True (default) rules are lowered once per engine into
        execution kernels (:mod:`repro.engine.kernels`) and derived
        extensions keep persistent incrementally-maintained indexes;
        when False every round re-derives body orders and layouts — the
        uncompiled escape hatch kept for A/B measurement.
    batch / batch_min_rows:
        The columnar batch tier (:mod:`repro.engine.batch`): flat rules
        whose driving input is at least *batch_min_rows* rows execute
        over interned id columns, whole deltas per Python-level call.
        Requires ``compile``; ``batch=False`` is the row-tier escape
        hatch mirroring ``compile=False``.  Rules touching a *spilled*
        extension (:mod:`repro.storage.backend`) force the batch tier
        regardless of size — it is the only tier that stays out-of-core.
    parallel / parallel_min_rows / parallel_workers:
        The partitioned-parallel tier (:mod:`repro.engine.parallel`):
        batch rounds whose driving input is at least *parallel_min_rows*
        rows hash-partition across a persistent pool of
        *parallel_workers* processes (default: up to 4, capped at the
        machine's cores).  Below the threshold — or with
        ``parallel=False``, the escape hatch — rounds run on the serial
        batch tier.  Answers, counters, span labels, and budget-abort
        semantics are identical either way.
    """

    def __init__(
        self,
        db: Database,
        profiler: Profiler | None = None,
        max_iterations: int = 100_000,
        max_tuples: int = 5_000_000,
        method_chooser: MethodChooser | None = None,
        reorder_bodies: bool = True,
        builtins: "BuiltinRegistry | None" = None,
        compile: bool = True,
        batch: bool = True,
        batch_min_rows: int = 32,
        parallel: bool = True,
        parallel_min_rows: int | None = None,
        parallel_workers: int | None = None,
        parallel_retries: int | None = None,
        governor: "ResourceGovernor | None | bool" = None,
        tracer=NULL_TRACER,
        metrics=None,
    ):
        from ..datalog.builtins import builtin_oracle

        self.db = db
        self.profiler = profiler or Profiler()
        self.max_iterations = max_iterations
        self.max_tuples = max_tuples
        if governor is False:
            self.governor: ResourceGovernor | None = None
        elif governor is not None:
            self.governor = governor
            if governor.profiler is None:
                governor.profiler = self.profiler
        else:
            self.governor = make_governor(
                max_tuples=max_tuples,
                max_iterations=max_iterations,
                profiler=self.profiler,
            )
        self.tracer = tracer
        self.metrics = metrics
        if self.governor is not None:
            # Let budget aborts name the open spans, and denials count.
            if tracer.enabled and self.governor.tracer is None:
                self.governor.tracer = tracer
            if metrics is not None and self.governor.metrics is None:
                self.governor.metrics = metrics
        self.method_chooser = method_chooser or _default_method
        self.reorder_bodies = reorder_bodies
        self.builtins = builtins
        self._oracle = builtin_oracle(builtins)
        self.compile = compile
        self._kernels = KernelCache(
            reorder=reorder_bodies, oracle=self._oracle, builtins=builtins,
            metrics=metrics,
        )
        #: Columnar batch tier (requires compiled kernels as the fallback
        #: and the source of the shared plan/label layout).
        self.batch = batch and compile
        self.batch_min_rows = batch_min_rows
        if self.batch:
            from .batch import BatchExecutor

            self._batch_exec: "BatchExecutor | None" = BatchExecutor()
        else:
            self._batch_exec = None
        #: Partitioned-parallel tier (requires the batch tier: it fans the
        #: same plans out).  The executor is cheap to build — the worker
        #: pool itself spawns lazily on the first round that crosses
        #: parallel_min_rows, so small queries never pay for processes.
        self.parallel = parallel and self.batch
        if parallel_min_rows is None:
            from .parallel import DEFAULT_PARALLEL_MIN_ROWS

            parallel_min_rows = DEFAULT_PARALLEL_MIN_ROWS
        self.parallel_min_rows = parallel_min_rows
        if self.parallel:
            from .parallel import DEFAULT_PARALLEL_RETRIES, ParallelBatchExecutor

            self._parallel_exec: "ParallelBatchExecutor | None" = (
                ParallelBatchExecutor(
                    workers=parallel_workers,
                    metrics=metrics,
                    retries=(
                        DEFAULT_PARALLEL_RETRIES
                        if parallel_retries is None
                        else parallel_retries
                    ),
                )
            )
        else:
            self._parallel_exec = None
        #: Spilled extensions force the batch tier (the row tier would
        #: materialize them); checked only when spilling can happen.
        self._spill_active = getattr(db, "spill_threshold", None) is not None

    # -- extensions ----------------------------------------------------------

    def _extension(
        self,
        literal: Literal,
        workspace: Mapping[str, set[Row]],
        derived: frozenset[PredicateRef],
    ) -> Iterable[Row]:
        name = literal.predicate
        if name in workspace:
            return workspace[name]
        if pred_ref(literal) in derived:
            # Derived but not yet computed (later stratum would be a bug;
            # same-stratum preds always have a workspace entry).
            return frozenset()
        relation = self.db.get(name)
        if relation is not None:
            if relation.arity != literal.arity:
                raise ExecutionError(
                    f"literal {literal} has arity {literal.arity}, relation has {relation.arity}"
                )
            return relation
        raise ExecutionError(f"unknown predicate {name!r} (no rules, no relation, no seed)")

    # -- rule bodies -----------------------------------------------------------

    def _ordered_body(self, rule: Rule) -> tuple[Literal, ...]:
        if not self.reorder_bodies:
            return rule.body
        order, reasons = exists_safe_order(rule.body, frozenset(), self._oracle)
        if order is None:
            raise ExecutionError(
                f"no effectively computable order for rule '{rule}': " + "; ".join(reasons)
            )
        return tuple(rule.body[i] for i in order)

    def _eval_body(
        self,
        body: Sequence[Literal],
        workspace: Mapping[str, set[Row]],
        derived: frozenset[PredicateRef],
        delta_literal: int | None = None,
        delta_rows: Iterable[Row] | None = None,
        head_name: str = "",
    ) -> BindingsTable:
        table = BindingsTable.unit()
        governor = self.governor
        tracer = self.tracer
        # Span names below must match the labels CompiledRule bakes at
        # compile time (f"{kind}:{head}:{pred}") so the span tree is
        # identical whether rules run compiled or interpreted.
        for position, literal in enumerate(body):
            if not table.rows:
                return table
            if literal.is_comparison:
                with tracer.span(
                    f"compare:{head_name}:{literal.predicate}", kind="operator"
                ):
                    table = apply_comparison(
                        table, literal, self.profiler, governor=governor
                    )
                continue
            if literal.negated:
                with tracer.span(
                    f"negation:{head_name}:{literal.predicate}", kind="operator"
                ):
                    extension = self._extension(literal.positive(), workspace, derived)
                    rows = extension.rows if hasattr(extension, "rows") else extension
                    table = negation_filter(
                        table, literal.positive(), rows, self.profiler, governor=governor
                    )
                continue
            if self.builtins is not None and literal.predicate in self.builtins:
                builtin = self.builtins.get(literal.predicate)
                if builtin is not None and builtin.arity == literal.arity:
                    from .operators import builtin_join

                    with tracer.span(
                        f"builtin:{head_name}:{literal.predicate}", kind="operator"
                    ):
                        table = builtin_join(
                            table, literal, builtin, self.profiler, governor=governor
                        )
                    continue
            with tracer.span(
                f"join:{head_name}:{literal.predicate}", kind="operator"
            ) as span:
                if position == delta_literal and delta_rows is not None:
                    extension = delta_rows
                    method = "hash"
                else:
                    extension = self._extension(literal, workspace, derived)
                    method = self.method_chooser(literal)
                span.note(method=method)
                table = scan_join(
                    table, literal, extension, method, self.profiler, governor=governor
                )
        return table

    def _eval_rule(
        self,
        rule: Rule,
        workspace: Mapping[str, set[Row]],
        derived: frozenset[PredicateRef],
        delta_literal: int | None = None,
        delta_rows: Iterable[Row] | None = None,
    ) -> set[Row]:
        with self.tracer.span(f"rule:{rule.head.predicate}", kind="rule") as span:
            span.note(compiled=self.compile, delta=delta_literal is not None)
            if self.compile:
                compiled = self._kernels.get(rule)
                delta_position = (
                    compiled.delta_position(delta_literal)
                    if delta_literal is not None
                    else None
                )
                if self._batch_exec is not None:
                    plan = self._kernels.get_batch(rule)
                    if plan is not None:
                        size = self._batch_input_size(
                            compiled, workspace, derived, delta_rows
                        )
                        spilled = self._spill_active and self._touches_spilled(
                            compiled, workspace, derived
                        )
                        if size >= self.batch_min_rows or spilled:
                            tier: str | None = "batch"
                            if (
                                self._parallel_exec is not None
                                and size >= self.parallel_min_rows
                            ):
                                tier = "parallel"
                            span.note(tier=tier)
                            if self.metrics is not None:
                                self.metrics.inc("batch_rules_total")
                            extension_of = (
                                lambda literal: self._extension(literal, workspace, derived)
                            )
                            # Tier-degradation ladder: a transient
                            # infrastructure failure (lost workers after
                            # in-round retries, an injected transient
                            # fault) drops the round to the next tier —
                            # parallel -> serial batch -> row — with
                            # identical answers.  Work charged by the
                            # failed attempt stays charged (conservative
                            # double-count against the budgets).
                            while tier is not None:
                                executor = (
                                    self._parallel_exec
                                    if tier == "parallel"
                                    else self._batch_exec
                                )
                                try:
                                    return executor.execute(
                                        plan,
                                        extension_of,
                                        self.profiler,
                                        delta_position=delta_position,
                                        delta_rows=delta_rows,
                                        governor=self.governor,
                                        tracer=self.tracer,
                                    )
                                except TransientExecutionError as err:
                                    fallback = (
                                        "batch" if tier == "parallel" else "row"
                                    )
                                    self._note_degradation(span, tier, fallback, err)
                                    tier = None if fallback == "row" else fallback
                            # fall through: the row tier below is the
                            # ladder's floor (it cannot lose workers and
                            # reads spilled relations as plain iterables).
                return compiled.execute(
                    lambda literal: self._extension(literal, workspace, derived),
                    self.method_chooser,
                    self.profiler,
                    delta_position=delta_position,
                    delta_rows=delta_rows,
                    governor=self.governor,
                    tracer=self.tracer,
                )
            body = self._ordered_body(rule)
            if delta_literal is not None:
                # Map the delta position from original body order to the
                # reordered body.
                target = rule.body[delta_literal]
                positions = [i for i, l in enumerate(body) if l is target]
                delta_position = positions[0] if positions else delta_literal
            else:
                delta_position = None
            table = self._eval_body(
                body, workspace, derived, delta_position, delta_rows,
                head_name=rule.head.predicate,
            )
            if rule.is_aggregate:
                return aggregate_rows(
                    table, rule.head, self.profiler, governor=self.governor
                )
            return head_rows(table, rule.head, self.profiler, governor=self.governor)

    def _note_degradation(self, rule_span, from_tier: str, to_tier: str, err) -> None:
        """Record one rung of the tier ladder: a ``parallel_degradations``
        metric labelled with the reason and a structured warning span, so
        a degraded-but-correct query is visible in traces and metrics."""
        reason = (
            "worker_lost" if isinstance(err, ParallelRoundError) else "transient"
        )
        if from_tier == "batch":
            reason = f"batch_{reason}"
        if self.metrics is not None:
            self.metrics.inc("parallel_degradations", reason=reason)
        with self.tracer.span(
            f"degrade:{from_tier}->{to_tier}", kind="warning"
        ) as span:
            span.note(reason=reason, error=str(err))
        rule_span.note(tier=to_tier, degraded_from=from_tier)

    def _batch_input_size(
        self,
        compiled,
        workspace: Mapping[str, set[Row]],
        derived: frozenset[PredicateRef],
        delta_rows: Iterable[Row] | None,
    ) -> int:
        """Cost proxy for row-vs-batch tier selection.

        Semi-naive delta rounds are driven by the delta's size; full
        evaluations by the largest extension the body touches.  Small
        inputs stay on the row tier — per-batch setup (column gathers,
        selection vectors) only pays for itself on bulk rounds.
        """
        if delta_rows is not None:
            return len(delta_rows)
        size = 0
        try:
            for step in compiled.steps:
                size = max(size, len(self._extension(step.literal, workspace, derived)))
        except ExecutionError:
            # Unknown predicate etc.: force the row tier so the error is
            # raised inside the proper operator span.
            return -1
        return size

    def _touches_spilled(
        self,
        compiled,
        workspace: Mapping[str, set[Row]],
        derived: frozenset[PredicateRef],
    ) -> bool:
        """Whether any body extension lives on disk (see
        :mod:`repro.storage.backend`); such rules must take the batch
        tier — every other tier materializes the extension in memory."""
        try:
            for step in compiled.steps:
                extension = self._extension(step.literal, workspace, derived)
                if getattr(extension, "spilled", False):
                    return True
        except ExecutionError:
            return False
        return False

    # -- the fixpoint ------------------------------------------------------------

    def evaluate(
        self,
        program: Program,
        seeds: Mapping[str, Iterable[Row]] | None = None,
        naive: bool = False,
    ) -> EvaluationResult:
        """Compute all derived relations of *program*.

        *seeds* pre-populates derived-style relations (magic/counting
        seeds).  With ``naive=True`` recursive cliques use naive
        re-evaluation instead of semi-naive deltas.
        """
        graph = DependencyGraph(program)
        graph.check_stratified()
        derived = program.derived_predicates
        governor = self.governor
        if governor is not None:
            governor.arm()
            if self._spill_active:
                # Spill accounting prices the fact base's *resident*
                # tuples against the memory budget (idempotent per query;
                # spilled relations count zero — see storage.backend).
                governor.charge_resident(self.db.resident_tuples())
        self.tracer.attach(self.profiler)

        # Compiled evaluation stores derived extensions as index-maintaining
        # relations so join kernels keep persistent buckets across rounds.
        def new_store(name: str, rows: Iterable[Row] = ()) -> set[Row] | DerivedRelation:
            if self.compile:
                return DerivedRelation(name, rows)
            return set(tuple(r) for r in rows)

        workspace: dict[str, set[Row] | DerivedRelation] = {}
        for name, rows in (seeds or {}).items():
            workspace[name] = new_store(name, (tuple(r) for r in rows))

        total_iterations = 0
        for component in graph.evaluation_order():
            component_rules = [r for r in program if r.head_ref in component]
            if not component_rules:
                continue  # base-only component
            recursive = any(
                ref in component for rule in component_rules for ref in rule.body_refs
            )
            for ref in component:
                if ref.name not in workspace:
                    workspace[ref.name] = new_store(ref.name)
            if not recursive:
                for rule in component_rules:
                    rows = self._eval_rule(rule, workspace, derived)
                    workspace[rule.head.predicate].update(rows)
                    if governor is not None:
                        governor.settle(self._live_tuples(workspace))
                continue
            clique = "+".join(sorted(ref.name for ref in component))
            with self.tracer.span(f"fixpoint:clique:{clique}", kind="fixpoint") as span:
                iterations = (
                    self._naive_clique(component_rules, component, workspace, derived)
                    if naive
                    else self._seminaive_clique(
                        component_rules, component, workspace, derived
                    )
                )
                span.note(rounds=iterations, naive=naive)
            if self.metrics is not None:
                self.metrics.observe("fixpoint_rounds", iterations)
            total_iterations += iterations

        self.profiler.bump_iterations(total_iterations)
        if governor is not None:
            governor.end_region()
        return EvaluationResult(
            relations={
                name: store.rows if isinstance(store, DerivedRelation) else frozenset(store)
                for name, store in workspace.items()
            },
            iterations=total_iterations,
            profiler=self.profiler,
        )

    # -- clique strategies ---------------------------------------------------

    @staticmethod
    def _store_add(store: "set[Row] | DerivedRelation", row: Row) -> bool:
        """Insert into a workspace store; True when the row was new."""
        if isinstance(store, DerivedRelation):
            return store.add(row)
        if row in store:
            return False
        store.add(row)
        return True

    @staticmethod
    def _live_tuples(workspace: Mapping[str, set[Row]]) -> int:
        return sum(len(rows) for rows in workspace.values())

    def _check_guards(self, workspace: Mapping[str, set[Row]]) -> None:
        """Round-boundary guard check: refresh the governor's view of the
        workspace (which already holds this round's delta) and charge one
        fixpoint round against the iteration budget."""
        if self.governor is not None:
            self.governor.checkpoint_round(self._live_tuples(workspace))

    def _seminaive_clique(
        self,
        rules: Sequence[Rule],
        component: frozenset[PredicateRef],
        workspace: dict[str, set[Row]],
        derived: frozenset[PredicateRef],
    ) -> int:
        names = {ref.name for ref in component}
        delta: dict[str, set[Row]] = {name: set() for name in names}
        governor = self.governor
        tracer = self.tracer

        # Round 0: all rules against the current workspace (exit rules fire;
        # seeds participate).
        with tracer.span("fixpoint:round:0", kind="round"):
            for rule in rules:
                store = workspace[rule.head.predicate]
                for row in self._eval_rule(rule, workspace, derived):
                    if self._store_add(store, row):
                        delta[rule.head.predicate].add(row)
                if governor is not None:
                    governor.settle(self._live_tuples(workspace))
            self._check_guards(workspace)

        iterations = 1
        while any(delta.values()):
            with tracer.span(f"fixpoint:round:{iterations}", kind="round"):
                new_delta: dict[str, set[Row]] = {name: set() for name in names}
                for rule in rules:
                    clique_positions = [
                        i
                        for i, literal in enumerate(rule.body)
                        if not literal.is_comparison
                        and not literal.negated
                        and literal.predicate in names
                    ]
                    for position in clique_positions:
                        delta_rows = delta.get(rule.body[position].predicate, set())
                        if not delta_rows:
                            continue
                        rows = self._eval_rule(
                            rule, workspace, derived, position, delta_rows
                        )
                        head_name = rule.head.predicate
                        store = workspace[head_name]
                        for row in rows:
                            if self._store_add(store, row):
                                new_delta[head_name].add(row)
                        if governor is not None:
                            governor.settle(self._live_tuples(workspace))
                delta = new_delta
                iterations += 1
                # Checked *after* the round so the final round's production
                # is still guarded (the old guard skipped it).
                self._check_guards(workspace)
        return iterations

    def _naive_clique(
        self,
        rules: Sequence[Rule],
        component: frozenset[PredicateRef],
        workspace: dict[str, set[Row]],
        derived: frozenset[PredicateRef],
    ) -> int:
        governor = self.governor
        iterations = 0
        changed = True
        while changed:
            with self.tracer.span(f"fixpoint:round:{iterations}", kind="round"):
                iterations += 1
                changed = False
                for rule in rules:
                    rows = self._eval_rule(rule, workspace, derived)
                    head_name = rule.head.predicate
                    before = len(workspace[head_name])
                    workspace[head_name].update(rows)
                    if len(workspace[head_name]) != before:
                        changed = True
                    if governor is not None:
                        governor.settle(self._live_tuples(workspace))
                self._check_guards(workspace)
        return iterations


def evaluate_program(
    db: Database,
    program: Program,
    seeds: Mapping[str, Iterable[Row]] | None = None,
    naive: bool = False,
    profiler: Profiler | None = None,
    **engine_kwargs,
) -> EvaluationResult:
    """One-shot convenience wrapper around :class:`FixpointEngine`."""
    engine = FixpointEngine(db, profiler=profiler, **engine_kwargs)
    return engine.evaluate(program, seeds=seeds, naive=naive)
