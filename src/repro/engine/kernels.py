"""Compiled execution kernels: per-rule physical plans for the fixpoint.

The interpreted hot path re-derives the same facts about a rule on every
semi-naive round: :meth:`FixpointEngine._ordered_body` re-runs the greedy
safe-order search per rule per round, and :func:`~repro.engine.operators.scan_join`
re-discovers each literal's bound/free argument layout and materializes a
``dict(zip(schema, row))`` substitution per input row.  None of that
depends on the data — only on the ``(rule, input schema)`` pair, which is
fixed once the body order is chosen.

This module compiles it out, the move LDL++ made when it lowered rules
into reusable physical access plans (Arni et al.):

* :func:`compile_rule` runs the safe-order search once, then simulates the
  schema growth of the body left to right, producing one *kernel* per
  literal with the input/output schemas and the bound/free position
  layouts baked in.
* **Flat** positive literals — every argument a ground term or a plain
  variable, free variables all distinct; the overwhelmingly common case —
  get a slot-indexed fast path: the join key is extracted straight from
  row positions and output rows are built by tuple concatenation, with no
  substitution dicts and no unification.  Complex terms (non-ground
  structs, repeated free variables) fall back to the general
  :func:`~repro.engine.operators.scan_join` path, which unifies.
* Derived extensions are :class:`~repro.storage.relation.DerivedRelation`
  workspaces, so hash/index joins probe persistent, incrementally
  maintained indexes instead of rebuilding buckets every round.

Kernels charge the same tuple-traffic counters as the interpreted
operators (probes, examined candidates, produced rows), so measured cost
comparisons stay apples-to-apples; they additionally record per-kernel
wall-clock via :meth:`Profiler.add_time`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..datalog.literals import Literal
from ..datalog.rules import Rule
from ..datalog.terms import Term, Variable, is_ground, variables_of
from ..errors import ExecutionError
from ..obs.tracer import NULL_TRACER
from .operators import (
    BindingsTable,
    Row,
    _literal_vars_in_order,
    aggregate_rows,
    apply_comparison,
    builtin_join,
    head_rows,
    negation_filter,
    scan_join,
)
from .profiler import Profiler

#: Resolves a body literal to its current extension (workspace or base).
ExtensionOf = Callable[[Literal], Iterable[Row]]
#: Chooses the join method for a body literal.
MethodOf = Callable[[Literal], str]


@dataclass(frozen=True, slots=True)
class JoinKernel:
    """A positive body literal with its position layout precompiled."""

    literal: Literal
    in_schema: tuple[Variable, ...]
    out_schema: tuple[Variable, ...]
    new_vars: tuple[Variable, ...]
    bound_positions: tuple[int, ...]
    free_positions: tuple[int, ...]
    #: True when the slot-indexed fast path applies (see module docstring).
    flat: bool
    #: Per bound position: input-row slot to read, or None for a constant.
    key_slots: tuple[int | None, ...]
    #: Per bound position: the fixed ground term, or None for a slot.
    key_consts: tuple[Term | None, ...]
    #: Extension-row positions appended to the output, in new_vars order.
    free_out: tuple[int, ...]

    def extract_key(self, row: Row) -> tuple[Term, ...]:
        return tuple(
            row[slot] if slot is not None else const
            for slot, const in zip(self.key_slots, self.key_consts)
        )


@dataclass(frozen=True, slots=True)
class ComparisonKernel:
    literal: Literal
    in_schema: tuple[Variable, ...]
    out_schema: tuple[Variable, ...]


@dataclass(frozen=True, slots=True)
class NegationKernel:
    #: The positive form of the negated literal.
    literal: Literal
    in_schema: tuple[Variable, ...]


@dataclass(frozen=True, slots=True)
class BuiltinKernel:
    literal: Literal
    builtin: object
    in_schema: tuple[Variable, ...]
    out_schema: tuple[Variable, ...]


Kernel = JoinKernel | ComparisonKernel | NegationKernel | BuiltinKernel


@dataclass(frozen=True, slots=True)
class HeadKernel:
    """Slot-indexed head instantiation for flat heads (no substitutions)."""

    slots: tuple[int | None, ...]
    consts: tuple[Term | None, ...]

    def instantiate(self, row: Row) -> Row:
        return tuple(
            row[slot] if slot is not None else const
            for slot, const in zip(self.slots, self.consts)
        )


def _flat_layout(
    literal: Literal,
    schema: tuple[Variable, ...],
    bound_positions: tuple[int, ...],
    free_positions: tuple[int, ...],
    new_vars: tuple[Variable, ...],
) -> tuple[bool, tuple[int | None, ...], tuple[Term | None, ...], tuple[int, ...]]:
    """Compute the slot layout, or mark the literal non-flat."""
    slot = {v: i for i, v in enumerate(schema)}
    key_slots: list[int | None] = []
    key_consts: list[Term | None] = []
    for position in bound_positions:
        arg = literal.args[position]
        if isinstance(arg, Variable):
            key_slots.append(slot[arg])
            key_consts.append(None)
        elif is_ground(arg):
            key_slots.append(None)
            key_consts.append(arg)
        else:
            # A non-ground struct over bound variables needs apply() per row.
            return False, (), (), ()
    free_var_positions: dict[Variable, int] = {}
    for position in free_positions:
        arg = literal.args[position]
        if not isinstance(arg, Variable) or arg in free_var_positions:
            # Complex free term, or a repeated free variable: both need
            # unification between extension fields.
            return False, (), (), ()
        free_var_positions[arg] = position
    # new_vars is exactly the free variables in first-occurrence order, so
    # every new var has a unique source position.
    free_out = tuple(free_var_positions[var] for var in new_vars)
    return True, tuple(key_slots), tuple(key_consts), free_out


@dataclass(frozen=True, slots=True)
class CompiledRule:
    """A rule lowered to an ordered sequence of execution kernels."""

    rule: Rule
    body: tuple[Literal, ...]
    steps: tuple[Kernel, ...]
    #: Maps an original-body literal index to its position in `body`.
    delta_map: tuple[int, ...]
    head_kernel: HeadKernel | None
    out_schema: tuple[Variable, ...]
    #: Per-step profiler/checkpoint labels, baked at compile time.
    labels: tuple[str, ...] = ()

    def delta_position(self, original_index: int) -> int:
        return self.delta_map[original_index]

    # -- execution -------------------------------------------------------------

    def execute(
        self,
        extension_of: ExtensionOf,
        method_of: MethodOf,
        profiler: Profiler,
        delta_position: int | None = None,
        delta_rows: Iterable[Row] | None = None,
        governor=None,
        tracer=NULL_TRACER,
    ) -> set[Row]:
        """Evaluate the body and instantiate the head — the compiled twin
        of ``FixpointEngine._eval_rule``."""
        head = self.rule.head
        table = BindingsTable.unit()
        for position, step in enumerate(self.steps):
            if not table.rows:
                return set()
            label = self.labels[position]
            # The span opens before the checkpoint so a budget abort's
            # open-span stack names the operator that was running.
            with tracer.span(label, kind="operator"):
                if governor is not None:
                    governor.checkpoint(label)
                start = time.perf_counter()
                if isinstance(step, JoinKernel):
                    if position == delta_position and delta_rows is not None:
                        table = execute_join_kernel(
                            step, table, delta_rows, "hash", profiler, governor
                        )
                    else:
                        extension = extension_of(step.literal)
                        table = execute_join_kernel(
                            step, table, extension, method_of(step.literal), profiler, governor
                        )
                elif isinstance(step, ComparisonKernel):
                    table = apply_comparison(table, step.literal, profiler, governor)
                elif isinstance(step, NegationKernel):
                    extension = extension_of(step.literal)
                    rows = extension.rows if hasattr(extension, "rows") else extension
                    table = negation_filter(table, step.literal, rows, profiler, governor)
                else:
                    table = builtin_join(table, step.literal, step.builtin, profiler, governor)
                profiler.add_time(label, time.perf_counter() - start)
        if self.rule.is_aggregate:
            return aggregate_rows(table, head, profiler, governor)
        if self.head_kernel is not None and table.schema == self.out_schema:
            out = {self.head_kernel.instantiate(row) for row in table.rows}
            profiler.bump_produced(len(out))
            if governor is not None:
                governor.tick(len(out))
            return out
        return head_rows(table, head, profiler, governor)


def execute_join_kernel(
    kernel: JoinKernel,
    table: BindingsTable,
    extension: Iterable[Row],
    method: str,
    profiler: Profiler,
    governor=None,
) -> BindingsTable:
    """Run a positive-literal join through its compiled kernel.

    Falls back to the general unification path (:func:`scan_join`) for
    non-flat literals, schema drift, and the merge method (which routes
    through the sorted-order cache inside ``scan_join``).

    When a *governor* is attached, each probe's emissions are charged via
    ``governor.tick`` — the cooperative-cancellation/budget check that
    lets a single explosive join round abort mid-join instead of blowing
    past ``max_tuples`` unobserved.
    """
    if (
        not kernel.flat
        or table.schema != kernel.in_schema
        or method not in ("nested_loop", "hash", "index")
    ):
        return scan_join(
            table, kernel.literal, extension, method, profiler, governor=governor
        )

    from ..storage.relation import DerivedRelation, Relation

    out_rows: set[Row] = set()
    free_out = kernel.free_out
    extract_key = kernel.extract_key
    # Cooperative budget enforcement at tuple granularity for the price
    # of one comparison per probe: while len(out_rows) stays below
    # check_at the governor's budgets cannot be crossed (grant()'s
    # contract), so no call is needed.
    charged = 0
    check_at = governor.grant() if governor is not None else float("inf")

    persistent = method == "index" or isinstance(extension, DerivedRelation)
    if method != "nested_loop" and persistent and isinstance(extension, (Relation, DerivedRelation)):
        index = extension.ensure_index(kernel.bound_positions)
        for base_row in table.rows:
            key = extract_key(base_row)
            profiler.bump_probes()
            bucket = index.get_bucket(key)
            if bucket:
                profiler.bump_examined(len(bucket))
                for tuple_row in bucket:
                    out_rows.add(base_row + tuple(tuple_row[p] for p in free_out))
                if len(out_rows) >= check_at:
                    emitted = len(out_rows)
                    governor.tick(emitted - charged)
                    charged = emitted
                    check_at = emitted + governor.grant()
    elif method != "nested_loop":
        ext_rows = extension if isinstance(extension, (list, set, frozenset)) else list(extension)
        buckets: dict[tuple[Term, ...], list[Row]] = {}
        bound = kernel.bound_positions
        for row in ext_rows:
            buckets.setdefault(tuple(row[i] for i in bound), []).append(row)
        profiler.bump_examined(len(ext_rows))  # build side read once
        for base_row in table.rows:
            key = extract_key(base_row)
            profiler.bump_probes()
            bucket_rows = buckets.get(key)
            if bucket_rows:
                profiler.bump_examined(len(bucket_rows))
                for tuple_row in bucket_rows:
                    out_rows.add(base_row + tuple(tuple_row[p] for p in free_out))
                if len(out_rows) >= check_at:
                    emitted = len(out_rows)
                    governor.tick(emitted - charged)
                    charged = emitted
                    check_at = emitted + governor.grant()
    else:
        ext_rows = extension if isinstance(extension, (list, set, frozenset)) else list(extension)
        bound = kernel.bound_positions
        for base_row in table.rows:
            key = extract_key(base_row)
            for tuple_row in ext_rows:
                profiler.bump_examined()
                if tuple(tuple_row[i] for i in bound) == key:
                    out_rows.add(base_row + tuple(tuple_row[p] for p in free_out))
            if len(out_rows) >= check_at:
                emitted = len(out_rows)
                governor.tick(emitted - charged)
                charged = emitted
                check_at = emitted + governor.grant()

    if governor is not None and len(out_rows) > charged:
        governor.tick(len(out_rows) - charged)
    profiler.bump_produced(len(out_rows))
    return BindingsTable(kernel.out_schema, frozenset(out_rows))


def compile_rule(
    rule: Rule,
    reorder: bool = True,
    oracle=None,
    builtins=None,
) -> CompiledRule:
    """Lower *rule* into a :class:`CompiledRule` for bottom-up execution.

    Runs the safe-order search once (when *reorder* is set), then simulates
    the left-to-right schema growth exactly as the interpreted operators
    would extend it, fixing every kernel's input/output schema up front.
    The caller caches the result per rule for the engine's lifetime.
    """
    from ..datalog.safety import exists_safe_order

    if reorder:
        if oracle is None:
            from ..datalog.builtins import builtin_oracle

            oracle = builtin_oracle(builtins)
        order, reasons = exists_safe_order(rule.body, frozenset(), oracle)
        if order is None:
            raise ExecutionError(
                f"no effectively computable order for rule '{rule}': " + "; ".join(reasons)
            )
        body = tuple(rule.body[i] for i in order)
    else:
        body = rule.body

    delta_map = []
    for target in rule.body:
        positions = [i for i, literal in enumerate(body) if literal is target]
        delta_map.append(positions[0] if positions else len(delta_map))

    schema: tuple[Variable, ...] = ()
    steps: list[Kernel] = []
    for literal in body:
        schema_set = set(schema)
        if literal.is_comparison:
            new_vars = tuple(v for v in _literal_vars_in_order(literal) if v not in schema_set)
            out_schema = schema + new_vars
            steps.append(ComparisonKernel(literal, schema, out_schema))
            schema = out_schema
            continue
        if literal.negated:
            steps.append(NegationKernel(literal.positive(), schema))
            continue
        if builtins is not None and literal.predicate in builtins:
            builtin = builtins.get(literal.predicate)
            if builtin is not None and builtin.arity == literal.arity:
                new_vars = tuple(
                    v for v in _literal_vars_in_order(literal) if v not in schema_set
                )
                out_schema = schema + new_vars
                steps.append(BuiltinKernel(literal, builtin, schema, out_schema))
                schema = out_schema
                continue
        new_vars = tuple(v for v in _literal_vars_in_order(literal) if v not in schema_set)
        out_schema = schema + new_vars
        bound_positions = tuple(
            i for i, arg in enumerate(literal.args) if variables_of(arg) <= schema_set
        )
        free_positions = tuple(i for i in range(literal.arity) if i not in bound_positions)
        flat, key_slots, key_consts, free_out = _flat_layout(
            literal, schema, bound_positions, free_positions, new_vars
        )
        steps.append(
            JoinKernel(
                literal,
                schema,
                out_schema,
                new_vars,
                bound_positions,
                free_positions,
                flat,
                key_slots,
                key_consts,
                free_out,
            )
        )
        schema = out_schema

    head_kernel = _compile_head(rule, schema)
    head_name = rule.head.predicate
    kinds = {
        JoinKernel: "join",
        ComparisonKernel: "compare",
        NegationKernel: "negation",
        BuiltinKernel: "builtin",
    }
    labels = tuple(
        f"{kinds[type(step)]}:{head_name}:{step.literal.predicate}" for step in steps
    )
    return CompiledRule(
        rule, body, tuple(steps), tuple(delta_map), head_kernel, schema, labels
    )


def _compile_head(rule: Rule, schema: tuple[Variable, ...]) -> HeadKernel | None:
    """Slot layout for a flat head; None when head_rows must unify."""
    if rule.is_aggregate:
        return None
    slot = {v: i for i, v in enumerate(schema)}
    slots: list[int | None] = []
    consts: list[Term | None] = []
    for arg in rule.head.args:
        if isinstance(arg, Variable):
            position = slot.get(arg)
            if position is None:
                return None  # unbound head variable: let head_rows raise
            slots.append(position)
            consts.append(None)
        elif is_ground(arg):
            slots.append(None)
            consts.append(arg)
        else:
            return None  # complex head term: needs apply()
    return HeadKernel(tuple(slots), tuple(consts))


class KernelCache:
    """Per-engine cache of compiled rules, keyed by rule identity."""

    def __init__(self, reorder: bool = True, oracle=None, builtins=None, metrics=None):
        self.reorder = reorder
        self.oracle = oracle
        self.builtins = builtins
        self.metrics = metrics
        self._compiled: dict[int, CompiledRule] = {}
        #: id(rule) -> BatchPlan | None (None caches "not batchable").
        self._batch_plans: dict[int, object] = {}

    def get(self, rule: Rule) -> CompiledRule:
        compiled = self._compiled.get(id(rule))
        if compiled is None:
            compiled = compile_rule(
                rule, reorder=self.reorder, oracle=self.oracle, builtins=self.builtins
            )
            self._compiled[id(rule)] = compiled
            if self.metrics is not None:
                self.metrics.inc("kernel_compiles_total")
        return compiled

    def get_batch(self, rule: Rule):
        """The rule's columnar batch plan, or None when not batchable
        (negation, comparisons, builtins, aggregates, complex terms)."""
        key = id(rule)
        if key in self._batch_plans:
            return self._batch_plans[key]
        from .batch import compile_batch_plan

        plan = compile_batch_plan(self.get(rule))
        self._batch_plans[key] = plan
        if plan is not None and self.metrics is not None:
            self.metrics.inc("batch_plan_compiles_total")
        return plan

    def __len__(self) -> int:
        return len(self._compiled)
