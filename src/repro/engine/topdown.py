"""A tabled top-down (SLD) evaluator — the Prolog-side comparison point.

The paper frames the LDL optimizer *against* Prolog's strategy: "Prolog
visits and expands the rule goals in a strictly lexicographical order;
thus, it is up to the programmer to make sure that this order leads to a
safe and efficient execution."  This module implements that strategy
faithfully enough to compare against:

* goals resolve **top-down, left to right, in textual rule order** — no
  reordering, no cost model;
* **tabling** (memoized subgoals, iterated to fixpoint) replaces
  Prolog's unbounded depth-first search so that left-recursive programs
  terminate — the classical result that tabled top-down evaluation
  computes the same answers as bottom-up evaluation with magic sets, and
  with comparable work (benchmark EXP-10 measures exactly this);
* with ``tabling=False`` the evaluator is plain SLD with a depth guard,
  which demonstrates the non-termination Prolog suffers on
  left-recursive rules (it raises instead of looping forever).

Subgoals are tabled by *variant*: the call's bound arguments ground, its
free arguments canonicalized.  Completion uses the simple iterate-to-
fixpoint discipline (re-run until no table grows) rather than full SLG
scheduling — quadratically more rounds in the worst case, but compact
and obviously correct, which is what a comparison baseline needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..datalog.builtins import BuiltinRegistry
from ..datalog.graph import DependencyGraph
from ..datalog.literals import Literal, pred_ref
from ..datalog.rules import Program, Rule
from ..datalog.terms import Term, Variable, is_ground
from ..datalog.unify import Substitution, apply, match, unify, unify_sequences
from ..errors import ExecutionError
from ..obs.tracer import NULL_TRACER
from ..storage.catalog import Database
from .evaluable import solve_comparison
from .governor import ResourceGovernor
from .profiler import Profiler

Row = tuple[Term, ...]


def _canonical_call(literal: Literal, subst: Substitution) -> tuple:
    """The variant key of a call: ground where bound, numbered holes
    where free (two calls differing only in free-variable names share a
    table)."""
    holes: dict[Variable, int] = {}

    def canon(term: Term):
        term = apply(term, subst)
        if is_ground(term):
            return ("g", term)
        if isinstance(term, Variable):
            if term not in holes:
                holes[term] = len(holes)
            return ("v", holes[term])
        return ("s", term.functor, tuple(canon(a) for a in term.args))  # type: ignore[union-attr]

    return (literal.predicate, tuple(canon(arg) for arg in literal.args))


@dataclass
class _Table:
    answers: set[Row] = field(default_factory=set)
    complete: bool = False


class TopDownEngine:
    """Tabled SLD resolution over a program and fact base."""

    def __init__(
        self,
        db: Database,
        program: Program,
        builtins: BuiltinRegistry | None = None,
        profiler: Profiler | None = None,
        tabling: bool = True,
        max_depth: int = 2_000,
        governor: ResourceGovernor | None = None,
        tracer=NULL_TRACER,
    ):
        self.db = db
        self.program = program
        self.builtins = builtins
        self.profiler = profiler or Profiler()
        self.tabling = tabling
        self.max_depth = max_depth
        self.governor = governor
        self.tracer = tracer
        if governor is not None and governor.profiler is None:
            governor.profiler = self.profiler
        if governor is not None and tracer.enabled and governor.tracer is None:
            governor.tracer = tracer
        self._tables: dict[tuple, _Table] = {}
        self._fresh = itertools.count()
        self._graph: DependencyGraph | None = None
        self._closures: dict[str, frozenset[str]] = {}

    # ------------------------------------------------------------- public

    def solve(self, goal: Literal) -> frozenset[Row]:
        """All ground argument tuples satisfying *goal* (its free
        variables range over the answers)."""
        if self.governor is not None:
            self.governor.arm()
        self.tracer.attach(self.profiler)
        # The span sits at this non-generator boundary only: resolution
        # below is generator-driven, and suspended generators would
        # interleave span open/close out of tree order.
        with self.tracer.span(f"sld:{goal.predicate}", kind="sld") as span:
            span.note(tabling=self.tabling)
            try:
                if self.tabling:
                    # iterate to fixpoint: re-derive until no table grows
                    while True:
                        for table in self._tables.values():
                            table.complete = False
                        before = self._total_answers()
                        rows = self._goal_rows(goal)
                        if self._total_answers() == before:
                            return frozenset(rows)
                return frozenset(self._goal_rows(goal))
            except RecursionError:
                # the Python stack ran out before max_depth: same diagnosis
                raise ExecutionError(
                    "SLD resolution exhausted the stack "
                    "(left recursion without tabling?)"
                ) from None

    def _total_answers(self) -> int:
        return sum(len(t.answers) for t in self._tables.values())

    def _goal_rows(self, goal: Literal) -> set[Row]:
        """One pass over the goal's derivations, ground answers only.

        A non-ground answer means a head variable the body never bound —
        a rule outside the range-restricted fragment.  The bottom-up
        engines refuse such rules at execution time; raising the same
        diagnosis here keeps the strategies behaviourally aligned instead
        of silently returning rows containing variables.
        """
        rows: set[Row] = set()
        for subst in self._solve_literal(goal, {}, 0):
            row = tuple(apply(arg, subst) for arg in goal.args)
            if not all(is_ground(term) for term in row):
                raise ExecutionError(
                    f"goal {goal} derived non-ground answer {row} — rule "
                    "head not fully bound by body (unsafe execution)"
                )
            rows.add(row)
        return rows

    # -------------------------------------------------------- resolution

    def _solve_literal(
        self, literal: Literal, subst: Substitution, depth: int
    ) -> Iterator[Substitution]:
        if self.governor is not None:
            self.governor.tick()
        if depth > self.max_depth:
            raise ExecutionError(
                f"SLD resolution exceeded depth {self.max_depth} "
                f"(left recursion without tabling?)"
            )
        if literal.is_comparison:
            solved = solve_comparison(literal, subst)
            self.profiler.bump_examined()
            if solved is not None:
                yield solved
            return
        if literal.negated:
            inner = literal.positive()
            applied = tuple(apply(arg, subst) for arg in inner.args)
            for arg in applied:
                if not is_ground(arg):
                    raise ExecutionError(
                        f"negated goal {literal} entered with unbound arguments"
                    )
            self.profiler.bump_examined()
            if self._negation_holds(Literal(inner.predicate, applied), depth + 1):
                yield subst
            return
        if self.builtins is not None:
            builtin = self.builtins.get(literal.predicate)
            if builtin is not None and builtin.arity == literal.arity:
                applied = tuple(apply(arg, subst) for arg in literal.args)
                self.profiler.bump_probes()
                for produced in builtin.evaluate(applied):
                    self.profiler.bump_examined()
                    extended: Substitution | None = subst
                    for pattern, value in zip(literal.args, produced):
                        extended = match(apply(pattern, extended), value, extended)
                        if extended is None:
                            break
                    if extended is not None:
                        yield extended
                return

        relation = self.db.get(literal.predicate)
        if relation is not None:
            yield from self._scan_facts(literal, subst, relation)
            return

        rules = self.program.rules_for(pred_ref(literal))
        if not rules:
            raise ExecutionError(f"unknown predicate {literal.predicate!r}")
        if self.governor is not None:
            # A named site on every rule resolution: fault plans target
            # sld:<predicate>, and the checkpoint observes deadlines and
            # cancellation between tick intervals.
            self.governor.checkpoint(f"sld:{literal.predicate}")
        if self.tabling:
            yield from self._solve_tabled(literal, subst, rules, depth)
        else:
            yield from self._expand_rules(literal, subst, rules, depth)

    def _scan_facts(
        self, literal: Literal, subst: Substitution, relation
    ) -> Iterator[Substitution]:
        applied = [apply(arg, subst) for arg in literal.args]
        bound_positions = [i for i, a in enumerate(applied) if is_ground(a)]
        if bound_positions and len(bound_positions) == literal.arity:
            candidates: Iterable[Row] = relation.lookup(bound_positions, tuple(applied))
        elif bound_positions:
            index = relation.ensure_index(tuple(bound_positions))
            candidates = index.get(tuple(applied[i] for i in bound_positions))
            self.profiler.bump_probes()
        else:
            candidates = relation
        governor = self.governor
        for row in candidates:
            if governor is not None:
                governor.tick()
            self.profiler.bump_examined()
            extended: Substitution | None = subst
            for pattern, value in zip(literal.args, row):
                extended = match(apply(pattern, extended), value, extended)
                if extended is None:
                    break
            if extended is not None:
                yield extended

    def _expand_rules(
        self, literal: Literal, subst: Substitution, rules, depth: int
    ) -> Iterator[Substitution]:
        """Plain SLD: resolve against each rule, textual body order."""
        applied = tuple(apply(arg, subst) for arg in literal.args)
        for rule in rules:
            fresh = self._freshen(rule)
            head_subst = unify_sequences(fresh.head.args, applied)
            if head_subst is None:
                continue
            self.profiler.bump_produced()
            for body_subst in self._solve_body(fresh.body, head_subst, depth + 1):
                # Full unification, not one-way match: an unsafe rule can
                # leave a head variable unbound, and match()'s ground-side
                # contract would then write a self-referential binding
                # (X -> X) that turns every later walk() into an infinite
                # loop.  unify() handles the variable-variable case and
                # keeps the occurs check.
                merged: Substitution | None = dict(subst)
                for pattern, head_arg in zip(literal.args, fresh.head.args):
                    merged = unify(
                        apply(pattern, merged), apply(head_arg, body_subst), merged
                    ) if merged is not None else None
                    if merged is None:
                        break
                if merged is not None:
                    yield merged

    def _solve_body(
        self, body: tuple[Literal, ...], subst: Substitution, depth: int
    ) -> Iterator[Substitution]:
        if not body:
            yield subst
            return
        first, rest = body[0], body[1:]
        for solved in self._solve_literal(first, subst, depth):
            yield from self._solve_body(rest, solved, depth)

    # ---------------------------------------------------------- negation

    def _negation_holds(self, goal: Literal, depth: int) -> bool:
        """Decide ``~goal`` (*goal* ground) soundly under tabling.

        Negation-as-failure is only sound against a *completed* table:
        mid-fixpoint, the positive subgoal's tables may still be growing,
        and a premature "no answer" verdict would park a wrong derivation
        in the caller's table forever (answers are never retracted).  So
        before testing emptiness we drive the subgoal's own dependency
        closure to a local fixpoint: re-un-complete exactly the closure
        tables and re-solve until no closure table grows.  Stratification
        (checked on first use) guarantees the caller's predicate is
        outside that closure, so suspended caller expansions stay intact.
        """
        if not self.tabling:
            return next(iter(self._solve_literal(goal, {}, depth)), None) is None
        closure = self._closure_names(goal.predicate)
        while True:
            before = self._closure_answer_count(closure)
            for key, table in self._tables.items():
                if key[0] in closure:
                    table.complete = False
            if next(iter(self._solve_literal(goal, {}, depth)), None) is not None:
                # Tabled answers are sound the moment they appear, so any
                # positive answer refutes the negation immediately.
                return False
            if self._closure_answer_count(closure) == before:
                return True

    def _closure_names(self, predicate: str) -> frozenset[str]:
        cached = self._closures.get(predicate)
        if cached is not None:
            return cached
        if self._graph is None:
            graph = DependencyGraph(self.program)
            graph.check_stratified()
            self._graph = graph
        refs = {
            ref
            for ref in self.program.predicates
            if ref.name == predicate
        }
        names = frozenset(
            dep.name for ref in refs for dep in self._graph.reachable_from(ref)
        ) | {predicate}
        self._closures[predicate] = names
        return names

    def _closure_answer_count(self, closure: frozenset[str]) -> int:
        return sum(
            len(table.answers)
            for key, table in self._tables.items()
            if key[0] in closure
        )

    # ----------------------------------------------------------- tabling

    def _solve_tabled(
        self, literal: Literal, subst: Substitution, rules, depth: int
    ) -> Iterator[Substitution]:
        key = _canonical_call(literal, subst)
        table = self._tables.get(key)
        if table is None:
            table = _Table()
            self._tables[key] = table
        governor = self.governor
        if not table.complete:
            table.complete = True  # mark first: recursive calls consume answers-so-far
            try:
                for answer_subst in self._expand_rules(literal, subst, rules, depth):
                    row = tuple(apply(arg, answer_subst) for arg in literal.args)
                    if not all(is_ground(f) for f in row):
                        # Range-restricted rules always ground their head;
                        # a variable surviving here means an unsafe rule.
                        # Dropping the row would silently under-answer —
                        # raise the same diagnosis as the bottom-up engines.
                        raise ExecutionError(
                            f"subgoal {literal.predicate} derived non-ground "
                            f"answer {row} — rule head not fully bound by "
                            "body (unsafe execution)"
                        )
                    if row not in table.answers:
                        table.answers.add(row)
                        if governor is not None:
                            # Tabled answers persist for the whole query, so
                            # they count against the live-tuple budget.
                            governor.tick(1)
            except BaseException:
                # An abort mid-expansion (fault, exhausted budget, or an
                # abandoned generator unwinding via GeneratorExit) leaves
                # the table partial; keeping it marked complete would make
                # a later query on this engine silently read short answers.
                table.complete = False
                raise
        for row in sorted(table.answers, key=str):
            self.profiler.bump_examined()
            extended: Substitution | None = subst
            for pattern, value in zip(literal.args, row):
                extended = match(apply(pattern, extended), value, extended)
                if extended is None:
                    break
            if extended is not None:
                yield extended

    def _freshen(self, rule: Rule) -> Rule:
        suffix = next(self._fresh)
        mapping = {v: Variable(f"{v.name}@{suffix}") for v in rule.variables}
        return rule.rename_variables(mapping)
