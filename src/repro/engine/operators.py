"""Physical operators over bindings tables.

The engine "relationalizes" logic evaluation: the intermediate state of a
rule body being executed left to right is a :class:`BindingsTable` — a
relation whose schema is a tuple of *variables* and whose rows are ground
instantiations of them.  Each body literal extends the table:

* a positive literal joins the table with its predicate's extension
  (:func:`scan_join`) — this one operator realizes the paper's join
  methods (the EL labels): ``nested_loop``, ``hash``, ``index`` and
  ``merge``;
* a comparison filters rows, and ``=`` can extend the schema with newly
  bound variables (:func:`apply_comparison`);
* a negated literal filters by non-membership (:func:`negation_filter`).

Pipelining vs. materialization (the MP transformation) is a property of
*how* these operators are composed, decided by the processing tree — a
pipelined subtree is evaluated per input row via the bindings it implies,
a materialized one is computed once with an empty bindings context.

All operators charge their tuple traffic to a :class:`Profiler`, which is
how benchmarks observe "measured cost".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..datalog.literals import Literal
from ..datalog.terms import Term, Variable, is_ground, variables_of
from ..datalog.unify import Substitution, apply, match
from ..errors import ExecutionError
from .evaluable import solve_comparison, term_sort_key
from .profiler import Profiler

Row = tuple[Term, ...]

#: Join method names — the engine's available EL labels.
JOIN_METHODS = ("nested_loop", "hash", "index", "merge")


@dataclass(frozen=True, slots=True)
class BindingsTable:
    """A set of ground rows under a variable schema."""

    schema: tuple[Variable, ...]
    rows: frozenset[Row]

    @classmethod
    def unit(cls) -> "BindingsTable":
        """The empty-schema table with one row: the join identity."""
        return cls((), frozenset({()}))

    @classmethod
    def empty(cls, schema: tuple[Variable, ...] = ()) -> "BindingsTable":
        return cls(schema, frozenset())

    @classmethod
    def from_rows(cls, schema: Sequence[Variable], rows: Iterable[Row]) -> "BindingsTable":
        return cls(tuple(schema), frozenset(rows))

    @classmethod
    def from_columns(
        cls,
        schema: Sequence[Variable],
        columns: Sequence[Sequence[int]],
        length: int,
        interner,
    ) -> "BindingsTable":
        """Decode a columnar batch (parallel columns of interned term ids,
        see :mod:`repro.engine.batch`) into a row table.

        The bridge between the tiers: batch intermediates are id columns,
        row intermediates are term-tuple sets.  *length* is explicit
        because a zero-width batch has rows but no columns.
        """
        if not columns:
            rows: Iterable[Row] = [()] if length else []
            return cls(tuple(schema), frozenset(rows))
        terms = interner.terms
        return cls(
            tuple(schema),
            frozenset(
                tuple(terms[i] for i in id_row) for id_row in zip(*columns)
            ),
        )

    def __len__(self) -> int:
        return len(self.rows)

    def substitutions(self) -> Iterable[Substitution]:
        """Each row as a substitution dict."""
        for row in self.rows:
            yield dict(zip(self.schema, row))

    def project(self, variables: Sequence[Variable]) -> "BindingsTable":
        """Keep only *variables* (duplicates collapse — set semantics)."""
        slot = {v: i for i, v in enumerate(self.schema)}
        positions = [slot[v] for v in variables]
        rows = frozenset(tuple(row[p] for p in positions) for row in self.rows)
        return BindingsTable(tuple(variables), rows)


def _literal_vars_in_order(literal: Literal) -> list[Variable]:
    out: list[Variable] = []
    for arg in literal.args:
        for var in _vars_in_order(arg):
            if var not in out:
                out.append(var)
    return out


def _vars_in_order(term: Term) -> list[Variable]:
    if isinstance(term, Variable):
        return [term]
    if hasattr(term, "args"):
        out: list[Variable] = []
        for arg in term.args:  # type: ignore[union-attr]
            for var in _vars_in_order(arg):
                if var not in out:
                    out.append(var)
        return out
    return []


def scan_join(
    table: BindingsTable,
    literal: Literal,
    extension: Iterable[Row],
    method: str = "hash",
    profiler: Profiler | None = None,
    label: str = "",
    governor=None,
) -> BindingsTable:
    """Join *table* with the extension of *literal*'s predicate.

    *extension* is the set of ground tuples currently known for the
    predicate (a base relation's rows or a derived predicate's partial
    result).  The output schema is the input schema extended with the
    literal's not-yet-bound variables, in first-occurrence order.

    ``method`` selects the physical algorithm:

    * ``nested_loop`` — every input row examines every extension tuple;
    * ``hash`` — build a hash table on the literal's bound argument
      positions once, probe per input row;
    * ``index`` — like hash, but the caller passes a pre-built
      :class:`~repro.storage.index.HashIndex`-backed lookup via
      *extension* being a :class:`~repro.storage.relation.Relation`
      (falls back to ``hash`` otherwise);
    * ``merge`` — sort both sides on the bound key and merge.

    All methods produce identical results; they differ in the work
    profile, which is the point of the EL transformation.
    """
    profiler = profiler or Profiler()
    if method not in JOIN_METHODS:
        raise ExecutionError(f"unknown join method {method!r}")

    schema_set = set(table.schema)
    new_vars = [v for v in _literal_vars_in_order(literal) if v not in schema_set]
    out_schema = table.schema + tuple(new_vars)

    bound_positions = tuple(
        i for i, arg in enumerate(literal.args) if variables_of(arg) <= schema_set
    )
    free_positions = tuple(i for i in range(literal.arity) if i not in bound_positions)

    # Materialize the extension rows once (it may be a generator).  Both
    # Relation (base data) and DerivedRelation (fixpoint workspace) expose
    # persistent, incrementally maintained indexes via ensure_index.
    from ..storage.relation import DerivedRelation, Relation  # local: storage must not import engine

    relation: Relation | DerivedRelation | None = (
        extension if isinstance(extension, (Relation, DerivedRelation)) else None
    )
    use_persistent = method == "index" or (
        # Derived extensions under "hash" also route through the persistent
        # index: rebuilding buckets over the full partial result every
        # semi-naive round is exactly the work this cache eliminates.
        method == "hash" and isinstance(extension, DerivedRelation)
    )
    if use_persistent and relation is not None:
        index = relation.ensure_index(bound_positions)
        buckets: Mapping[tuple[Term, ...], Iterable[Row]] | None = None
        ext_rows: list[Row] | None = None
    else:
        ext_rows = list(extension)
        index = None
        buckets = None
        if method in ("hash", "index"):
            built: dict[tuple[Term, ...], list[Row]] = {}
            for row in ext_rows:
                built.setdefault(tuple(row[i] for i in bound_positions), []).append(row)
            buckets = built
            profiler.bump_examined(len(ext_rows))  # build side read once

    out_rows: set[Row] = set()

    def emit(subst: Substitution, base_row: Row) -> None:
        extra = []
        for var in new_vars:
            value = subst.get(var)
            if value is None or not is_ground(value):
                raise ExecutionError(
                    f"literal {literal} left variable {var} unbound (unsafe execution)"
                )
            extra.append(value)
        out_rows.add(base_row + tuple(extra))

    if method == "merge":
        assert ext_rows is not None
        keyed_ext, cached = _keyed_extension(relation, ext_rows, bound_positions)
        if not cached:
            profiler.bump_examined(len(keyed_ext))  # the extension sorting pass
        return _merge_join(
            table, literal, keyed_ext, bound_positions, out_schema, new_vars, profiler,
            governor=governor,
        )

    charged = 0
    check_at = governor.grant() if governor is not None else float("inf")
    for base_row in table.rows:
        subst: Substitution = dict(zip(table.schema, base_row))
        applied = [apply(arg, subst) for arg in literal.args]
        key = tuple(applied[i] for i in bound_positions)
        if index is not None:
            candidates: Iterable[Row] = index.get_bucket(key)
            profiler.bump_probes()
        elif buckets is not None:
            candidates = buckets.get(key, ())
            profiler.bump_probes()
        else:
            assert ext_rows is not None
            candidates = ext_rows
        for tuple_row in candidates:
            profiler.bump_examined()
            extended = _match_free(applied, tuple_row, free_positions, subst)
            if extended is not None:
                emit(extended, base_row)
        if len(out_rows) >= check_at:
            emitted = len(out_rows)
            governor.tick(emitted - charged)
            charged = emitted
            check_at = emitted + governor.grant()

    if governor is not None and len(out_rows) > charged:
        governor.tick(len(out_rows) - charged)
    profiler.bump_produced(len(out_rows))
    if label:
        profiler.charge(label, len(out_rows))
    return BindingsTable(out_schema, frozenset(out_rows))


def _match_free(
    applied: Sequence[Term],
    tuple_row: Row,
    free_positions: Sequence[int],
    subst: Substitution,
) -> Substitution | None:
    """Match the not-fully-bound argument positions against a stored tuple.

    Bound positions are known equal when reached via a key lookup, but a
    nested-loop scan must verify them too — so *all* positions are
    checked here (match on a ground pair is just an equality test).
    """
    out = subst
    for position, (pattern, value) in enumerate(zip(applied, tuple_row)):
        if position in free_positions:
            out = match(pattern, value, out)
            if out is None:
                return None
        elif pattern != value:
            return None
    return out


def _sort_key_fn(bound_positions: tuple[int, ...]):
    """Row → sort key over *bound_positions* (the merge join's order)."""

    def key_fn(row: Row) -> tuple:
        return tuple(term_sort_key(row[i]) for i in bound_positions)

    return key_fn


def _keyed_extension(
    relation, ext_rows: list[Row], bound_positions: tuple[int, ...]
) -> tuple[list[tuple[tuple, Row]], bool]:
    """The extension sorted on the join key, via the relation's order cache
    when one is available (base and derived relations both carry one).

    Returns ``(keyed_rows, was_cached)`` — a cache hit skips the sort and
    its examined-tuples charge, which is what makes repeated merge joins
    against an unchanged relation cheap.
    """
    key_fn = _sort_key_fn(bound_positions)
    if relation is not None and hasattr(relation, "sorted_by"):
        return relation.sorted_by(bound_positions, key_fn)
    return (
        sorted(((key_fn(row), row) for row in ext_rows), key=lambda pair: pair[0]),
        False,
    )


def _merge_join(
    table: BindingsTable,
    literal: Literal,
    keyed_ext: list[tuple[tuple, Row]],
    bound_positions: tuple[int, ...],
    out_schema: tuple[Variable, ...],
    new_vars: list[Variable],
    profiler: Profiler,
    governor=None,
) -> BindingsTable:
    """Sort-merge implementation of :func:`scan_join`.

    *keyed_ext* is the extension already sorted on the join key (possibly
    served from a relation's order cache); only the input side is sorted
    here.
    """
    free_positions = tuple(i for i in range(len(literal.args)) if i not in bound_positions)

    keyed_inputs: list[tuple[tuple, Row, Substitution, list[Term]]] = []
    for base_row in table.rows:
        subst: Substitution = dict(zip(table.schema, base_row))
        applied = [apply(arg, subst) for arg in literal.args]
        key = tuple(term_sort_key(applied[i]) for i in bound_positions)
        keyed_inputs.append((key, base_row, subst, applied))
    keyed_inputs.sort(key=lambda item: item[0])
    profiler.bump_examined(len(keyed_inputs))  # the input sorting pass

    out_rows: set[Row] = set()
    charged = 0
    check_at = governor.grant() if governor is not None else float("inf")
    left = 0
    right = 0
    while left < len(keyed_inputs) and right < len(keyed_ext):
        lkey = keyed_inputs[left][0]
        rkey = keyed_ext[right][0]
        if lkey < rkey:
            left += 1
            continue
        if lkey > rkey:
            right += 1
            continue
        right_end = right
        while right_end < len(keyed_ext) and keyed_ext[right_end][0] == rkey:
            right_end += 1
        left_end = left
        while left_end < len(keyed_inputs) and keyed_inputs[left_end][0] == lkey:
            left_end += 1
        for __, base_row, subst, applied in keyed_inputs[left:left_end]:
            for ___, tuple_row in keyed_ext[right:right_end]:
                profiler.bump_examined()
                extended = _match_free(applied, tuple_row, free_positions, subst)
                if extended is not None:
                    extra = []
                    ok = True
                    for var in new_vars:
                        value = extended.get(var)
                        if value is None or not is_ground(value):
                            raise ExecutionError(
                                f"literal {literal} left variable {var} unbound"
                            )
                        extra.append(value)
                    if ok:
                        out_rows.add(base_row + tuple(extra))
        if len(out_rows) >= check_at:
            emitted = len(out_rows)
            governor.tick(emitted - charged)
            charged = emitted
            check_at = emitted + governor.grant()
        left = left_end
        right = right_end

    if governor is not None and len(out_rows) > charged:
        governor.tick(len(out_rows) - charged)
    profiler.bump_produced(len(out_rows))
    return BindingsTable(out_schema, frozenset(out_rows))


def builtin_join(
    table: BindingsTable,
    literal: Literal,
    builtin,
    profiler: Profiler | None = None,
    governor=None,
) -> BindingsTable:
    """Join with a built-in (infinite) predicate by per-row evaluation.

    Built-ins have no stored extension, so the only execution is the
    bind-join: for each input row, check a declared mode is satisfied,
    call the evaluator, and match the produced ground tuples against the
    (substituted) argument patterns.
    """
    from ..datalog.bindings import BindingPattern

    profiler = profiler or Profiler()
    schema_set = set(table.schema)
    new_vars = [v for v in _literal_vars_in_order(literal) if v not in schema_set]
    out_schema = table.schema + tuple(new_vars)

    out_rows: set[Row] = set()
    charged = 0
    check_at = governor.grant() if governor is not None else float("inf")
    for base_row in table.rows:
        if len(out_rows) >= check_at:
            emitted = len(out_rows)
            governor.tick(emitted - charged)
            charged = emitted
            check_at = emitted + governor.grant()
        subst: Substitution = dict(zip(table.schema, base_row))
        applied = tuple(apply(arg, subst) for arg in literal.args)
        adornment = BindingPattern(
            "".join("b" if is_ground(arg) else "f" for arg in applied)
        )
        if builtin.satisfied_mode(adornment) is None:
            raise ExecutionError(
                f"builtin {literal} entered with adornment {adornment}, "
                f"no declared mode satisfied (unsafe execution)"
            )
        profiler.bump_probes()
        for produced in builtin.evaluate(applied):
            profiler.bump_examined()
            extended = subst
            ok = True
            for pattern, value in zip(applied, produced):
                extended = match(pattern, value, extended)
                if extended is None:
                    ok = False
                    break
            if not ok:
                continue
            extra = []
            for var in new_vars:
                value = extended.get(var)
                if value is None or not is_ground(value):
                    raise ExecutionError(
                        f"builtin {literal} left variable {var} unbound"
                    )
                extra.append(value)
            out_rows.add(base_row + tuple(extra))
    if governor is not None and len(out_rows) > charged:
        governor.tick(len(out_rows) - charged)
    profiler.bump_produced(len(out_rows))
    return BindingsTable(out_schema, frozenset(out_rows))


def apply_comparison(
    table: BindingsTable,
    literal: Literal,
    profiler: Profiler | None = None,
    governor=None,
) -> BindingsTable:
    """Execute a comparison literal against every row.

    ``=`` may bind new variables, extending the schema; ordering
    comparisons only filter.
    """
    profiler = profiler or Profiler()
    new_vars: list[Variable] = []
    schema_set = set(table.schema)
    for var in _literal_vars_in_order(literal):
        if var not in schema_set:
            new_vars.append(var)
    out_schema = table.schema + tuple(new_vars)

    out_rows: set[Row] = set()
    for row in table.rows:
        profiler.bump_examined()
        subst: Substitution = dict(zip(table.schema, row))
        solved = solve_comparison(literal, subst)
        if solved is None:
            continue
        extra = []
        for var in new_vars:
            value = solved.get(var)
            if value is None or not is_ground(value):
                raise ExecutionError(
                    f"comparison {literal} left variable {var} unbound (unsafe execution)"
                )
            extra.append(apply(value, solved))
        out_rows.add(row + tuple(extra))
    if governor is not None:
        # Filters cannot emit more than their (already charged) input,
        # so one cancellation/deadline probe per call is enough.
        governor.tick()
    profiler.bump_produced(len(out_rows))
    return BindingsTable(out_schema, frozenset(out_rows))


def negation_filter(
    table: BindingsTable,
    literal: Literal,
    extension: Iterable[Row],
    profiler: Profiler | None = None,
    governor=None,
) -> BindingsTable:
    """Keep rows for which the (fully bound) negated literal has no match."""
    profiler = profiler or Profiler()
    ext_rows = extension if isinstance(extension, (set, frozenset)) else set(extension)
    out_rows: set[Row] = set()
    for row in table.rows:
        profiler.bump_examined()
        subst: Substitution = dict(zip(table.schema, row))
        applied = tuple(apply(arg, subst) for arg in literal.args)
        for arg in applied:
            if not is_ground(arg):
                raise ExecutionError(
                    f"negated literal {literal} entered with unbound arguments (unsafe)"
                )
        if applied not in ext_rows:
            out_rows.add(row)
    if governor is not None:
        governor.tick()
    profiler.bump_produced(len(out_rows))
    return BindingsTable(table.schema, frozenset(out_rows))


def union_tables(tables: Sequence[BindingsTable], profiler: Profiler | None = None) -> BindingsTable:
    """Union bindings tables, aligning columns by variable name."""
    profiler = profiler or Profiler()
    tables = [t for t in tables if t.schema or t.rows]
    if not tables:
        return BindingsTable.empty()
    schema = tables[0].schema
    out_rows: set[Row] = set()
    for table in tables:
        if set(table.schema) != set(schema):
            raise ExecutionError(
                f"union over incompatible schemas {table.schema} vs {schema}"
            )
        positions = [table.schema.index(v) for v in schema]
        for row in table.rows:
            profiler.bump_examined()
            out_rows.add(tuple(row[p] for p in positions))
    profiler.bump_produced(len(out_rows))
    return BindingsTable(schema, frozenset(out_rows))


def aggregate_rows(
    table: BindingsTable,
    head: Literal,
    profiler: Profiler | None = None,
    governor=None,
) -> set[Row]:
    """Instantiate an *aggregate* head: group-by plain arguments,
    aggregate the wrapped variables over the rule's distinct derivations.

    Each distinct bindings-table row is one derivation; ``count(X)``
    counts derivations per group, ``sum``/``min_of``/``max_of``/``avg``
    fold the wrapped variable's (numeric) values.
    """
    from ..datalog.rules import aggregate_spec
    from .evaluable import term_sort_key

    profiler = profiler or Profiler()
    specs = [aggregate_spec(arg) for arg in head.args]
    group_positions = [i for i, spec in enumerate(specs) if spec is None]

    groups: dict[tuple[Term, ...], list[Substitution]] = {}
    for subst in table.substitutions():
        key = []
        for position in group_positions:
            value = apply(head.args[position], subst)
            if not is_ground(value):
                raise ExecutionError(
                    f"aggregate head {head}: group argument unbound (unsafe execution)"
                )
            key.append(value)
        groups.setdefault(tuple(key), []).append(subst)
        profiler.bump_examined()

    def numeric(value: Term, functor: str) -> float:
        from ..datalog.terms import Constant

        if isinstance(value, Constant) and isinstance(value.value, (int, float)) and not isinstance(value.value, bool):
            return value.value
        raise ExecutionError(f"{functor} over non-numeric value {value}")

    out: set[Row] = set()
    for key, substs in groups.items():
        row: list[Term] = []
        key_iter = iter(key)
        for position, spec in enumerate(specs):
            if spec is None:
                row.append(next(key_iter))
                continue
            functor, var = spec
            values = []
            for subst in substs:
                value = subst.get(var)
                if value is None or not is_ground(value):
                    raise ExecutionError(
                        f"aggregate {functor}({var}) over unbound variable"
                    )
                values.append(value)
            from ..datalog.terms import Constant

            if functor == "count":
                row.append(Constant(len(values)))
            elif functor == "sum":
                row.append(Constant(sum(numeric(v, functor) for v in values)))
            elif functor == "avg":
                total = sum(numeric(v, functor) for v in values)
                row.append(Constant(total / len(values)))
            elif functor == "min_of":
                row.append(min(values, key=term_sort_key))
            else:  # max_of
                row.append(max(values, key=term_sort_key))
        out.add(tuple(row))
    profiler.bump_produced(len(out))
    if governor is not None:
        governor.tick(len(out))
    return out


def head_rows(
    table: BindingsTable,
    head: Literal,
    profiler: Profiler | None = None,
    governor=None,
) -> set[Row]:
    """Instantiate *head* for every row — the tuples a rule derives."""
    profiler = profiler or Profiler()
    out: set[Row] = set()
    for subst in table.substitutions():
        row = tuple(apply(arg, subst) for arg in head.args)
        for field in row:
            if not is_ground(field):
                raise ExecutionError(
                    f"rule head {head} not fully bound by body (unsafe execution)"
                )
        out.add(row)
    profiler.bump_produced(len(out))
    if governor is not None:
        governor.tick(len(out))
    return out
