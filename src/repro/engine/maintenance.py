"""Incremental maintenance of materialized views (counting + DRed).

LDL includes updates among its constructs ([NK] in the paper's
references); the natural companion on the evaluation side is keeping a
materialized derived relation consistent under fact insertions and
deletions without recomputation.  The machinery here is the classical
pair, applied per stratum of the dependency graph:

* **counting** — for the non-recursive strata the view set tracks, per
  derived tuple, its number of distinct immediate derivations.  An
  insertion delta is finite-differenced through each rule (delta at one
  body position, pre-update extensions on one side, post-update on the
  other, so every new derivation is counted exactly once); a tuple whose
  support goes ``0 -> n`` is a genuine insert, one whose support drops
  ``n -> 0`` is a genuine delete — no rederivation pass is ever needed,
  and a tuple with an alternative derivation through a *different rule*
  of the same view simply keeps a positive count;
* **DRed** (delete-and-rederive) — recursive strata cannot carry finite
  derivation counts usefully, so deletions there over-delete every
  tuple with a suspect derivation (evaluated against the *pre-deletion*
  extensions — the classical algorithm; using post-deletion state would
  miss derivations that used two deleted tuples at once, e.g. a deleted
  row joined with itself), then re-derive the survivors from what
  remains; insertions propagate semi-naively from the delta.

Both directions touch only the strata downstream of the mutated
relation and do work proportional to the deltas flowing through them —
a write never re-materializes an unaffected view.

Restrictions: the maintained program must be negation- and
aggregation-free (their incremental maintenance needs stratified
recomputation, which defeats the purpose here); built-ins are allowed.
:class:`ViewSet` enforces this at materialization time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from ..datalog.builtins import BuiltinRegistry, builtin_oracle
from ..datalog.graph import DependencyGraph
from ..datalog.literals import Literal
from ..datalog.rules import Program, Rule
from ..datalog.safety import exists_safe_order
from ..datalog.terms import Variable, is_ground, variables_of
from ..datalog.unify import apply
from ..errors import ExecutionError, KnowledgeBaseError
from ..storage.catalog import Database
from ..storage.relation import DerivedRelation, Relation
from .operators import (
    BindingsTable,
    Row,
    apply_comparison,
    builtin_join,
    head_rows,
    scan_join,
)
from .profiler import Profiler


@dataclass(frozen=True, slots=True)
class _Stratum:
    """One SCC of the maintained program's derived predicates, in
    topological (callees-first) order."""

    names: frozenset[str]
    rules: tuple[Rule, ...]
    recursive: bool
    #: non-comparison, non-builtin body predicate names across the rules
    #: — the predicates whose deltas can reach this stratum
    body_predicates: frozenset[str]


class ViewSet:
    """Materialized extensions of derived predicates, kept incrementally
    consistent with the fact base.

    :meth:`insert` and :meth:`delete` propagate base-fact deltas through
    the strata in dependency order and return the net derived deltas —
    per-tuple derivation counts for the non-recursive strata, DRed for
    the recursive ones (see the module docstring)."""

    def __init__(
        self,
        db: Database,
        program: Program,
        builtins: BuiltinRegistry | None = None,
        profiler: Profiler | None = None,
    ):
        self.db = db
        self.program = program
        self.builtins = builtins
        self.profiler = profiler or Profiler()
        #: maintained extensions — :class:`DerivedRelation` rather than a
        #: plain set, so every delta firing probes persistent, incrementally
        #: maintained indexes instead of rebuilding hash buckets per call
        self._stored: dict[str, DerivedRelation] = {}
        #: per-tuple derivation counts, for predicates of non-recursive
        #: strata only (recursive predicates are maintained by DRed)
        self._counts: dict[str, dict[Row, int]] = {}
        self._rules: list[Rule] = []
        self._strata: list[_Stratum] = []
        #: safe body order per rule, keyed by id(rule) — the order depends
        #: only on the rule and the (fixed) builtin registry, so computing
        #: it once instead of per firing is free speedup on the
        #: delta-propagation hot path
        self._body_order: dict[int, list[Literal]] = {}
        #: delta-first evaluation orders per (rule, delta position) — see
        #: :meth:`_delta_first_order`
        self._delta_order: dict[tuple[int, int], tuple[int, ...]] = {}
        self._validate_and_collect()

    # ------------------------------------------------------------ set-up

    def _validate_and_collect(self) -> None:
        for rule in self.program:
            if rule.is_aggregate:
                raise KnowledgeBaseError(
                    "incremental maintenance does not support aggregate rules"
                )
            for literal in rule.body:
                if literal.negated:
                    raise KnowledgeBaseError(
                        "incremental maintenance does not support negation"
                    )
        graph = DependencyGraph(self.program)
        graph.check_stratified()
        self._rules = list(self.program)
        derived = {ref.name for ref in self.program.derived_predicates}
        for component in graph.evaluation_order():
            names = frozenset(ref.name for ref in component if ref.name in derived)
            if not names:
                continue  # base-only component
            recursive = len(component) > 1 or graph.is_recursive(
                next(iter(component))
            )
            rules = tuple(r for r in self._rules if r.head.predicate in names)
            body_preds = frozenset(
                literal.predicate
                for rule in rules
                for literal in rule.body
                if self._is_stored_literal(literal)
            )
            self._strata.append(
                _Stratum(
                    names=names,
                    rules=rules,
                    recursive=recursive,
                    body_predicates=body_preds,
                )
            )

    def _is_stored_literal(self, literal: Literal) -> bool:
        """True when *literal* scans a stored extension (base or derived)
        rather than being evaluated as a comparison or built-in."""
        if literal.is_comparison:
            return False
        if self.builtins is not None and literal.predicate in self.builtins:
            builtin = self.builtins.get(literal.predicate)
            if builtin is not None and builtin.arity == literal.arity:
                return False
        return True

    def _ordered_body(self, rule: Rule) -> list[Literal]:
        cached = self._body_order.get(id(rule))
        if cached is not None:
            return cached
        oracle = builtin_oracle(self.builtins)
        order, __ = exists_safe_order(rule.body, frozenset(), oracle)
        if order is None:  # pragma: no cover - validated earlier
            raise KnowledgeBaseError(f"rule '{rule}' has no safe order")
        body = [rule.body[i] for i in order]
        self._body_order[id(rule)] = body
        return body

    def _delta_first_order(self, rule: Rule, delta_position: int) -> tuple[int, ...]:
        """Evaluation permutation of the safe body order that scans the
        literal at *delta_position* first.

        With the delta in front, every downstream stored literal probes
        its (persistently indexed) extension with keys bound by the delta
        rows, so a firing costs work proportional to the delta flowing
        through it rather than to the extension sizes.  Falls back to the
        plain safe order when no delta-first permutation is safe (e.g.
        the delta literal needs a built-in to bind an argument first)."""
        key = (id(rule), delta_position)
        cached = self._delta_order.get(key)
        if cached is not None:
            return cached
        body = self._ordered_body(rule)
        bound: frozenset[Variable] = frozenset()
        for arg in body[delta_position].args:
            bound |= variables_of(arg)
        rest = [literal for i, literal in enumerate(body) if i != delta_position]
        oracle = builtin_oracle(self.builtins)
        order, __ = exists_safe_order(rest, bound, oracle)
        if order is None:
            permutation = tuple(range(len(body)))
        else:
            back = [i for i in range(len(body)) if i != delta_position]
            permutation = (delta_position,) + tuple(back[i] for i in order)
        self._delta_order[key] = permutation
        return permutation

    def materialize(self) -> None:
        """Compute every derived predicate's extension — and, for the
        non-recursive strata, its per-tuple derivation counts — from
        scratch."""
        from .fixpoint import evaluate_program

        result = evaluate_program(
            self.db, self.program, profiler=self.profiler, builtins=self.builtins
        )
        self._stored = {
            ref.name: DerivedRelation(ref.name, result.rows(ref.name))
            for ref in self.program.derived_predicates
        }
        self._counts = {}
        for stratum in self._strata:
            if stratum.recursive:
                continue
            for name in stratum.names:
                self._counts.setdefault(name, {})
            for rule in stratum.rules:
                counts = self._counts[rule.head.predicate]
                table = self._join_body(
                    rule, lambda index, literal: self._ext_by_name(literal.predicate)
                )
                for row, count in self._head_counts(table, rule.head).items():
                    counts[row] = counts.get(row, 0) + count

    # ------------------------------------------------------------ access

    def rows(self, predicate: str) -> frozenset[Row]:
        stored = self._stored.get(predicate)
        return stored.rows if stored is not None else frozenset()

    def predicates(self) -> tuple[str, ...]:
        """The maintained derived predicates, sorted."""
        return tuple(sorted(self._stored))

    def maintenance_mode(self, predicate: str) -> str:
        """``"counting"`` (non-recursive stratum, per-tuple support) or
        ``"dred"`` (recursive stratum, delete-and-rederive)."""
        return "counting" if predicate in self._counts else "dred"

    def support(self, predicate: str, row: Row) -> int | None:
        """Derivation count of *row* (``None`` for recursive predicates,
        which are maintained by DRed, not counting)."""
        counts = self._counts.get(predicate)
        if counts is None:
            return None
        return counts.get(tuple(row), 0)

    def __contains__(self, predicate: str) -> bool:
        return predicate in self._stored

    # -------------------------------------------------------- rule firing

    def _ext_by_name(
        self, name: str, overrides: Mapping[str, Iterable[Row]] | None = None
    ):
        if overrides and name in overrides:
            return overrides[name]
        if name in self._stored:
            return self._stored[name]
        relation = self.db.get(name)
        if relation is not None:
            return relation
        return frozenset()

    def _stored_for(self, name: str) -> DerivedRelation:
        stored = self._stored.get(name)
        if stored is None:
            stored = self._stored[name] = DerivedRelation(name)
        return stored

    def _join_body(
        self,
        rule: Rule,
        ext_for: Callable[[int, Literal], Iterable[Row]],
        order: Sequence[int] | None = None,
        seed: BindingsTable | None = None,
    ) -> BindingsTable:
        """Join the rule body, drawing each stored literal's extension
        from *ext_for* (keyed by the literal's position in the safe body
        order).  *order* permutes the evaluation (delta-first firing —
        the result is order-independent, only the cost changes); *seed*
        starts the join from an existing bindings table instead of the
        unit table (candidate-seeded rederivation).  Extensions that are
        :class:`Relation`/:class:`DerivedRelation` are joined with their
        persistent indexes; ad-hoc sets (deltas) fall back to a one-shot
        hash build."""
        body = self._ordered_body(rule)
        table = BindingsTable.unit() if seed is None else seed
        for index in order if order is not None else range(len(body)):
            literal = body[index]
            if not table.rows:
                break
            if literal.is_comparison:
                table = apply_comparison(table, literal, self.profiler)
                continue
            if not self._is_stored_literal(literal):
                builtin = self.builtins.get(literal.predicate)
                table = builtin_join(table, literal, builtin, self.profiler)
                continue
            extension = ext_for(index, literal)
            method = (
                "index"
                if isinstance(extension, (Relation, DerivedRelation))
                else "hash"
            )
            table = scan_join(table, literal, extension, method, self.profiler)
        return table

    def _head_counts(self, table: BindingsTable, head: Literal) -> Counter:
        """Head tuples with their multiplicity: the number of distinct
        body-variable assignments deriving each (what the counting
        strata record as per-tuple support)."""
        out: Counter = Counter()
        for subst in table.substitutions():
            row = tuple(apply(arg, subst) for arg in head.args)
            for field in row:
                if not is_ground(field):
                    raise ExecutionError(
                        f"rule head {head} not fully bound by body (unsafe execution)"
                    )
            out[row] += 1
        self.profiler.bump_produced(len(out))
        return out

    def _fire_rule(
        self,
        rule: Rule,
        delta_name: str,
        delta_rows: Iterable[Row],
        overrides: Mapping[str, Iterable[Row]] | None = None,
    ) -> set[Row]:
        """Head tuples derivable with *delta_name*'s delta at one of its
        occurrences; *overrides* substitutes extensions at the non-delta
        positions (DRed's over-delete phase passes the pre-deletion
        extensions here, so derivations that used several deleted tuples
        at once — a row joined with itself included — are still seen)."""
        body = self._ordered_body(rule)
        positions = [
            index
            for index, literal in enumerate(body)
            if self._is_stored_literal(literal) and literal.predicate == delta_name
        ]
        out: set[Row] = set()
        for delta_position in positions:
            table = self._join_body(
                rule,
                lambda index, literal: (
                    delta_rows
                    if index == delta_position
                    else self._ext_by_name(literal.predicate, overrides)
                ),
                order=self._delta_first_order(rule, delta_position),
            )
            out |= head_rows(table, rule.head, self.profiler)
        return out

    def _fire_rule_counted(
        self,
        rule: Rule,
        deltas: Mapping[str, set[Row]],
        old_ext: Callable[[str], Iterable[Row]],
        phase: str,
    ) -> Counter:
        """Finite-differenced counted firing: the multiset of derivations
        gained (``phase="insert"``) or lost (``phase="delete"``) by the
        per-predicate *deltas*.

        With the delta-carrying body positions ordered ``i1 < i2 < ...``,
        the telescoping split puts the delta at one position per pass and
        — for insertions — the *pre-update* extension at earlier delta
        positions and the *post-update* one at later positions (the
        mirror image for deletions).  Every gained/lost body assignment
        is then counted at exactly one pass, even when it uses delta
        tuples at several positions, so counts stay exact.
        """
        body = self._ordered_body(rule)
        delta_positions = [
            index
            for index, literal in enumerate(body)
            if self._is_stored_literal(literal) and literal.predicate in deltas
        ]
        total: Counter = Counter()
        inserting = phase == "insert"
        for delta_position in delta_positions:

            def ext_for(index: int, literal: Literal):
                if index == delta_position:
                    return deltas[literal.predicate]
                if index in delta_positions and (index < delta_position) == inserting:
                    return old_ext(literal.predicate)
                return self._ext_by_name(literal.predicate)

            table = self._join_body(
                rule, ext_for, order=self._delta_first_order(rule, delta_position)
            )
            total += self._head_counts(table, rule.head)
        return total

    # --------------------------------------------------------- insertions

    def insert(self, base_name: str, rows: Iterable[Row]) -> dict[str, set[Row]]:
        """Propagate base-fact insertions; returns the derived deltas.

        The base tuples must already be present in the database and must
        be genuinely new (the caller inserts them first and filters
        duplicates); this routine only updates the views.
        """
        seed = set(tuple(row) for row in rows)
        if not seed:
            return {}
        deltas: dict[str, set[Row]] = {base_name: seed}
        derived_new: dict[str, set[Row]] = {}
        for stratum in self._strata:
            relevant = {
                name: deltas[name]
                for name in stratum.body_predicates
                if deltas.get(name)
            }
            if not relevant:
                continue
            if stratum.recursive:
                fresh = self._insert_recursive(stratum, relevant)
            else:
                fresh = self._insert_counted(stratum, relevant)
            for name, new_rows in fresh.items():
                if new_rows:
                    deltas[name] = new_rows
                    derived_new.setdefault(name, set()).update(new_rows)
        return derived_new

    def _insert_counted(
        self, stratum: _Stratum, deltas: dict[str, set[Row]]
    ) -> dict[str, set[Row]]:
        old_memo: dict[str, DerivedRelation] = {}

        def old_ext(name: str) -> DerivedRelation:
            cached = old_memo.get(name)
            if cached is None:
                rows = set(self._ext_by_name(name)) - deltas[name]
                cached = old_memo[name] = DerivedRelation(name, rows)
            return cached

        fresh: dict[str, set[Row]] = {}
        for rule in stratum.rules:
            gained = self._fire_rule_counted(rule, deltas, old_ext, "insert")
            if not gained:
                continue
            head = rule.head.predicate
            counts = self._counts.setdefault(head, {})
            stored = self._stored_for(head)
            for row, count in gained.items():
                previous = counts.get(row, 0)
                counts[row] = previous + count
                if previous == 0:
                    stored.add(row)
                    fresh.setdefault(head, set()).add(row)
        return fresh

    def _insert_recursive(
        self, stratum: _Stratum, external: dict[str, set[Row]]
    ) -> dict[str, set[Row]]:
        """Semi-naive propagation from the delta: each round fires every
        rule once per delta-carrying predicate, against the accumulated
        extensions — never a from-scratch re-materialization."""
        fresh_all: dict[str, set[Row]] = {}
        deltas = {name: set(rows) for name, rows in external.items()}
        while deltas:
            next_deltas: dict[str, set[Row]] = {}
            for rule in stratum.rules:
                head = rule.head.predicate
                for delta_name, delta_rows in deltas.items():
                    if not delta_rows:
                        continue
                    if all(
                        not self._is_stored_literal(l) or l.predicate != delta_name
                        for l in rule.body
                    ):
                        continue
                    produced = self._fire_rule(rule, delta_name, delta_rows)
                    stored = self._stored_for(head)
                    new_rows = produced - stored.rows
                    if new_rows:
                        stored.update(new_rows)
                        fresh_all.setdefault(head, set()).update(new_rows)
                        next_deltas.setdefault(head, set()).update(new_rows)
            deltas = next_deltas
        return fresh_all

    # ---------------------------------------------------------- deletions

    def delete(self, base_name: str, rows: Iterable[Row]) -> dict[str, set[Row]]:
        """Propagate base-fact deletions; returns the net removals.

        The base tuples must already be removed from the database; this
        routine decrements derivation counts in the counting strata and
        runs DRed in the recursive ones.
        """
        seed = set(tuple(row) for row in rows)
        if not seed:
            return {}
        deltas: dict[str, set[Row]] = {base_name: seed}
        net_removed: dict[str, set[Row]] = {}
        for stratum in self._strata:
            relevant = {
                name: deltas[name]
                for name in stratum.body_predicates
                if deltas.get(name)
            }
            if not relevant:
                continue
            if stratum.recursive:
                gone = self._delete_recursive(stratum, relevant)
            else:
                gone = self._delete_counted(stratum, relevant)
            for name, gone_rows in gone.items():
                if gone_rows:
                    deltas[name] = gone_rows
                    net_removed.setdefault(name, set()).update(gone_rows)
        return net_removed

    def _delete_counted(
        self, stratum: _Stratum, deltas: dict[str, set[Row]]
    ) -> dict[str, set[Row]]:
        old_memo: dict[str, DerivedRelation] = {}

        def old_ext(name: str) -> DerivedRelation:
            cached = old_memo.get(name)
            if cached is None:
                rows = set(self._ext_by_name(name)) | deltas[name]
                cached = old_memo[name] = DerivedRelation(name, rows)
            return cached

        gone: dict[str, set[Row]] = {}
        for rule in stratum.rules:
            lost = self._fire_rule_counted(rule, deltas, old_ext, "delete")
            if not lost:
                continue
            head = rule.head.predicate
            counts = self._counts.setdefault(head, {})
            stored = self._stored_for(head)
            for row, count in lost.items():
                remaining = counts.get(row, 0) - count
                if remaining > 0:
                    counts[row] = remaining
                    continue
                # Support exhausted: a genuine deletion.  (A tuple with an
                # alternative derivation — through the same or a different
                # rule — still has positive support and never gets here.)
                counts.pop(row, None)
                if row in stored:
                    stored.discard(row)
                    gone.setdefault(head, set()).add(row)
        return gone

    def _delete_recursive(
        self, stratum: _Stratum, external: dict[str, set[Row]]
    ) -> dict[str, set[Row]]:
        """DRed, scoped to one recursive stratum: over-delete against the
        pre-deletion extensions, then re-derive the survivors."""
        # Phase 1 — over-delete.  A deleted tuple may invalidate any
        # derivation that used it; candidate derivations are evaluated
        # with the *pre-deletion* extensions at the non-delta positions
        # (upstream deltas are already applied to the database/stored
        # sets, so they are added back here), which also catches
        # derivations that used two deleted tuples at once.
        old_overrides: dict[str, DerivedRelation] = {}
        for name, rows in external.items():
            old = DerivedRelation(name, self._ext_by_name(name))
            old.update(rows)
            old_overrides[name] = old
        over: dict[str, set[Row]] = {}
        deltas = {name: set(rows) for name, rows in external.items()}
        while deltas:
            next_deltas: dict[str, set[Row]] = {}
            for rule in stratum.rules:
                head = rule.head.predicate
                for delta_name, delta_rows in deltas.items():
                    if not delta_rows:
                        continue
                    if all(
                        not self._is_stored_literal(l) or l.predicate != delta_name
                        for l in rule.body
                    ):
                        continue
                    produced = self._fire_rule(
                        rule, delta_name, delta_rows, overrides=old_overrides
                    )
                    candidates = produced & self._stored_for(head).rows
                    fresh = candidates - over.get(head, set())
                    if fresh:
                        over.setdefault(head, set()).update(fresh)
                        next_deltas.setdefault(head, set()).update(fresh)
            deltas = next_deltas

        for name, suspect in over.items():
            stored = self._stored_for(name)
            for row in suspect:
                stored.discard(row)

        # Phase 2 — re-derive survivors from what remains.  Every rule of
        # the stratum is consulted (to fixpoint), so a tuple whose
        # remaining derivation goes through a different rule than the one
        # that over-deleted it is put back.  Rederivation is seeded with
        # the still-missing candidates (see :meth:`_rederive`) — the cost
        # follows the over-deleted set, not the view size.
        changed = True
        rederived: dict[str, set[Row]] = {}
        while changed:
            changed = False
            for rule in stratum.rules:
                head = rule.head.predicate
                candidates = over.get(head)
                if not candidates:
                    continue
                missing = candidates - rederived.get(head, set())
                if not missing:
                    continue
                survivors = self._rederive(rule, missing)
                stored = self._stored_for(head)
                fresh = survivors - stored.rows
                if fresh:
                    stored.update(fresh)
                    rederived.setdefault(head, set()).update(fresh)
                    changed = True

        net: dict[str, set[Row]] = {}
        for name, suspect in over.items():
            really_gone = suspect - rederived.get(name, set())
            if really_gone:
                net[name] = really_gone
        return net

    def _rederive(self, rule: Rule, candidates: set[Row]) -> set[Row]:
        """The subset of *candidates* derivable by *rule* under the
        current stored/base state.

        When the head is a tuple of distinct variables, the candidate
        rows seed the join directly: the body then probes its extensions
        with head-bound keys, so the cost follows the candidate set the
        way delta-first firings follow the delta.  Other head shapes
        (constants, repeated variables) fall back to intersecting the
        rule's full derivation set."""
        head_args = rule.head.args
        seedable = len(set(head_args)) == len(head_args) and all(
            isinstance(arg, Variable) for arg in head_args
        )
        if not seedable:
            return self._derivable(rule) & candidates
        seed = BindingsTable.from_rows(tuple(head_args), candidates)
        table = self._join_body(
            rule,
            lambda index, literal: self._ext_by_name(literal.predicate),
            seed=seed,
        )
        return head_rows(table, rule.head, self.profiler)

    def _derivable(self, rule: Rule) -> set[Row]:
        """All head tuples of *rule* under the current stored/base state."""
        table = self._join_body(
            rule, lambda index, literal: self._ext_by_name(literal.predicate)
        )
        return head_rows(table, rule.head, self.profiler)
