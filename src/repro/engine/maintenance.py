"""Incremental maintenance of materialized views (insertions + DRed).

LDL includes updates among its constructs ([NK] in the paper's
references); the natural companion on the evaluation side is keeping a
materialized derived relation consistent under fact insertions and
deletions without recomputation:

* **insertions** — classical delta propagation: each inserted tuple is a
  delta; every rule fires once per delta-carrying body position against
  (stored ∪ new) extensions, semi-naive style, until no new derived
  tuples appear;
* **deletions** — DRed (delete-and-rederive): propagate deletions as an
  over-approximation (any derivation using a deleted tuple is suspect),
  remove the over-deleted set, then re-derive from what remains and put
  back everything that still has a derivation.

Restrictions: the maintained program must be negation- and
aggregation-free (their incremental maintenance needs stratified
recomputation, which defeats the purpose here); built-ins are allowed.
:class:`ViewSet` enforces this at materialization time.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..datalog.builtins import BuiltinRegistry, builtin_oracle
from ..datalog.graph import DependencyGraph
from ..datalog.literals import Literal
from ..datalog.rules import Program, Rule
from ..datalog.safety import exists_safe_order
from ..errors import KnowledgeBaseError
from ..storage.catalog import Database
from .operators import (
    BindingsTable,
    Row,
    apply_comparison,
    builtin_join,
    head_rows,
    scan_join,
)
from .profiler import Profiler


class ViewSet:
    """Materialized extensions of derived predicates, kept incrementally
    consistent with the fact base."""

    def __init__(
        self,
        db: Database,
        program: Program,
        builtins: BuiltinRegistry | None = None,
        profiler: Profiler | None = None,
    ):
        self.db = db
        self.program = program
        self.builtins = builtins
        self.profiler = profiler or Profiler()
        self._stored: dict[str, set[Row]] = {}
        self._rules: list[Rule] = []
        #: safe body order per rule, keyed by id(rule) — the order depends
        #: only on the rule and the (fixed) builtin registry, so computing
        #: it once instead of per _fire_rule call is free speedup on the
        #: delta-propagation hot path
        self._body_order: dict[int, list[Literal]] = {}
        self._validate_and_collect()

    # ------------------------------------------------------------ set-up

    def _validate_and_collect(self) -> None:
        for rule in self.program:
            if rule.is_aggregate:
                raise KnowledgeBaseError(
                    "incremental maintenance does not support aggregate rules"
                )
            for literal in rule.body:
                if literal.negated:
                    raise KnowledgeBaseError(
                        "incremental maintenance does not support negation"
                    )
        graph = DependencyGraph(self.program)
        graph.check_stratified()
        self._rules = list(self.program)

    def _ordered_body(self, rule: Rule) -> list[Literal]:
        cached = self._body_order.get(id(rule))
        if cached is not None:
            return cached
        oracle = builtin_oracle(self.builtins)
        order, __ = exists_safe_order(rule.body, frozenset(), oracle)
        if order is None:  # pragma: no cover - validated earlier
            raise KnowledgeBaseError(f"rule '{rule}' has no safe order")
        body = [rule.body[i] for i in order]
        self._body_order[id(rule)] = body
        return body

    def materialize(self) -> None:
        """Compute every derived predicate's extension from scratch."""
        from .fixpoint import evaluate_program

        result = evaluate_program(
            self.db, self.program, profiler=self.profiler, builtins=self.builtins
        )
        self._stored = {
            ref.name: set(result.rows(ref.name))
            for ref in self.program.derived_predicates
        }

    # ------------------------------------------------------------ access

    def rows(self, predicate: str) -> frozenset[Row]:
        return frozenset(self._stored.get(predicate, set()))

    def __contains__(self, predicate: str) -> bool:
        return predicate in self._stored

    # -------------------------------------------------------- rule firing

    def _extension(self, literal: Literal, overrides: Mapping[str, Iterable[Row]]):
        name = literal.predicate
        if name in overrides:
            return overrides[name]
        if name in self._stored:
            return self._stored[name]
        relation = self.db.get(name)
        if relation is not None:
            return relation
        return frozenset()

    def _fire_rule(
        self,
        rule: Rule,
        delta_name: str,
        delta_rows: Iterable[Row],
        removed: Mapping[str, set[Row]] | None = None,
    ) -> set[Row]:
        """Head tuples derivable with *delta_name*'s delta at one of its
        occurrences; *removed* masks tuples treated as already gone."""
        body = self._ordered_body(rule)

        positions = [
            index
            for index, literal in enumerate(body)
            if not literal.is_comparison and literal.predicate == delta_name
        ]
        out: set[Row] = set()
        for delta_position in positions:
            table = BindingsTable.unit()
            for index, literal in enumerate(body):
                if not table.rows:
                    break
                if literal.is_comparison:
                    table = apply_comparison(table, literal, self.profiler)
                    continue
                if self.builtins is not None and literal.predicate in self.builtins:
                    builtin = self.builtins.get(literal.predicate)
                    if builtin is not None and builtin.arity == literal.arity:
                        table = builtin_join(table, literal, builtin, self.profiler)
                        continue
                if index == delta_position:
                    extension: Iterable[Row] = delta_rows
                else:
                    extension = self._extension(literal, {})
                    if removed and literal.predicate in removed:
                        extension = set(extension) - removed[literal.predicate]
                table = scan_join(table, literal, extension, "hash", self.profiler)
            out |= head_rows(table, rule.head, self.profiler)
        return out

    # --------------------------------------------------------- insertions

    def insert(self, base_name: str, rows: Iterable[Row]) -> dict[str, set[Row]]:
        """Propagate base-fact insertions; returns the derived deltas.

        The base tuples must already be present in the database (the
        caller inserts them first); this routine only updates the views.
        """
        deltas: dict[str, set[Row]] = {base_name: set(rows)}
        derived_new: dict[str, set[Row]] = {}
        while deltas:
            next_deltas: dict[str, set[Row]] = {}
            for rule in self._rules:
                head = rule.head.predicate
                for delta_name, delta_rows in deltas.items():
                    if not delta_rows:
                        continue
                    if all(
                        l.is_comparison or l.predicate != delta_name for l in rule.body
                    ):
                        continue
                    produced = self._fire_rule(rule, delta_name, delta_rows)
                    fresh = produced - self._stored.setdefault(head, set())
                    if fresh:
                        self._stored[head] |= fresh
                        derived_new.setdefault(head, set()).update(fresh)
                        next_deltas.setdefault(head, set()).update(fresh)
            deltas = next_deltas
        return derived_new

    # ---------------------------------------------------------- deletions

    def delete(self, base_name: str, rows: Iterable[Row]) -> dict[str, set[Row]]:
        """DRed: propagate base-fact deletions; returns the net removals.

        The base tuples must already be removed from the database; this
        routine over-deletes every derived tuple with a derivation
        through them, then re-derives the survivors.
        """
        # Phase 1 — over-delete.  A deleted tuple may invalidate any
        # derivation that used it: fire delta rules with the deletions,
        # masking nothing (the deleted base rows are already gone from
        # the database, and over-deletion is allowed to over-approximate).
        over: dict[str, set[Row]] = {}
        deltas: dict[str, set[Row]] = {base_name: set(rows)}
        while deltas:
            next_deltas: dict[str, set[Row]] = {}
            for rule in self._rules:
                head = rule.head.predicate
                for delta_name, delta_rows in deltas.items():
                    if not delta_rows:
                        continue
                    if all(
                        l.is_comparison or l.predicate != delta_name for l in rule.body
                    ):
                        continue
                    # candidate invalidated derivations: delta at one spot,
                    # pre-deletion extensions elsewhere (stored still holds them)
                    produced = self._fire_rule(rule, delta_name, delta_rows)
                    candidates = produced & self._stored.get(head, set())
                    fresh = candidates - over.get(head, set())
                    if fresh:
                        over.setdefault(head, set()).update(fresh)
                        next_deltas.setdefault(head, set()).update(fresh)
            deltas = next_deltas

        for name, gone in over.items():
            self._stored[name] -= gone

        # Phase 2 — re-derive survivors from what remains.
        changed = True
        rederived: dict[str, set[Row]] = {}
        while changed:
            changed = False
            for rule in self._rules:
                head = rule.head.predicate
                candidates = over.get(head)
                if not candidates:
                    continue
                survivors = self._derivable(rule) & candidates
                fresh = survivors - self._stored.get(head, set())
                if fresh:
                    self._stored.setdefault(head, set()).update(fresh)
                    rederived.setdefault(head, set()).update(fresh)
                    changed = True

        net: dict[str, set[Row]] = {}
        for name, gone in over.items():
            really_gone = gone - rederived.get(name, set())
            if really_gone:
                net[name] = really_gone
        return net

    def _derivable(self, rule: Rule) -> set[Row]:
        """All head tuples of *rule* under the current stored/base state."""
        body = self._ordered_body(rule)
        table = BindingsTable.unit()
        for literal in body:
            if not table.rows:
                return set()
            if literal.is_comparison:
                table = apply_comparison(table, literal, self.profiler)
                continue
            if self.builtins is not None and literal.predicate in self.builtins:
                builtin = self.builtins.get(literal.predicate)
                if builtin is not None and builtin.arity == literal.arity:
                    table = builtin_join(table, literal, builtin, self.profiler)
                    continue
            table = scan_join(table, literal, self._extension(literal, {}), "hash", self.profiler)
        return head_rows(table, rule.head, self.profiler)
