"""Deterministic fault injection for the execution governor.

Every guard path in :mod:`repro.engine.governor` must be testable without
real clocks, real memory pressure, or real multi-second runaways.  A
:class:`FaultInjector` attached to a governor fires *rules* at named
checkpoint sites:

* operator entry in the compiled kernels — ``join:anc:par``,
  ``negation:p:q``, ``builtin:p:plus`` (the same labels the profiler's
  per-kernel timings use);
* fixpoint round boundaries — ``fixpoint:round``;
* SLD resolution calls — ``sld:<predicate>``;
* optimizer search steps — ``optimizer:order``, ``optimizer:cperm``;
* the governor's own slow tick — ``tick``.

A rule matches a site by :func:`fnmatch.fnmatchcase` pattern, waits for
``after`` matching hits, then fires up to ``times`` times.  Firing can:

* raise an injected error (default :class:`InjectedFault`) — injected
  operator failure;
* advance the governor's clock (``advance_clock``) — clock skew, which
  is how deadline paths are tested without sleeping;
* request cooperative cancellation (``cancel=True``);
* force a budget's abort path (``exhaust="tuples" | "memory" |
  "deadline" | "iterations"``) regardless of the actual counters;
* break the trace sink (``trace_drop=True``) — the next span-close
  export raises inside the tracer, which must degrade to a
  :class:`~repro.obs.tracer.TraceSinkWarning` and never fail the query
  (``tests/test_tracing.py`` pins this);
* crash part of the parallel tier (``kill_worker=True`` SIGKILLs one
  pool worker, ``drop_pipe=True`` closes one parent-side pipe end) —
  the recovery path in :mod:`repro.engine.parallel` must retry the
  round or degrade to the serial tiers with identical answers (the
  chaos harness in :mod:`repro.testing.chaos` sweeps these).

Rule matching is purely count-based, so a fault plan is reproducible
run-to-run on the same program and data.

>>> from repro.engine.governor import ResourceGovernor
>>> faults = FaultInjector().inject("tick", after=2, advance_clock=100.0)
>>> gov = ResourceGovernor(deadline_seconds=1.0, tick_interval=1,
...                        clock=lambda: 0.0, faults=faults).arm()
>>> gov.tick(); gov.tick()   # two clean ticks
>>> try:
...     gov.tick()           # third tick: clock skews past the deadline
... except Exception as err:
...     print(type(err).__name__)
DeadlineExceeded
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from ..errors import ExecutionError


class InjectedFault(ExecutionError):
    """The default error raised by an injected operator failure."""


@dataclass
class FaultRule:
    """One deterministic trigger: fire at the (after+1)-th hit of a site."""

    site: str = "*"
    after: int = 0
    times: int = 1
    error: BaseException | None = None
    advance_clock: float = 0.0
    cancel: bool = False
    exhaust: str | None = None
    trace_drop: bool = False
    kill_worker: bool = False
    drop_pipe: bool = False
    hits: int = 0
    fired: int = 0

    def matches(self, site: str) -> bool:
        return self.site == site or fnmatchcase(site, self.site)


@dataclass
class FaultInjector:
    """A deterministic fault plan consulted at governor checkpoints."""

    rules: list[FaultRule] = field(default_factory=list)
    #: every firing, as "site:action" strings (assert on this in tests)
    log: list[str] = field(default_factory=list)

    def inject(
        self,
        site: str = "*",
        after: int = 0,
        times: int = 1,
        error: BaseException | str | None = None,
        advance_clock: float = 0.0,
        cancel: bool = False,
        exhaust: str | None = None,
        trace_drop: bool = False,
        kill_worker: bool = False,
        drop_pipe: bool = False,
    ) -> "FaultInjector":
        """Add one rule; returns self so plans read as a chain.

        *error* may be an exception instance or a message string (wrapped
        in :class:`InjectedFault`).  Actions fire in order: clock skew,
        cancel, exhaust, trace drop, worker kill, pipe drop, error — so a
        rule combining ``advance_clock`` with ``error`` skews first,
        raises second.
        """
        if isinstance(error, str):
            error = InjectedFault(error)
        if (
            error is None and not advance_clock and not cancel
            and exhaust is None and not trace_drop
            and not kill_worker and not drop_pipe
        ):
            error = InjectedFault(f"injected fault at {site!r}")
        self.rules.append(
            FaultRule(
                site=site,
                after=after,
                times=times,
                error=error,
                advance_clock=advance_clock,
                cancel=cancel,
                exhaust=exhaust,
                trace_drop=trace_drop,
                kill_worker=kill_worker,
                drop_pipe=drop_pipe,
            )
        )
        return self

    def on_checkpoint(self, site: str, governor) -> None:
        """Called by the governor at every checkpoint site."""
        for rule in self.rules:
            if not rule.matches(site):
                continue
            rule.hits += 1
            if rule.hits <= rule.after or rule.fired >= rule.times:
                continue
            rule.fired += 1
            if rule.advance_clock:
                self.log.append(f"{site}:advance_clock={rule.advance_clock}")
                governor.skew(rule.advance_clock)
            if rule.cancel:
                self.log.append(f"{site}:cancel")
                governor.cancel(f"fault injected at {site}")
            if rule.exhaust is not None:
                self.log.append(f"{site}:exhaust={rule.exhaust}")
                governor.exhaust(rule.exhaust)
            if rule.trace_drop and governor.tracer is not None:
                self.log.append(f"{site}:trace_drop")
                governor.tracer.inject_sink_failure()
            if rule.kill_worker:
                from . import parallel  # deferred: pulls in multiprocessing

                killed = parallel.kill_one_worker()
                self.log.append(f"{site}:kill_worker={killed}")
            if rule.drop_pipe:
                from . import parallel

                dropped = parallel.drop_one_pipe()
                self.log.append(f"{site}:drop_pipe={dropped}")
            if rule.error is not None:
                self.log.append(f"{site}:error")
                raise rule.error

    def fired_count(self) -> int:
        return sum(rule.fired for rule in self.rules)
